// Adversary's view: run the POI-extraction and re-identification attacks
// against several publication mechanisms and watch the attacks degrade.
// Demonstrates the attack-side API (PoiExtractor, ReidentificationAttack).
//
//   $ ./poi_attack_demo [--agents 30] [--seed 9]
#include <iostream>
#include <memory>

#include "attacks/poi_extraction.h"
#include "attacks/reident.h"
#include "core/anonymizer.h"
#include "core/experiment.h"
#include "mechanisms/geo_indistinguishability.h"
#include "mechanisms/identity.h"
#include "metrics/poi_metrics.h"
#include "metrics/reident_metrics.h"
#include "synth/population.h"
#include "util/cli.h"
#include "util/string_utils.h"

int main(int argc, char** argv) {
  using namespace mobipriv;

  util::CliParser cli("mobipriv attack demo: POI extraction + linkage");
  cli.AddOption("agents", "number of simulated users", "30");
  cli.AddOption("seed", "random seed", "9");
  if (!cli.Parse(argc, argv)) return 1;

  synth::PopulationConfig population;
  population.agents = static_cast<std::size_t>(cli.GetInt("agents"));
  population.days = 2;
  population.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
  const synth::SyntheticWorld world(population);

  // Mechanisms under attack.
  std::vector<std::unique_ptr<mech::Mechanism>> mechanisms;
  mechanisms.push_back(std::make_unique<mech::Identity>());
  mechanisms.push_back(std::make_unique<mech::GeoIndistinguishability>(
      mech::GeoIndConfig{0.01}));
  mechanisms.push_back(std::make_unique<core::Anonymizer>());

  // Attack frame shared by everything below.
  const geo::LocalProjection frame =
      attacks::DatasetProjection(world.dataset());
  const auto truth = metrics::DistinctTruePlaces(
      world.ground_truth(), world.projection(), frame);

  const attacks::PoiExtractor extractor;
  const attacks::ReidentificationAttack linkage;
  // The adversary trains on identified day 0 and attacks published day 1.
  const model::Dataset train = world.DatasetForDays({0});
  const model::Dataset test = world.DatasetForDays({1});
  const auto profiles = linkage.BuildProfiles(train, frame);

  core::Table table({"mechanism", "POIs extracted", "POI recall",
                     "reident accuracy"});
  for (const auto& mechanism : mechanisms) {
    util::Rng rng(population.seed + 1);
    const model::Dataset published = mechanism->Apply(test, rng);
    const auto pois = extractor.Extract(published, frame);
    const auto score = metrics::ScorePoiExtraction(pois, truth);
    const auto links = linkage.Attack(profiles, published, frame);
    const auto reident = metrics::SummarizeReident(links);
    table.AddRow({mechanism->Name(), std::to_string(pois.size()),
                  util::FormatDouble(score.Recall(), 3),
                  util::FormatDouble(reident.accuracy_all, 3)});
  }
  std::cout << "Attacks against " << population.agents
            << " users (train day 0, attack day 1):\n\n"
            << table.ToString()
            << "\nNote: POI recall is computed against all-days ground "
               "truth, so even identity stays below 1.0; what matters is "
               "the drop across mechanisms.\n";
  return 0;
}
