// Out-of-core world generator CLI: streams a synthetic population straight
// into a SaveShards directory (shard-*.mpc + manifest.mpm) with bounded
// memory, however many agents are asked for.
//
//   $ ./synth_world --out world.shards --agents 100000 --days 1
//         [--shards 16] [--seed 42] [--chunk-events 65536] [--sparse]
//
// The output directory is a first-class engine source: point
// `anonymize_csv --input world.shards` (or a sweep config's `source=`) at
// it and eligible grids execute shard-by-shard without ever materializing
// the dataset. --sparse widens the GPS sampling interval so million-agent
// worlds stay disk-frugal; the printed peak RSS is the out-of-core
// evidence — it stays far below the bytes written.
#include <cstdint>
#include <iostream>
#include <string>

#include "model/io.h"
#include "synth/streaming_world.h"
#include "util/cli.h"
#include "util/resource.h"

int main(int argc, char** argv) {
  using namespace mobipriv;

  util::CliParser cli("mobipriv streaming world generator (sharded .mpc)");
  cli.AddOption("out", "output shard directory", "world.shards");
  cli.AddOption("agents", "population size", "1000");
  cli.AddOption("days", "simulated days per agent", "1");
  cli.AddOption("shards", "shard fan-out of the directory", "8");
  cli.AddOption("chunk-events",
                "events buffered per shard column before spilling "
                "(0 = default; output bytes identical at any value)", "0");
  cli.AddFlag("sparse",
              "sparse recording (120 s GPS fix period instead of 30 s) — "
              "the million-agent sizing");
  util::AddRunOptions(cli, 42);
  util::IgnoreSigpipe();
  if (!cli.Parse(argc, argv)) return 1;
  const util::RunOptions run = util::ApplyRunOptions(cli);

  const std::int64_t agents = cli.GetInt("agents");
  const std::int64_t days = cli.GetInt("days");
  const std::int64_t shards = cli.GetInt("shards");
  const std::int64_t chunk = cli.GetInt("chunk-events");
  if (agents <= 0 || days <= 0 || shards <= 0 || chunk < 0) {
    std::cerr << "--agents, --days and --shards must be > 0; "
                 "--chunk-events must be >= 0\n";
    return 1;
  }

  synth::StreamingWorldConfig config;
  config.population.agents = static_cast<std::size_t>(agents);
  config.population.days = static_cast<std::size_t>(days);
  config.population.seed = run.seed;
  config.shard_count = static_cast<std::size_t>(shards);
  config.flush_chunk_events = static_cast<std::size_t>(chunk);
  if (cli.GetBool("sparse")) {
    config.population.simulator.sampling_interval_s = 120;
  }

  try {
    const std::string dir = cli.GetString("out");
    const synth::StreamingWorldStats stats =
        synth::GenerateShardedWorld(config, dir);
    std::cout << "world: " << stats.agents << " agents, " << stats.traces
              << " traces, " << stats.events << " events\n"
              << "wrote: " << dir << " (" << stats.shards << " shards, "
              << stats.bytes_written << " bytes)\n"
              << "peak rss: " << util::PeakRssBytes() << " bytes\n";
  } catch (const model::IoError& e) {
    std::cerr << "I/O error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "Error: " << e.what() << "\n";
    return 1;
  }
  return util::FlushStdout("synth_world") ? 0 : 1;
}
