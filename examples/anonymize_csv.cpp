// Command-line anonymizer for real datasets: reads the native CSV format
// (user,lat,lng,timestamp), the binary columnar `.mpc` format (see
// docs/FORMAT.md) or a SaveShards directory, applies ANY registered
// mechanism (default: the paper's pipeline), writes the sanitized dataset,
// and can score the publication with the scenario engine's evaluator
// battery. This is the tool a data publisher would actually run.
//
//   $ ./anonymize_csv --input raw.csv --output published.csv
//         [--mechanism "ours[speed+mix]"] [--seed 1] [--threads 0]
//         [--shards 0] [--evaluate coverage,spatial_distortion]
//         [--spacing 100] [--zone-radius 150] [--window 600]
//         [--no-mixzones] [--no-smoothing] [--mech-cache DIR]
//   $ ./anonymize_csv --sweep sweep.cfg
//
// --sweep runs a whole scenario grid (sources x mechanisms — chains
// included — x evaluators x seeds) declared in a config file (see
// docs/FORMAT.md, "Sweep config files" and examples/sweep.cfg) and prints
// the unified report as CSV; every other option is ignored.
//
// Input format is dispatched on the path (`.mpc` = columnar, a directory
// with manifest.mpm = shard dir, else CSV); `.mpc` inputs are mmap-opened
// and fed to the mechanism as zero-copy views. --mechanism takes any
// registry spec string ("geo_ind[eps=0.01]", "wait4me[k=4,delta=500m]",
// ...); the legacy pipeline flags (--spacing etc.) are shorthand that
// assembles the "ours[...]" spec when --mechanism is not given.
// `--shards N` runs the mechanism shard-wise (per-shard RNG streams) and
// persists the published partition next to --output via
// ShardedDataset::SaveShards. `--evaluate e1,e2,...` runs a one-mechanism
// scenario-engine grid over the input and prints the unified report.
//
// With --demo (no input file), generates a synthetic dataset, writes it to
// --output-raw, anonymizes it, and writes the result — a self-contained
// demonstration of the file workflow.
#include <iostream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "mechanisms/registry.h"
#include "model/columnar_file.h"
#include "model/io.h"
#include "model/sharded_dataset.h"
#include "model/stats.h"
#include "synth/population.h"
#include "util/cli.h"
#include "util/spec.h"
#include "util/string_utils.h"

namespace {

/// Splits a comma-separated list of spec strings, ignoring commas inside
/// brackets ("kdelta[delta=500m,grid=60s],coverage" is two specs).
std::vector<std::string> SplitSpecList(const std::string& text) {
  std::vector<std::string> specs;
  for (std::string& piece : mobipriv::util::SplitTopLevel(text, ',')) {
    if (!piece.empty()) specs.push_back(std::move(piece));
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mobipriv;

  util::CliParser cli("mobipriv anonymizer (registry + scenario engine)");
  cli.AddOption("input", "input dataset (.csv, .mpc or shard dir)", "");
  cli.AddOption("output", "output path (.csv or .mpc columnar)",
                "published.csv");
  cli.AddOption("output-raw", "where --demo writes the raw input",
                "raw.csv");
  cli.AddOption("mechanism",
                "mechanism spec string (any registered mechanism; empty = "
                "ours[...] assembled from the pipeline flags)",
                "");
  cli.AddOption("evaluate",
                "comma-separated evaluator specs to score the publication "
                "with (e.g. coverage,spatial_distortion,poi_attack)", "");
  cli.AddOption("shards", "run shard-wise over N shards and persist them "
                "as <output>.shards/ (0 = off)", "0");
  cli.AddOption("spacing", "constant-speed spacing epsilon, metres", "100");
  cli.AddOption("zone-radius", "mix-zone radius, metres", "150");
  cli.AddOption("window", "mix-zone time window, seconds", "600");
  cli.AddOption("mech-cache",
                "directory for the engine's .mpc mechanism-output cache "
                "(reused across runs keyed by mechanism+data+seed; applies "
                "to the --evaluate engine run; empty = off)", "");
  cli.AddOption("mech-cache-max",
                "LRU byte cap for --mech-cache (0 = unbounded)", "0");
  cli.AddOption("sweep",
                "run a full scenario grid from a sweep config file "
                "(docs/FORMAT.md, \"Sweep config files\") and print the "
                "report CSV; all other options are ignored", "");
  cli.AddOption("workers",
                "worker PROCESSES for shard-dir engine runs (0 = in-process; "
                "supervised, crash-tolerant, byte-identical reports at any "
                "value; applies to --sweep and --evaluate)", "0");
  cli.AddFlag("no-mixzones", "disable stage 2 (swapping)");
  cli.AddFlag("no-smoothing", "disable stage 1 (constant speed)");
  cli.AddFlag("demo", "generate a synthetic input instead of reading one");
  util::AddRunOptions(cli, 1);
  util::IgnoreSigpipe();
  if (!cli.Parse(argc, argv)) return 1;
  const util::RunOptions run = util::ApplyRunOptions(cli);
  const std::int64_t workers_arg = cli.GetInt("workers");
  if (workers_arg < 0) {
    std::cerr << "--workers must be >= 0 (got " << workers_arg << ")\n";
    return 1;
  }

  // The mechanism: an explicit spec string, or the paper's pipeline
  // assembled from the legacy flags.
  std::string mechanism_spec = cli.GetString("mechanism");
  if (mechanism_spec.empty()) {
    const bool speed = !cli.GetBool("no-smoothing");
    const bool mix = !cli.GetBool("no-mixzones");
    if (!speed && !mix) {
      mechanism_spec = "identity";
    } else {
      mechanism_spec = "ours[";
      if (speed) mechanism_spec += "speed";
      if (speed && mix) mechanism_spec += "+";
      if (mix) mechanism_spec += "mix";
      if (speed) {
        mechanism_spec += ",eps=" + cli.GetString("spacing") + "m";
      }
      if (mix) {
        mechanism_spec += ",r=" + cli.GetString("zone-radius") + "m";
        mechanism_spec += ",w=" + cli.GetString("window") + "s";
      }
      mechanism_spec += "]";
    }
  }

  // ---- Sweep mode: the whole grid comes from the config file. ----------
  if (!cli.GetString("sweep").empty()) {
    try {
      core::ScenarioSpec spec = core::LoadSweepConfig(cli.GetString("sweep"));
      if (workers_arg > 0) {
        spec.workers = static_cast<std::size_t>(workers_arg);
      }
      core::ScenarioEngine engine(std::move(spec));
      const core::Report report = engine.Run();
      std::cout << report.ToCsv();
      if (!util::FlushStdout("anonymize_csv")) return 1;
      std::cerr << "# " << engine.stats().ToString() << "\n";
      return report.AllOk() ? 0 : 1;
    } catch (const util::SpecError& e) {
      std::cerr << "Spec error: " << e.what() << "\n";
      return 1;
    } catch (const std::exception& e) {
      std::cerr << "Error: " << e.what() << "\n";
      return 1;
    }
  }

  try {
    // ---- Bind the input (zero-copy for .mpc / shard dirs). -------------
    core::DatasetSourceSpec source_spec;
    if (cli.GetBool("demo") || cli.GetString("input").empty()) {
      std::cout << "No --input given: generating a demo dataset...\n";
      synth::PopulationConfig population;
      population.agents = 10;
      population.days = 1;
      const synth::SyntheticWorld world(population);
      model::SaveDataset(world.dataset(), cli.GetString("output-raw"));
      std::cout << "Raw data written to " << cli.GetString("output-raw")
                << "\n";
      source_spec =
          core::DatasetSourceSpec::FromPath(cli.GetString("output-raw"));
    } else {
      source_spec = core::DatasetSourceSpec::FromPath(cli.GetString("input"));
    }
    const core::BoundSource source = core::BoundSource::Bind(source_spec);
    std::cout << "Input (" << source.description() << "): "
              << source.view().TraceCount() << " traces, "
              << source.view().EventCount() << " events\n";

    const auto mechanism = mech::CreateMechanism(mechanism_spec);
    const std::string name = mechanism->Name();

    // ---- Publish. Uses the same stream derivation as an engine grid
    // cell, so for unsharded runs a --evaluate report describes exactly
    // the written output; sharded runs use per-shard streams instead
    // (the report then scores an unsharded realization — see below). ----
    model::Dataset published;
    const std::int64_t shards_arg = cli.GetInt("shards");
    if (shards_arg < 0) {
      std::cerr << "--shards must be >= 0 (got " << shards_arg << ")\n";
      return 1;
    }
    util::Rng rng(util::DeriveStreamSeed(
        run.seed, model::Fnv1a64(name.data(), name.size()), 0));
    if (shards_arg > 0) {
      const model::ShardedDataset partition = model::ShardedDataset::Partition(
          source.view().Materialize(), static_cast<std::size_t>(shards_arg));
      const model::ShardedDataset result =
          core::ApplyMechanismSharded(*mechanism, partition, rng);
      const std::string shard_dir = cli.GetString("output") + ".shards";
      result.SaveShards(shard_dir);
      std::cout << "\n" << name << " over " << shards_arg
                << " shards; partition persisted to " << shard_dir << "\n";
      published = result.Merge();
    } else {
      published = mechanism->ApplyView(source.view(), rng);
      std::cout << "\n" << name << ": published "
                << published.TraceCount() << " traces, "
                << published.EventCount() << " events\n";
    }
    model::SaveDataset(published, cli.GetString("output"));
    std::cout << "Published dataset written to " << cli.GetString("output")
              << "\n";

    // ---- Optional: score the publication with the scenario engine. The
    // engine re-binds the source and re-applies the mechanism (seeded
    // identically, so unsharded reports describe the written output) —
    // for .mpc inputs the re-bind is a microsecond mmap; for huge CSV
    // inputs prefer converting to .mpc first (see README quickstart). ---
    const std::string evaluate = cli.GetString("evaluate");
    if (evaluate.empty() && !cli.GetString("mech-cache").empty()) {
      std::cout << "note: --mech-cache only affects the --evaluate engine "
                   "run; the publish path above did not use it.\n";
    }
    if (!evaluate.empty()) {
      if (shards_arg > 0) {
        std::cout << "\nnote: --evaluate scores an unsharded realization "
                     "of " << name << "; the written sharded output used "
                     "per-shard RNG streams and differs for stochastic "
                     "mechanisms.\n";
      }
      core::ScenarioSpec spec;
      spec.source = source_spec;
      spec.mechanisms = {mechanism_spec};
      spec.evaluators = SplitSpecList(evaluate);
      spec.seeds = {run.seed};
      spec.threads = run.threads;
      spec.workers = static_cast<std::size_t>(workers_arg);
      spec.mechanism_cache_dir = cli.GetString("mech-cache");
      const std::int64_t cache_max = cli.GetInt("mech-cache-max");
      if (cache_max < 0) {
        std::cerr << "--mech-cache-max must be >= 0 (got " << cache_max
                  << ")\n";
        return 1;
      }
      spec.mechanism_cache_max_bytes = static_cast<std::uint64_t>(cache_max);
      core::ScenarioEngine engine(std::move(spec));
      const core::Report report = engine.Run();
      std::cout << "\nEvaluation (" << engine.stats().ToString() << "):\n"
                << report.ToTable().ToString();
    }
  } catch (const model::IoError& e) {
    std::cerr << "I/O error: " << e.what() << "\n";
    return 1;
  } catch (const util::SpecError& e) {
    std::cerr << "Spec error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // Last-resort containment: no failure (injected or real) escapes as
    // an unhandled-exception abort from a CLI tool.
    std::cerr << "Error: " << e.what() << "\n";
    return 1;
  }
  return util::FlushStdout("anonymize_csv") ? 0 : 1;
}
