// Command-line anonymizer for real datasets: reads the native CSV format
// (user,lat,lng,timestamp) or the binary columnar `.mpc` format (see
// docs/FORMAT.md), applies the paper's pipeline, writes the sanitized
// dataset. This is the tool a data publisher would actually run.
//
//   $ ./anonymize_csv --input raw.csv --output published.csv
//         [--spacing 100] [--zone-radius 150] [--window 600]
//         [--no-mixzones] [--no-smoothing] [--seed 1] [--shards 0]
//
// Input and output formats are chosen by extension: `.mpc` is the
// columnar container (orders of magnitude faster to load than CSV),
// anything else is CSV. `--shards N` runs the pipeline shard-wise
// (ApplySharded) and persists the published partition next to --output
// via ShardedDataset::SaveShards, so per-process workers can later open
// only the shards they own.
//
// With --demo (no input file), generates a synthetic dataset, writes it to
// --output-raw, anonymizes it, and writes the result — a self-contained
// demonstration of the file workflow.
#include <iostream>

#include "core/anonymizer.h"
#include "model/columnar_file.h"
#include "model/io.h"
#include "model/sharded_dataset.h"
#include "model/stats.h"
#include "synth/population.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace mobipriv;

  util::CliParser cli("mobipriv CSV anonymizer");
  cli.AddOption("input", "input dataset (.csv or .mpc columnar)", "");
  cli.AddOption("output", "output path (.csv or .mpc columnar)",
                "published.csv");
  cli.AddOption("output-raw", "where --demo writes the raw input",
                "raw.csv");
  cli.AddOption("shards", "run shard-wise over N shards and persist them "
                "as <output>.shards/ (0 = off)", "0");
  cli.AddOption("spacing", "constant-speed spacing epsilon, metres", "100");
  cli.AddOption("zone-radius", "mix-zone radius, metres", "150");
  cli.AddOption("window", "mix-zone time window, seconds", "600");
  cli.AddOption("seed", "random seed", "1");
  cli.AddFlag("no-mixzones", "disable stage 2 (swapping)");
  cli.AddFlag("no-smoothing", "disable stage 1 (constant speed)");
  cli.AddFlag("demo", "generate a synthetic input instead of reading one");
  if (!cli.Parse(argc, argv)) return 1;

  model::Dataset input;
  try {
    if (cli.GetBool("demo") || cli.GetString("input").empty()) {
      std::cout << "No --input given: generating a demo dataset...\n";
      synth::PopulationConfig population;
      population.agents = 10;
      population.days = 1;
      const synth::SyntheticWorld world(population);
      input = world.dataset().Clone();
      model::SaveDataset(input, cli.GetString("output-raw"));
      std::cout << "Raw data written to " << cli.GetString("output-raw")
                << "\n";
    } else {
      input = model::LoadDataset(cli.GetString("input"));
    }
  } catch (const model::IoError& e) {
    std::cerr << "I/O error: " << e.what() << "\n";
    return 1;
  }
  std::cout << "Input:\n"
            << model::ComputeDatasetStats(input).ToString() << "\n";

  core::AnonymizerConfig config;
  config.enable_speed_smoothing = !cli.GetBool("no-smoothing");
  config.enable_mixzones = !cli.GetBool("no-mixzones");
  config.speed.spacing_m = cli.GetDouble("spacing");
  config.mixzone.zone_radius_m = cli.GetDouble("zone-radius");
  config.mixzone.time_window_s = cli.GetInt("window");
  const core::Anonymizer anonymizer(config);

  util::Rng rng(static_cast<std::uint64_t>(cli.GetInt("seed")));
  model::Dataset published;
  const std::int64_t shards_arg = cli.GetInt("shards");
  if (shards_arg < 0) {
    std::cerr << "--shards must be >= 0 (got " << shards_arg << ")\n";
    return 1;
  }
  const auto shard_count = static_cast<std::size_t>(shards_arg);
  try {
    if (shard_count > 0) {
      const model::ShardedDataset partition =
          model::ShardedDataset::Partition(input, shard_count);
      const model::ShardedDataset result =
          anonymizer.ApplySharded(partition, rng);
      const std::string shard_dir = cli.GetString("output") + ".shards";
      result.SaveShards(shard_dir);
      std::cout << "\n" << anonymizer.Name() << " over " << shard_count
                << " shards; partition persisted to " << shard_dir << "\n";
      published = result.Merge();
    } else {
      core::PipelineReport report;
      published = anonymizer.ApplyWithReport(input, rng, report);
      std::cout << "\n" << anonymizer.Name() << ":\n" << report.ToString()
                << "\n";
    }
    model::SaveDataset(published, cli.GetString("output"));
  } catch (const model::IoError& e) {
    std::cerr << "I/O error: " << e.what() << "\n";
    return 1;
  }
  std::cout << "\nPublished dataset written to " << cli.GetString("output")
            << "\n";
  return 0;
}
