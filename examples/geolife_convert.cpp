// Real-data on-ramp: convert a Geolife-format corpus to the native CSV or
// the binary columnar `.mpc` container (chosen by --output extension),
// optionally pre-processing it (gap splitting, speed-glitch removal) into
// publication-ready sessions and anonymizing on the way out. This is the
// tool that swaps the synthetic substrate for the paper's intended
// real-life datasets once you have them on disk. Converting once to .mpc
// makes every later run skip Geolife/CSV parsing entirely (see
// docs/FORMAT.md).
//
//   $ ./geolife_convert --root "Geolife Trajectories 1.3/Data"
//         --output geolife.mpc [--max-users 20] [--anonymize]
#include <iostream>

#include "core/anonymizer.h"
#include "model/columnar_file.h"
#include "model/filters.h"
#include "model/geolife.h"
#include "model/io.h"
#include "model/stats.h"
#include "util/cli.h"
#include "util/spec.h"

int main(int argc, char** argv) {
  using namespace mobipriv;

  util::CliParser cli("Geolife -> mobipriv CSV converter");
  cli.AddOption("root", "Geolife Data directory (contains user folders)",
                "");
  cli.AddOption("output", "output path (.csv or .mpc columnar)",
                "geolife.csv");
  cli.AddOption("max-users", "limit loaded users (0 = all)", "0");
  cli.AddOption("max-files", "limit PLT files per user (0 = all)", "0");
  cli.AddOption("gap", "split traces at recording gaps, seconds", "900");
  cli.AddOption("max-speed", "drop fixes implying more m/s than this",
                "70");
  cli.AddFlag("anonymize", "run the paper's pipeline before writing");
  util::IgnoreSigpipe();
  if (!cli.Parse(argc, argv)) return 1;

  if (cli.GetString("root").empty()) {
    std::cerr << "A --root directory is required (the Geolife 'Data' "
                 "folder).\n";
    return 1;
  }

  try {
    model::GeolifeLoadOptions options;
    options.max_users = static_cast<std::size_t>(cli.GetInt("max-users"));
    options.max_files_per_user =
        static_cast<std::size_t>(cli.GetInt("max-files"));
    std::cout << "Loading " << cli.GetString("root") << "...\n";
    model::Dataset dataset =
        model::LoadGeolife(cli.GetString("root"), options);
    std::cout << model::ComputeDatasetStats(dataset).ToString() << "\n";

    // Pre-processing: glitch removal then session splitting.
    model::Dataset cleaned;
    for (model::UserId id = 0; id < dataset.UserCount(); ++id) {
      cleaned.InternUser(dataset.UserName(id));
    }
    for (const auto& trace : dataset.traces()) {
      cleaned.AddTrace(
          model::RemoveSpeedOutliers(trace, cli.GetDouble("max-speed")));
    }
    model::Dataset sessions =
        model::SplitDatasetByGap(cleaned, cli.GetInt("gap"));
    std::cout << "After cleaning: " << sessions.TraceCount()
              << " session traces\n";

    if (cli.GetBool("anonymize")) {
      const core::Anonymizer anonymizer;
      util::Rng rng(1);
      core::PipelineReport report;
      sessions = anonymizer.ApplyWithReport(sessions, rng, report);
      std::cout << anonymizer.Name() << ":\n" << report.ToString() << "\n";
    }
    model::SaveDataset(sessions, cli.GetString("output"));
    std::cout << "Written to " << cli.GetString("output") << "\n";
  } catch (const model::IoError& e) {
    std::cerr << "I/O error: " << e.what() << "\n";
    return 1;
  } catch (const util::SpecError& e) {
    std::cerr << "Spec error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // Last-resort containment: no failure (injected or real) escapes as
    // an unhandled-exception abort from a CLI tool.
    std::cerr << "Error: " << e.what() << "\n";
    return 1;
  }
  return util::FlushStdout("geolife_convert") ? 0 : 1;
}
