// Mix-zone anatomy: reproduce the Figure-1 two-user crossing, show the
// detected zones, the identity swap, and what the multi-target tracker sees.
// Demonstrates the MixZone and MultiTargetTracker APIs.
//
//   $ ./mixzone_study [--seed 7] [--radius 150] [--window 600]
#include <iostream>

#include "attacks/tracker.h"
#include "mechanisms/mixzone.h"
#include "mechanisms/speed_smoothing.h"
#include "synth/population.h"
#include "util/cli.h"
#include "util/string_utils.h"

int main(int argc, char** argv) {
  using namespace mobipriv;

  util::CliParser cli("mobipriv mix-zone study (Figure 1 scenario)");
  cli.AddOption("seed", "scenario seed", "7");
  cli.AddOption("radius", "zone radius, metres", "150");
  cli.AddOption("window", "encounter time window, seconds", "600");
  if (!cli.Parse(argc, argv)) return 1;

  const auto world = synth::MakeCrossingPairScenario(
      static_cast<std::uint64_t>(cli.GetInt("seed")));
  std::cout << "Scenario: 2 users commuting through a shared transit hub\n";
  for (const auto& trace : world.dataset().traces()) {
    std::cout << "  " << world.dataset().UserName(trace.user()) << ": "
              << trace.size() << " fixes, "
              << util::FormatDouble(trace.LengthMeters() / 1000.0, 1)
              << " km\n";
  }

  // Stage 1 first (as in the paper's pipeline), then the mix-zone stage.
  const mech::SpeedSmoothing smoothing;
  mech::MixZoneConfig zone_config;
  zone_config.zone_radius_m = cli.GetDouble("radius");
  zone_config.time_window_s = cli.GetInt("window");
  const mech::MixZone mixzone(zone_config);

  util::Rng rng(99);
  const model::Dataset smoothed = smoothing.Apply(world.dataset(), rng);
  mech::MixZoneReport report;
  const model::Dataset published =
      mixzone.ApplyWithReport(smoothed, rng, report);

  std::cout << "\nMix-zone detection on the constant-speed traces:\n  "
            << report.ToString() << "\n";
  for (std::size_t i = 0; i < report.zones.size(); ++i) {
    const auto& zone = report.zones[i];
    std::cout << "  zone " << i << ": center=("
              << util::FormatDouble(zone.center.x, 0) << ", "
              << util::FormatDouble(zone.center.y, 0) << ") m, occurrences="
              << zone.occurrences
              << ", max anonymity set=" << zone.max_anonymity_set << "\n";
  }

  if (!report.zones.empty()) {
    // What does a tracking adversary see at the first zone?
    const attacks::MultiTargetTracker tracker;
    // The zone report's planar frame is the dataset projection.
    const geo::LocalProjection frame(smoothed.BoundingBox().Center());
    const auto outcomes = tracker.TrackThroughZone(
        smoothed, published, frame, report.zones.front().center,
        zone_config.zone_radius_m);
    std::cout << "\nTracker at zone 0:\n";
    for (const auto& o : outcomes) {
      std::cout << "  target=" << world.dataset().UserName(o.target)
                << " truth_exit=" << world.dataset().UserName(o.truth)
                << " tracker_followed="
                << (o.lost ? "(lost)" : world.dataset().UserName(o.followed))
                << " err=" << util::FormatDouble(o.error_m, 0) << "m\n";
    }
    std::cout << "  confusion rate: "
              << util::FormatDouble(
                     attacks::MultiTargetTracker::ConfusionRate(outcomes), 2)
              << "\n";
  } else {
    std::cout << "\nNo zone detected — try a larger --radius/--window.\n";
  }
  return 0;
}
