// Quickstart: generate a small synthetic city, anonymize it with the paper's
// full pipeline (constant-speed time distortion + mix-zone swapping), and
// print the before/after privacy and utility numbers.
//
//   $ ./quickstart [--agents 20] [--days 2] [--seed 42]
#include <iostream>

#include "core/anonymizer.h"
#include "core/report.h"
#include "model/stats.h"
#include "synth/population.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace mobipriv;

  util::CliParser cli(
      "mobipriv quickstart: anonymize a synthetic mobility dataset");
  cli.AddOption("agents", "number of simulated users", "20");
  cli.AddOption("days", "number of simulated days", "2");
  cli.AddOption("seed", "random seed", "42");
  if (!cli.Parse(argc, argv)) return 1;

  // 1. Generate a city's worth of mobility data (substitute for a real
  //    dataset; comes with ground truth).
  synth::PopulationConfig population;
  population.agents = static_cast<std::size_t>(cli.GetInt("agents"));
  population.days = static_cast<std::size_t>(cli.GetInt("days"));
  population.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
  std::cout << "Generating " << population.agents << " agents x "
            << population.days << " days...\n";
  const synth::SyntheticWorld world(population);
  std::cout << "Raw dataset:\n"
            << model::ComputeDatasetStats(world.dataset()).ToString() << "\n\n";

  // 2. Anonymize with the paper's full pipeline.
  core::Anonymizer anonymizer;  // default config: both stages on
  util::Rng rng(population.seed);
  core::PipelineReport pipeline_report;
  const model::Dataset published =
      anonymizer.ApplyWithReport(world.dataset(), rng, pipeline_report);
  std::cout << "Pipeline (" << anonymizer.Name() << "):\n"
            << pipeline_report.ToString() << "\n\n";

  // 3. Evaluate: POI attack vs ground truth + utility metrics.
  const core::EvaluationReport eval =
      core::Evaluate(world, published, anonymizer.Name());
  std::cout << "Evaluation:\n" << eval.ToString() << "\n";

  std::cout << "\nPOI retrieval rate on published data: "
            << eval.poi.Recall() * 100.0 << "% (raw data had "
            << eval.extracted_pois_raw << " extractable POIs)\n";
  return 0;
}
