// mobipriv_worker: the child-process side of fault-tolerant shard
// execution (core/shard_exec.h). Not a user-facing tool — the
// supervisor fork/execs it with requests on stdin and replies on
// stdout, speaking the length-prefixed protocol of
// core/worker_protocol.h.
//
// Per 'A' request the worker applies one per-trace mechanism stage to
// its owned shards of a shard directory, publishing one `.mpc` result
// file per shard through the atomic WriteColumnar path (a SIGKILL
// mid-write never leaves a torn file under the final name). Trace RNG
// streams are keyed by (stage master draw, GLOBAL user id, original
// dataset index), so the supervisor's merged report is byte-identical
// to the in-process run regardless of how shards were partitioned.
//
// The worker heartbeats on the reply pipe while applying; a worker
// whose supervisor died sees the heartbeat write fail (SIGPIPE is
// ignored) and exits nonzero with a one-line message instead of
// computing into a dead pipe. Worker-side fault points (worker.apply,
// worker.result.write) arm through the inherited MOBIPRIV_FAULTS
// environment, keyed "<stage prefix name>#<attempt>".

#include <cerrno>
#include <cstdint>
#include <exception>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "core/scenario.h"
#include "core/worker_protocol.h"
#include "mechanisms/mechanism.h"
#include "mechanisms/registry.h"
#include "model/columnar_file.h"
#include "model/event_store.h"
#include "model/io.h"
#include "model/sharded_dataset.h"
#include "util/cli.h"
#include "util/fault.h"
#include "util/rng.h"

namespace {

namespace core = mobipriv::core;
namespace wp = mobipriv::core::wp;
namespace model = mobipriv::model;
namespace mech = mobipriv::mech;
namespace util = mobipriv::util;
namespace fault = mobipriv::util::fault;

/// Reply-pipe write failure: the supervisor is gone. Broken-pipe exit
/// (satellite contract: one line on stderr, nonzero exit).
[[noreturn]] void DiePipe() {
  std::cerr << "mobipriv_worker: error: writing to supervisor pipe failed "
               "(broken pipe?)\n";
  std::exit(3);
}

void Heartbeat() {
  if (!wp::WriteFrame(1, wp::kFrameHeartbeat, {})) DiePipe();
}

/// The probe result is cached per directory: every request of a run
/// names the same shard dir, and the plan is what carries the
/// global-user / original-index tables the RNG contract needs.
const core::ShardStreamPlan& PlanFor(const std::string& dir) {
  static std::optional<std::pair<std::string, core::ShardStreamPlan>> cache;
  if (!cache || cache->first != dir) {
    std::optional<core::ShardStreamPlan> plan = core::ProbeShardStream(dir);
    if (!plan) {
      throw model::IoError("shard directory not streamable: " + dir);
    }
    cache.emplace(dir, std::move(*plan));
  }
  return cache->second;
}

void ProcessRequest(const wp::WorkerRequest& request) {
  const core::ShardStreamPlan& plan = PlanFor(request.dir);
  const std::unique_ptr<mech::Mechanism> mechanism =
      mech::CreateMechanism(request.spec_text);
  const auto* kernel =
      dynamic_cast<const mech::PerTraceMechanism*>(mechanism.get());
  if (kernel == nullptr) {
    throw std::runtime_error("mechanism is not per-trace: " +
                             request.spec_text);
  }
  // The exact master draw the engine's ApplyToStore would make for this
  // stage — per-trace streams then depend only on (master, global user,
  // original index), never on the shard partition.
  util::Rng rng(util::DeriveStreamSeed(
      request.seed,
      model::Fnv1a64(request.prefix_name.data(), request.prefix_name.size()),
      0));
  const std::uint64_t master = rng.NextU64();

  const std::string key =
      request.prefix_name + "#" + std::to_string(request.attempt);
  model::TraceBuffer buffer;
  for (const std::size_t shard : request.shards) {
    if (shard >= plan.shard_count) {
      throw std::runtime_error("shard index out of range: " +
                               std::to_string(shard));
    }
    if (MOBIPRIV_FAULT_POINT_KEYED(fault::points::kWorkerApply, key)) {
      throw std::runtime_error(
          "injected fault (" + std::string(fault::points::kWorkerApply) +
          "): " + key);
    }
    Heartbeat();
    const model::MappedColumnar mapped =
        model::MapColumnar(model::ShardDataPath(plan.dir, shard));
    const std::vector<model::UserId>& l2g = plan.local_to_global[shard];
    if (mapped.TraceCount() != plan.origin[shard].size()) {
      throw model::IoError("shard trace count does not match manifest: " +
                           model::ShardDataPath(plan.dir, shard));
    }
    buffer.Clear();
    std::vector<model::EventStore::TraceRange> traces(mapped.TraceCount());
    for (std::size_t i = 0; i < mapped.TraceCount(); ++i) {
      const std::size_t begin = buffer.size();
      kernel->ApplyToIndexedTrace(
          mapped.View(i).WithUser(l2g[mapped.TraceUser(i)]), master,
          plan.origin[shard][i], buffer);
      // Result traces keep SHARD-LOCAL user ids and the shard's name
      // table; the supervisor re-labels views into the global id space
      // exactly like it does for the original shards.
      traces[i] = {mapped.TraceUser(i), begin, buffer.size()};
      if ((i & 63u) == 63u) Heartbeat();
    }
    if (MOBIPRIV_FAULT_POINT_KEYED(fault::points::kWorkerResultWrite, key)) {
      throw model::IoError(
          "injected fault (" +
          std::string(fault::points::kWorkerResultWrite) + "): " + key);
    }
    const std::span<const std::string> names = mapped.names();
    const model::EventStore result = model::EventStore::FromColumns(
        std::vector<std::string>(names.begin(), names.end()),
        std::move(traces),
        std::vector<double>(buffer.lat().begin(), buffer.lat().end()),
        std::vector<double>(buffer.lng().begin(), buffer.lng().end()),
        std::vector<mobipriv::util::Timestamp>(buffer.time().begin(),
                                               buffer.time().end()));
    model::WriteColumnar(
        result, wp::StageShardPath(request.out_dir, request.stem, shard));
    Heartbeat();
  }
}

}  // namespace

int main() {
  util::IgnoreSigpipe();
  wp::FrameReader reader;
  char buf[4096];
  char type = 0;
  std::string payload;
  while (true) {
    while (reader.Next(&type, &payload)) {
      if (reader.corrupt()) return 2;
      if (type == wp::kFrameQuit) return 0;
      if (type != wp::kFrameApply) {
        std::cerr << "mobipriv_worker: error: unexpected frame type\n";
        return 2;
      }
      wp::WorkerRequest request;
      std::string error;
      if (!wp::DecodeRequest(payload, &request, &error)) {
        if (!wp::WriteFrame(1, wp::kFrameFail, "bad request: " + error)) {
          DiePipe();
        }
        continue;
      }
      try {
        ProcessRequest(request);
        if (!wp::WriteFrame(1, wp::kFrameOk, {})) DiePipe();
      } catch (const std::exception& e) {
        if (!wp::WriteFrame(1, wp::kFrameFail, e.what())) DiePipe();
      }
    }
    if (reader.corrupt()) return 2;
#if defined(__unix__) || defined(__APPLE__)
    const ::ssize_t n = ::read(0, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return 0;  // supervisor closed the request pipe: done
    reader.Feed(buf, static_cast<std::size_t>(n));
#else
    return 2;
#endif
  }
}
