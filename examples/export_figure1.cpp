// Renders Figure 1 as data: exports the three pipeline stages of the
// two-user crossing scenario as GeoJSON files you can drop into
// geojson.io/QGIS and visually compare with the paper's figure — raw traces
// with POI clusters, the constant-speed traces, the swapped publication,
// plus the detected mix-zones and the ground-truth POI sites.
//
//   $ ./export_figure1 [--outdir .] [--seed 7]
#include <fstream>
#include <sstream>
#include <iostream>

#include "mechanisms/mixzone.h"
#include "mechanisms/speed_smoothing.h"
#include "model/geojson.h"
#include "synth/population.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace mobipriv;

  util::CliParser cli("Figure 1 GeoJSON exporter");
  cli.AddOption("outdir", "output directory", ".");
  cli.AddOption("seed", "scenario seed", "7");
  if (!cli.Parse(argc, argv)) return 1;
  const std::string outdir = cli.GetString("outdir");

  const auto world = synth::MakeCrossingPairScenario(
      static_cast<std::uint64_t>(cli.GetInt("seed")));

  const auto write = [&](const std::string& name, const std::string& json) {
    const std::string path = outdir + "/" + name;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path << "\n";
      return false;
    }
    out << json;
    std::cout << "wrote " << path << " (" << json.size() << " bytes)\n";
    return true;
  };

  // Panel (a): raw traces + ground-truth POI sites.
  model::GeoJsonOptions options;
  options.events_as_points = true;
  if (!write("fig1a_raw.geojson", model::ToGeoJson(world.dataset(), options)))
    return 1;
  {
    std::ostringstream sites;
    model::WritePoiSitesGeoJson(world.universe(), world.projection(), sites);
    if (!write("fig1_poi_sites.geojson", sites.str())) return 1;
  }

  // Panel (b): constant speed.
  const mech::SpeedSmoothing smoothing;
  util::Rng rng(1);
  const model::Dataset smoothed = smoothing.Apply(world.dataset(), rng);
  if (!write("fig1b_constant_speed.geojson",
             model::ToGeoJson(smoothed, options)))
    return 1;

  // Panel (c): mix-zone swapping (draw until a swap happens, as the figure
  // depicts one).
  mech::MixZoneConfig zone_config;
  zone_config.zone_radius_m = 200.0;
  zone_config.time_window_s = 900;
  const mech::MixZone mixzone(zone_config);
  mech::MixZoneReport report;
  model::Dataset published;
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    util::Rng zone_rng(seed);
    published = mixzone.ApplyWithReport(smoothed, zone_rng, report);
    if (report.swaps_applied > 0) break;
  }
  if (!write("fig1c_swapped.geojson", model::ToGeoJson(published, options)))
    return 1;
  {
    // Zone centres live in the frame of the *smoothed* dataset projection.
    const geo::LocalProjection zone_frame(
        smoothed.BoundingBox().Center());
    std::ostringstream zones;
    model::WriteZonesGeoJson(report.zones, zone_frame, zones);
    if (!write("fig1_zones.geojson", zones.str())) return 1;
  }

  std::cout << "\nDone: " << report.ToString()
            << "\nOpen the files side by side in geojson.io to see the "
               "three panels of the paper's Figure 1.\n";
  return 0;
}
