#include "model/io.h"

#include <fstream>
#include <map>
#include <sstream>

#include "util/csv.h"
#include "util/string_utils.h"
#include "util/time_utils.h"

namespace mobipriv::model {
namespace {

/// Accepts Unix seconds or "YYYY-MM-DD hh:mm:ss".
std::optional<util::Timestamp> ParseTimestampField(std::string_view text) {
  if (const auto unix_seconds = util::ParseInt(text)) return *unix_seconds;
  return util::ParseDateTime(text);
}

[[noreturn]] void ThrowAtRow(std::size_t row, const std::string& what) {
  throw IoError("row " + std::to_string(row) + ": " + what);
}

}  // namespace

Dataset ReadCsv(std::istream& in) {
  Dataset dataset;
  util::CsvReader reader(in);
  util::CsvRow row;
  // Collect events per user first so traces come out contiguous even if the
  // file interleaves users.
  std::map<std::string, std::vector<Event>> per_user;
  bool first = true;
  while (reader.ReadRow(row)) {
    if (row.size() == 1 && util::Trim(row[0]).empty()) continue;  // blank line
    if (row.size() != 4) {
      ThrowAtRow(reader.RowsRead(), "expected 4 fields, got " +
                                        std::to_string(row.size()));
    }
    if (first) {
      first = false;
      // Header detection: a non-numeric lat field means it's a header row.
      if (!util::ParseDouble(row[1]).has_value()) continue;
    }
    const auto lat = util::ParseDouble(row[1]);
    const auto lng = util::ParseDouble(row[2]);
    const auto ts = ParseTimestampField(row[3]);
    if (!lat || !lng) ThrowAtRow(reader.RowsRead(), "bad coordinates");
    if (!ts) ThrowAtRow(reader.RowsRead(), "bad timestamp");
    const geo::LatLng position{*lat, *lng};
    if (!position.IsValid()) {
      ThrowAtRow(reader.RowsRead(), "coordinates out of WGS84 range");
    }
    per_user[std::string(util::Trim(row[0]))].push_back(
        Event{position, *ts});
  }
  for (auto& [name, events] : per_user) {
    const UserId id = dataset.InternUser(name);
    Trace trace(id, std::move(events));
    trace.SortByTime();
    dataset.AddTrace(std::move(trace));
  }
  return dataset;
}

Dataset ReadCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open " + path);
  return ReadCsv(in);
}

void WriteCsv(const Dataset& dataset, std::ostream& out) {
  util::CsvWriter writer(out);
  writer.WriteRow({"user", "lat", "lng", "timestamp"});
  for (const auto& trace : dataset.traces()) {
    const std::string name = dataset.UserName(trace.user());
    for (const auto& event : trace) {
      writer.WriteRow({name, util::FormatDouble(event.position.lat, 6),
                       util::FormatDouble(event.position.lng, 6),
                       std::to_string(event.time)});
    }
  }
}

void WriteCsvFile(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open " + path + " for writing");
  WriteCsv(dataset, out);
}

void AppendPlt(Dataset& dataset, const std::string& user_name,
               std::istream& in) {
  std::string line;
  // PLT files start with 6 header lines.
  for (int i = 0; i < 6 && std::getline(in, line); ++i) {
  }
  std::vector<Event> events;
  std::size_t row_number = 6;
  while (std::getline(in, line)) {
    ++row_number;
    const auto trimmed = util::Trim(line);
    if (trimmed.empty()) continue;
    const auto fields = util::Split(trimmed, ',');
    // lat, lng, 0, altitude, days, date, time
    if (fields.size() < 7) {
      ThrowAtRow(row_number, "PLT row has fewer than 7 fields");
    }
    const auto lat = util::ParseDouble(fields[0]);
    const auto lng = util::ParseDouble(fields[1]);
    if (!lat || !lng) ThrowAtRow(row_number, "bad PLT coordinates");
    const auto ts = util::ParseDateTime(std::string(util::Trim(fields[5])) +
                                        " " +
                                        std::string(util::Trim(fields[6])));
    if (!ts) ThrowAtRow(row_number, "bad PLT date/time");
    events.push_back(Event{{*lat, *lng}, *ts});
  }
  const UserId id = dataset.InternUser(user_name);
  Trace trace(id, std::move(events));
  trace.SortByTime();
  dataset.AddTrace(std::move(trace));
}

}  // namespace mobipriv::model
