#include "model/io.h"

#include <algorithm>
#include <array>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <streambuf>
#include <unordered_map>
#include <vector>

#include "util/chunked_reader.h"
#include "util/csv.h"
#include "util/fault.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"
#include "util/time_utils.h"

namespace mobipriv::model {
namespace {

/// Accepts Unix seconds or "YYYY-MM-DD hh:mm:ss".
std::optional<util::Timestamp> ParseTimestampField(std::string_view text) {
  if (const auto unix_seconds = util::ParseInt(text)) return *unix_seconds;
  return util::ParseDateTime(text);
}

[[noreturn]] void ThrowAtRow(std::size_t row, const std::string& what) {
  throw IoError("row " + std::to_string(row) + ": " + what);
}

/// First malformed row of a chunk (parsing stops there, like the serial
/// reader stops at its first error).
struct RowError {
  std::size_t row = 0;
  std::string what;
};

/// One chunk's parse result: per-user event runs in first-seen order, with
/// events in file order. Names are views into the input buffer.
struct CsvChunkResult {
  std::vector<std::pair<std::string_view, std::vector<Event>>> users;
  std::unordered_map<std::string_view, std::size_t> user_index;
  std::optional<RowError> error;
};

/// Splits a quote-free CSV line on ','. Returns the field count (fields
/// beyond 4 are counted but not stored — the caller only needs the count
/// to reproduce the serial reader's error message).
std::size_t SplitFields(std::string_view line,
                        std::array<std::string_view, 4>& fields) {
  std::size_t count = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == ',') {
      if (count < 4) fields[count] = line.substr(start, i - start);
      ++count;
      start = i + 1;
    }
  }
  return count;
}

/// Non-owning read-only streambuf over a string_view, so the quoted-CSV
/// fallback can feed the streaming reader without copying the (already
/// slurped) buffer again.
class ViewStreamBuf : public std::streambuf {
 public:
  explicit ViewStreamBuf(std::string_view text) {
    // std::streambuf's interface wants char*; the buffer is never written
    // (no setp, overflow stays unimplemented).
    char* base = const_cast<char*>(text.data());
    setg(base, base, base + text.size());
  }
};

/// Parses the rows of one chunk (the header row, when present, was cut off
/// before chunking). Stops recording at the chunk's first malformed row.
void ParseCsvChunk(std::string_view chunk, std::size_t first_row,
                   CsvChunkResult& out) {
  util::ForEachLine(chunk, first_row, [&](std::string_view line,
                                          std::size_t row) {
    if (out.error) return;  // already failed: skip the rest of the chunk
    std::array<std::string_view, 4> fields;
    const std::size_t count = SplitFields(line, fields);
    if (count == 1 && util::Trim(fields[0]).empty()) return;  // blank line
    if (count != 4) {
      out.error = RowError{row, "expected 4 fields, got " +
                                    std::to_string(count)};
      return;
    }
    const auto lat = util::ParseDouble(fields[1]);
    const auto lng = util::ParseDouble(fields[2]);
    const auto ts = ParseTimestampField(fields[3]);
    if (!lat || !lng) {
      out.error = RowError{row, "bad coordinates"};
      return;
    }
    if (!ts) {
      out.error = RowError{row, "bad timestamp"};
      return;
    }
    const geo::LatLng position{*lat, *lng};
    if (!position.IsValid()) {
      out.error = RowError{row, "coordinates out of WGS84 range"};
      return;
    }
    const std::string_view name = util::Trim(fields[0]);
    const auto [it, inserted] =
        out.user_index.try_emplace(name, out.users.size());
    if (inserted) out.users.emplace_back(name, std::vector<Event>{});
    out.users[it->second].second.push_back(Event{position, *ts});
  });
}

}  // namespace

/// The pre-refactor streaming reader, kept for quoted inputs (quoted fields
/// may span physical lines, so the buffer cannot be line-chunked).
Dataset ReadCsvStreaming(std::istream& in) {
  Dataset dataset;
  util::CsvReader reader(in);
  util::CsvRow row;
  // Collect events per user first so traces come out contiguous even if the
  // file interleaves users.
  std::map<std::string, std::vector<Event>> per_user;
  bool first = true;
  while (reader.ReadRow(row)) {
    if (row.size() == 1 && util::Trim(row[0]).empty()) continue;  // blank line
    if (row.size() != 4) {
      ThrowAtRow(reader.RowsRead(), "expected 4 fields, got " +
                                        std::to_string(row.size()));
    }
    if (first) {
      first = false;
      // Header detection: a non-numeric lat field means it's a header row.
      if (!util::ParseDouble(row[1]).has_value()) continue;
    }
    const auto lat = util::ParseDouble(row[1]);
    const auto lng = util::ParseDouble(row[2]);
    const auto ts = ParseTimestampField(row[3]);
    if (!lat || !lng) ThrowAtRow(reader.RowsRead(), "bad coordinates");
    if (!ts) ThrowAtRow(reader.RowsRead(), "bad timestamp");
    const geo::LatLng position{*lat, *lng};
    if (!position.IsValid()) {
      ThrowAtRow(reader.RowsRead(), "coordinates out of WGS84 range");
    }
    per_user[std::string(util::Trim(row[0]))].push_back(
        Event{position, *ts});
  }
  for (auto& [name, events] : per_user) {
    const UserId id = dataset.InternUser(name);
    Trace trace(id, std::move(events));
    trace.SortByTime();
    dataset.AddTrace(std::move(trace));
  }
  return dataset;
}

Dataset ReadCsvTextChunked(std::string_view text, std::size_t max_chunks,
                           std::size_t min_chunk_bytes) {
  // Quoted fields may span lines; route them through the streaming reader
  // (over the existing buffer — no extra copy).
  if (text.find('"') != std::string_view::npos) {
    ViewStreamBuf buffer(text);
    std::istream in(&buffer);
    return ReadCsvStreaming(in);
  }

  // Header detection, exactly like the serial reader: the first non-blank
  // row is a header iff it has 4 fields and a non-numeric lat. Chunked
  // parsing then starts right after it (the rows before it are blank).
  std::size_t data_begin = 0;
  std::size_t first_data_row = 1;
  {
    std::size_t pos = 0;
    std::size_t row = 1;
    while (pos < text.size()) {
      std::size_t eol = pos;
      while (eol < text.size() && text[eol] != '\n' && text[eol] != '\r') {
        ++eol;
      }
      std::size_t after = eol;  // one past the line's terminator
      if (after < text.size()) {
        after += text[after] == '\r' && after + 1 < text.size() &&
                         text[after + 1] == '\n'
                     ? 2
                     : 1;
      }
      std::array<std::string_view, 4> fields;
      const std::size_t count = SplitFields(text.substr(pos, eol - pos),
                                            fields);
      if (count == 1 && util::Trim(fields[0]).empty()) {  // blank: keep going
        pos = after;
        ++row;
        continue;
      }
      if (count == 4 && !util::ParseDouble(fields[1]).has_value()) {
        // Header row: cut it (and the blanks before it) off the data.
        data_begin = after;
        first_data_row = row + 1;
      }
      break;
    }
  }
  const std::string_view data = text.substr(data_begin);

  // Merging is in chunk order, so any chunking yields the same dataset.
  const std::vector<util::LineChunk> chunks =
      util::SplitLineChunks(data, max_chunks, min_chunk_bytes);
  std::vector<CsvChunkResult> results(chunks.size());
  util::ParallelForEach(chunks.size(), [&](std::size_t c) {
    const util::LineChunk& chunk = chunks[c];
    ParseCsvChunk(data.substr(chunk.begin, chunk.end - chunk.begin),
                  chunk.first_line + (first_data_row - 1), results[c]);
  });

  // First error in file order wins — identical to where the serial reader
  // would have stopped (chunk row ranges ascend with the chunk index).
  for (const CsvChunkResult& result : results) {
    if (result.error) ThrowAtRow(result.error->row, result.error->what);
  }

  // Merge chunk results in chunk order: each user's pooled events come out
  // in file order, exactly as the serial reader accumulated them.
  std::map<std::string_view, std::vector<Event>> per_user;
  for (CsvChunkResult& result : results) {
    for (auto& [name, events] : result.users) {
      auto& pooled = per_user[name];
      if (pooled.empty()) {
        pooled = std::move(events);
      } else {
        pooled.insert(pooled.end(), events.begin(), events.end());
      }
    }
  }

  Dataset dataset;
  for (auto& [name, events] : per_user) {
    const UserId id = dataset.InternUser(std::string(name));
    Trace trace(id, std::move(events));
    trace.SortByTime();
    dataset.AddTrace(std::move(trace));
  }
  return dataset;
}

Dataset ReadCsvText(std::string_view text) {
  // One chunk per ~4 lanes of work, floored at 64 KiB.
  return ReadCsvTextChunked(text, util::ParallelismLevel() * 4, 64 * 1024);
}

Dataset ReadCsv(std::istream& in) {
  const std::string text = util::ReadAll(in);
  return ReadCsvText(text);
}

Dataset ReadCsvFile(const std::string& path) {
  namespace fault = util::fault;
  if (MOBIPRIV_FAULT_POINT(fault::points::kCsvReadOpen)) {
    throw IoError("injected fault (" +
                  std::string(fault::points::kCsvReadOpen) +
                  "): cannot open " + path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open " + path);
  const std::string text = util::ReadAll(in);
  // CSV carries no integrity metadata, so a short read CANNOT be detected
  // by validation the way a truncated `.mpc` is — silently parsing a
  // prefix would publish wrong data. The injected short read therefore
  // throws after the capped transfer, modeling a read() failure mid-file.
  if (fault::Enabled()) {
    const fault::Decision d = fault::Evaluate(fault::points::kCsvReadShort);
    if (d.fail) {
      throw IoError("injected fault (" +
                    std::string(fault::points::kCsvReadShort) +
                    "): short read after " +
                    std::to_string(std::min(d.io_cap, text.size())) +
                    " bytes of " + path);
    }
  }
  return ReadCsvText(text);
}

void WriteCsv(const Dataset& dataset, std::ostream& out) {
  util::CsvWriter writer(out);
  writer.WriteRow({"user", "lat", "lng", "timestamp"});
  for (const auto& trace : dataset.traces()) {
    const std::string name = dataset.UserName(trace.user());
    for (const auto& event : trace) {
      writer.WriteRow({name, util::FormatDouble(event.position.lat, 6),
                       util::FormatDouble(event.position.lng, 6),
                       std::to_string(event.time)});
    }
  }
}

void WriteCsvFile(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open " + path + " for writing");
  WriteCsv(dataset, out);
}

std::vector<Event> ParsePltText(std::string_view text) {
  std::vector<Event> events;
  std::optional<RowError> error;
  util::ForEachLine(text, 1, [&](std::string_view line, std::size_t row) {
    if (error) return;
    if (row <= 6) return;  // PLT files start with 6 header lines
    const auto trimmed = util::Trim(line);
    if (trimmed.empty()) return;
    // lat, lng, 0, altitude, days, date, time
    std::size_t field_count = 0;
    std::array<std::string_view, 7> fields;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= trimmed.size(); ++i) {
      if (i == trimmed.size() || trimmed[i] == ',') {
        if (field_count < 7) fields[field_count] = trimmed.substr(start, i - start);
        ++field_count;
        start = i + 1;
      }
    }
    if (field_count < 7) {
      error = RowError{row, "PLT row has fewer than 7 fields"};
      return;
    }
    const auto lat = util::ParseDouble(fields[0]);
    const auto lng = util::ParseDouble(fields[1]);
    if (!lat || !lng) {
      error = RowError{row, "bad PLT coordinates"};
      return;
    }
    const auto ts = util::ParseDateTime(std::string(util::Trim(fields[5])) +
                                        " " +
                                        std::string(util::Trim(fields[6])));
    if (!ts) {
      error = RowError{row, "bad PLT date/time"};
      return;
    }
    events.push_back(Event{{*lat, *lng}, *ts});
  });
  if (error) ThrowAtRow(error->row, error->what);
  return events;
}

void AppendPlt(Dataset& dataset, const std::string& user_name,
               std::istream& in) {
  const std::string text = util::ReadAll(in);
  std::vector<Event> events = ParsePltText(text);
  const UserId id = dataset.InternUser(user_name);
  Trace trace(id, std::move(events));
  trace.SortByTime();
  dataset.AddTrace(std::move(trace));
}

}  // namespace mobipriv::model
