#include "model/views.h"

#include <atomic>

#include "geo/distance.h"
#include "model/dataset.h"

namespace mobipriv::model {

TraceView TraceView::Of(const Trace& trace) {
  const std::vector<Event>& events = trace.events();
  const Event* base = events.empty() ? nullptr : events.data();
  const std::size_t n = events.size();
  return TraceView(
      trace.user(),
      StridedSpan<double>(base ? &base->position.lat : nullptr, n,
                          sizeof(Event)),
      StridedSpan<double>(base ? &base->position.lng : nullptr, n,
                          sizeof(Event)),
      StridedSpan<util::Timestamp>(base ? &base->time : nullptr, n,
                                   sizeof(Event)));
}

double TraceView::LengthMeters() const noexcept {
  double total = 0.0;
  for (std::size_t i = 1; i < size(); ++i) {
    total += geo::HaversineDistance(position(i - 1), position(i));
  }
  return total;
}

geo::GeoBoundingBox TraceView::BoundingBox() const {
  geo::GeoBoundingBox box;
  for (std::size_t i = 0; i < size(); ++i) box.Extend(position(i));
  return box;
}

namespace {
std::atomic<std::size_t> trace_copy_count{0};
}  // namespace

Trace TraceView::Materialize() const {
  trace_copy_count.fetch_add(1, std::memory_order_relaxed);
  std::vector<Event> events;
  events.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) events.push_back(event(i));
  return Trace(user_, std::move(events));
}

std::size_t TraceCopyCount() noexcept {
  return trace_copy_count.load(std::memory_order_relaxed);
}

geo::LatLng InterpolateAt(const TraceView& trace, util::Timestamp t) {
  // Mirrors model::InterpolateAt on Trace bit for bit: same lower_bound
  // neighbour selection, same interpolation expression shape, so metrics
  // rewritten over views reproduce their pre-refactor results exactly.
  const std::size_t n = trace.size();
  if (t <= trace.time(0)) return trace.position(0);
  if (t >= trace.time(n - 1)) return trace.position(n - 1);
  // lower_bound: first index with time >= t (exists: t < last time).
  std::size_t lo = 0, hi = n;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (trace.time(mid) < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const std::size_t after = lo;
  const std::size_t before = lo - 1;
  if (trace.time(after) == trace.time(before)) return trace.position(before);
  const double alpha =
      static_cast<double>(t - trace.time(before)) /
      static_cast<double>(trace.time(after) - trace.time(before));
  return geo::LatLng{
      trace.lat(before) + (trace.lat(after) - trace.lat(before)) * alpha,
      trace.lng(before) + (trace.lng(after) - trace.lng(before)) * alpha};
}

DatasetView DatasetView::Of(const Dataset& dataset) {
  std::vector<TraceView> traces;
  traces.reserve(dataset.TraceCount());
  for (const Trace& trace : dataset.traces()) {
    traces.push_back(TraceView::Of(trace));
  }
  return DatasetView(std::move(traces), dataset.UserCount(), dataset.names());
}

std::size_t DatasetView::EventCount() const noexcept {
  std::size_t total = 0;
  for (const TraceView& t : traces_) total += t.size();
  return total;
}

std::string DatasetView::UserName(UserId id) const {
  if (id < names_.size()) return names_[id];
  return "user" + std::to_string(id);
}

geo::GeoBoundingBox DatasetView::BoundingBox() const {
  geo::GeoBoundingBox box;
  for (const TraceView& t : traces_) box.Extend(t.BoundingBox());
  return box;
}

namespace {
std::atomic<std::size_t> full_materialize_count{0};
}  // namespace

Dataset DatasetView::Materialize() const {
  full_materialize_count.fetch_add(1, std::memory_order_relaxed);
  Dataset out;
  for (UserId id = 0; id < user_count_; ++id) out.InternUser(UserName(id));
  for (const TraceView& t : traces_) out.AddTrace(t.Materialize());
  return out;
}

std::size_t FullMaterializeCount() noexcept {
  return full_materialize_count.load(std::memory_order_relaxed);
}

}  // namespace mobipriv::model
