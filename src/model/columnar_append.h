// Incremental, bounded-memory construction of `.mpc` columnar files.
//
// WriteColumnar needs the whole EventStore in RAM; a streaming producer
// (the synthetic-world generator at 10^6 agents, incremental ingestion)
// cannot afford that. ColumnarAppender accepts traces one at a time,
// buffers the event columns in bounded chunks, and spills full chunks to
// writer-private sidecar files next to the destination while keeping
// running FNV-1a checksums — so peak memory is O(chunk + users + traces)
// regardless of how many events pass through. Finalize() assembles the
// header/directory/name/trace sections (O(users + traces) metadata) and
// streams the spilled columns through the same crash-safe
// temp-file -> fsync -> atomic-rename protocol WriteColumnar uses, with
// the same fault-injection points (`columnar.write.{open,short,commit}`).
//
// Bitwise contract (test-enforced): for any sequence of traces, the file
// an appender produces is byte-identical to WriteColumnar over the
// equivalent EventStore, at EVERY flush-chunk size — both paths share the
// layout arithmetic in model/columnar_layout.h, the same name/trace
// encoders, and FNV-1a is byte-sequential so chunked checksums match
// one-shot ones.
//
// Crash safety: until Commit()'s rename inside Finalize(), the
// destination path is untouched; every intermediate artifact (column
// spills, the atomic temp) is a `*.tmp` sibling that Abort()/destructor
// unlink. A crash leaves only stray `*.tmp` files no reader opens.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "model/event_store.h"
#include "model/io.h"
#include "model/views.h"

namespace mobipriv::model {

class ColumnarAppender {
 public:
  struct Options {
    /// Events buffered per column before a spill to disk. The memory
    /// bound is ~24 bytes x this value (three f64/i64 columns). 0 is
    /// treated as 1 (spill on every append).
    std::size_t flush_chunk_events = 1u << 16;
  };

  /// Prepares an appender targeting `path` (created/replaced only at
  /// Finalize). Creates the column spill files next to `path`; throws
  /// IoError if they cannot be opened.
  explicit ColumnarAppender(std::string path);
  ColumnarAppender(std::string path, const Options& options);
  ~ColumnarAppender();

  ColumnarAppender(const ColumnarAppender&) = delete;
  ColumnarAppender& operator=(const ColumnarAppender&) = delete;

  /// Dense id for `name`, interning it on first sight. Ids are assigned
  /// in interning order — matching EventStore::InternUser — so callers
  /// that intern names in a fixed global order get Partition-compatible
  /// local ids.
  UserId InternUser(std::string_view name);

  /// Appends one trace owned by `user` (an id from InternUser). The three
  /// spans must have equal length; events are stored verbatim (no
  /// reordering or validation beyond the length check). Throws IoError on
  /// a spill failure.
  void AppendTrace(UserId user, std::span<const double> lat,
                   std::span<const double> lng,
                   std::span<const util::Timestamp> time);

  /// View convenience: copies the (possibly strided) view columns through
  /// the chunk buffer. The view's own user id is ignored in favour of
  /// `user`.
  void AppendTrace(UserId user, const TraceView& trace);

  [[nodiscard]] std::size_t UserCount() const noexcept {
    return names_.size();
  }
  [[nodiscard]] std::size_t TraceCount() const noexcept {
    return traces_.size();
  }
  [[nodiscard]] std::size_t EventCount() const noexcept {
    return event_count_;
  }

  /// Assembles and atomically publishes the `.mpc` file, then removes the
  /// spill files. Throws IoError on any failure (injected or real); the
  /// destination keeps its previous content and all temporaries are
  /// removed. The appender is spent afterwards (only Abort()/destruction
  /// are legal).
  void Finalize();

  /// Drops all temporaries without publishing. Safe to call repeatedly
  /// and after Finalize() (no-op then).
  void Abort() noexcept;

 private:
  static constexpr std::size_t kColumns = 3;  // lat, lng, time

  void FlushChunks();

  std::string path_;
  std::size_t flush_chunk_events_;
  bool done_ = false;

  std::vector<std::string> names_;
  std::unordered_map<std::string, UserId> name_to_id_;
  std::vector<EventStore::TraceRange> traces_;
  std::size_t event_count_ = 0;

  // Per-column chunk buffer, spill stream + path, and running checksum.
  std::vector<double> lat_buf_;
  std::vector<double> lng_buf_;
  std::vector<util::Timestamp> time_buf_;
  std::array<std::string, kColumns> spill_paths_;
  std::array<std::ofstream, kColumns> spills_;
  std::array<std::uint64_t, kColumns> column_fnv_;
};

/// True when `path` already holds a valid `.mpc` file whose content
/// fingerprint (header counts + all five section sizes and FNV-1a
/// checksums, i.e. the exact header/directory image WriteColumnar would
/// produce) matches `store` — publishing `store` over it would be a
/// byte-identical no-op. Never throws: unreadable, missing or corrupt
/// files simply compare unequal. Cost is O(store) hashing + a 224-byte
/// read; the existing file's payload is not read.
[[nodiscard]] bool ColumnarFileMatches(const EventStore& store,
                                       const std::string& path) noexcept;

}  // namespace mobipriv::model
