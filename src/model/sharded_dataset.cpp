#include "model/sharded_dataset.h"

#include <cstdint>

namespace mobipriv::model {

ShardedDataset::ShardedDataset(std::size_t shard_count)
    : shards_(shard_count == 0 ? 1 : shard_count) {}

std::size_t ShardedDataset::ShardOfUser(std::string_view user_name,
                                        std::size_t shard_count) {
  if (shard_count <= 1) return 0;
  // FNV-1a, 64-bit: stable across platforms and standard libraries (unlike
  // std::hash), so shard assignment is part of the format, not the build.
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : user_name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h % shard_count);
}

ShardedDataset ShardedDataset::Partition(const Dataset& dataset,
                                         std::size_t shard_count) {
  ShardedDataset out(shard_count);
  out.origin_.resize(out.shards_.size());

  // Global name table in the input's id order; every user is interned into
  // its home shard up front (users without traces must survive the round
  // trip too).
  out.global_names_.reserve(dataset.UserCount());
  for (UserId id = 0; id < dataset.UserCount(); ++id) {
    const std::string name = dataset.UserName(id);
    out.shards_[ShardOfUser(name, out.shards_.size())].InternUser(name);
    out.global_names_.push_back(name);
  }

  const auto& traces = dataset.traces();
  for (std::size_t t = 0; t < traces.size(); ++t) {
    const Trace& trace = traces[t];
    const std::string name = dataset.UserName(trace.user());
    const std::size_t s = ShardOfUser(name, out.shards_.size());
    Dataset& shard = out.shards_[s];
    Trace local = trace;  // copy; shard-local user id
    local.set_user(shard.InternUser(name));
    shard.AddTrace(std::move(local));
    out.origin_[s].push_back(t);
  }
  return out;
}

Dataset ShardedDataset::Merge() const {
  Dataset out;
  for (const std::string& name : global_names_) out.InternUser(name);

  // The recorded original order applies only while shard contents still
  // match it (Partition-fresh); otherwise concatenate shard by shard.
  bool origin_valid = origin_.size() == shards_.size();
  for (std::size_t s = 0; origin_valid && s < shards_.size(); ++s) {
    origin_valid = origin_[s].size() == shards_[s].TraceCount();
  }

  const auto append = [&out](const Dataset& shard, const Trace& trace) {
    Trace global = trace;
    global.set_user(out.InternUser(shard.UserName(trace.user())));
    out.AddTrace(std::move(global));
  };

  if (origin_valid) {
    std::size_t total = 0;
    for (const auto& o : origin_) total += o.size();
    // Original position -> (shard, local index).
    std::vector<std::pair<std::uint32_t, std::size_t>> order(total);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      for (std::size_t i = 0; i < origin_[s].size(); ++i) {
        order[origin_[s][i]] = {static_cast<std::uint32_t>(s), i};
      }
    }
    for (const auto& [s, i] : order) {
      append(shards_[s], shards_[s].traces()[i]);
    }
    return out;
  }
  for (const Dataset& shard : shards_) {
    for (const Trace& trace : shard.traces()) append(shard, trace);
  }
  return out;
}

ShardedDataset ShardedDataset::EmptyLike() const {
  ShardedDataset out(shards_.size());
  out.global_names_ = global_names_;
  return out;
}

std::size_t ShardedDataset::TraceCount() const noexcept {
  std::size_t total = 0;
  for (const Dataset& shard : shards_) total += shard.TraceCount();
  return total;
}

std::size_t ShardedDataset::EventCount() const noexcept {
  std::size_t total = 0;
  for (const Dataset& shard : shards_) total += shard.EventCount();
  return total;
}

}  // namespace mobipriv::model
