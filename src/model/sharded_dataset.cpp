#include "model/sharded_dataset.h"

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "model/atomic_file.h"
#include "model/columnar_append.h"
#include "model/columnar_file.h"
#include "model/event_store.h"
#include "util/fault.h"

namespace mobipriv::model {

namespace {

namespace fault = util::fault;

constexpr std::size_t kManifestHeaderSize = 48;
constexpr std::uint32_t kManifestFlagHasOrigin = 1u;
// Backstop against a corrupt shard count driving a huge open loop; far
// above any deployment's process count.
constexpr std::uint64_t kMaxShardCount = 1u << 20;

using detail::GetU32;
using detail::GetU64;
using detail::PutU32;
using detail::PutU64;

constexpr std::size_t AlignUp8(std::size_t x) { return (x + 7) & ~std::size_t{7}; }

std::string ShardFileName(std::size_t shard) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%05zu.mpc", shard);
  return buf;
}

std::filesystem::path ManifestPath(const std::string& dir) {
  return std::filesystem::path(dir) / "manifest.mpm";
}

[[noreturn]] void CorruptManifest(const std::string& dir,
                                  const std::string& what) {
  throw IoError("shard manifest in " + dir + ": " + what);
}

}  // namespace

ShardedDataset::ShardedDataset(std::size_t shard_count)
    : shards_(shard_count == 0 ? 1 : shard_count) {}

std::size_t ShardedDataset::ShardOfUser(std::string_view user_name,
                                        std::size_t shard_count) {
  if (shard_count <= 1) return 0;
  // FNV-1a, 64-bit: stable across platforms and standard libraries (unlike
  // std::hash), so shard assignment is part of the format, not the build —
  // the same Fnv1a64 the columnar container uses for its checksums.
  return static_cast<std::size_t>(
      Fnv1a64(user_name.data(), user_name.size()) % shard_count);
}

ShardedDataset ShardedDataset::Partition(const Dataset& dataset,
                                         std::size_t shard_count) {
  ShardedDataset out(shard_count);
  out.origin_.resize(out.shards_.size());

  // Global name table in the input's id order; every user is interned into
  // its home shard up front (users without traces must survive the round
  // trip too).
  out.global_names_.reserve(dataset.UserCount());
  for (UserId id = 0; id < dataset.UserCount(); ++id) {
    const std::string name = dataset.UserName(id);
    out.shards_[ShardOfUser(name, out.shards_.size())].InternUser(name);
    out.global_names_.push_back(name);
  }

  const auto& traces = dataset.traces();
  for (std::size_t t = 0; t < traces.size(); ++t) {
    const Trace& trace = traces[t];
    const std::string name = dataset.UserName(trace.user());
    const std::size_t s = ShardOfUser(name, out.shards_.size());
    Dataset& shard = out.shards_[s];
    Trace local = trace;  // copy; shard-local user id
    local.set_user(shard.InternUser(name));
    shard.AddTrace(std::move(local));
    out.origin_[s].push_back(t);
  }
  return out;
}

Dataset ShardedDataset::Merge() const {
  Dataset out;
  for (const std::string& name : global_names_) out.InternUser(name);

  // The recorded original order applies only while shard contents still
  // match it (Partition-fresh); otherwise concatenate shard by shard.
  bool origin_valid = origin_.size() == shards_.size();
  for (std::size_t s = 0; origin_valid && s < shards_.size(); ++s) {
    origin_valid = origin_[s].size() == shards_[s].TraceCount();
  }

  const auto append = [&out](const Dataset& shard, const Trace& trace) {
    Trace global = trace;
    global.set_user(out.InternUser(shard.UserName(trace.user())));
    out.AddTrace(std::move(global));
  };

  if (origin_valid) {
    std::size_t total = 0;
    for (const auto& o : origin_) total += o.size();
    // Original position -> (shard, local index).
    std::vector<std::pair<std::uint32_t, std::size_t>> order(total);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      for (std::size_t i = 0; i < origin_[s].size(); ++i) {
        order[origin_[s][i]] = {static_cast<std::uint32_t>(s), i};
      }
    }
    for (const auto& [s, i] : order) {
      append(shards_[s], shards_[s].traces()[i]);
    }
    return out;
  }
  for (const Dataset& shard : shards_) {
    for (const Trace& trace : shard.traces()) append(shard, trace);
  }
  return out;
}

ShardedDataset ShardedDataset::EmptyLike() const {
  ShardedDataset out(shards_.size());
  out.global_names_ = global_names_;
  return out;
}

std::size_t ShardedDataset::TraceCount() const noexcept {
  std::size_t total = 0;
  for (const Dataset& shard : shards_) total += shard.TraceCount();
  return total;
}

std::size_t ShardedDataset::EventCount() const noexcept {
  std::size_t total = 0;
  for (const Dataset& shard : shards_) total += shard.EventCount();
  return total;
}

void ShardedDataset::SaveShards(const std::string& dir,
                                SaveStats* stats) const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) throw IoError("cannot create shard directory " + dir);

  // Shard files are independent; serialize them concurrently (the pool
  // rethrows the first failure). A shard whose content fingerprint
  // already matches the published file is skipped outright — incremental
  // runs that touched one shard republish one file, not the directory.
  std::atomic<std::size_t> written{0};
  std::atomic<std::size_t> skipped{0};
  util::ParallelForEach(shards_.size(), [&](std::size_t s) {
    const EventStore store = EventStore::FromDataset(shards_[s]);
    const std::string path = (fs::path(dir) / ShardFileName(s)).string();
    if (ColumnarFileMatches(store, path)) {
      skipped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    WriteColumnar(store, path);
    written.fetch_add(1, std::memory_order_relaxed);
  });
  if (stats != nullptr) {
    stats->shards_written = written.load(std::memory_order_relaxed);
    stats->shards_skipped = skipped.load(std::memory_order_relaxed);
  }

  // The recorded original order is persisted only while it still matches
  // the shard contents (same condition Merge applies).
  bool has_origin = origin_.size() == shards_.size();
  for (std::size_t s = 0; has_origin && s < shards_.size(); ++s) {
    has_origin = origin_[s].size() == shards_[s].TraceCount();
  }
  WriteShardManifest(dir, shards_.size(), global_names_,
                     has_origin ? std::span<const std::vector<std::size_t>>(
                                      origin_)
                                : std::span<const std::vector<std::size_t>>());
}

void WriteShardManifest(const std::string& dir, std::size_t shard_count,
                        std::span<const std::string> global_names,
                        std::span<const std::vector<std::size_t>> origin) {
  const bool has_origin = !origin.empty();
  if (has_origin && origin.size() != shard_count) {
    throw IoError("shard manifest origin runs disagree with shard count");
  }

  // Payload: name table (offsets + blob, zero-padded to 8 bytes), then —
  // when present — per-shard origin runs (u64 count + count u64 indices).
  const std::vector<std::byte> name_table =
      detail::EncodeNameTable(global_names);
  std::size_t payload_size = AlignUp8(name_table.size());
  if (has_origin) {
    for (const auto& o : origin) payload_size += 8 + o.size() * 8;
  }

  std::vector<std::byte> payload(payload_size, std::byte{0});
  std::memcpy(payload.data(), name_table.data(), name_table.size());
  if (has_origin) {
    std::byte* p = payload.data() + AlignUp8(name_table.size());
    for (const auto& o : origin) {
      PutU64(p, o.size());
      p += 8;
      for (const std::size_t index : o) {
        PutU64(p, index);
        p += 8;
      }
    }
  }

  std::vector<std::byte> head(kManifestHeaderSize, std::byte{0});
  std::memcpy(head.data(), kManifestMagic.data(), kManifestMagic.size());
  PutU32(head.data() + 8, kColumnarFormatVersion);
  PutU32(head.data() + 12, has_origin ? kManifestFlagHasOrigin : 0u);
  PutU64(head.data() + 16, shard_count);
  PutU64(head.data() + 24, global_names.size());
  PutU64(head.data() + 32, payload.size());
  PutU64(head.data() + 40, Fnv1a64(payload.data(), payload.size()));

  // Crash-safe publication (docs/ROBUSTNESS.md): the manifest is the
  // directory's commit marker — writing it last, atomically, means a
  // crash mid-save leaves either the previous manifest (old partition
  // still opens) or no manifest (open fails cleanly), never a torn one.
  const std::string manifest = ManifestPath(dir).string();
  const std::span<const std::byte> parts[] = {
      {head.data(), head.size()}, {payload.data(), payload.size()}};
  WriteFileAtomic(manifest, parts,
                  {.open = fault::points::kManifestWriteOpen,
                   .write = fault::points::kManifestWriteShort,
                   .commit = fault::points::kManifestWriteCommit});
}

void MergeShardManifests(const std::string& dir, std::size_t shard_count) {
  if (shard_count == 0 || shard_count > kMaxShardCount) {
    throw IoError("cannot merge manifests in " + dir +
                  ": implausible shard count " + std::to_string(shard_count));
  }
  // Union of the shard name tables in (shard, local id) order. Mapped
  // open: the name/trace metadata is decoded eagerly but the column
  // payloads are never faulted in, so merging a terabyte directory reads
  // kilobytes. A name appearing in several shards is kept once (first
  // sighting) — OpenShards interns shard-locally, so duplicates only
  // denote the same external user.
  std::vector<std::string> global_names;
  std::unordered_set<std::string_view> seen;
  std::vector<std::vector<std::string>> shard_names(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    const MappedColumnar mapped = MapColumnar(ShardDataPath(dir, s));
    shard_names[s].assign(mapped.names().begin(), mapped.names().end());
  }
  for (const auto& names : shard_names) {
    for (const std::string& name : names) {
      if (seen.insert(name).second) global_names.push_back(name);
    }
  }
  WriteShardManifest(dir, shard_count, global_names);
}

ShardedDataset ShardedDataset::OpenShards(const std::string& dir) {
  return OpenShardsImpl(dir, nullptr, OpenPolicy::kFailFast, nullptr);
}

ShardedDataset ShardedDataset::OpenShards(
    const std::string& dir, const std::vector<std::size_t>& only) {
  return OpenShardsImpl(dir, &only, OpenPolicy::kFailFast, nullptr);
}

ShardedDataset ShardedDataset::OpenShards(const std::string& dir,
                                          OpenPolicy policy,
                                          OpenReport* report) {
  return OpenShardsImpl(dir, nullptr, policy, report);
}

ShardManifest ReadShardManifest(const std::string& dir) {
  const std::string manifest = ManifestPath(dir).string();
  if (MOBIPRIV_FAULT_POINT(fault::points::kManifestReadOpen)) {
    throw IoError("injected fault (" +
                  std::string(fault::points::kManifestReadOpen) +
                  "): cannot open " + manifest);
  }
  std::ifstream in(manifest, std::ios::binary);
  if (!in) throw IoError("cannot open " + manifest);
  in.seekg(0, std::ios::end);
  const std::streamoff len = in.tellg();
  in.seekg(0);
  if (len < static_cast<std::streamoff>(kManifestHeaderSize)) {
    CorruptManifest(dir, "shorter than the 48-byte header");
  }
  std::vector<std::byte> bytes(static_cast<std::size_t>(len));
  if (!in.read(reinterpret_cast<char*>(bytes.data()), len)) {
    throw IoError("cannot read " + manifest);
  }

  if (std::memcmp(bytes.data(), kManifestMagic.data(),
                  kManifestMagic.size()) != 0) {
    CorruptManifest(dir, "bad magic (not a .mpm manifest)");
  }
  const std::uint32_t version = GetU32(bytes.data() + 8);
  if (version != kColumnarFormatVersion) {
    CorruptManifest(dir, "unsupported version " + std::to_string(version));
  }
  const std::uint32_t flags = GetU32(bytes.data() + 12);
  if ((flags & ~kManifestFlagHasOrigin) != 0) {
    CorruptManifest(dir, "unknown flag bits set");
  }
  const std::uint64_t shard_count = GetU64(bytes.data() + 16);
  const std::uint64_t user_count = GetU64(bytes.data() + 24);
  const std::uint64_t payload_size = GetU64(bytes.data() + 32);
  if (shard_count == 0 || shard_count > kMaxShardCount) {
    CorruptManifest(dir, "implausible shard count");
  }
  if (payload_size != bytes.size() - kManifestHeaderSize) {
    CorruptManifest(dir, "payload size disagrees with file size");
  }
  const std::byte* payload = bytes.data() + kManifestHeaderSize;
  if (GetU64(bytes.data() + 40) != Fnv1a64(payload, payload_size)) {
    CorruptManifest(dir, "payload checksum mismatch");
  }

  ShardManifest out;
  out.shard_count = static_cast<std::size_t>(shard_count);

  // Name table (shared codec with the .mpc NAME section).
  std::size_t names_consumed = 0;
  out.global_names = detail::DecodeNameTable(
      payload, payload_size, user_count, &names_consumed,
      "shard manifest in " + dir);

  if ((flags & kManifestFlagHasOrigin) != 0) {
    std::size_t cursor = AlignUp8(names_consumed);
    std::vector<std::vector<std::size_t>> origin(out.shard_count);
    std::size_t total = 0;
    for (std::size_t s = 0; s < out.shard_count; ++s) {
      if (payload_size - cursor < 8) {
        CorruptManifest(dir, "origin table truncated");
      }
      const std::uint64_t count = GetU64(payload + cursor);
      cursor += 8;
      if (count > (payload_size - cursor) / 8) {
        CorruptManifest(dir, "origin table truncated");
      }
      origin[s].reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        origin[s].push_back(
            static_cast<std::size_t>(GetU64(payload + cursor)));
        cursor += 8;
      }
      total += static_cast<std::size_t>(count);
    }
    // The indices must form a permutation of [0, total) or origin-order
    // replay would read out of bounds on a corrupt manifest.
    std::vector<bool> seen(total, false);
    for (const auto& o : origin) {
      for (const std::size_t index : o) {
        if (index >= total || seen[index]) {
          CorruptManifest(dir, "origin indices are not a permutation");
        }
        seen[index] = true;
      }
    }
    out.origin = std::move(origin);
  }
  return out;
}

std::string ShardDataPath(const std::string& dir, std::size_t shard) {
  return (std::filesystem::path(dir) / ShardFileName(shard)).string();
}

ShardedDataset ShardedDataset::OpenShardsImpl(
    const std::string& dir, const std::vector<std::size_t>* only,
    OpenPolicy policy, OpenReport* report) {
  ShardManifest manifest = ReadShardManifest(dir);

  ShardedDataset out(manifest.shard_count);
  out.global_names_ = std::move(manifest.global_names);

  // Which shards to materialize (nullptr = all of them).
  std::vector<bool> load(out.shards_.size(), only == nullptr);
  if (only != nullptr) {
    for (const std::size_t s : *only) {
      if (s >= out.shards_.size()) {
        throw IoError("shard index " + std::to_string(s) +
                      " out of range for " + dir);
      }
      load[s] = true;
    }
  }
  // Shard files are independent; parse them concurrently into their
  // pre-sized slots. kFailFast: the pool rethrows the first failure.
  // kSkipCorrupt: failures land in per-slot error strings — healthy
  // shards finish loading, and the quarantine record below is assembled
  // in shard order, so the outcome is identical at any worker count.
  std::vector<std::string> shard_errors(out.shards_.size());
  std::vector<bool> shard_failed(out.shards_.size(), false);
  util::ParallelForEach(out.shards_.size(), [&](std::size_t s) {
    if (!load[s]) return;
    const std::string shard_path = ShardDataPath(dir, s);
    try {
      if (MOBIPRIV_FAULT_POINT_KEYED(fault::points::kShardOpenRead,
                                     ShardFileName(s))) {
        throw IoError("injected fault (" +
                      std::string(fault::points::kShardOpenRead) + "): " +
                      shard_path);
      }
      out.shards_[s] = ReadColumnar(shard_path).ToDataset();
    } catch (const IoError& e) {
      if (policy == OpenPolicy::kFailFast) throw;
      shard_failed[s] = true;
      // Every quarantine record leads with the failing shard FILE name so
      // downstream report columns (and the worker supervisor's forwarded
      // errors) identify the bad file even when the IoError text carries
      // only an OS-level cause.
      shard_errors[s] = ShardFileName(s) + ": " + e.what();
    }
  });
  bool any_skipped = false;
  for (std::size_t s = 0; s < out.shards_.size(); ++s) {
    if (!shard_failed[s]) continue;
    any_skipped = true;
    // A quarantined shard keeps the global name table but loses its
    // traces; interning nothing here is intentional — UserCount() and
    // Merge() stay consistent with what actually loaded.
    out.shards_[s] = Dataset();
    if (report != nullptr) {
      report->skipped_shards.push_back(s);
      report->errors.push_back(shard_errors[s]);
    }
  }

  // The recorded original order only survives a full, complete open:
  // with shards missing or quarantined, Merge must fall back to
  // concatenating what was loaded.
  if (manifest.has_origin() && only == nullptr && !any_skipped) {
    for (std::size_t s = 0; s < out.shards_.size(); ++s) {
      if (manifest.origin[s].size() != out.shards_[s].TraceCount()) {
        CorruptManifest(dir, "origin run disagrees with shard trace count");
      }
    }
    out.origin_ = std::move(manifest.origin);
  }
  return out;
}

}  // namespace mobipriv::model
