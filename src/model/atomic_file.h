// Crash-safe file publication: the atomic-commit protocol every on-disk
// artifact (`.mpc` containers, shard manifests, engine cache sidecars)
// goes through.
//
// The problem: a plain `ofstream(path)` that dies mid-write — process
// crash, injected fault, full disk — leaves a torn file at its FINAL
// name, and the next reader sees garbage (at best a checksum error, at
// worst silent truncation accepted by a lenient parser). The fix is the
// classic commit protocol:
//
//   1. write the full payload to a writer-unique temp name in the SAME
//      directory (`<final>.<pid>.<n>.tmp` — same filesystem, so rename
//      is atomic);
//   2. flush + fsync the temp file (the bytes are durable before any
//      name points at them);
//   3. rename(temp, final) — POSIX guarantees readers see either the old
//      file or the complete new one, never a mixture;
//   4. fsync the directory (the rename itself is durable).
//
// On ANY failure the temp file is unlinked and IoError is thrown; the
// final path is untouched. A crash between (1) and (3) leaves only a
// `*.tmp` stray that no reader ever opens (readers open exact final
// names). docs/ROBUSTNESS.md documents the protocol; the fault-matrix
// test drives every failure edge.
//
// Fault injection: callers pass a `FaultPoints` triple naming the
// injection points for open / short-write / commit so each writer keeps
// its own identity in the fault table ("columnar.write.short" vs
// "manifest.write.short").
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "model/io.h"

namespace mobipriv::model {

/// Injection-point names for one atomic write (see util/fault.h). Empty
/// views disable injection for that edge.
struct AtomicWriteFaultPoints {
  std::string_view open;   ///< evaluated before the temp file is created
  std::string_view write;  ///< short-write capable (honors Decision::io_cap)
  std::string_view commit; ///< evaluated before the rename
};

/// Streaming flavour of the commit protocol: open the temp in the
/// constructor, Append() payload bytes in as many calls as the producer
/// likes (an appender flushing bounded chunks never holds the whole file),
/// then Commit() runs fsync → rename → dir-fsync. Observable behaviour —
/// fault evaluation order, error messages, torn-temp shapes — is
/// byte-identical to the one-shot WriteFileAtomic below, which is now a
/// thin wrapper over this class.
///
/// If the writer is destroyed (or Abort()ed) before Commit(), the temp is
/// unlinked and the final path is untouched.
class AtomicFileWriter {
 public:
  /// Evaluates the open/write fault points and creates the temp file.
  /// Throws IoError on an injected open fault or a real open failure.
  AtomicFileWriter(std::string path, const AtomicWriteFaultPoints& faults = {});
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Appends `size` bytes to the temp file. Honors an injected short-write
  /// cap (bytes past the cap are silently dropped; the failure itself is
  /// reported by Commit(), matching the one-shot protocol). Throws IoError
  /// on a real write failure (the temp is cleaned up).
  void Append(const void* data, std::size_t size);
  void Append(std::span<const std::byte> bytes) {
    Append(bytes.data(), bytes.size());
  }

  /// Total bytes accepted so far (capped bytes count as accepted).
  [[nodiscard]] std::size_t BytesAppended() const noexcept {
    return appended_total_;
  }

  /// Fsync + atomic rename to the final path. Throws IoError if a short
  /// write was injected, on an injected commit fault, or on a real
  /// fsync/close/rename failure; in every failure case the temp is
  /// removed and the final path keeps its previous content.
  void Commit();

  /// Removes the temp file without publishing. Safe to call repeatedly
  /// and after Commit() (no-op then).
  void Abort() noexcept;

 private:
  [[noreturn]] void FailCleanup(const std::string& message);

  std::string path_;
  std::string temp_;
  std::string write_point_;
  std::string commit_point_;
  std::size_t io_cap_;
  std::size_t written_total_ = 0;   // bytes actually written to the temp
  std::size_t appended_total_ = 0;  // bytes offered by the caller
  bool injected_short_ = false;
  bool faults_on_ = false;
  bool done_ = false;  // committed or aborted
  int fd_ = -1;
  std::vector<std::byte> fallback_buffer_;  // non-POSIX path only
};

/// Writes the concatenation of `parts` to `path` via the temp-file →
/// fsync → atomic-rename protocol above. Throws IoError on any failure
/// (the temp is cleaned up; `path` keeps its previous content, if any).
void WriteFileAtomic(const std::string& path,
                     std::span<const std::span<const std::byte>> parts,
                     const AtomicWriteFaultPoints& faults = {});

/// Single-buffer convenience overload.
void WriteFileAtomic(const std::string& path, const void* data,
                     std::size_t size,
                     const AtomicWriteFaultPoints& faults = {});

}  // namespace mobipriv::model
