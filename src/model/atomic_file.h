// Crash-safe file publication: the atomic-commit protocol every on-disk
// artifact (`.mpc` containers, shard manifests, engine cache sidecars)
// goes through.
//
// The problem: a plain `ofstream(path)` that dies mid-write — process
// crash, injected fault, full disk — leaves a torn file at its FINAL
// name, and the next reader sees garbage (at best a checksum error, at
// worst silent truncation accepted by a lenient parser). The fix is the
// classic commit protocol:
//
//   1. write the full payload to a writer-unique temp name in the SAME
//      directory (`<final>.<pid>.<n>.tmp` — same filesystem, so rename
//      is atomic);
//   2. flush + fsync the temp file (the bytes are durable before any
//      name points at them);
//   3. rename(temp, final) — POSIX guarantees readers see either the old
//      file or the complete new one, never a mixture;
//   4. fsync the directory (the rename itself is durable).
//
// On ANY failure the temp file is unlinked and IoError is thrown; the
// final path is untouched. A crash between (1) and (3) leaves only a
// `*.tmp` stray that no reader ever opens (readers open exact final
// names). docs/ROBUSTNESS.md documents the protocol; the fault-matrix
// test drives every failure edge.
//
// Fault injection: callers pass a `FaultPoints` triple naming the
// injection points for open / short-write / commit so each writer keeps
// its own identity in the fault table ("columnar.write.short" vs
// "manifest.write.short").
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>

#include "model/io.h"

namespace mobipriv::model {

/// Injection-point names for one atomic write (see util/fault.h). Empty
/// views disable injection for that edge.
struct AtomicWriteFaultPoints {
  std::string_view open;   ///< evaluated before the temp file is created
  std::string_view write;  ///< short-write capable (honors Decision::io_cap)
  std::string_view commit; ///< evaluated before the rename
};

/// Writes the concatenation of `parts` to `path` via the temp-file →
/// fsync → atomic-rename protocol above. Throws IoError on any failure
/// (the temp is cleaned up; `path` keeps its previous content, if any).
void WriteFileAtomic(const std::string& path,
                     std::span<const std::span<const std::byte>> parts,
                     const AtomicWriteFaultPoints& faults = {});

/// Single-buffer convenience overload.
void WriteFileAtomic(const std::string& path, const void* data,
                     std::size_t size,
                     const AtomicWriteFaultPoints& faults = {});

}  // namespace mobipriv::model
