#include "model/filters.h"

#include <algorithm>
#include <cassert>

namespace mobipriv::model {

std::vector<Trace> SplitByGap(const Trace& trace,
                              util::Timestamp max_gap_seconds,
                              std::size_t min_events) {
  assert(max_gap_seconds > 0);
  std::vector<Trace> pieces;
  Trace current;
  current.set_user(trace.user());
  for (const auto& event : trace) {
    if (!current.empty() &&
        event.time - current.back().time > max_gap_seconds) {
      if (current.size() >= min_events) pieces.push_back(std::move(current));
      current = Trace();
      current.set_user(trace.user());
    }
    current.Append(event);
  }
  if (current.size() >= min_events) pieces.push_back(std::move(current));
  return pieces;
}

Dataset SplitDatasetByGap(const Dataset& dataset,
                          util::Timestamp max_gap_seconds,
                          std::size_t min_events) {
  Dataset out;
  for (const auto& trace : dataset.traces()) {
    // Preserve the user-name mapping.
    const UserId id = out.InternUser(dataset.UserName(trace.user()));
    for (auto& piece : SplitByGap(trace, max_gap_seconds, min_events)) {
      piece.set_user(id);
      out.AddTrace(std::move(piece));
    }
  }
  return out;
}

Trace DeduplicateTimes(const Trace& trace) {
  Trace out;
  out.set_user(trace.user());
  for (const auto& event : trace) {
    if (out.empty() || event.time != out.back().time) out.Append(event);
  }
  return out;
}

Trace RemoveSpeedOutliers(const Trace& trace, double max_speed_mps) {
  assert(max_speed_mps > 0.0);
  Trace out;
  out.set_user(trace.user());
  for (const auto& event : trace) {
    if (out.empty()) {
      out.Append(event);
      continue;
    }
    const auto dt = event.time - out.back().time;
    if (dt <= 0) continue;  // simultaneous/backwards fix: drop
    const double dist =
        geo::HaversineDistance(out.back().position, event.position);
    if (dist / static_cast<double>(dt) <= max_speed_mps) out.Append(event);
  }
  return out;
}

geo::LatLng InterpolateAt(const Trace& trace, util::Timestamp t) {
  assert(!trace.empty());
  const auto& events = trace.events();
  if (t <= events.front().time) return events.front().position;
  if (t >= events.back().time) return events.back().position;
  // First event with time >= t (exists: t < back().time).
  const auto it = std::lower_bound(
      events.begin(), events.end(), t,
      [](const Event& e, util::Timestamp value) { return e.time < value; });
  const auto& after = *it;
  const auto& before = *(it - 1);
  if (after.time == before.time) return before.position;
  const double alpha = static_cast<double>(t - before.time) /
                       static_cast<double>(after.time - before.time);
  return geo::LatLng{
      before.position.lat +
          (after.position.lat - before.position.lat) * alpha,
      before.position.lng +
          (after.position.lng - before.position.lng) * alpha};
}

Trace ResampleTime(const Trace& trace, util::Timestamp step_seconds) {
  assert(step_seconds > 0);
  if (trace.size() < 2) return trace;
  Trace out;
  out.set_user(trace.user());
  const util::Timestamp t0 = trace.front().time;
  const util::Timestamp t_end = trace.back().time;
  for (util::Timestamp t = t0; t <= t_end; t += step_seconds) {
    out.Append(Event{InterpolateAt(trace, t), t});
  }
  // Always retain the final fix so the trace spans the full interval.
  if (out.back().time != t_end) {
    out.Append(Event{trace.back().position, t_end});
  }
  return out;
}

}  // namespace mobipriv::model
