// Sharded datasets: the unit of horizontal scale-out.
//
// A ShardedDataset partitions a dataset's *users* across N shards with a
// stable assignment (FNV-1a of the external user name, modulo shard count),
// so every trace of one user — across files, days and re-ingestions — lands
// in the same shard. Shard-local user ids are dense per shard; the global
// name table is retained so shards merge back under the original ids.
//
// Contracts:
//   * Partition is pure bookkeeping: Partition(d, k).Merge() == d exactly,
//     for any k >= 1 (Merge replays the recorded original trace order).
//   * The assignment depends only on (user name, shard count) — never on
//     worker count, ingestion chunking or trace order — so sharded
//     ingestion is deterministic by construction.
//
// Shard-wise pipeline runs (core::Anonymizer::ApplySharded) process each
// shard independently; this is the in-process form of the multi-process /
// NUMA sharding the roadmap targets — the shard boundary is already the
// process boundary, one serialization step away.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "model/dataset.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace mobipriv::model {

class ShardedDataset {
 public:
  ShardedDataset() = default;
  explicit ShardedDataset(std::size_t shard_count);

  /// Stable shard assignment: FNV-1a 64-bit hash of the user name modulo
  /// `shard_count`. Pure function of its arguments (platform independent).
  [[nodiscard]] static std::size_t ShardOfUser(std::string_view user_name,
                                               std::size_t shard_count);

  /// Partitions `dataset` by user. Trace order within each shard follows
  /// the input's trace order; the original global position of every trace
  /// is recorded so Merge() can reproduce `dataset` exactly.
  [[nodiscard]] static ShardedDataset Partition(const Dataset& dataset,
                                                std::size_t shard_count);

  /// Inverse of Partition: byte-identical to the partitioned dataset.
  /// For sharded datasets whose shards were rebuilt (e.g. by a shard-wise
  /// mechanism run) the recorded order no longer applies; traces then
  /// concatenate in (shard, local index) order — still deterministic.
  [[nodiscard]] Dataset Merge() const;

  /// Empty sharded dataset with the same shard count and global name table
  /// (the shape shard-wise transforms write their outputs into).
  [[nodiscard]] ShardedDataset EmptyLike() const;

  /// What one SaveShards call actually touched. Unchanged shards are
  /// detected by content fingerprint (ColumnarFileMatches) and skipped —
  /// an incremental run that appended to one shard republishes one file,
  /// not the whole directory.
  struct SaveStats {
    std::size_t shards_written = 0;
    std::size_t shards_skipped = 0;  ///< fingerprint matched the existing file
  };

  /// Persists the partition: one columnar file per shard
  /// (`shard-00000.mpc`, ... — see docs/FORMAT.md) plus `manifest.mpm`
  /// (shard count, global name table, and — when still valid — the
  /// original trace order so OpenShards().Merge() reproduces the
  /// partitioned dataset exactly). Shards whose on-disk content already
  /// matches are left untouched (see SaveStats). Creates `dir` if
  /// missing; throws model::IoError on any filesystem failure.
  void SaveShards(const std::string& dir, SaveStats* stats = nullptr) const;

  /// Opens a directory written by SaveShards. Restores shard count,
  /// global names, every shard's contents and (when recorded) the
  /// original trace order: OpenShards(Save(sd)).Merge() == sd.Merge().
  /// Throws model::IoError on corruption (bad magic/version/checksum,
  /// missing shard files, inconsistent origin table).
  [[nodiscard]] static ShardedDataset OpenShards(const std::string& dir);

  /// As OpenShards, but loads only the shard indices in `only` — the
  /// per-process worker entry point: each worker opens just the shards it
  /// owns; the rest stay empty. The recorded original order is dropped
  /// (Merge concatenates the loaded shards in shard order). Indices must
  /// be < the saved shard count.
  [[nodiscard]] static ShardedDataset OpenShards(
      const std::string& dir, const std::vector<std::size_t>& only);

  /// What OpenShards does with a shard file that fails to load (missing,
  /// truncated, checksum mismatch).
  enum class OpenPolicy {
    /// Default: the first corrupt shard aborts the whole open (IoError).
    kFailFast,
    /// Graceful degradation: corrupt shards are quarantined — recorded in
    /// the OpenReport, left empty in the result — and every healthy shard
    /// still loads. The recorded original trace order is dropped whenever
    /// anything was skipped (Merge falls back to shard-order concat).
    kSkipCorrupt,
  };

  /// Quarantine record of one OpenShards call (parallel vectors, shard
  /// index ascending — deterministic at any worker count).
  struct OpenReport {
    std::vector<std::size_t> skipped_shards;
    std::vector<std::string> errors;  ///< IoError text per skipped shard
    [[nodiscard]] bool ok() const noexcept { return skipped_shards.empty(); }
  };

  /// Policy-explicit open. With kFailFast this is OpenShards(dir); with
  /// kSkipCorrupt it survives corrupt shard files and records them in
  /// `report` (optional). The manifest itself must always be healthy —
  /// without it there is no shard count or name table to degrade onto.
  [[nodiscard]] static ShardedDataset OpenShards(const std::string& dir,
                                                OpenPolicy policy,
                                                OpenReport* report = nullptr);

  [[nodiscard]] std::size_t ShardCount() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] const Dataset& shard(std::size_t i) const {
    return shards_[i];
  }
  /// Replacing a shard's contents invalidates the recorded original order
  /// (Merge falls back to shard-order concatenation).
  [[nodiscard]] Dataset& mutable_shard(std::size_t i) {
    origin_.clear();
    return shards_[i];
  }

  [[nodiscard]] std::size_t TraceCount() const noexcept;
  [[nodiscard]] std::size_t EventCount() const noexcept;
  /// Number of users in the global name table.
  [[nodiscard]] std::size_t UserCount() const noexcept {
    return global_names_.size();
  }
  [[nodiscard]] const std::vector<std::string>& global_names() const noexcept {
    return global_names_;
  }

 private:
  // Shared loader behind every OpenShards overload (nullptr = all shards).
  [[nodiscard]] static ShardedDataset OpenShardsImpl(
      const std::string& dir, const std::vector<std::size_t>* only,
      OpenPolicy policy, OpenReport* report);

  std::vector<Dataset> shards_;
  // Original global trace index of shard s's local trace i (recorded by
  // Partition, cleared by mutable_shard). Valid only while every shard's
  // trace count matches the record.
  std::vector<std::vector<std::size_t>> origin_;
  std::vector<std::string> global_names_;  // global dense id -> name
};

/// Decoded `manifest.mpm` metadata of a shard directory: everything a
/// per-process worker (or the scenario engine's mmap-fed shard source)
/// needs to know before touching any shard file.
struct ShardManifest {
  std::size_t shard_count = 0;
  /// Global dense id -> external user name (the id space shards merge
  /// back into).
  std::vector<std::string> global_names;
  /// Original global trace index of shard s's local trace i, when the
  /// save recorded it (empty otherwise). Validated as a permutation of
  /// [0, total); per-shard counts are validated against shard contents
  /// only when the shards themselves load.
  std::vector<std::vector<std::size_t>> origin;

  [[nodiscard]] bool has_origin() const noexcept { return !origin.empty(); }
};

/// Reads and validates `dir`/manifest.mpm without opening any shard file.
/// Throws IoError on corruption (bad magic/version/checksum, non-permutation
/// origin table).
[[nodiscard]] ShardManifest ReadShardManifest(const std::string& dir);

/// Writes `dir`/manifest.mpm (crash-safe: the manifest is the directory's
/// commit marker, published atomically and last). `origin` — one run of
/// original global trace indices per shard — may be empty to record no
/// origin order, in which case OpenShards().Merge() concatenates in
/// (shard, local index) order. Every SaveShards-directory producer
/// (SaveShards itself, manifest merge, the streaming world generator)
/// funnels through this one encoder. Throws IoError on failure.
void WriteShardManifest(const std::string& dir, std::size_t shard_count,
                        std::span<const std::string> global_names,
                        std::span<const std::vector<std::size_t>> origin = {});

/// Builds `dir`/manifest.mpm from shard files written independently (e.g.
/// one ColumnarAppender per shard): opens `shard-00000.mpc` ..
/// `shard-<n-1>.mpc`, unions their name tables into a global table in
/// (shard, local id) order — first sighting wins for names present in
/// several shards — and commits a manifest without an origin order, making
/// the directory a valid OpenShards target. Only shard metadata is read
/// (mapped open; column payloads are never touched). Throws IoError if any
/// shard file is missing or corrupt.
void MergeShardManifests(const std::string& dir, std::size_t shard_count);

/// Path of shard `s`'s columnar file inside a SaveShards directory
/// ("<dir>/shard-00005.mpc") — the file a worker owning shard `s` opens
/// (model::MapColumnar for the zero-copy path).
[[nodiscard]] std::string ShardDataPath(const std::string& dir,
                                        std::size_t shard);

/// The shard fan-out scaffold every shard-wise runner shares (so the
/// determinism scheme lives in exactly one place): one master draw from
/// `rng`, per-shard streams seeded DeriveStreamSeed(master, shard, 0),
/// shards transformed concurrently by `fn(shard_dataset, shard_rng, s)`,
/// outputs assembled in shard order into an EmptyLike result. The caller's
/// rng advances by exactly one draw; the result is byte-identical at any
/// worker count.
template <typename Fn>
[[nodiscard]] ShardedDataset TransformSharded(const ShardedDataset& input,
                                              util::Rng& rng, Fn&& fn) {
  const std::size_t n = input.ShardCount();
  const std::uint64_t master = rng.NextU64();
  std::vector<Dataset> outputs(n);
  util::ParallelForEach(n, [&](std::size_t s) {
    util::Rng shard_rng(
        util::DeriveStreamSeed(master, static_cast<std::uint64_t>(s), 0));
    outputs[s] = fn(input.shard(s), shard_rng, s);
  });
  ShardedDataset result = input.EmptyLike();
  for (std::size_t s = 0; s < n; ++s) {
    result.mutable_shard(s) = std::move(outputs[s]);
  }
  return result;
}

}  // namespace mobipriv::model
