#include "model/trace.h"

#include <algorithm>

namespace mobipriv::model {

Trace::Trace(UserId user, std::vector<Event> events)
    : user_(user), events_(std::move(events)) {}

void Trace::SortByTime() {
  std::stable_sort(events_.begin(), events_.end(), EventTimeLess{});
}

bool Trace::IsTimeOrdered() const noexcept {
  return std::is_sorted(events_.begin(), events_.end(), EventTimeLess{});
}

util::Timestamp Trace::Duration() const noexcept {
  if (events_.size() < 2) return 0;
  return events_.back().time - events_.front().time;
}

double Trace::LengthMeters() const noexcept {
  double total = 0.0;
  for (std::size_t i = 1; i < events_.size(); ++i) {
    total += geo::HaversineDistance(events_[i - 1].position,
                                    events_[i].position);
  }
  return total;
}

std::vector<geo::LatLng> Trace::Positions() const {
  std::vector<geo::LatLng> out;
  out.reserve(events_.size());
  for (const auto& e : events_) out.push_back(e.position);
  return out;
}

std::vector<util::Timestamp> Trace::Times() const {
  std::vector<util::Timestamp> out;
  out.reserve(events_.size());
  for (const auto& e : events_) out.push_back(e.time);
  return out;
}

geo::GeoBoundingBox Trace::BoundingBox() const {
  geo::GeoBoundingBox box;
  for (const auto& e : events_) box.Extend(e.position);
  return box;
}

Trace Trace::Slice(util::Timestamp from, util::Timestamp to) const {
  Trace out;
  out.set_user(user_);
  for (const auto& e : events_) {
    if (e.time >= from && e.time <= to) out.Append(e);
  }
  return out;
}

}  // namespace mobipriv::model
