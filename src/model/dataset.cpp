#include "model/dataset.h"

#include <cassert>

#include "util/thread_pool.h"

namespace mobipriv::model {

UserId Dataset::InternUser(const std::string& name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<UserId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

std::string Dataset::UserName(UserId id) const {
  if (id < names_.size()) return names_[id];
  return "user" + std::to_string(id);
}

std::optional<UserId> Dataset::FindUser(const std::string& name) const {
  const auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

void Dataset::AddTrace(Trace trace) {
  traces_.push_back(std::move(trace));
  IndexTrace(traces_.size() - 1);
}

void Dataset::IndexTrace(std::size_t trace_index) {
  const UserId user = traces_[trace_index].user();
  if (user == kInvalidUser) return;  // anonymous traces are not indexed
  if (traces_by_user_.size() <= user) traces_by_user_.resize(user + 1);
  traces_by_user_[user].push_back(trace_index);
}

void Dataset::RebuildUserIndex() {
  traces_by_user_.clear();
  for (std::size_t i = 0; i < traces_.size(); ++i) IndexTrace(i);
}

UserId Dataset::AddTraceForUser(const std::string& name,
                                std::vector<Event> events) {
  const UserId id = InternUser(name);
  AddTrace(Trace(id, std::move(events)));
  return id;
}

std::size_t Dataset::EventCount() const noexcept {
  std::size_t total = 0;
  for (const auto& t : traces_) total += t.size();
  return total;
}

bool Dataset::UserIndexConsistent() const {
  // Count the traces that should be indexed, check that every indexed
  // entry is valid and strictly increasing per user, and compare counts:
  // together that proves the index is exactly the per-user partition of
  // the valid-user traces.
  std::size_t indexable = 0;
  for (const Trace& trace : traces_) {
    if (trace.user() != kInvalidUser) ++indexable;
  }
  std::size_t indexed = 0;
  for (UserId user = 0; user < traces_by_user_.size(); ++user) {
    std::size_t prev = 0;
    bool first = true;
    for (const std::size_t i : traces_by_user_[user]) {
      if (i >= traces_.size() || traces_[i].user() != user) return false;
      if (!first && i <= prev) return false;
      prev = i;
      first = false;
      ++indexed;
    }
  }
  return indexed == indexable;
}

const std::vector<std::size_t>& Dataset::TracesOfUser(UserId user) const {
  // A stale index here means someone mutated users/trace order through
  // mutable_traces() without calling RebuildUserIndex().
  assert(UserIndexConsistent());
  static const std::vector<std::size_t> kEmpty;
  if (user >= traces_by_user_.size()) return kEmpty;
  return traces_by_user_[user];
}

geo::GeoBoundingBox Dataset::BoundingBox() const {
  geo::GeoBoundingBox box;
  for (const auto& t : traces_) box.Extend(t.BoundingBox());
  return box;
}

void Dataset::SortAll() {
  // Traces sort independently; per-trace stable sort keeps the result
  // byte-identical at any worker count.
  util::ParallelForEach(traces_.size(),
                        [this](std::size_t t) { traces_[t].SortByTime(); });
}

}  // namespace mobipriv::model
