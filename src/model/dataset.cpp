#include "model/dataset.h"

#include <cassert>

namespace mobipriv::model {

UserId Dataset::InternUser(const std::string& name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<UserId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

std::string Dataset::UserName(UserId id) const {
  if (id < names_.size()) return names_[id];
  return "user" + std::to_string(id);
}

std::optional<UserId> Dataset::FindUser(const std::string& name) const {
  const auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

void Dataset::AddTrace(Trace trace) {
  traces_.push_back(std::move(trace));
}

UserId Dataset::AddTraceForUser(const std::string& name,
                                std::vector<Event> events) {
  const UserId id = InternUser(name);
  traces_.emplace_back(id, std::move(events));
  return id;
}

std::size_t Dataset::EventCount() const noexcept {
  std::size_t total = 0;
  for (const auto& t : traces_) total += t.size();
  return total;
}

std::vector<std::size_t> Dataset::TracesOfUser(UserId user) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < traces_.size(); ++i) {
    if (traces_[i].user() == user) out.push_back(i);
  }
  return out;
}

geo::GeoBoundingBox Dataset::BoundingBox() const {
  geo::GeoBoundingBox box;
  for (const auto& t : traces_) box.Extend(t.BoundingBox());
  return box;
}

void Dataset::SortAll() {
  for (auto& t : traces_) t.SortByTime();
}

}  // namespace mobipriv::model
