// A mobility trace: the time-ordered sequence of fixes of one (pseudonymous)
// user. Traces are the unit every mechanism transforms and every attack
// consumes.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "geo/bounding_box.h"
#include "geo/latlng.h"
#include "model/event.h"

namespace mobipriv::model {

class Trace {
 public:
  Trace() = default;
  Trace(UserId user, std::vector<Event> events);

  [[nodiscard]] UserId user() const noexcept { return user_; }
  void set_user(UserId user) noexcept { user_ = user; }

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::vector<Event>& mutable_events() noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] const Event& operator[](std::size_t i) const {
    return events_[i];
  }
  [[nodiscard]] const Event& front() const { return events_.front(); }
  [[nodiscard]] const Event& back() const { return events_.back(); }
  [[nodiscard]] auto begin() const noexcept { return events_.begin(); }
  [[nodiscard]] auto end() const noexcept { return events_.end(); }

  /// Appends an event; callers must preserve temporal order (checked in
  /// debug builds via IsTimeOrdered in tests, not per push for speed).
  void Append(const Event& e) { events_.push_back(e); }

  /// Sorts events by time (stable, so equal-time fixes keep input order).
  void SortByTime();

  /// True if events are sorted by non-decreasing time.
  [[nodiscard]] bool IsTimeOrdered() const noexcept;

  /// Duration in seconds between first and last fix (0 if < 2 events).
  [[nodiscard]] util::Timestamp Duration() const noexcept;

  /// Geographic path length in metres (haversine over consecutive fixes).
  [[nodiscard]] double LengthMeters() const noexcept;

  /// Positions only, in order.
  [[nodiscard]] std::vector<geo::LatLng> Positions() const;

  /// Timestamps only, in order.
  [[nodiscard]] std::vector<util::Timestamp> Times() const;

  [[nodiscard]] geo::GeoBoundingBox BoundingBox() const;

  /// Sub-trace with events in the closed time interval [from, to].
  [[nodiscard]] Trace Slice(util::Timestamp from, util::Timestamp to) const;

 private:
  UserId user_ = kInvalidUser;
  std::vector<Event> events_;
};

}  // namespace mobipriv::model
