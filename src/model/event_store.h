// Columnar (SoA) event storage: the scan-friendly core of the data layer.
//
// A Dataset stores one std::vector<Event> per trace — friendly to per-trace
// mutation, hostile to whole-dataset scans (one allocation per trace,
// interleaved lat/lng/time, pointer-chasing per trace). EventStore holds the
// same information as three contiguous columns (lat, lng, time) plus a
// table of trace descriptors (user id + [begin, end) offset range), so
// column scans (bounding boxes, rasterization, histogramming) stream
// through memory and whole datasets move as three memcpys.
//
// EventStore is immutable-after-build by design: build it trace by trace
// (AppendTrace) or convert an existing Dataset (FromDataset), then hand out
// cheap TraceView / DatasetView spans. Mutating stages keep producing
// Datasets; EventStore is the substrate for ingestion, sharding and
// read-only kernels.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "model/dataset.h"
#include "model/views.h"

namespace mobipriv::model {

/// Growable SoA scratch columns — the output buffer of the allocation-free
/// mechanism path (Mechanism::ApplyToStore). A worker appends one or more
/// transformed traces' fixes to a buffer it reuses across traces, so the
/// per-trace cost is amortized-O(1) appends instead of a fresh
/// std::vector<Event> per trace; the engine then bulk-copies buffer slices
/// into a pre-sized EventStore. Plain columns, no user ids: trace
/// boundaries and ownership are tracked by the caller.
class TraceBuffer {
 public:
  /// Appends one fix.
  void Append(geo::LatLng p, util::Timestamp t) {
    lat_.push_back(p.lat);
    lng_.push_back(p.lng);
    time_.push_back(t);
  }

  /// Raw pointers to a freshly appended block of `n` fixes — the output
  /// form of the vectorized kernels (one resize + direct vector stores
  /// instead of three push_backs per fix). The pointers are valid until
  /// the next Append/Extend/Clear; the caller must write every row.
  struct Rows {
    double* lat = nullptr;
    double* lng = nullptr;
    util::Timestamp* time = nullptr;
  };
  [[nodiscard]] Rows Extend(std::size_t n) {
    const std::size_t at = time_.size();
    lat_.resize(at + n);
    lng_.resize(at + n);
    time_.resize(at + n);
    return Rows{lat_.data() + at, lng_.data() + at, time_.data() + at};
  }

  /// Fixes appended so far.
  [[nodiscard]] std::size_t size() const noexcept { return time_.size(); }
  [[nodiscard]] bool empty() const noexcept { return time_.empty(); }

  /// Drops the content, keeping the capacity (the reuse contract).
  void Clear() noexcept {
    lat_.clear();
    lng_.clear();
    time_.clear();
  }

  [[nodiscard]] std::span<const double> lat() const noexcept { return lat_; }
  [[nodiscard]] std::span<const double> lng() const noexcept { return lng_; }
  [[nodiscard]] std::span<const util::Timestamp> time() const noexcept {
    return time_;
  }

  /// Owning Trace over the whole buffer content (used by the AoS adapter;
  /// the store path copies columns directly and never assembles Events).
  [[nodiscard]] Trace ToTrace(UserId user) const;

 private:
  std::vector<double> lat_;
  std::vector<double> lng_;
  std::vector<util::Timestamp> time_;
};

class EventStore {
 public:
  /// One trace's descriptor: owning user plus the [begin, end) offset
  /// range of its events in the columns. Public because the columnar file
  /// layer (model/columnar_file.h) exchanges whole descriptor tables with
  /// the store; everyone else should go through View()/TraceUser().
  struct TraceRange {
    UserId user = kInvalidUser;
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  EventStore() = default;

  /// Converts an AoS dataset. O(EventCount) copies into columns.
  /// ToDataset() inverts it exactly (same names, ids, trace order, event
  /// bit patterns) — the basis of the columnar round-trip guarantee.
  [[nodiscard]] static EventStore FromDataset(const Dataset& dataset);

  /// Adopts pre-built columns and a descriptor table wholesale — the
  /// columnar file reader's entry point; no per-event copies beyond the
  /// moves. Requires columns of equal length, every range within bounds
  /// with begin <= end, user ids < names.size(), and unique names; throws
  /// std::invalid_argument otherwise (nothing is adopted on failure).
  [[nodiscard]] static EventStore FromColumns(
      std::vector<std::string> names, std::vector<TraceRange> traces,
      std::vector<double> lat, std::vector<double> lng,
      std::vector<util::Timestamp> time);

  /// Registers (or looks up) the dense id for an external user name.
  UserId InternUser(const std::string& name);

  /// Appends one trace's events (copied into the columns) under `user`.
  /// Returns the new trace's index.
  std::size_t AppendTrace(UserId user, const TraceView& events);
  std::size_t AppendTrace(const Trace& trace);

  /// Pre-sizes the columns (ingestion knows totals up front).
  void ReserveEvents(std::size_t events);
  void ReserveTraces(std::size_t traces);

  [[nodiscard]] std::size_t TraceCount() const noexcept {
    return traces_.size();
  }
  [[nodiscard]] std::size_t EventCount() const noexcept { return lat_.size(); }
  [[nodiscard]] std::size_t UserCount() const noexcept {
    return names_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return traces_.empty(); }

  /// User id of trace `trace` (dense, < UserCount()).
  [[nodiscard]] UserId TraceUser(std::size_t trace) const {
    return traces_[trace].user;
  }
  /// Event count of trace `trace`.
  [[nodiscard]] std::size_t TraceSize(std::size_t trace) const {
    return traces_[trace].end - traces_[trace].begin;
  }

  /// The full descriptor table (trace i's user + column offset range).
  [[nodiscard]] std::span<const TraceRange> trace_table() const noexcept {
    return traces_;
  }

  /// Raw columns (contiguous; event i of trace t is at offset begin + i).
  [[nodiscard]] std::span<const double> lat() const noexcept { return lat_; }
  [[nodiscard]] std::span<const double> lng() const noexcept { return lng_; }
  [[nodiscard]] std::span<const util::Timestamp> time() const noexcept {
    return time_;
  }

  [[nodiscard]] std::string UserName(UserId id) const;
  [[nodiscard]] std::span<const std::string> names() const noexcept {
    return names_;
  }

  /// Zero-copy view of one trace's columns.
  [[nodiscard]] TraceView View(std::size_t trace) const;

  /// Zero-copy view of the whole store. The store must outlive the view.
  [[nodiscard]] DatasetView View() const;

  /// Materializes an AoS dataset (users re-interned in id order, traces in
  /// store order) — the exact inverse of FromDataset.
  [[nodiscard]] Dataset ToDataset() const;

 private:
  std::vector<double> lat_;
  std::vector<double> lng_;
  std::vector<util::Timestamp> time_;
  std::vector<TraceRange> traces_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, UserId> ids_;
};

}  // namespace mobipriv::model
