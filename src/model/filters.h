// Trace pre-processing filters applied at ingestion time: gap splitting,
// duplicate removal, speed-outlier removal and temporal resampling. Real GPS
// feeds contain glitches that would otherwise pollute both the mechanisms
// and the attacks.
#pragma once

#include <vector>

#include "model/dataset.h"
#include "model/trace.h"

namespace mobipriv::model {

/// Splits a trace wherever consecutive fixes are more than `max_gap_seconds`
/// apart; each resulting piece keeps the original user id. Pieces with fewer
/// than `min_events` fixes are dropped.
[[nodiscard]] std::vector<Trace> SplitByGap(const Trace& trace,
                                            util::Timestamp max_gap_seconds,
                                            std::size_t min_events = 2);

/// Applies SplitByGap to every trace of the dataset, producing a dataset
/// whose traces are temporally contiguous sessions.
[[nodiscard]] Dataset SplitDatasetByGap(const Dataset& dataset,
                                        util::Timestamp max_gap_seconds,
                                        std::size_t min_events = 2);

/// Removes consecutive events with identical timestamp (keeps the first).
[[nodiscard]] Trace DeduplicateTimes(const Trace& trace);

/// Removes events implying a speed above `max_speed_mps` from the previous
/// kept event (classic GPS teleportation glitch filter).
[[nodiscard]] Trace RemoveSpeedOutliers(const Trace& trace,
                                        double max_speed_mps);

/// Linearly resamples a trace onto a fixed time step: output events at
/// t0, t0+step, ..., interpolating positions between the surrounding input
/// fixes. Requires step > 0; traces with < 2 events are returned unchanged.
/// Used by E6 (sampling-rate sweep) to derive low-rate inputs.
[[nodiscard]] Trace ResampleTime(const Trace& trace,
                                 util::Timestamp step_seconds);

/// Position linearly interpolated at time `t` (clamped to trace range).
/// Requires a non-empty, time-ordered trace.
[[nodiscard]] geo::LatLng InterpolateAt(const Trace& trace,
                                        util::Timestamp t);

}  // namespace mobipriv::model
