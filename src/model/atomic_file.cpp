#include "model/atomic_file.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/fault.h"

#if defined(__unix__) || defined(__APPLE__)
#define MOBIPRIV_HAS_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MOBIPRIV_HAS_POSIX_IO 0
#endif

namespace mobipriv::model {
namespace {

namespace fault = util::fault;

/// Writer-unique temp sibling of `path`: same directory (rename must not
/// cross filesystems), pid + counter so concurrent writers of the same
/// final name never interleave into one temp.
std::string TempName(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  std::ostringstream name;
  name << path << '.'
#if MOBIPRIV_HAS_POSIX_IO
       << ::getpid()
#else
       << 0
#endif
       << '.' << counter.fetch_add(1, std::memory_order_relaxed) << ".tmp";
  return name.str();
}

[[noreturn]] void FailAndCleanup(const std::string& temp,
                                 const std::string& message) {
  std::error_code ignored;
  std::filesystem::remove(temp, ignored);
  throw IoError(message);
}

}  // namespace

void WriteFileAtomic(const std::string& path,
                     std::span<const std::span<const std::byte>> parts,
                     const AtomicWriteFaultPoints& faults) {
  const bool faults_on = fault::Enabled();
  if (faults_on && !faults.open.empty() &&
      fault::Evaluate(faults.open).fail) {
    throw IoError("injected fault (" + std::string(faults.open) +
                  "): cannot open " + path + " for writing");
  }

  // The short-write budget for the whole payload: an injected cap means
  // the temp file receives only that prefix before the write "fails" —
  // exactly the torn state a crash mid-write leaves behind.
  std::size_t io_cap = std::numeric_limits<std::size_t>::max();
  bool injected_short = false;
  if (faults_on && !faults.write.empty()) {
    const fault::Decision d = fault::Evaluate(faults.write);
    if (d.fail) {
      io_cap = d.io_cap;
      injected_short = true;
    }
  }

  const std::string temp = TempName(path);
#if MOBIPRIV_HAS_POSIX_IO
  const int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw IoError("cannot open " + temp + " for writing: " +
                  std::strerror(errno));
  }
  std::size_t written_total = 0;
  bool short_tripped = false;
  for (const std::span<const std::byte> part : parts) {
    std::size_t want = part.size();
    if (written_total + want > io_cap) {
      want = io_cap - std::min(io_cap, written_total);
      short_tripped = true;
    }
    const std::byte* cursor = part.data();
    while (want > 0) {
      const ::ssize_t n = ::write(fd, cursor, want);
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        FailAndCleanup(temp, "write failed for " + temp + ": " +
                                 std::strerror(err));
      }
      cursor += n;
      want -= static_cast<std::size_t>(n);
      written_total += static_cast<std::size_t>(n);
    }
    if (short_tripped) break;
  }
  // An injected write failure throws whether or not the byte cap bit:
  // kShortIo leaves a torn prefix in the temp, kFailTimes a complete one
  // (an end-of-write ENOSPC shape) — either way the final path is never
  // touched.
  if (injected_short) {
    ::close(fd);
    FailAndCleanup(temp, "injected fault (" + std::string(faults.write) +
                             "): short write publishing " + path);
  }
  // Durability point: the payload bytes reach stable storage BEFORE any
  // name points at them. A crash after this fsync but before the rename
  // loses nothing but a stray temp.
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    FailAndCleanup(temp, "fsync failed for " + temp + ": " +
                             std::strerror(err));
  }
  if (::close(fd) != 0) {
    FailAndCleanup(temp, "close failed for " + temp + ": " +
                             std::strerror(errno));
  }
#else
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("cannot open " + temp + " for writing");
    std::size_t written_total = 0;
    bool short_tripped = false;
    for (const std::span<const std::byte> part : parts) {
      std::size_t want = part.size();
      if (written_total + want > io_cap) {
        want = io_cap - std::min(io_cap, written_total);
        short_tripped = true;
      }
      out.write(reinterpret_cast<const char*>(part.data()),
                static_cast<std::streamsize>(want));
      written_total += want;
      if (short_tripped) break;
    }
    out.flush();
    if (!out) FailAndCleanup(temp, "write failed for " + temp);
    if (injected_short) {
      FailAndCleanup(temp, "injected fault (" + std::string(faults.write) +
                               "): short write publishing " + path);
    }
  }
#endif

  if (faults_on && !faults.commit.empty() &&
      fault::Evaluate(faults.commit).fail) {
    FailAndCleanup(temp, "injected fault (" + std::string(faults.commit) +
                             "): cannot commit " + path);
  }

  // The atomic publication: readers see the old content or the new file,
  // never a mixture.
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    FailAndCleanup(temp, "cannot rename " + temp + " to " + path + ": " +
                             ec.message());
  }

#if MOBIPRIV_HAS_POSIX_IO
  // Make the rename itself durable. Best effort: some filesystems refuse
  // O_RDONLY directory fsync — the commit is still correct, only the
  // durability of the *name* rides on the next journal flush.
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
#endif
}

void WriteFileAtomic(const std::string& path, const void* data,
                     std::size_t size,
                     const AtomicWriteFaultPoints& faults) {
  const std::span<const std::byte> part(
      static_cast<const std::byte*>(data), size);
  WriteFileAtomic(path, std::span<const std::span<const std::byte>>(&part, 1),
                  faults);
}

}  // namespace mobipriv::model
