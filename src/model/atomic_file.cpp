#include "model/atomic_file.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/fault.h"

#if defined(__unix__) || defined(__APPLE__)
#define MOBIPRIV_HAS_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MOBIPRIV_HAS_POSIX_IO 0
#endif

namespace mobipriv::model {
namespace {

namespace fault = util::fault;

/// Writer-unique temp sibling of `path`: same directory (rename must not
/// cross filesystems), pid + counter so concurrent writers of the same
/// final name never interleave into one temp.
std::string TempName(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  std::ostringstream name;
  name << path << '.'
#if MOBIPRIV_HAS_POSIX_IO
       << ::getpid()
#else
       << 0
#endif
       << '.' << counter.fetch_add(1, std::memory_order_relaxed) << ".tmp";
  return name.str();
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string path,
                                   const AtomicWriteFaultPoints& faults)
    : path_(std::move(path)),
      write_point_(faults.write),
      commit_point_(faults.commit),
      io_cap_(std::numeric_limits<std::size_t>::max()) {
  faults_on_ = fault::Enabled();
  if (faults_on_ && !faults.open.empty() &&
      fault::Evaluate(faults.open).fail) {
    throw IoError("injected fault (" + std::string(faults.open) +
                  "): cannot open " + path_ + " for writing");
  }

  // The short-write budget for the whole payload: an injected cap means
  // the temp file receives only that prefix before the write "fails" —
  // exactly the torn state a crash mid-write leaves behind.
  if (faults_on_ && !write_point_.empty()) {
    const fault::Decision d = fault::Evaluate(write_point_);
    if (d.fail) {
      io_cap_ = d.io_cap;
      injected_short_ = true;
    }
  }

  temp_ = TempName(path_);
#if MOBIPRIV_HAS_POSIX_IO
  fd_ = ::open(temp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    done_ = true;  // nothing to clean up, the temp never existed
    throw IoError("cannot open " + temp_ + " for writing: " +
                  std::strerror(errno));
  }
#else
  std::ofstream probe(temp_, std::ios::binary | std::ios::trunc);
  if (!probe) {
    done_ = true;
    throw IoError("cannot open " + temp_ + " for writing");
  }
#endif
}

AtomicFileWriter::~AtomicFileWriter() { Abort(); }

void AtomicFileWriter::FailCleanup(const std::string& message) {
#if MOBIPRIV_HAS_POSIX_IO
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
#endif
  done_ = true;
  std::error_code ignored;
  std::filesystem::remove(temp_, ignored);
  throw IoError(message);
}

void AtomicFileWriter::Append(const void* data, std::size_t size) {
  appended_total_ += size;
  std::size_t want = size;
  if (written_total_ + want > io_cap_) {
    want = io_cap_ - std::min(io_cap_, written_total_);
  }
  if (want == 0) return;
#if MOBIPRIV_HAS_POSIX_IO
  const std::byte* cursor = static_cast<const std::byte*>(data);
  while (want > 0) {
    const ::ssize_t n = ::write(fd_, cursor, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      FailCleanup("write failed for " + temp_ + ": " + std::strerror(err));
    }
    cursor += n;
    want -= static_cast<std::size_t>(n);
    written_total_ += static_cast<std::size_t>(n);
  }
#else
  const std::byte* cursor = static_cast<const std::byte*>(data);
  fallback_buffer_.insert(fallback_buffer_.end(), cursor, cursor + want);
  written_total_ += want;
#endif
}

void AtomicFileWriter::Commit() {
  // An injected write failure throws whether or not the byte cap bit:
  // kShortIo leaves a torn prefix in the temp, kFailTimes a complete one
  // (an end-of-write ENOSPC shape) — either way the final path is never
  // touched.
  if (injected_short_) {
    FailCleanup("injected fault (" + write_point_ +
                "): short write publishing " + path_);
  }
#if MOBIPRIV_HAS_POSIX_IO
  // Durability point: the payload bytes reach stable storage BEFORE any
  // name points at them. A crash after this fsync but before the rename
  // loses nothing but a stray temp.
  if (::fsync(fd_) != 0) {
    const int err = errno;
    FailCleanup("fsync failed for " + temp_ + ": " + std::strerror(err));
  }
  if (::close(fd_) != 0) {
    const int err = errno;
    fd_ = -1;
    FailCleanup("close failed for " + temp_ + ": " + std::strerror(err));
  }
  fd_ = -1;
#else
  {
    std::ofstream out(temp_, std::ios::binary | std::ios::trunc);
    if (!out) FailCleanup("cannot open " + temp_ + " for writing");
    out.write(reinterpret_cast<const char*>(fallback_buffer_.data()),
              static_cast<std::streamsize>(fallback_buffer_.size()));
    out.flush();
    if (!out) FailCleanup("write failed for " + temp_);
  }
#endif

  if (faults_on_ && !commit_point_.empty() &&
      fault::Evaluate(commit_point_).fail) {
    FailCleanup("injected fault (" + commit_point_ + "): cannot commit " +
                path_);
  }

  // The atomic publication: readers see the old content or the new file,
  // never a mixture.
  std::error_code ec;
  std::filesystem::rename(temp_, path_, ec);
  if (ec) {
    FailCleanup("cannot rename " + temp_ + " to " + path_ + ": " +
                ec.message());
  }
  done_ = true;

#if MOBIPRIV_HAS_POSIX_IO
  // Make the rename itself durable. Best effort: some filesystems refuse
  // O_RDONLY directory fsync — the commit is still correct, only the
  // durability of the *name* rides on the next journal flush.
  const std::filesystem::path parent =
      std::filesystem::path(path_).parent_path();
  const std::string dir = parent.empty() ? "." : parent.string();
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
#endif
}

void AtomicFileWriter::Abort() noexcept {
  if (done_) return;
  done_ = true;
#if MOBIPRIV_HAS_POSIX_IO
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
#endif
  std::error_code ignored;
  std::filesystem::remove(temp_, ignored);
}

void WriteFileAtomic(const std::string& path,
                     std::span<const std::span<const std::byte>> parts,
                     const AtomicWriteFaultPoints& faults) {
  AtomicFileWriter writer(path, faults);
  for (const std::span<const std::byte> part : parts) {
    writer.Append(part);
  }
  writer.Commit();
}

void WriteFileAtomic(const std::string& path, const void* data,
                     std::size_t size,
                     const AtomicWriteFaultPoints& faults) {
  const std::span<const std::byte> part(
      static_cast<const std::byte*>(data), size);
  WriteFileAtomic(path, std::span<const std::span<const std::byte>>(&part, 1),
                  faults);
}

}  // namespace mobipriv::model
