#include "model/stats.h"

#include <cmath>
#include <sstream>

namespace mobipriv::model {

std::vector<double> InterEventDistances(const Trace& trace) {
  std::vector<double> out;
  if (trace.size() < 2) return out;
  out.reserve(trace.size() - 1);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    out.push_back(
        geo::HaversineDistance(trace[i - 1].position, trace[i].position));
  }
  return out;
}

std::vector<double> InterEventIntervals(const Trace& trace) {
  std::vector<double> out;
  if (trace.size() < 2) return out;
  out.reserve(trace.size() - 1);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    out.push_back(static_cast<double>(trace[i].time - trace[i - 1].time));
  }
  return out;
}

std::vector<double> SpeedProfile(const Trace& trace) {
  std::vector<double> out;
  if (trace.size() < 2) return out;
  out.reserve(trace.size() - 1);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const auto dt = trace[i].time - trace[i - 1].time;
    if (dt <= 0) {
      out.push_back(0.0);
      continue;
    }
    const double dist =
        geo::HaversineDistance(trace[i - 1].position, trace[i].position);
    out.push_back(dist / static_cast<double>(dt));
  }
  return out;
}

double SpeedCoefficientOfVariation(const Trace& trace) {
  const auto speeds = SpeedProfile(trace);
  if (speeds.size() < 2) return 0.0;
  util::RunningStat rs;
  for (const double s : speeds) rs.Add(s);
  if (rs.Mean() <= 0.0) return 0.0;
  return rs.Stddev() / rs.Mean();
}

DatasetStats ComputeDatasetStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.users = dataset.UserCount();
  stats.traces = dataset.TraceCount();
  stats.events = dataset.EventCount();
  std::vector<double> durations;
  std::vector<double> lengths;
  std::vector<double> counts;
  std::vector<double> speeds;
  for (const auto& trace : dataset.traces()) {
    durations.push_back(static_cast<double>(trace.Duration()));
    lengths.push_back(trace.LengthMeters());
    counts.push_back(static_cast<double>(trace.size()));
    for (const double s : SpeedProfile(trace)) speeds.push_back(s);
  }
  stats.trace_duration_s = util::Summary::Of(durations);
  stats.trace_length_m = util::Summary::Of(lengths);
  stats.trace_events = util::Summary::Of(counts);
  stats.speed_mps = util::Summary::Of(speeds);
  return stats;
}

std::string DatasetStats::ToString() const {
  std::ostringstream os;
  os << "users=" << users << " traces=" << traces << " events=" << events
     << "\n  duration[s]: " << trace_duration_s.ToString()
     << "\n  length[m]:   " << trace_length_m.ToString()
     << "\n  events:      " << trace_events.ToString()
     << "\n  speed[m/s]:  " << speed_mps.ToString();
  return os.str();
}

}  // namespace mobipriv::model
