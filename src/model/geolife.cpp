#include "model/geolife.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "model/io.h"

namespace mobipriv::model {

namespace fs = std::filesystem;

Dataset LoadGeolife(const std::string& root,
                    const GeolifeLoadOptions& options) {
  if (!fs::is_directory(root)) {
    throw IoError("Geolife root is not a directory: " + root);
  }
  // Deterministic order: sort user folders lexicographically.
  std::vector<fs::path> user_dirs;
  for (const auto& entry : fs::directory_iterator(root)) {
    if (entry.is_directory()) user_dirs.push_back(entry.path());
  }
  std::sort(user_dirs.begin(), user_dirs.end());
  if (options.max_users > 0 && user_dirs.size() > options.max_users) {
    user_dirs.resize(options.max_users);
  }

  Dataset dataset;
  for (const auto& user_dir : user_dirs) {
    const fs::path trajectory_dir = user_dir / "Trajectory";
    if (!fs::is_directory(trajectory_dir)) continue;
    std::vector<fs::path> plt_files;
    for (const auto& entry : fs::directory_iterator(trajectory_dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".plt") {
        plt_files.push_back(entry.path());
      }
    }
    std::sort(plt_files.begin(), plt_files.end());
    if (options.max_files_per_user > 0 &&
        plt_files.size() > options.max_files_per_user) {
      plt_files.resize(options.max_files_per_user);
    }
    const std::string user_name = user_dir.filename().string();
    for (const auto& plt : plt_files) {
      std::ifstream in(plt);
      if (!in) throw IoError("cannot open " + plt.string());
      AppendPlt(dataset, user_name, in);
    }
  }
  return dataset;
}

}  // namespace mobipriv::model
