#include "model/geolife.h"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <fstream>

#include "model/io.h"
#include "util/chunked_reader.h"
#include "util/thread_pool.h"

namespace mobipriv::model {

namespace fs = std::filesystem;

Dataset LoadGeolife(const std::string& root,
                    const GeolifeLoadOptions& options) {
  if (!fs::is_directory(root)) {
    throw IoError("Geolife root is not a directory: " + root);
  }
  // Deterministic order: sort user folders lexicographically.
  std::vector<fs::path> user_dirs;
  for (const auto& entry : fs::directory_iterator(root)) {
    if (entry.is_directory()) user_dirs.push_back(entry.path());
  }
  std::sort(user_dirs.begin(), user_dirs.end());
  if (options.max_users > 0 && user_dirs.size() > options.max_users) {
    user_dirs.resize(options.max_users);
  }

  // Enumerate every (user, PLT file) job up front, in the deterministic
  // (user, file) lexicographic order the serial loader visited them in.
  struct FileJob {
    std::string user;
    fs::path path;
  };
  std::vector<FileJob> jobs;
  for (const auto& user_dir : user_dirs) {
    const fs::path trajectory_dir = user_dir / "Trajectory";
    if (!fs::is_directory(trajectory_dir)) continue;
    std::vector<fs::path> plt_files;
    for (const auto& entry : fs::directory_iterator(trajectory_dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".plt") {
        plt_files.push_back(entry.path());
      }
    }
    std::sort(plt_files.begin(), plt_files.end());
    if (options.max_files_per_user > 0 &&
        plt_files.size() > options.max_files_per_user) {
      plt_files.resize(options.max_files_per_user);
    }
    const std::string user_name = user_dir.filename().string();
    for (const auto& plt : plt_files) {
      jobs.push_back(FileJob{user_name, plt});
    }
  }

  // Parse every file on the pool (one trace per PLT file). Results slot
  // into job order, so assembly below is independent of the worker count.
  std::vector<std::vector<Event>> parsed(jobs.size());
  std::vector<std::exception_ptr> errors(jobs.size());
  util::ParallelForEach(jobs.size(), [&](std::size_t j) {
    try {
      std::ifstream in(jobs[j].path, std::ios::binary);
      if (!in) throw IoError("cannot open " + jobs[j].path.string());
      const std::string text = util::ReadAll(in);
      parsed[j] = ParsePltText(text);
    } catch (...) {
      errors[j] = std::current_exception();
    }
  });
  // First failing file in job order wins — where the serial loader stopped.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (errors[j]) std::rethrow_exception(errors[j]);
  }

  Dataset dataset;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const UserId id = dataset.InternUser(jobs[j].user);
    Trace trace(id, std::move(parsed[j]));
    trace.SortByTime();
    dataset.AddTrace(std::move(trace));
  }
  return dataset;
}

}  // namespace mobipriv::model
