#include "model/columnar_append.h"

#include <atomic>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "model/atomic_file.h"
#include "model/columnar_file.h"
#include "model/columnar_layout.h"
#include "util/fault.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define MOBIPRIV_APPEND_HAS_PID 1
#else
#define MOBIPRIV_APPEND_HAS_PID 0
#endif

namespace mobipriv::model {
namespace {

namespace fault = util::fault;

constexpr const char* kColumnSuffix[3] = {".lat.tmp", ".lng.tmp", ".time.tmp"};

/// Writer-unique base for the column spill files: same `.tmp` family as
/// the atomic-commit temps, so a crash leaves only strays no reader opens
/// (and the same cleanup sweeps catch them).
std::string SpillBase(const std::string& path) {
  static std::atomic<std::uint64_t> counter{0};
  std::ostringstream base;
  base << path << '.'
#if MOBIPRIV_APPEND_HAS_PID
       << ::getpid()
#else
       << 0
#endif
       << '.' << counter.fetch_add(1, std::memory_order_relaxed) << ".col";
  return base.str();
}

}  // namespace

ColumnarAppender::ColumnarAppender(std::string path)
    : ColumnarAppender(std::move(path), Options()) {}

ColumnarAppender::ColumnarAppender(std::string path, const Options& options)
    : path_(std::move(path)),
      flush_chunk_events_(options.flush_chunk_events == 0
                              ? 1
                              : options.flush_chunk_events) {
  column_fnv_.fill(detail::kFnv1a64Basis);
  const std::string base = SpillBase(path_);
  for (std::size_t c = 0; c < kColumns; ++c) {
    spill_paths_[c] = base + kColumnSuffix[c];
    spills_[c].open(spill_paths_[c], std::ios::binary | std::ios::trunc);
    if (!spills_[c]) {
      const std::string failed = spill_paths_[c];
      Abort();
      throw IoError("cannot open " + failed + " for writing");
    }
  }
  lat_buf_.reserve(flush_chunk_events_);
  lng_buf_.reserve(flush_chunk_events_);
  time_buf_.reserve(flush_chunk_events_);
}

ColumnarAppender::~ColumnarAppender() { Abort(); }

UserId ColumnarAppender::InternUser(std::string_view name) {
  const auto it = name_to_id_.find(std::string(name));
  if (it != name_to_id_.end()) return it->second;
  const UserId id = static_cast<UserId>(names_.size());
  names_.emplace_back(name);
  name_to_id_.emplace(names_.back(), id);
  return id;
}

void ColumnarAppender::FlushChunks() {
  const void* data[kColumns] = {lat_buf_.data(), lng_buf_.data(),
                                time_buf_.data()};
  const std::size_t bytes[kColumns] = {lat_buf_.size() * sizeof(double),
                                       lng_buf_.size() * sizeof(double),
                                       time_buf_.size() *
                                           sizeof(util::Timestamp)};
  for (std::size_t c = 0; c < kColumns; ++c) {
    if (bytes[c] == 0) continue;
    spills_[c].write(static_cast<const char*>(data[c]),
                     static_cast<std::streamsize>(bytes[c]));
    if (!spills_[c]) {
      const std::string failed = spill_paths_[c];
      Abort();
      throw IoError("write failed for " + failed);
    }
    column_fnv_[c] = detail::Fnv1a64Update(column_fnv_[c], data[c], bytes[c]);
  }
  lat_buf_.clear();
  lng_buf_.clear();
  time_buf_.clear();
}

void ColumnarAppender::AppendTrace(UserId user, std::span<const double> lat,
                                   std::span<const double> lng,
                                   std::span<const util::Timestamp> time) {
  if (done_) throw std::logic_error("ColumnarAppender already finalized");
  if (lat.size() != lng.size() || lat.size() != time.size()) {
    throw std::invalid_argument("ColumnarAppender: column length mismatch");
  }
  if (user >= names_.size()) {
    throw std::invalid_argument("ColumnarAppender: user id not interned");
  }
  EventStore::TraceRange range;
  range.user = user;
  range.begin = event_count_;
  range.end = event_count_ + lat.size();
  traces_.push_back(range);
  lat_buf_.insert(lat_buf_.end(), lat.begin(), lat.end());
  lng_buf_.insert(lng_buf_.end(), lng.begin(), lng.end());
  time_buf_.insert(time_buf_.end(), time.begin(), time.end());
  event_count_ += lat.size();
  if (lat_buf_.size() >= flush_chunk_events_) FlushChunks();
}

void ColumnarAppender::AppendTrace(UserId user, const TraceView& trace) {
  if (done_) throw std::logic_error("ColumnarAppender already finalized");
  if (user >= names_.size()) {
    throw std::invalid_argument("ColumnarAppender: user id not interned");
  }
  EventStore::TraceRange range;
  range.user = user;
  range.begin = event_count_;
  range.end = event_count_ + trace.size();
  traces_.push_back(range);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    lat_buf_.push_back(trace.lat(i));
    lng_buf_.push_back(trace.lng(i));
    time_buf_.push_back(trace.time(i));
  }
  event_count_ += trace.size();
  if (lat_buf_.size() >= flush_chunk_events_) FlushChunks();
}

void ColumnarAppender::Finalize() {
  if (done_) throw std::logic_error("ColumnarAppender already finalized");
  try {
    FlushChunks();
    for (std::size_t c = 0; c < kColumns; ++c) {
      spills_[c].flush();
      if (!spills_[c]) {
        throw IoError("write failed for " + spill_paths_[c]);
      }
      spills_[c].close();
    }

    const std::vector<std::byte> name_payload =
        detail::EncodeNameTable(names_);
    const std::vector<std::byte> trace_payload =
        detail::EncodeTraceTable(traces_);
    const std::size_t column_bytes = event_count_ * 8;
    const std::array<std::size_t, detail::kKnownSections> sizes = {
        name_payload.size(), trace_payload.size(), column_bytes, column_bytes,
        column_bytes};
    const std::array<std::uint64_t, detail::kKnownSections> checksums = {
        Fnv1a64(name_payload.data(), name_payload.size()),
        Fnv1a64(trace_payload.data(), trace_payload.size()), column_fnv_[0],
        column_fnv_[1], column_fnv_[2]};
    detail::ColumnarLayout layout;
    const std::vector<std::byte> head = detail::BuildColumnarHead(
        names_.size(), traces_.size(), event_count_, sizes, checksums,
        &layout);

    // Stream the exact on-disk image through the crash-safe commit
    // protocol: header+directory, then each section at its aligned
    // offset; the bulk columns are block-copied from the spills so no
    // whole column is ever resident.
    AtomicFileWriter writer(
        path_, {.open = fault::points::kColumnarWriteOpen,
                .write = fault::points::kColumnarWriteShort,
                .commit = fault::points::kColumnarWriteCommit});
    static constexpr std::byte kPad[8] = {};
    std::size_t written = 0;
    const auto pad_to = [&](std::size_t offset) {
      if (offset > written) {
        writer.Append(kPad, offset - written);
        written = offset;
      }
    };
    writer.Append(head.data(), head.size());
    written = head.size();

    const std::byte* metadata[2] = {name_payload.data(), trace_payload.data()};
    for (std::size_t i = 0; i < 2; ++i) {
      pad_to(layout.offsets[i]);
      writer.Append(metadata[i], sizes[i]);
      written += sizes[i];
    }
    std::vector<char> block(1u << 20);
    for (std::size_t c = 0; c < kColumns; ++c) {
      const std::size_t i = 2 + c;
      pad_to(layout.offsets[i]);
      std::ifstream spill(spill_paths_[c], std::ios::binary);
      if (!spill) throw IoError("cannot open " + spill_paths_[c]);
      std::size_t copied = 0;
      while (copied < sizes[i]) {
        const std::size_t want = std::min(block.size(), sizes[i] - copied);
        if (!spill.read(block.data(), static_cast<std::streamsize>(want))) {
          throw IoError("spill file " + spill_paths_[c] +
                        " shorter than the recorded column (torn spill?)");
        }
        writer.Append(block.data(), want);
        copied += want;
      }
      written += sizes[i];
    }
    writer.Commit();
  } catch (...) {
    Abort();
    throw;
  }
  Abort();  // publication done: drop the spills, mark spent
}

void ColumnarAppender::Abort() noexcept {
  if (done_) return;
  done_ = true;
  for (std::size_t c = 0; c < kColumns; ++c) {
    if (spills_[c].is_open()) spills_[c].close();
    if (!spill_paths_[c].empty()) {
      std::error_code ignored;
      std::filesystem::remove(spill_paths_[c], ignored);
    }
  }
}

bool ColumnarFileMatches(const EventStore& store,
                         const std::string& path) noexcept {
  try {
    const std::vector<std::byte> name_payload =
        detail::EncodeNameTable(store.names());
    const std::vector<std::byte> trace_payload =
        detail::EncodeTraceTable(store.trace_table());
    const std::array<std::size_t, detail::kKnownSections> sizes = {
        name_payload.size(), trace_payload.size(), store.lat().size_bytes(),
        store.lng().size_bytes(), store.time().size_bytes()};
    const std::array<std::uint64_t, detail::kKnownSections> checksums = {
        Fnv1a64(name_payload.data(), name_payload.size()),
        Fnv1a64(trace_payload.data(), trace_payload.size()),
        Fnv1a64(store.lat().data(), store.lat().size_bytes()),
        Fnv1a64(store.lng().data(), store.lng().size_bytes()),
        Fnv1a64(store.time().data(), store.time().size_bytes())};
    detail::ColumnarLayout layout;
    const std::vector<std::byte> head = detail::BuildColumnarHead(
        store.UserCount(), store.TraceCount(), store.EventCount(), sizes,
        checksums, &layout);

    std::error_code ec;
    const auto actual_size = std::filesystem::file_size(path, ec);
    if (ec || actual_size != layout.file_size) return false;
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::vector<std::byte> existing(head.size());
    if (!in.read(reinterpret_cast<char*>(existing.data()),
                 static_cast<std::streamsize>(existing.size()))) {
      return false;
    }
    // The header+directory image covers counts, every section size and
    // every section FNV — if it matches byte for byte, publishing `store`
    // would rewrite the identical file.
    return std::memcmp(existing.data(), head.data(), head.size()) == 0;
  } catch (...) {
    return false;
  }
}

}  // namespace mobipriv::model
