// Descriptive statistics of traces and datasets, used by reports, benches
// and — crucially — by the constant-speed property tests: after stage 1 of
// the mechanism, SpeedProfile() of a trace must be (near-)constant and
// InterEventDistances()/InterEventIntervals() must be uniform.
#pragma once

#include <string>
#include <vector>

#include "model/dataset.h"
#include "model/trace.h"
#include "util/statistics.h"

namespace mobipriv::model {

/// Distance in metres between each pair of consecutive events
/// (size = trace.size() - 1; empty for traces with < 2 events).
[[nodiscard]] std::vector<double> InterEventDistances(const Trace& trace);

/// Seconds between each pair of consecutive events.
[[nodiscard]] std::vector<double> InterEventIntervals(const Trace& trace);

/// Instantaneous speed (m/s) on each segment; segments with dt == 0
/// contribute 0 to avoid infinities (flagged separately by callers if
/// needed).
[[nodiscard]] std::vector<double> SpeedProfile(const Trace& trace);

/// Coefficient of variation (stddev/mean) of the speed profile; 0 for
/// traces with < 2 segments or zero mean speed. The paper's stage-1
/// guarantee is exactly "this is ~0 after anonymization".
[[nodiscard]] double SpeedCoefficientOfVariation(const Trace& trace);

/// Aggregate descriptive statistics of one dataset.
struct DatasetStats {
  std::size_t users = 0;
  std::size_t traces = 0;
  std::size_t events = 0;
  util::Summary trace_duration_s;
  util::Summary trace_length_m;
  util::Summary trace_events;
  util::Summary speed_mps;  ///< pooled over all segments of all traces

  [[nodiscard]] std::string ToString() const;
};

[[nodiscard]] DatasetStats ComputeDatasetStats(const Dataset& dataset);

}  // namespace mobipriv::model
