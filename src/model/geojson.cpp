#include "model/geojson.h"

#include <cmath>
#include <numbers>
#include <ostream>
#include <sstream>

#include "util/string_utils.h"

namespace mobipriv::model {
namespace {

void WriteCoordinate(std::ostream& out, geo::LatLng position) {
  // GeoJSON order: [longitude, latitude].
  out << "[" << util::FormatDouble(position.lng, 6) << ","
      << util::FormatDouble(position.lat, 6) << "]";
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteGeoJson(const Dataset& dataset, std::ostream& out,
                  const GeoJsonOptions& options) {
  out << "{\"type\":\"FeatureCollection\",\"features\":[";
  bool first_feature = true;
  const auto begin_feature = [&] {
    if (!first_feature) out << ",";
    first_feature = false;
  };

  for (std::size_t t = 0; t < dataset.traces().size(); ++t) {
    const auto& trace = dataset.traces()[t];
    if (trace.empty()) continue;
    if (options.traces_as_lines && trace.size() >= 2) {
      begin_feature();
      out << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"LineString\","
             "\"coordinates\":[";
      for (std::size_t i = 0; i < trace.size(); ++i) {
        if (i > 0) out << ",";
        WriteCoordinate(out, trace[i].position);
      }
      out << "]},\"properties\":{\"trace\":" << t;
      if (options.include_user_names) {
        out << ",\"user\":\""
            << JsonEscape(dataset.UserName(trace.user())) << "\"";
      }
      if (options.include_timestamps) {
        out << ",\"start\":" << trace.front().time
            << ",\"end\":" << trace.back().time;
      }
      out << "}}";
    }
    if (options.events_as_points) {
      for (std::size_t i = 0; i < trace.size(); ++i) {
        begin_feature();
        out << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Point\","
               "\"coordinates\":";
        WriteCoordinate(out, trace[i].position);
        out << "},\"properties\":{\"trace\":" << t;
        if (options.include_user_names) {
          out << ",\"user\":\""
              << JsonEscape(dataset.UserName(trace.user())) << "\"";
        }
        if (options.include_timestamps) {
          out << ",\"time\":" << trace[i].time;
        }
        out << "}}";
      }
    }
  }
  out << "]}";
}

std::string ToGeoJson(const Dataset& dataset, const GeoJsonOptions& options) {
  std::ostringstream out;
  WriteGeoJson(dataset, out, options);
  return out.str();
}

void WriteZonesGeoJson(const std::vector<mech::MixZoneInfo>& zones,
                       const geo::LocalProjection& projection,
                       std::ostream& out) {
  out << "{\"type\":\"FeatureCollection\",\"features\":[";
  for (std::size_t z = 0; z < zones.size(); ++z) {
    if (z > 0) out << ",";
    const auto& zone = zones[z];
    out << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Polygon\","
           "\"coordinates\":[[";
    constexpr int kVertices = 32;
    for (int v = 0; v <= kVertices; ++v) {  // closed ring: repeat first
      if (v > 0) out << ",";
      const double angle = 2.0 * std::numbers::pi *
                           static_cast<double>(v % kVertices) / kVertices;
      const geo::Point2 p{
          zone.center.x + zone.radius_m * std::cos(angle),
          zone.center.y + zone.radius_m * std::sin(angle)};
      WriteCoordinate(out, projection.Unproject(p));
    }
    out << "]]},\"properties\":{\"zone\":" << z
        << ",\"radius_m\":" << util::FormatDouble(zone.radius_m, 1)
        << ",\"occurrences\":" << zone.occurrences
        << ",\"max_anonymity_set\":" << zone.max_anonymity_set << "}}";
  }
  out << "]}";
}

void WritePoiSitesGeoJson(const synth::PoiUniverse& universe,
                          const geo::LocalProjection& projection,
                          std::ostream& out) {
  out << "{\"type\":\"FeatureCollection\",\"features\":[";
  for (std::size_t i = 0; i < universe.size(); ++i) {
    if (i > 0) out << ",";
    const auto& site = universe.site(static_cast<synth::PoiId>(i));
    out << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Point\","
           "\"coordinates\":";
    WriteCoordinate(out, projection.Unproject(site.position));
    out << "},\"properties\":{\"poi\":" << site.id << ",\"category\":\""
        << synth::PoiCategoryName(site.category) << "\"}}";
  }
  out << "]}";
}

}  // namespace mobipriv::model
