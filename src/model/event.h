// The atomic unit of mobility data: one (user, location, time) record.
#pragma once

#include <cstdint>
#include <string>

#include "geo/latlng.h"
#include "util/time_utils.h"

namespace mobipriv::model {

/// Dense user identifier. Datasets map external string ids to UserIds on
/// ingestion; attacks and mechanisms work on UserId throughout.
using UserId = std::uint32_t;
inline constexpr UserId kInvalidUser = static_cast<UserId>(-1);

/// One GPS fix.
struct Event {
  geo::LatLng position;
  util::Timestamp time = 0;  ///< Unix seconds

  friend bool operator==(const Event& a, const Event& b) noexcept {
    return a.position == b.position && a.time == b.time;
  }
};

/// Strict-weak temporal order (used when sorting raw ingests).
struct EventTimeLess {
  bool operator()(const Event& a, const Event& b) const noexcept {
    return a.time < b.time;
  }
};

}  // namespace mobipriv::model
