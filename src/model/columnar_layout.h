// Internal byte-layout constants and helpers of the `.mpc` container,
// shared by the one-shot writer (WriteColumnar), the incremental appender
// (ColumnarAppender) and the readers, so the format-critical arithmetic —
// section order, alignment, header image — exists exactly once. Not a
// public API: include columnar_file.h / columnar_append.h instead unless
// you are implementing a container.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "model/event_store.h"

namespace mobipriv::model::detail {

inline constexpr std::size_t kHeaderSize = 64;
inline constexpr std::size_t kDirEntrySize = 32;

// Section ids (directory `id` field). Readers require each of these
// exactly once and ignore entries with unknown ids (forward compat).
inline constexpr std::uint32_t kSectionName = 1;
inline constexpr std::uint32_t kSectionTrace = 2;
inline constexpr std::uint32_t kSectionLat = 3;
inline constexpr std::uint32_t kSectionLng = 4;
inline constexpr std::uint32_t kSectionTime = 5;
inline constexpr std::size_t kKnownSections = 5;

inline constexpr std::size_t kTraceRecordSize = 24;  // u32 user, u32 pad, u64 x2

// Cap on the directory length a reader will walk: generous room for
// future optional sections, small enough that a corrupt count cannot
// drive a huge loop.
inline constexpr std::uint32_t kMaxSectionCount = 1024;

inline constexpr std::size_t AlignUp8(std::size_t x) {
  return (x + 7) & ~std::size_t{7};
}

/// Incremental FNV-1a 64 step: feeds `size` bytes into running state `h`
/// (seed with kFnv1a64Basis). Byte-sequential, so chunked updates hash
/// identically to one Fnv1a64 pass — that is what lets the appender keep
/// running column checksums while spilling bounded chunks.
inline constexpr std::uint64_t kFnv1a64Basis = 1469598103934665603ULL;
[[nodiscard]] std::uint64_t Fnv1a64Update(std::uint64_t h, const void* data,
                                          std::size_t size) noexcept;

/// Resolved section placement for one `.mpc` file. Section order on disk
/// is fixed: name, trace, lat, lng, time — arrays index in that order
/// (id - 1).
struct ColumnarLayout {
  std::array<std::size_t, kKnownSections> offsets{};
  std::array<std::size_t, kKnownSections> sizes{};
  std::array<std::uint64_t, kKnownSections> checksums{};
  std::size_t file_size = 0;
};

/// Computes section offsets + total file size from the five payload sizes
/// and renders the exact header + directory byte image (checksummed).
/// This IS the on-disk layout definition: WriteColumnar, the appender and
/// the fingerprint check all call it, so they cannot disagree.
[[nodiscard]] std::vector<std::byte> BuildColumnarHead(
    std::uint64_t user_count, std::uint64_t trace_count,
    std::uint64_t event_count,
    const std::array<std::size_t, kKnownSections>& section_sizes,
    const std::array<std::uint64_t, kKnownSections>& section_checksums,
    ColumnarLayout* layout);

/// Encodes the TRACE section payload: fixed 24-byte records.
[[nodiscard]] std::vector<std::byte> EncodeTraceTable(
    std::span<const EventStore::TraceRange> traces);

}  // namespace mobipriv::model::detail
