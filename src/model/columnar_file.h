// The `.mpc` binary columnar container: EventStore columns on disk.
//
// Every run of the pipeline used to pay a full CSV / Geolife parse on
// startup. A `.mpc` file persists an EventStore verbatim — the three
// contiguous lat / lng / time columns, the trace descriptor table and the
// user name table — in a versioned little-endian container with
// per-section FNV-1a checksums, so a prebuilt dataset opens in
// microseconds instead of parsing for seconds. Byte-level layout is
// specified in docs/FORMAT.md; `kColumnarFormatVersion` below is the
// single source of truth for the on-disk version (CI lints the spec
// against it).
//
// Three access paths:
//   * WriteColumnar(store, path)  — serialize an EventStore.
//   * ReadColumnar(path)          — owning load: every section checksum is
//                                   verified, columns are copied into a
//                                   fresh EventStore.
//   * MapColumnar(path)           — mmap-backed zero-copy open: TraceView /
//                                   DatasetView point straight into the
//                                   read-only mapping; column pages fault
//                                   in lazily on first touch.
//
// Round-trip contract (test-enforced): for any EventStore `s`,
// ReadColumnar(WriteColumnar(s)) and MapColumnar(WriteColumnar(s)) expose
// bit-identical columns, trace table and names — so CSV -> columnar ->
// Dataset equals the directly parsed Dataset bitwise (doubles compared by
// bit pattern, -0.0 and all).
//
// All failures (bad magic, version mismatch, truncation, checksum
// mismatch, inconsistent tables) throw model::IoError with a description;
// no partially-initialized object escapes and no out-of-bounds read
// happens on corrupt input (exercised under ASan in CI).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/event_store.h"
#include "model/io.h"

namespace mobipriv::model {

/// On-disk format version. Readers accept exactly this version; a bump
/// means an incompatible layout change (see docs/FORMAT.md for the
/// versioning rules). CI fails if docs/FORMAT.md disagrees with this value.
inline constexpr std::uint32_t kColumnarFormatVersion = 1;

/// First eight bytes of every `.mpc` file. PNG-style: a high bit to catch
/// 7-bit transports, "MPC", CRLF + ^Z + LF to catch newline translation.
inline constexpr std::array<std::uint8_t, 8> kColumnarMagic = {
    0x89, 'M', 'P', 'C', '\r', '\n', 0x1a, '\n'};

/// First eight bytes of a shard-directory manifest (`manifest.mpm`).
inline constexpr std::array<std::uint8_t, 8> kManifestMagic = {
    0x89, 'M', 'P', 'M', '\r', '\n', 0x1a, '\n'};

/// Canonical file extension for columnar files (dispatch key for
/// LoadDataset / SaveDataset).
inline constexpr const char* kColumnarExtension = ".mpc";

/// FNV-1a 64-bit over a byte range — the format's checksum function (the
/// same hash ShardedDataset::ShardOfUser uses for shard assignment).
/// Pure, platform independent.
[[nodiscard]] std::uint64_t Fnv1a64(const void* data,
                                    std::size_t size) noexcept;

/// Shared low-level pieces of the on-disk encoding, used by both the
/// `.mpc` container and the shard manifest so the format-critical logic
/// exists exactly once. Not a stable API — reach for the functions above
/// unless you are implementing a container.
namespace detail {

/// Little-endian scalar stores/loads (the host is static_assert'd LE in
/// columnar_file.cpp; memcpy keeps them alignment-safe).
void PutU32(std::byte* p, std::uint32_t v) noexcept;
void PutU64(std::byte* p, std::uint64_t v) noexcept;
[[nodiscard]] std::uint32_t GetU32(const std::byte* p) noexcept;
[[nodiscard]] std::uint64_t GetU64(const std::byte* p) noexcept;

/// Encodes a name table as specified for the NAME section (and the
/// manifest's global name table): (names.size() + 1) u64 offsets into a
/// trailing UTF-8 blob.
[[nodiscard]] std::vector<std::byte> EncodeNameTable(
    std::span<const std::string> names);

/// Decodes and validates a name table of `count` entries from at most
/// `available` bytes at `payload`: offsets must start at 0, be monotonic,
/// end within the blob, and the decoded names must be unique (the
/// in-memory stores require a name -> id map). `*consumed` gets the
/// exact offsets+blob byte count. Throws IoError prefixed with `context`.
[[nodiscard]] std::vector<std::string> DecodeNameTable(
    const std::byte* payload, std::size_t available, std::uint64_t count,
    std::size_t* consumed, const std::string& context);

}  // namespace detail

/// Serializes `store` to `path` in the `.mpc` container format
/// (docs/FORMAT.md). Overwrites an existing file. Throws IoError on any
/// filesystem failure.
void WriteColumnar(const EventStore& store, const std::string& path);

/// Owning load: reads `path`, verifies the header, directory and every
/// section checksum, and copies the columns into a fresh EventStore.
/// Bit-identical to the store that was written. Throws IoError on any
/// corruption or I/O failure.
[[nodiscard]] EventStore ReadColumnar(const std::string& path);

struct ColumnarMapOptions {
  /// Verify the lat/lng/time column checksums at open. Off by default:
  /// eager verification touches every page, defeating the lazy-fault
  /// startup win that is the point of mapping (the header, directory,
  /// name table and trace table — everything decoded eagerly — are
  /// ALWAYS verified). Turn on when reading files from untrusted media.
  bool verify_checksums = false;
};

/// A read-only memory-mapped `.mpc` file. Views returned by View() point
/// straight into the mapping (zero copy for the columns); the name table
/// and trace descriptors are decoded eagerly at open (they are O(users +
/// traces) metadata, not bulk data). The mapping lives until destruction;
/// every view must not outlive the MappedColumnar it came from.
///
/// Falls back to an owned heap buffer on platforms without mmap — the API
/// and validation behaviour are identical, only the laziness is lost.
class MappedColumnar {
 public:
  MappedColumnar() = default;
  MappedColumnar(MappedColumnar&& other) noexcept;
  MappedColumnar& operator=(MappedColumnar&& other) noexcept;
  MappedColumnar(const MappedColumnar&) = delete;
  MappedColumnar& operator=(const MappedColumnar&) = delete;
  ~MappedColumnar();

  /// Maps `path` and validates it (see ColumnarMapOptions for how much).
  /// Throws IoError on corruption or I/O failure.
  [[nodiscard]] static MappedColumnar Open(const std::string& path,
                                           ColumnarMapOptions options = {});

  [[nodiscard]] std::size_t TraceCount() const noexcept {
    return traces_.size();
  }
  [[nodiscard]] std::size_t EventCount() const noexcept { return events_; }
  [[nodiscard]] std::size_t UserCount() const noexcept {
    return names_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return traces_.empty(); }

  /// User id of trace `t` (dense, < UserCount()).
  [[nodiscard]] UserId TraceUser(std::size_t trace) const {
    return traces_[trace].user;
  }
  /// Event count of trace `t`.
  [[nodiscard]] std::size_t TraceSize(std::size_t trace) const {
    return traces_[trace].end - traces_[trace].begin;
  }

  /// External name for a dense id ("user<N>" fallback, like Dataset).
  [[nodiscard]] std::string UserName(UserId id) const;
  /// Dense id -> name table (decoded at open; owned by this object).
  [[nodiscard]] std::span<const std::string> names() const noexcept {
    return names_;
  }

  /// Zero-copy view of one trace: the lat/lng/time spans alias the mapping.
  [[nodiscard]] TraceView View(std::size_t trace) const;

  /// Zero-copy view of the whole file. O(TraceCount) descriptor setup,
  /// zero event copies. The mapping must outlive the view.
  [[nodiscard]] DatasetView View() const;

  /// Materializes an owning AoS Dataset (copies every event) — equivalent
  /// to ReadColumnar(path).ToDataset().
  [[nodiscard]] Dataset ToDataset() const;

 private:
  const std::byte* base_ = nullptr;  // mapping (or owned buffer) start
  std::size_t size_ = 0;             // mapped length in bytes
  bool is_mmap_ = false;             // true: munmap on destroy
  std::vector<std::byte> owned_;     // fallback storage when !is_mmap_

  const double* lat_ = nullptr;      // column pointers into base_
  const double* lng_ = nullptr;
  const util::Timestamp* time_ = nullptr;
  std::size_t events_ = 0;

  std::vector<EventStore::TraceRange> traces_;  // decoded trace table
  std::vector<std::string> names_;              // decoded name table

  void Reset() noexcept;
};

/// Convenience wrapper: MappedColumnar::Open.
[[nodiscard]] MappedColumnar MapColumnar(const std::string& path,
                                         ColumnarMapOptions options = {});

/// True if `path` ends in the `.mpc` columnar extension.
[[nodiscard]] bool IsColumnarPath(const std::string& path);

/// Extension-dispatched dataset load: `.mpc` files go through ReadColumnar
/// (owning, fully verified) and materialize to a Dataset; everything else
/// is read as native CSV (ReadCsvFile, byte-identical at any worker
/// count). Throws IoError on failure.
[[nodiscard]] Dataset LoadDataset(const std::string& path);

/// Extension-dispatched dataset save: `.mpc` writes the columnar
/// container, everything else the native CSV. Throws IoError on failure.
void SaveDataset(const Dataset& dataset, const std::string& path);

}  // namespace mobipriv::model
