// Non-owning span views over mobility data, the common currency of every
// batch kernel after the columnar refactor.
//
// The same kernel must run over every storage layout the library holds:
//   * AoS — model::Trace / model::Dataset (std::vector<Event>), the
//     mutation-friendly layout mechanisms produce,
//   * SoA — model::EventStore (contiguous lat / lng / time columns), the
//     scan-friendly layout ingestion and sharding produce, and
//   * mapped — model::MappedColumnar (`.mpc` files, docs/FORMAT.md),
//     whose views alias a read-only mmap of the on-disk columns.
// StridedSpan bridges them: a (pointer, count, byte-stride) triple views a
// column either inside an Event array (stride == sizeof(Event)) or inside a
// flat column (stride == sizeof(T)) with zero copies either way.
//
// Views never own memory. The backing Dataset / EventStore must outlive
// every view derived from it; views are cheap to copy and to pass by value.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "geo/bounding_box.h"
#include "model/trace.h"

namespace mobipriv::model {

class Dataset;

/// Read-only view of `count` values of type T laid out every `stride` bytes.
/// A plain std::span is the stride == sizeof(T) special case.
template <typename T>
class StridedSpan {
 public:
  StridedSpan() = default;
  StridedSpan(const T* first, std::size_t count, std::size_t stride_bytes)
      : data_(reinterpret_cast<const std::byte*>(first)),
        count_(count),
        stride_(stride_bytes) {}

  /// Value `i` (no bounds check, like std::span). The backing storage
  /// must outlive the span.
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return *reinterpret_cast<const T*>(data_ + i * stride_);
  }
  /// Number of viewed values.
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

 private:
  const std::byte* data_ = nullptr;
  std::size_t count_ = 0;
  std::size_t stride_ = 0;
};

/// Non-owning view of one trace: user id plus lat / lng / time columns.
/// Constructible over a Trace (AoS) or EventStore columns (SoA) at zero cost.
class TraceView {
 public:
  TraceView() = default;
  TraceView(UserId user, StridedSpan<double> lat, StridedSpan<double> lng,
            StridedSpan<util::Timestamp> time)
      : user_(user), lat_(lat), lng_(lng), time_(time) {}

  /// Zero-copy view over an AoS trace (strides through its Event array).
  [[nodiscard]] static TraceView Of(const Trace& trace);

  /// Dense id of the trace's user (kInvalidUser for anonymous views).
  [[nodiscard]] UserId user() const noexcept { return user_; }
  /// Number of events in the trace.
  [[nodiscard]] std::size_t size() const noexcept { return time_.size(); }
  [[nodiscard]] bool empty() const noexcept { return time_.empty(); }

  /// Column reads for fix `i` (no bounds check; i < size()).
  [[nodiscard]] double lat(std::size_t i) const { return lat_[i]; }
  [[nodiscard]] double lng(std::size_t i) const { return lng_[i]; }
  [[nodiscard]] util::Timestamp time(std::size_t i) const { return time_[i]; }
  /// Fix `i` assembled as a LatLng (two column reads).
  [[nodiscard]] geo::LatLng position(std::size_t i) const {
    return geo::LatLng{lat_[i], lng_[i]};
  }
  /// Fix `i` assembled as an owning Event value.
  [[nodiscard]] Event event(std::size_t i) const {
    return Event{position(i), time_[i]};
  }

  /// Duration in seconds between first and last fix (0 if < 2 events).
  [[nodiscard]] util::Timestamp Duration() const noexcept {
    return size() < 2 ? 0 : time_[size() - 1] - time_[0];
  }

  /// Geographic path length in metres (haversine over consecutive fixes) —
  /// same arithmetic as Trace::LengthMeters, term for term.
  [[nodiscard]] double LengthMeters() const noexcept;

  [[nodiscard]] geo::GeoBoundingBox BoundingBox() const;

  /// Materializes an owning Trace (copies the events).
  [[nodiscard]] Trace Materialize() const;

  /// Same spans under a different user id — how shard-local views are
  /// re-labelled into a global id space without touching event data.
  [[nodiscard]] TraceView WithUser(UserId user) const {
    TraceView out = *this;
    out.user_ = user;
    return out;
  }

 private:
  UserId user_ = kInvalidUser;
  StridedSpan<double> lat_;
  StridedSpan<double> lng_;
  StridedSpan<util::Timestamp> time_;
};

/// Position linearly interpolated at time `t` (clamped to the view's range).
/// Requires a non-empty, time-ordered view; mirrors model::InterpolateAt.
[[nodiscard]] geo::LatLng InterpolateAt(const TraceView& trace,
                                        util::Timestamp t);

/// Non-owning view of a whole dataset: a list of trace views plus the dense
/// id -> name table (may be empty for anonymous/synthetic views).
class DatasetView {
 public:
  DatasetView() = default;
  DatasetView(std::vector<TraceView> traces, std::size_t user_count,
              std::span<const std::string> names)
      : traces_(std::move(traces)), user_count_(user_count), names_(names) {}

  /// View over an AoS dataset. O(TraceCount) setup, zero event copies.
  [[nodiscard]] static DatasetView Of(const Dataset& dataset);

  /// All trace views, in dataset order.
  [[nodiscard]] const std::vector<TraceView>& traces() const noexcept {
    return traces_;
  }
  /// Trace `i` (no bounds check).
  [[nodiscard]] const TraceView& trace(std::size_t i) const {
    return traces_[i];
  }
  [[nodiscard]] std::size_t TraceCount() const noexcept {
    return traces_.size();
  }
  /// Number of users in the underlying id space (>= ids seen in traces).
  [[nodiscard]] std::size_t UserCount() const noexcept { return user_count_; }
  /// Total events across all traces. O(TraceCount).
  [[nodiscard]] std::size_t EventCount() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return traces_.empty(); }

  /// External name for a dense id ("user<N>" fallback, like Dataset).
  [[nodiscard]] std::string UserName(UserId id) const;
  [[nodiscard]] std::span<const std::string> names() const noexcept {
    return names_;
  }

  [[nodiscard]] geo::GeoBoundingBox BoundingBox() const;

  /// Materializes an owning Dataset (re-interns names in id order, copies
  /// every event).
  [[nodiscard]] Dataset Materialize() const;

 private:
  std::vector<TraceView> traces_;
  std::size_t user_count_ = 0;
  std::span<const std::string> names_;
};

/// Process-wide count of DatasetView::Materialize calls (full-dataset
/// copies; per-trace materialization is not counted). The scenario
/// engine's contract is that mmap-fed sources reach mechanisms and
/// evaluators without any full materialization — tests pin that by
/// sampling this counter around an engine run.
[[nodiscard]] std::size_t FullMaterializeCount() noexcept;

/// Process-wide count of TraceView::Materialize calls (per-trace copies:
/// one owning std::vector<Event> built from a view). The SoA-native
/// mechanism path (Mechanism::ApplyToStore with a columns kernel) performs
/// ZERO of these — kernels read the view's columns and write column
/// buffers; only the legacy adapters (default ApplyToTraceColumns,
/// EventStore::ToDataset) copy traces. test_scenario_engine pins that an
/// engine grid over an mmap'd `.mpc` source leaves this counter unchanged.
[[nodiscard]] std::size_t TraceCopyCount() noexcept;

}  // namespace mobipriv::model
