// A Dataset is the publication unit: one trace per (pseudonymous) user plus
// the mapping from external string identifiers to dense UserIds. Mechanisms
// transform whole datasets; attacks consume them.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "geo/bounding_box.h"
#include "model/trace.h"

namespace mobipriv::model {

class Dataset {
 public:
  Dataset() = default;

  /// Registers (or looks up) the dense id for an external user name.
  UserId InternUser(const std::string& name);

  /// External name for a dense id ("user<N>" fallback for ids created
  /// without a name, e.g. by the synthetic generator).
  [[nodiscard]] std::string UserName(UserId id) const;

  /// Dense id for a known external name.
  [[nodiscard]] std::optional<UserId> FindUser(const std::string& name) const;

  /// Adds a trace. The trace's user id must have been interned (or use
  /// AddTraceForNewUser). Multiple traces for the same user are allowed —
  /// e.g. one per day — and kept in insertion order.
  void AddTrace(Trace trace);

  /// Convenience: interns `name` and adds `events` as that user's trace.
  UserId AddTraceForUser(const std::string& name, std::vector<Event> events);

  [[nodiscard]] const std::vector<Trace>& traces() const noexcept {
    return traces_;
  }
  /// Mutable access to the traces. Event-level edits are always safe;
  /// changing a trace's *user* (or reordering/erasing traces) invalidates
  /// the per-user index — call RebuildUserIndex() afterwards.
  [[nodiscard]] std::vector<Trace>& mutable_traces() noexcept {
    return traces_;
  }
  [[nodiscard]] std::size_t TraceCount() const noexcept {
    return traces_.size();
  }
  [[nodiscard]] std::size_t UserCount() const noexcept {
    return names_.size();
  }
  [[nodiscard]] std::size_t EventCount() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return traces_.empty(); }

  /// Indices into traces() for all traces of a given user, in insertion
  /// order. O(1): served from a per-user index maintained by AddTrace.
  /// The reference stays valid until the next non-const dataset operation.
  /// Debug builds assert the index is consistent with traces() on every
  /// call, so a forgotten RebuildUserIndex() fails fast instead of
  /// silently returning stale indices.
  [[nodiscard]] const std::vector<std::size_t>& TracesOfUser(
      UserId user) const;

  /// Rebuilds the per-user trace index after out-of-band mutation through
  /// mutable_traces().
  ///
  /// INVARIANT: TracesOfUser is only correct while, for every user u,
  /// traces_by_user_[u] lists exactly the indices i with
  /// traces()[i].user() == u, in increasing order. AddTrace maintains
  /// this; event-level edits through mutable_traces() preserve it; any
  /// mutation that changes a trace's *user* or reorders/erases traces
  /// breaks it and MUST be followed by RebuildUserIndex() before the next
  /// TracesOfUser call (debug builds assert this).
  void RebuildUserIndex();

  /// Dense id -> external name table (names for every interned user).
  [[nodiscard]] std::span<const std::string> names() const noexcept {
    return names_;
  }

  [[nodiscard]] geo::GeoBoundingBox BoundingBox() const;

  /// Sorts every trace's events by time.
  void SortAll();

  /// Datasets are heavy; copying must be explicit.
  [[nodiscard]] Dataset Clone() const { return *this; }

 private:
  void IndexTrace(std::size_t trace_index);
  // Debug-only: true iff traces_by_user_ exactly matches traces_ (the
  // TracesOfUser invariant). O(TraceCount) — asserted, never shipped.
  [[nodiscard]] bool UserIndexConsistent() const;

  std::vector<std::string> names_;  // dense id -> external name
  std::unordered_map<std::string, UserId> ids_;
  std::vector<Trace> traces_;
  // user id -> indices into traces_, maintained by AddTrace. Sized to the
  // largest indexed user id + 1; kInvalidUser is never indexed.
  std::vector<std::vector<std::size_t>> traces_by_user_;
};

}  // namespace mobipriv::model
