// GeoJSON export (RFC 7946): renders datasets, POIs and mix-zones as
// FeatureCollections that drop into any map viewer (geojson.io, QGIS,
// Leaflet). This is how you *look* at Figure 1: export the three pipeline
// stages and overlay them.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "geo/projection.h"
#include "mechanisms/mixzone.h"
#include "model/dataset.h"
#include "synth/poi_universe.h"

namespace mobipriv::model {

struct GeoJsonOptions {
  /// Emit one LineString per trace (true) and/or one Point per event
  /// (false keeps files small for dense data).
  bool traces_as_lines = true;
  bool events_as_points = false;
  /// Properties carried on each feature.
  bool include_user_names = true;
  bool include_timestamps = true;
};

/// Serializes the dataset as a FeatureCollection.
void WriteGeoJson(const Dataset& dataset, std::ostream& out,
                  const GeoJsonOptions& options = {});
[[nodiscard]] std::string ToGeoJson(const Dataset& dataset,
                                    const GeoJsonOptions& options = {});

/// Mix-zones as circle-approximation Polygons (32-gon) with occurrence
/// counts; `projection` must be the frame the report's centres live in
/// (the dataset projection used during Apply).
void WriteZonesGeoJson(const std::vector<mech::MixZoneInfo>& zones,
                       const geo::LocalProjection& projection,
                       std::ostream& out);

/// POI sites as Points with category properties (synthetic ground truth).
void WritePoiSitesGeoJson(const synth::PoiUniverse& universe,
                          const geo::LocalProjection& projection,
                          std::ostream& out);

/// Escapes a string for embedding in JSON (quotes, control characters).
[[nodiscard]] std::string JsonEscape(const std::string& text);

}  // namespace mobipriv::model
