#include "model/columnar_file.h"

#include "model/atomic_file.h"
#include "model/columnar_layout.h"
#include "util/fault.h"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string_view>
#include <unordered_set>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define MOBIPRIV_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define MOBIPRIV_HAS_MMAP 0
#endif

// The container is specified little-endian (docs/FORMAT.md). Scalars go
// through memcpy, columns are written/mapped verbatim, so the build is
// gated on a little-endian host; a big-endian port needs byte-swapping
// load/store helpers here (and cannot use the zero-copy mapped path).
static_assert(std::endian::native == std::endian::little,
              "mobipriv columnar files require a little-endian host");

namespace mobipriv::model {

// Layout constants (kHeaderSize, section ids, AlignUp8, ...) live in
// model/columnar_layout.h so the appender shares them.
using namespace detail;  // NOLINT(google-build-using-namespace)

namespace {

[[noreturn]] void Corrupt(const std::string& path, const std::string& what) {
  throw IoError("columnar file " + path + ": " + what);
}

// Appends the OS-level cause (": No such file or directory", ...) when
// errno carries one — quarantine reports and supervisor retry logs then
// say WHY an open failed, not just that it did.
std::string ErrnoSuffix() {
  if (errno == 0) return {};
  return std::string(": ") + std::strerror(errno);
}

// Payload location of one known section, resolved from the directory.
struct SectionInfo {
  std::size_t offset = 0;
  std::size_t size = 0;
  std::uint64_t checksum = 0;
  bool seen = false;
};

// Fully validated file layout: header counts plus the five known
// sections. Produced by ParseAndValidate, consumed by both load paths.
struct ParsedLayout {
  std::uint64_t user_count = 0;
  std::uint64_t trace_count = 0;
  std::uint64_t event_count = 0;
  SectionInfo sections[kKnownSections];  // index = id - 1

  [[nodiscard]] const SectionInfo& section(std::uint32_t id) const {
    return sections[id - 1];
  }
};

// Validates magic, version, header/directory checksums, section bounds
// and sizes, and the NAME/TRACE section checksums (those are decoded
// eagerly by every path). Column checksums are verified only when
// `verify_columns` — ReadColumnar always, MapColumnar per options.
ParsedLayout ParseAndValidate(const std::byte* data, std::size_t size,
                              const std::string& path, bool verify_columns) {
  if (size < kHeaderSize) Corrupt(path, "shorter than the 64-byte header");
  if (std::memcmp(data, kColumnarMagic.data(), kColumnarMagic.size()) != 0) {
    Corrupt(path, "bad magic (not a .mpc columnar file)");
  }
  const std::uint32_t version = GetU32(data + 8);
  if (version != kColumnarFormatVersion) {
    Corrupt(path, "unsupported format version " + std::to_string(version) +
                      " (reader supports " +
                      std::to_string(kColumnarFormatVersion) + ")");
  }
  if (GetU64(data + 48) != Fnv1a64(data, 48)) {
    Corrupt(path, "header checksum mismatch");
  }
  const std::uint32_t section_count = GetU32(data + 12);
  if (section_count < kKnownSections || section_count > kMaxSectionCount) {
    Corrupt(path, "implausible section count");
  }

  ParsedLayout layout;
  layout.user_count = GetU64(data + 16);
  layout.trace_count = GetU64(data + 24);
  layout.event_count = GetU64(data + 32);
  if (GetU64(data + 40) != size) {
    Corrupt(path, "recorded file size disagrees with actual size (truncated?)");
  }

  const std::size_t dir_bytes =
      static_cast<std::size_t>(section_count) * kDirEntrySize;
  if (size - kHeaderSize < dir_bytes) {
    Corrupt(path, "section directory extends past end of file");
  }
  if (GetU64(data + 56) != Fnv1a64(data + kHeaderSize, dir_bytes)) {
    Corrupt(path, "section directory checksum mismatch");
  }

  // Size each known section must have, derived from the header counts
  // (counts were bounded above by the file size check below).
  const auto expected_size = [&](std::uint32_t id) -> std::uint64_t {
    switch (id) {
      case kSectionName:
        return (layout.user_count + 1) * 8;  // offsets; blob comes on top
      case kSectionTrace:
        return layout.trace_count * kTraceRecordSize;
      default:
        return layout.event_count * 8;
    }
  };
  // Counts that would overflow the size arithmetic can never fit in the
  // file anyway; reject them before multiplying.
  if (layout.user_count > size / 8 || layout.trace_count > size / kTraceRecordSize ||
      layout.event_count > size / 8) {
    Corrupt(path, "header counts exceed what the file could hold");
  }

  for (std::size_t i = 0; i < section_count; ++i) {
    const std::byte* entry = data + kHeaderSize + i * kDirEntrySize;
    const std::uint32_t id = GetU32(entry);
    const std::uint64_t offset = GetU64(entry + 8);
    const std::uint64_t payload = GetU64(entry + 16);
    if (offset % 8 != 0) Corrupt(path, "section offset not 8-byte aligned");
    if (offset < kHeaderSize + dir_bytes || offset > size ||
        payload > size - offset) {
      Corrupt(path, "section payload out of file bounds");
    }
    if (id == 0 || id > kKnownSections) continue;  // unknown: ignored
    SectionInfo& info = layout.sections[id - 1];
    if (info.seen) Corrupt(path, "duplicate section id in directory");
    info.seen = true;
    info.offset = static_cast<std::size_t>(offset);
    info.size = static_cast<std::size_t>(payload);
    info.checksum = GetU64(entry + 24);
    const std::uint64_t expect = expected_size(id);
    const bool size_ok = id == kSectionName ? payload >= expect
                                            : payload == expect;
    if (!size_ok) {
      Corrupt(path, "section size disagrees with header counts");
    }
  }
  for (std::size_t i = 0; i < kKnownSections; ++i) {
    if (!layout.sections[i].seen) {
      Corrupt(path, "required section missing from directory");
    }
  }

  const auto verify = [&](std::uint32_t id, const char* name) {
    const SectionInfo& info = layout.section(id);
    if (Fnv1a64(data + info.offset, info.size) != info.checksum) {
      Corrupt(path, std::string(name) + " section checksum mismatch");
    }
  };
  verify(kSectionName, "name");
  verify(kSectionTrace, "trace");
  if (verify_columns) {
    verify(kSectionLat, "lat");
    verify(kSectionLng, "lng");
    verify(kSectionTime, "time");
  }
  return layout;
}

std::vector<std::string> DecodeNames(const std::byte* data,
                                     const ParsedLayout& layout,
                                     const std::string& path) {
  const SectionInfo& s = layout.section(kSectionName);
  std::size_t consumed = 0;
  std::vector<std::string> names =
      detail::DecodeNameTable(data + s.offset, s.size, layout.user_count,
                              &consumed, "columnar file " + path);
  if (consumed != s.size) {
    Corrupt(path, "name blob has trailing bytes not covered by the table");
  }
  return names;
}

std::vector<EventStore::TraceRange> DecodeTraces(const std::byte* data,
                                                 const ParsedLayout& layout,
                                                 const std::string& path) {
  const SectionInfo& s = layout.section(kSectionTrace);
  std::vector<EventStore::TraceRange> traces;
  traces.reserve(static_cast<std::size_t>(layout.trace_count));
  for (std::uint64_t t = 0; t < layout.trace_count; ++t) {
    const std::byte* rec = data + s.offset + t * kTraceRecordSize;
    EventStore::TraceRange range;
    range.user = GetU32(rec);
    range.begin = static_cast<std::size_t>(GetU64(rec + 8));
    range.end = static_cast<std::size_t>(GetU64(rec + 16));
    if (range.begin > range.end || range.end > layout.event_count) {
      Corrupt(path, "trace record range out of column bounds");
    }
    if (range.user >= layout.user_count) {
      Corrupt(path, "trace record user id out of range");
    }
    traces.push_back(range);
  }
  return traces;
}

namespace fault = util::fault;

std::vector<std::byte> SlurpFile(const std::string& path) {
  if (MOBIPRIV_FAULT_POINT(fault::points::kColumnarReadOpen)) {
    throw IoError("injected fault (" +
                  std::string(fault::points::kColumnarReadOpen) +
                  "): cannot open " + path);
  }
  errno = 0;
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open " + path + ErrnoSuffix());
  in.seekg(0, std::ios::end);
  const std::streamoff len = in.tellg();
  if (len < 0) throw IoError("cannot stat " + path + ErrnoSuffix());
  in.seekg(0);
  std::size_t want = static_cast<std::size_t>(len);
  // Injected short read: hand back only a prefix of the file, exactly
  // what a failing disk or a concurrent truncation produces. The format
  // validation (recorded size, section bounds, checksums) must turn this
  // into a clean IoError downstream — never an out-of-bounds read.
  if (fault::Enabled()) {
    const fault::Decision d =
        fault::Evaluate(fault::points::kColumnarReadShort);
    if (d.fail) want = std::min(want, d.io_cap);
  }
  std::vector<std::byte> bytes(want);
  if (want > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()),
               static_cast<std::streamsize>(want))) {
    throw IoError("cannot read " + path + ErrnoSuffix());
  }
  return bytes;
}

}  // namespace

std::uint64_t Fnv1a64(const void* data, std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

namespace detail {

void PutU32(std::byte* p, std::uint32_t v) noexcept { std::memcpy(p, &v, 4); }
void PutU64(std::byte* p, std::uint64_t v) noexcept { std::memcpy(p, &v, 8); }
std::uint32_t GetU32(const std::byte* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t GetU64(const std::byte* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

std::vector<std::byte> EncodeNameTable(std::span<const std::string> names) {
  std::size_t blob_size = 0;
  for (const std::string& name : names) blob_size += name.size();
  std::vector<std::byte> payload((names.size() + 1) * 8 + blob_size);
  std::uint64_t cursor = 0;
  std::byte* blob = payload.data() + (names.size() + 1) * 8;
  for (std::size_t i = 0; i < names.size(); ++i) {
    PutU64(payload.data() + i * 8, cursor);
    std::memcpy(blob + cursor, names[i].data(), names[i].size());
    cursor += names[i].size();
  }
  PutU64(payload.data() + names.size() * 8, cursor);
  return payload;
}

std::vector<std::string> DecodeNameTable(const std::byte* payload,
                                         std::size_t available,
                                         std::uint64_t count,
                                         std::size_t* consumed,
                                         const std::string& context) {
  const auto fail = [&context](const std::string& what) {
    throw IoError(context + ": " + what);
  };
  // Overflow-safe bound before the multiply below.
  if (count > available / 8) fail("name count exceeds available bytes");
  const std::size_t table_bytes = (static_cast<std::size_t>(count) + 1) * 8;
  if (table_bytes > available) fail("name offset table exceeds available bytes");
  const std::size_t blob_available = available - table_bytes;
  const std::byte* blob = payload + table_bytes;

  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(count));
  std::unordered_set<std::string_view> seen;
  seen.reserve(static_cast<std::size_t>(count));
  std::uint64_t prev = GetU64(payload);
  if (prev != 0) fail("name offset table does not start at 0");
  for (std::uint64_t i = 1; i <= count; ++i) {
    const std::uint64_t end = GetU64(payload + i * 8);
    if (end < prev || end > blob_available) {
      fail("name offset table not monotonic within the blob");
    }
    // The views index the (stable) blob, not the growing names vector.
    const std::string_view name(reinterpret_cast<const char*>(blob + prev),
                                static_cast<std::size_t>(end - prev));
    // Uniqueness is required by every in-memory consumer (name -> id
    // maps); enforcing it here keeps the owning and mapped load paths
    // agreeing on which files are valid.
    if (!seen.insert(name).second) fail("duplicate user name");
    names.emplace_back(name);
    prev = end;
  }
  *consumed = table_bytes + static_cast<std::size_t>(prev);
  return names;
}

std::uint64_t Fnv1a64Update(std::uint64_t h, const void* data,
                            std::size_t size) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::vector<std::byte> EncodeTraceTable(
    std::span<const EventStore::TraceRange> traces) {
  std::vector<std::byte> payload(traces.size() * kTraceRecordSize);
  for (std::size_t t = 0; t < traces.size(); ++t) {
    std::byte* rec = payload.data() + t * kTraceRecordSize;
    PutU32(rec, traces[t].user);
    PutU32(rec + 4, 0);
    PutU64(rec + 8, traces[t].begin);
    PutU64(rec + 16, traces[t].end);
  }
  return payload;
}

std::vector<std::byte> BuildColumnarHead(
    std::uint64_t user_count, std::uint64_t trace_count,
    std::uint64_t event_count,
    const std::array<std::size_t, kKnownSections>& section_sizes,
    const std::array<std::uint64_t, kKnownSections>& section_checksums,
    ColumnarLayout* layout) {
  // Lay the five sections out back to back, each 8-byte aligned; the file
  // ends at the last payload byte (no trailing padding).
  layout->sizes = section_sizes;
  layout->checksums = section_checksums;
  std::size_t cursor = AlignUp8(kHeaderSize + kKnownSections * kDirEntrySize);
  for (std::size_t i = 0; i < kKnownSections; ++i) {
    layout->offsets[i] = cursor;
    cursor = AlignUp8(cursor + section_sizes[i]);
  }
  layout->file_size =
      layout->offsets[kKnownSections - 1] + section_sizes[kKnownSections - 1];

  // Header + directory, checksummed over their exact byte images.
  std::vector<std::byte> head(kHeaderSize + kKnownSections * kDirEntrySize,
                              std::byte{0});
  std::memcpy(head.data(), kColumnarMagic.data(), kColumnarMagic.size());
  PutU32(head.data() + 8, kColumnarFormatVersion);
  PutU32(head.data() + 12, kKnownSections);
  PutU64(head.data() + 16, user_count);
  PutU64(head.data() + 24, trace_count);
  PutU64(head.data() + 32, event_count);
  PutU64(head.data() + 40, layout->file_size);
  for (std::size_t i = 0; i < kKnownSections; ++i) {
    std::byte* entry = head.data() + kHeaderSize + i * kDirEntrySize;
    PutU32(entry, static_cast<std::uint32_t>(i + 1));  // ids 1..5 in order
    PutU32(entry + 4, 0);
    PutU64(entry + 8, layout->offsets[i]);
    PutU64(entry + 16, layout->sizes[i]);
    PutU64(entry + 24, layout->checksums[i]);
  }
  PutU64(head.data() + 48, Fnv1a64(head.data(), 48));
  PutU64(head.data() + 56,
         Fnv1a64(head.data() + kHeaderSize, kKnownSections * kDirEntrySize));
  return head;
}

}  // namespace detail

void WriteColumnar(const EventStore& store, const std::string& path) {
  // NAME payload: (user_count + 1) u64 offsets into the blob, then the
  // UTF-8 blob itself. TRACE payload: fixed 24-byte records.
  const std::vector<std::byte> name_payload =
      detail::EncodeNameTable(store.names());
  const std::vector<std::byte> trace_payload =
      detail::EncodeTraceTable(store.trace_table());

  const void* payloads[kKnownSections] = {
      name_payload.data(), trace_payload.data(), store.lat().data(),
      store.lng().data(), store.time().data()};
  std::array<std::size_t, kKnownSections> sizes = {
      name_payload.size(), trace_payload.size(), store.lat().size_bytes(),
      store.lng().size_bytes(), store.time().size_bytes()};
  std::array<std::uint64_t, kKnownSections> checksums{};
  for (std::size_t i = 0; i < kKnownSections; ++i) {
    checksums[i] = Fnv1a64(payloads[i], sizes[i]);
  }
  detail::ColumnarLayout layout;
  const std::vector<std::byte> head = detail::BuildColumnarHead(
      store.UserCount(), store.TraceCount(), store.EventCount(), sizes,
      checksums, &layout);

  // Gather-list of the exact on-disk byte image (header+directory, then
  // each section with its alignment padding), published through the
  // crash-safe temp-file -> fsync -> rename protocol: a crash or injected
  // fault at ANY step leaves `path` untouched — no torn `.mpc` file ever
  // carries the final name (docs/ROBUSTNESS.md).
  static constexpr std::byte kPad[8] = {};
  std::vector<std::span<const std::byte>> parts;
  parts.reserve(1 + 2 * kKnownSections);
  parts.emplace_back(head.data(), head.size());
  std::size_t written = head.size();
  for (std::size_t i = 0; i < kKnownSections; ++i) {
    if (layout.offsets[i] > written) {
      parts.emplace_back(kPad, layout.offsets[i] - written);
    }
    parts.emplace_back(static_cast<const std::byte*>(payloads[i]), sizes[i]);
    written = layout.offsets[i] + sizes[i];
  }
  WriteFileAtomic(path, parts,
                  {.open = util::fault::points::kColumnarWriteOpen,
                   .write = util::fault::points::kColumnarWriteShort,
                   .commit = util::fault::points::kColumnarWriteCommit});
}

EventStore ReadColumnar(const std::string& path) {
  const std::vector<std::byte> bytes = SlurpFile(path);
  const ParsedLayout layout =
      ParseAndValidate(bytes.data(), bytes.size(), path,
                       /*verify_columns=*/true);
  std::vector<std::string> names = DecodeNames(bytes.data(), layout, path);
  std::vector<EventStore::TraceRange> traces =
      DecodeTraces(bytes.data(), layout, path);

  const std::size_t n = static_cast<std::size_t>(layout.event_count);
  std::vector<double> lat(n);
  std::vector<double> lng(n);
  std::vector<util::Timestamp> time(n);
  if (n > 0) {
    std::memcpy(lat.data(), bytes.data() + layout.section(kSectionLat).offset,
                n * 8);
    std::memcpy(lng.data(), bytes.data() + layout.section(kSectionLng).offset,
                n * 8);
    std::memcpy(time.data(),
                bytes.data() + layout.section(kSectionTime).offset, n * 8);
  }
  try {
    return EventStore::FromColumns(std::move(names), std::move(traces),
                                   std::move(lat), std::move(lng),
                                   std::move(time));
  } catch (const std::invalid_argument& e) {
    Corrupt(path, e.what());
  }
}

// ---- MappedColumnar ---------------------------------------------------------

void MappedColumnar::Reset() noexcept {
#if MOBIPRIV_HAS_MMAP
  if (is_mmap_ && base_ != nullptr) {
    ::munmap(const_cast<std::byte*>(base_), size_);
  }
#endif
  base_ = nullptr;
  size_ = 0;
  is_mmap_ = false;
  owned_.clear();
  lat_ = nullptr;
  lng_ = nullptr;
  time_ = nullptr;
  events_ = 0;
  traces_.clear();
  names_.clear();
}

MappedColumnar::~MappedColumnar() { Reset(); }

MappedColumnar::MappedColumnar(MappedColumnar&& other) noexcept {
  *this = std::move(other);
}

MappedColumnar& MappedColumnar::operator=(MappedColumnar&& other) noexcept {
  if (this == &other) return *this;
  Reset();
  base_ = std::exchange(other.base_, nullptr);
  size_ = std::exchange(other.size_, 0);
  is_mmap_ = std::exchange(other.is_mmap_, false);
  owned_ = std::move(other.owned_);
  lat_ = std::exchange(other.lat_, nullptr);
  lng_ = std::exchange(other.lng_, nullptr);
  time_ = std::exchange(other.time_, nullptr);
  events_ = std::exchange(other.events_, 0);
  traces_ = std::move(other.traces_);
  names_ = std::move(other.names_);
  other.owned_.clear();
  other.traces_.clear();
  other.names_.clear();
  return *this;
}

MappedColumnar MappedColumnar::Open(const std::string& path,
                                    ColumnarMapOptions options) {
  if (MOBIPRIV_FAULT_POINT(fault::points::kColumnarMapOpen)) {
    throw IoError("injected fault (" +
                  std::string(fault::points::kColumnarMapOpen) +
                  "): cannot mmap " + path);
  }
  MappedColumnar mapped;
#if MOBIPRIV_HAS_MMAP
  errno = 0;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw IoError("cannot open " + path + ErrnoSuffix());
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const std::string detail = ErrnoSuffix();
    ::close(fd);
    throw IoError("cannot stat " + path + detail);
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size > 0) {
    void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    const std::string detail = addr == MAP_FAILED ? ErrnoSuffix() : "";
    ::close(fd);
    if (addr == MAP_FAILED) throw IoError("cannot mmap " + path + detail);
    mapped.base_ = static_cast<const std::byte*>(addr);
    mapped.size_ = size;
    mapped.is_mmap_ = true;
  } else {
    ::close(fd);
  }
#else
  mapped.owned_ = SlurpFile(path);
  mapped.base_ = mapped.owned_.data();
  mapped.size_ = mapped.owned_.size();
#endif

  try {
    // ParseAndValidate checks the recorded file size against the actual
    // mapped length and every section's bounds BEFORE any column pointer
    // below is formed — a truncated file is a clean IoError here, never a
    // SIGBUS on first page touch past EOF.
    const ParsedLayout layout = ParseAndValidate(
        mapped.base_, mapped.size_, path, options.verify_checksums);
    mapped.names_ = DecodeNames(mapped.base_, layout, path);
    mapped.traces_ = DecodeTraces(mapped.base_, layout, path);
    mapped.events_ = static_cast<std::size_t>(layout.event_count);
    if (mapped.events_ > 0) {
      mapped.lat_ = reinterpret_cast<const double*>(
          mapped.base_ + layout.section(kSectionLat).offset);
      mapped.lng_ = reinterpret_cast<const double*>(
          mapped.base_ + layout.section(kSectionLng).offset);
      mapped.time_ = reinterpret_cast<const util::Timestamp*>(
          mapped.base_ + layout.section(kSectionTime).offset);
    }
  } catch (...) {
    mapped.Reset();
    throw;
  }
  return mapped;
}

std::string MappedColumnar::UserName(UserId id) const {
  if (id < names_.size()) return names_[id];
  return "user" + std::to_string(id);
}

TraceView MappedColumnar::View(std::size_t trace) const {
  const EventStore::TraceRange& range = traces_[trace];
  const std::size_t n = range.end - range.begin;
  return TraceView(
      range.user,
      StridedSpan<double>(n ? lat_ + range.begin : nullptr, n,
                          sizeof(double)),
      StridedSpan<double>(n ? lng_ + range.begin : nullptr, n,
                          sizeof(double)),
      StridedSpan<util::Timestamp>(n ? time_ + range.begin : nullptr, n,
                                   sizeof(util::Timestamp)));
}

DatasetView MappedColumnar::View() const {
  std::vector<TraceView> traces;
  traces.reserve(traces_.size());
  for (std::size_t t = 0; t < traces_.size(); ++t) {
    traces.push_back(View(t));
  }
  return DatasetView(std::move(traces), names_.size(), names_);
}

Dataset MappedColumnar::ToDataset() const { return View().Materialize(); }

MappedColumnar MapColumnar(const std::string& path,
                           ColumnarMapOptions options) {
  return MappedColumnar::Open(path, options);
}

// ---- Extension-dispatched convenience entry points --------------------------

bool IsColumnarPath(const std::string& path) {
  const std::string_view ext = kColumnarExtension;
  return path.size() >= ext.size() &&
         path.compare(path.size() - ext.size(), ext.size(), ext) == 0;
}

Dataset LoadDataset(const std::string& path) {
  if (IsColumnarPath(path)) return ReadColumnar(path).ToDataset();
  return ReadCsvFile(path);
}

void SaveDataset(const Dataset& dataset, const std::string& path) {
  if (IsColumnarPath(path)) {
    WriteColumnar(EventStore::FromDataset(dataset), path);
  } else {
    WriteCsvFile(dataset, path);
  }
}

}  // namespace mobipriv::model
