// Geolife corpus ingestion: walks the on-disk layout of the Microsoft
// Geolife dataset (Data/<user>/Trajectory/*.plt) and loads it into a
// Dataset — the exact real-life corpus family the paper's evaluation plan
// names. Drop the unpacked corpus next to the binaries and every bench can
// run on real data instead of the synthetic city.
#pragma once

#include <cstddef>
#include <string>

#include "model/dataset.h"

namespace mobipriv::model {

struct GeolifeLoadOptions {
  /// Load at most this many users (0 = all); users sort lexicographically.
  std::size_t max_users = 0;
  /// Load at most this many PLT files per user (0 = all).
  std::size_t max_files_per_user = 0;
};

/// Loads `root` (the directory containing the per-user folders, usually
/// ".../Geolife Trajectories 1.3/Data"). Each PLT file becomes one trace of
/// its user. Throws IoError if root is not a directory or a PLT file is
/// malformed.
[[nodiscard]] Dataset LoadGeolife(const std::string& root,
                                  const GeolifeLoadOptions& options = {});

}  // namespace mobipriv::model
