// Dataset serialization.
//
// Two formats are supported:
//   * "mobipriv CSV": header `user,lat,lng,timestamp`, one event per row,
//     timestamp either Unix seconds or "YYYY-MM-DD hh:mm:ss". This is the
//     library's native publication format.
//   * Geolife-style PLT: the per-user plain-text format of the Geolife
//     dataset the paper's evaluation plan targets (lat, lng, 0, altitude,
//     days-since-1899, date, time) — supported so real data can be dropped
//     in when licensing permits.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "model/dataset.h"

namespace mobipriv::model {

/// Raised on malformed input files.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Reads the native CSV format. Rows are grouped into one trace per user,
/// events sorted by time. Throws IoError with line information on malformed
/// rows. An optional header row is auto-detected and skipped.
[[nodiscard]] Dataset ReadCsv(std::istream& in);
[[nodiscard]] Dataset ReadCsvFile(const std::string& path);

/// Writes the native CSV format (with header).
void WriteCsv(const Dataset& dataset, std::ostream& out);
void WriteCsvFile(const Dataset& dataset, const std::string& path);

/// Parses one Geolife PLT stream as a single user's trace and adds it to
/// `dataset` under `user_name`. The 6 header lines are skipped.
void AppendPlt(Dataset& dataset, const std::string& user_name,
               std::istream& in);

}  // namespace mobipriv::model
