// Dataset serialization (text formats).
//
// Two text formats are supported here:
//   * "mobipriv CSV": header `user,lat,lng,timestamp`, one event per row,
//     timestamp either Unix seconds or "YYYY-MM-DD hh:mm:ss". This is the
//     library's native publication format.
//   * Geolife-style PLT: the per-user plain-text format of the Geolife
//     dataset the paper's evaluation plan targets (lat, lng, 0, altitude,
//     days-since-1899, date, time) — supported so real data can be dropped
//     in when licensing permits.
// The binary columnar `.mpc` container (parse once, then open in
// microseconds) lives in model/columnar_file.h; LoadDataset/SaveDataset
// there dispatch between it and this CSV reader by file extension.
//
// Ingestion is parallel and streaming-chunked: input splits into
// line-aligned byte ranges (util::SplitLineChunks) parsed concurrently on
// the thread pool and merged in file order. The determinism contract of the
// batch engine applies: same bytes in -> byte-identical Dataset out, at any
// worker count (MOBIPRIV_THREADS=1 included). Files using RFC-4180 quoted
// fields take the streaming serial reader instead (quoted fields may span
// lines, so they cannot be chunk-split); the two readers agree exactly on
// their common format.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>

#include "model/dataset.h"

namespace mobipriv::model {

/// Raised on malformed input files.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Reads the native CSV format. Rows are grouped into one trace per user,
/// events sorted by time. Throws IoError with line information on malformed
/// rows. An optional header row is auto-detected and skipped.
[[nodiscard]] Dataset ReadCsv(std::istream& in);
[[nodiscard]] Dataset ReadCsvFile(const std::string& path);

/// Core parallel reader over an in-memory buffer (ReadCsv/ReadCsvFile
/// slurp and delegate here). Byte-identical at any worker count.
[[nodiscard]] Dataset ReadCsvText(std::string_view text);

/// As ReadCsvText with explicit chunking bounds — the determinism contract
/// says the result is identical for EVERY (max_chunks, min_chunk_bytes);
/// tests use tiny chunks to exercise boundary handling on small inputs.
[[nodiscard]] Dataset ReadCsvTextChunked(std::string_view text,
                                         std::size_t max_chunks,
                                         std::size_t min_chunk_bytes);

/// The streaming single-pass reader (handles RFC-4180 quoting, including
/// fields spanning physical lines). ReadCsv routes quoted inputs here; on
/// quote-free input it must agree with ReadCsvText byte for byte (pinned
/// by test_parallel_determinism).
[[nodiscard]] Dataset ReadCsvStreaming(std::istream& in);

/// Writes the native CSV format (with header).
void WriteCsv(const Dataset& dataset, std::ostream& out);
void WriteCsvFile(const Dataset& dataset, const std::string& path);

/// Parses one Geolife PLT stream as a single user's trace and adds it to
/// `dataset` under `user_name`. The 6 header lines are skipped.
void AppendPlt(Dataset& dataset, const std::string& user_name,
               std::istream& in);

/// Parses the data rows of one PLT buffer (after the 6 header lines, which
/// must still be present). Events are returned unsorted (file order);
/// throws IoError with row information on malformed rows.
[[nodiscard]] std::vector<Event> ParsePltText(std::string_view text);

}  // namespace mobipriv::model
