#include "model/event_store.h"

#include <stdexcept>
#include <utility>

namespace mobipriv::model {

EventStore EventStore::FromDataset(const Dataset& dataset) {
  EventStore store;
  for (UserId id = 0; id < dataset.UserCount(); ++id) {
    store.InternUser(dataset.UserName(id));
  }
  store.ReserveTraces(dataset.TraceCount());
  store.ReserveEvents(dataset.EventCount());
  for (const Trace& trace : dataset.traces()) {
    store.AppendTrace(trace);
  }
  return store;
}

EventStore EventStore::FromColumns(std::vector<std::string> names,
                                   std::vector<TraceRange> traces,
                                   std::vector<double> lat,
                                   std::vector<double> lng,
                                   std::vector<util::Timestamp> time) {
  if (lat.size() != lng.size() || lat.size() != time.size()) {
    throw std::invalid_argument("EventStore::FromColumns: column lengths differ");
  }
  for (const TraceRange& range : traces) {
    if (range.begin > range.end || range.end > lat.size()) {
      throw std::invalid_argument(
          "EventStore::FromColumns: trace range out of bounds");
    }
    if (range.user >= names.size()) {
      throw std::invalid_argument(
          "EventStore::FromColumns: trace user id out of range");
    }
  }
  EventStore store;
  store.ids_.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (!store.ids_.emplace(names[i], static_cast<UserId>(i)).second) {
      throw std::invalid_argument(
          "EventStore::FromColumns: duplicate user name");
    }
  }
  store.names_ = std::move(names);
  store.traces_ = std::move(traces);
  store.lat_ = std::move(lat);
  store.lng_ = std::move(lng);
  store.time_ = std::move(time);
  return store;
}

UserId EventStore::InternUser(const std::string& name) {
  const auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  const auto id = static_cast<UserId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

std::size_t EventStore::AppendTrace(UserId user, const TraceView& events) {
  const std::size_t begin = lat_.size();
  const std::size_t n = events.size();
  for (std::size_t i = 0; i < n; ++i) {
    lat_.push_back(events.lat(i));
    lng_.push_back(events.lng(i));
    time_.push_back(events.time(i));
  }
  traces_.push_back(TraceRange{user, begin, begin + n});
  return traces_.size() - 1;
}

std::size_t EventStore::AppendTrace(const Trace& trace) {
  return AppendTrace(trace.user(), TraceView::Of(trace));
}

void EventStore::ReserveEvents(std::size_t events) {
  lat_.reserve(events);
  lng_.reserve(events);
  time_.reserve(events);
}

void EventStore::ReserveTraces(std::size_t traces) {
  traces_.reserve(traces);
}

std::string EventStore::UserName(UserId id) const {
  if (id < names_.size()) return names_[id];
  return "user" + std::to_string(id);
}

TraceView EventStore::View(std::size_t trace) const {
  const TraceRange& range = traces_[trace];
  const std::size_t n = range.end - range.begin;
  return TraceView(
      range.user,
      StridedSpan<double>(n ? &lat_[range.begin] : nullptr, n,
                          sizeof(double)),
      StridedSpan<double>(n ? &lng_[range.begin] : nullptr, n,
                          sizeof(double)),
      StridedSpan<util::Timestamp>(n ? &time_[range.begin] : nullptr, n,
                                   sizeof(util::Timestamp)));
}

DatasetView EventStore::View() const {
  std::vector<TraceView> traces;
  traces.reserve(traces_.size());
  for (std::size_t t = 0; t < traces_.size(); ++t) {
    traces.push_back(View(t));
  }
  return DatasetView(std::move(traces), names_.size(), names_);
}

Trace TraceBuffer::ToTrace(UserId user) const {
  std::vector<Event> events;
  events.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    events.push_back(Event{geo::LatLng{lat_[i], lng_[i]}, time_[i]});
  }
  return Trace(user, std::move(events));
}

Dataset EventStore::ToDataset() const {
  Dataset out;
  for (const std::string& name : names_) out.InternUser(name);
  for (std::size_t t = 0; t < traces_.size(); ++t) {
    out.AddTrace(View(t).Materialize());
  }
  return out;
}

}  // namespace mobipriv::model
