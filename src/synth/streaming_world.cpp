#include "synth/streaming_world.h"

#include <cassert>
#include <filesystem>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "geo/projection.h"
#include "model/columnar_append.h"
#include "model/sharded_dataset.h"
#include "synth/schedule.h"
#include "synth/simulator.h"
#include "util/rng.h"
#include "util/time_utils.h"

namespace mobipriv::synth {

namespace fs = std::filesystem;

StreamingWorldStats GenerateShardedWorld(const StreamingWorldConfig& config,
                                         const std::string& dir) {
  const PopulationConfig& pop = config.population;
  const std::size_t shard_count =
      config.shard_count == 0 ? 1 : config.shard_count;

  std::error_code ec;
  fs::create_directories(dir, ec);  // SaveShards-compatible: best effort,
                                    // the appender open reports failures.

  // The static world: same construction draws as SyntheticWorld, so the
  // city (network + POIs) for a given seed is the one tests know.
  util::Rng rng(pop.seed);
  util::Rng network_rng = rng.Split();
  util::Rng poi_rng = rng.Split();
  const geo::LocalProjection projection(pop.origin);
  const RoadNetwork network(pop.road, network_rng);
  const PoiUniverse universe(pop.pois, network, poi_rng);
  const Simulator simulator(network, universe, projection, pop.simulator);
  const auto hubs = universe.OfCategory(PoiCategory::kTransitHub);

  // One master draw; every agent's randomness derives from it by index, so
  // trajectories are independent of generation order and chunking.
  const std::uint64_t master = rng.NextU64();

  model::ColumnarAppender::Options options;
  if (config.flush_chunk_events != 0) {
    options.flush_chunk_events = config.flush_chunk_events;
  }
  std::vector<std::unique_ptr<model::ColumnarAppender>> appenders;
  appenders.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    appenders.push_back(std::make_unique<model::ColumnarAppender>(
        model::ShardDataPath(dir, s), options));
  }

  // Pre-intern every agent into its home shard in global order: local ids
  // then match ShardedDataset::Partition of the same population, and the
  // global name table is complete even for agents whose day produced no
  // usable trace.
  std::vector<std::string> global_names;
  global_names.reserve(pop.agents);
  std::vector<std::uint32_t> home(pop.agents);  // agent -> home shard
  std::vector<model::UserId> local_id(pop.agents);
  for (std::size_t a = 0; a < pop.agents; ++a) {
    std::string name = "agent" + std::to_string(a);
    const std::size_t s =
        model::ShardedDataset::ShardOfUser(name, shard_count);
    home[a] = static_cast<std::uint32_t>(s);
    local_id[a] = appenders[s]->InternUser(name);
    global_names.push_back(std::move(name));
  }

  StreamingWorldStats stats;
  stats.agents = pop.agents;
  stats.shards = shard_count;

  // origin[s][i] = global generation index of shard s's local trace i.
  // Agents ascend and traces append in generation order, so each run is
  // strictly ascending — the canonical-order property ProbeShardStream
  // requires.
  std::vector<std::vector<std::size_t>> origin(shard_count);

  // Per-trace column scratch, reused across the whole run.
  std::vector<double> lat;
  std::vector<double> lng;
  std::vector<util::Timestamp> time;
  std::vector<model::Trace> session_traces;
  std::vector<GroundTruthVisit> ground_truth;  // discarded per agent

  for (std::size_t a = 0; a < pop.agents; ++a) {
    const std::size_t shard = home[a];
    model::ColumnarAppender& appender = *appenders[shard];

    util::Rng agent_rng(util::DeriveStreamSeed(master, a, 0));
    AgentProfile profile = SampleProfile(universe, agent_rng);
    if (pop.force_shared_hub && !hubs.empty()) {
      profile.commute_hub = hubs.front();
      profile.hub_commute_prob = 1.0;
    }

    util::Rng day_rng(util::DeriveStreamSeed(master, a, 1));
    for (std::size_t d = 0; d < pop.days; ++d) {
      const util::Timestamp day_start =
          pop.start_day + static_cast<util::Timestamp>(d) * util::kSecondsPerDay;
      const auto plan =
          GenerateDayPlan(profile, universe, pop.schedule, day_start, day_rng);
      session_traces.clear();
      ground_truth.clear();
      simulator.SimulateDay(local_id[a], profile, plan, day_rng,
                            session_traces, ground_truth);
      for (const model::Trace& trace : session_traces) {
        assert(trace.IsTimeOrdered());
        if (trace.size() < 2) continue;  // same filter as SyntheticWorld
        lat.clear();
        lng.clear();
        time.clear();
        lat.reserve(trace.size());
        lng.reserve(trace.size());
        time.reserve(trace.size());
        for (const model::Event& e : trace) {
          lat.push_back(e.position.lat);
          lng.push_back(e.position.lng);
          time.push_back(e.time);
        }
        appender.AppendTrace(local_id[a], lat, lng, time);
        origin[shard].push_back(stats.traces++);
        stats.events += trace.size();
      }
    }
  }

  for (std::size_t s = 0; s < shard_count; ++s) {
    appenders[s]->Finalize();
    stats.bytes_written +=
        static_cast<std::uint64_t>(fs::file_size(model::ShardDataPath(dir, s)));
  }
  // The manifest is the directory's commit marker: published atomically and
  // last, so a crash anywhere above leaves no readable shard directory.
  model::WriteShardManifest(dir, shard_count, global_names, origin);
  stats.bytes_written += static_cast<std::uint64_t>(
      fs::file_size(fs::path(dir) / "manifest.mpm"));
  return stats;
}

}  // namespace mobipriv::synth
