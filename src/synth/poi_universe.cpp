#include "synth/poi_universe.h"

#include <cassert>
#include <unordered_set>

namespace mobipriv::synth {

std::string_view PoiCategoryName(PoiCategory c) noexcept {
  switch (c) {
    case PoiCategory::kHome:
      return "home";
    case PoiCategory::kWork:
      return "work";
    case PoiCategory::kLeisure:
      return "leisure";
    case PoiCategory::kShop:
      return "shop";
    case PoiCategory::kTransitHub:
      return "transit_hub";
  }
  return "?";
}

PoiUniverse::PoiUniverse(const PoiUniverseConfig& config,
                         const RoadNetwork& network, util::Rng& rng) {
  assert(network.NodeCount() > 0);
  const geo::Rect extent = network.Extent();
  const geo::Point2 center = extent.Center();
  const double spread =
      config.center_concentration * std::min(extent.Width(), extent.Height());

  std::unordered_set<NodeId> used_nodes;

  const auto sample_node = [&](bool centered) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      geo::Point2 p;
      if (centered) {
        p = {center.x + rng.Gaussian(0.0, spread),
             center.y + rng.Gaussian(0.0, spread)};
      } else {
        p = {rng.Uniform(extent.min.x, extent.max.x),
             rng.Uniform(extent.min.y, extent.max.y)};
      }
      const NodeId node = network.NearestNode(p);
      if (!used_nodes.contains(node)) return node;
    }
    // City saturated: allow reuse rather than fail.
    return network.NearestNode({rng.Uniform(extent.min.x, extent.max.x),
                                rng.Uniform(extent.min.y, extent.max.y)});
  };

  const auto add_sites = [&](std::size_t count, PoiCategory category,
                             bool centered) {
    for (std::size_t i = 0; i < count; ++i) {
      const NodeId node = sample_node(centered);
      used_nodes.insert(node);
      PoiSite site;
      site.id = static_cast<PoiId>(sites_.size());
      site.category = category;
      site.node = node;
      site.position = network.NodePosition(node);
      sites_.push_back(site);
    }
  };

  add_sites(config.transit_hubs, PoiCategory::kTransitHub, /*centered=*/true);
  add_sites(config.workplaces, PoiCategory::kWork, /*centered=*/true);
  add_sites(config.leisure, PoiCategory::kLeisure, /*centered=*/true);
  add_sites(config.shops, PoiCategory::kShop, /*centered=*/false);
  add_sites(config.homes, PoiCategory::kHome, /*centered=*/false);
}

std::vector<PoiId> PoiUniverse::OfCategory(PoiCategory category) const {
  std::vector<PoiId> out;
  for (const auto& site : sites_) {
    if (site.category == category) out.push_back(site.id);
  }
  return out;
}

PoiId PoiUniverse::Nearest(geo::Point2 p) const {
  assert(!sites_.empty());
  PoiId best = sites_.front().id;
  double best_dist = geo::DistanceSquared(sites_.front().position, p);
  for (const auto& site : sites_) {
    const double d = geo::DistanceSquared(site.position, p);
    if (d < best_dist) {
      best_dist = d;
      best = site.id;
    }
  }
  return best;
}

}  // namespace mobipriv::synth
