// Whole-city dataset generation: builds the road network, POI universe and a
// population of agents, simulates several days of mobility and returns the
// dataset together with full ground truth (true POIs, true identities).
//
// This module is the repository's substitution for the real-life datasets
// (Geolife / Cabspotting-class) the paper planned to evaluate on — see
// DESIGN.md §5. Ground truth makes attack scoring exact, which real data
// cannot offer.
#pragma once

#include <memory>
#include <vector>

#include "geo/projection.h"
#include "model/dataset.h"
#include "synth/poi_universe.h"
#include "synth/road_network.h"
#include "synth/schedule.h"
#include "synth/simulator.h"

namespace mobipriv::synth {

struct PopulationConfig {
  std::size_t agents = 50;
  std::size_t days = 3;
  /// UTC midnight of the first simulated day (2015-06-01, the paper's year).
  util::Timestamp start_day = 1433116800;
  RoadNetworkConfig road;
  PoiUniverseConfig pois;
  ScheduleConfig schedule;
  SimulatorConfig simulator;
  /// Geographic anchor of the planar frame (Lyon, the authors' city).
  geo::LatLng origin{45.7640, 4.8357};
  std::uint64_t seed = 42;
  /// Forces every agent to commute via the first transit hub with
  /// probability 1 (used by the Figure-1 crossing scenario).
  bool force_shared_hub = false;
};

/// A generated world: the dataset plus everything needed to score attacks
/// and mechanisms against ground truth.
class SyntheticWorld {
 public:
  explicit SyntheticWorld(const PopulationConfig& config);

  [[nodiscard]] const model::Dataset& dataset() const noexcept {
    return dataset_;
  }
  [[nodiscard]] model::Dataset& mutable_dataset() noexcept { return dataset_; }
  [[nodiscard]] const std::vector<GroundTruthVisit>& ground_truth()
      const noexcept {
    return ground_truth_;
  }
  [[nodiscard]] const PoiUniverse& universe() const noexcept {
    return *universe_;
  }
  [[nodiscard]] const RoadNetwork& network() const noexcept {
    return *network_;
  }
  [[nodiscard]] const geo::LocalProjection& projection() const noexcept {
    return projection_;
  }
  [[nodiscard]] const std::vector<AgentProfile>& profiles() const noexcept {
    return profiles_;
  }
  [[nodiscard]] const PopulationConfig& config() const noexcept {
    return config_;
  }

  /// Ground-truth visits of one user (in simulation order).
  [[nodiscard]] std::vector<GroundTruthVisit> VisitsOfUser(
      model::UserId user) const;

  /// Dataset restricted to the given day indices (0-based); used for
  /// train/test splits in the re-identification experiment. Trace user ids
  /// and names are preserved.
  [[nodiscard]] model::Dataset DatasetForDays(
      const std::vector<std::size_t>& day_indices) const;

 private:
  PopulationConfig config_;
  geo::LocalProjection projection_;
  std::unique_ptr<RoadNetwork> network_;
  std::unique_ptr<PoiUniverse> universe_;
  std::vector<AgentProfile> profiles_;
  model::Dataset dataset_;
  std::vector<GroundTruthVisit> ground_truth_;
  /// trace index -> day index, parallel to dataset_.traces().
  std::vector<std::size_t> trace_day_;
};

/// Two-user scenario reproducing Figure 1: both users stop at a POI, travel
/// through a shared mix-zone area at overlapping times, and stop again.
/// Returns a world with exactly two agents whose paths cross at a hub.
[[nodiscard]] SyntheticWorld MakeCrossingPairScenario(std::uint64_t seed = 7);

}  // namespace mobipriv::synth
