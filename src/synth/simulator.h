// Movement simulator: executes an agent's day plan on the road network and
// emits a GPS-like trace — dense jittered fixes while dwelling at a POI,
// road-following fixes while travelling. The emitted structure (stop
// clusters joined by moves) is exactly what the paper's POI-extraction
// adversary exploits and what the constant-speed mechanism erases.
#pragma once

#include <vector>

#include "geo/projection.h"
#include "model/event.h"
#include "model/trace.h"
#include "synth/poi_universe.h"
#include "synth/road_network.h"
#include "synth/schedule.h"
#include "util/rng.h"

namespace mobipriv::synth {

/// Ground-truth record of one POI visit: what an oracle adversary would
/// extract. Attacks are scored against these.
struct GroundTruthVisit {
  model::UserId user = model::kInvalidUser;
  PoiId poi = kInvalidPoi;
  geo::Point2 position;  ///< planar site position
  util::Timestamp arrival = 0;
  util::Timestamp departure = 0;
};

struct SimulatorConfig {
  util::Timestamp sampling_interval_s = 30;  ///< GPS fix period
  double gps_noise_m = 4.0;                  ///< sensor noise stddev
  double dwell_jitter_m = 8.0;  ///< wander radius while stopped at a POI
  /// Recording model. Real mobility datasets (Geolife, Cabspotting) are
  /// *session* recordings: the device logs around outings, not 24/7. In
  /// session mode (default) each leg between two POIs becomes one trace:
  /// up to `session_dwell_s` of dwell at the origin, the travel, and up to
  /// `session_dwell_s` of dwell at the destination — so stops are visible
  /// to the attacks (longer than their dwell threshold) without the
  /// overnight idle that no real dataset contains. Continuous mode emits
  /// one 24 h trace per day instead.
  bool continuous_recording = false;
  util::Timestamp session_dwell_s = 1500;  ///< dwell tail kept per end (25 min)
};

class Simulator {
 public:
  /// The network, universe and projection must outlive the simulator.
  Simulator(const RoadNetwork& network, const PoiUniverse& universe,
            const geo::LocalProjection& projection, SimulatorConfig config);

  /// Simulates one day plan; appends the emitted traces (one per recording
  /// session, or a single 24 h trace in continuous mode) to `traces` and
  /// the realized visits to `ground_truth`. Travel legs between home and
  /// work are routed through the agent's commute hub with the profile's
  /// probability (creating natural mix-zone crossings).
  void SimulateDay(model::UserId user, const AgentProfile& profile,
                   const std::vector<ScheduledVisit>& plan, util::Rng& rng,
                   std::vector<model::Trace>& traces,
                   std::vector<GroundTruthVisit>& ground_truth) const;

  /// Road path between two POIs, optionally via an intermediate hub node.
  [[nodiscard]] std::vector<geo::Point2> Route(PoiId from, PoiId to,
                                               PoiId via = kInvalidPoi) const;

  [[nodiscard]] const SimulatorConfig& config() const noexcept {
    return config_;
  }

 private:
  /// Emits dwell fixes at `site` for [from, to] into `trace`.
  void EmitDwell(const PoiSite& site, util::Timestamp from, util::Timestamp to,
                 util::Rng& rng, model::Trace& trace) const;

  /// Emits travel fixes along `path` across [from, to] into `trace`.
  void EmitTravel(const std::vector<geo::Point2>& path, util::Timestamp from,
                  util::Timestamp to, util::Rng& rng,
                  model::Trace& trace) const;

  [[nodiscard]] model::Event MakeEvent(geo::Point2 p, util::Timestamp t,
                                       double noise_m,
                                       util::Rng& rng) const;

  const RoadNetwork& network_;
  const PoiUniverse& universe_;
  const geo::LocalProjection& projection_;
  SimulatorConfig config_;
};

}  // namespace mobipriv::synth
