#include "synth/population.h"

#include <cassert>
#include <string>

namespace mobipriv::synth {

SyntheticWorld::SyntheticWorld(const PopulationConfig& config)
    : config_(config), projection_(config.origin) {
  util::Rng rng(config_.seed);
  util::Rng network_rng = rng.Split();
  util::Rng poi_rng = rng.Split();
  network_ = std::make_unique<RoadNetwork>(config_.road, network_rng);
  universe_ = std::make_unique<PoiUniverse>(config_.pois, *network_, poi_rng);

  Simulator simulator(*network_, *universe_, projection_, config_.simulator);

  profiles_.reserve(config_.agents);
  const auto hubs = universe_->OfCategory(PoiCategory::kTransitHub);
  for (std::size_t a = 0; a < config_.agents; ++a) {
    util::Rng agent_rng = rng.Split();
    AgentProfile profile = SampleProfile(*universe_, agent_rng);
    if (config_.force_shared_hub && !hubs.empty()) {
      profile.commute_hub = hubs.front();
      profile.hub_commute_prob = 1.0;
    }
    profiles_.push_back(profile);
  }

  for (std::size_t a = 0; a < config_.agents; ++a) {
    const std::string name = "agent" + std::to_string(a);
    const model::UserId user = dataset_.InternUser(name);
    util::Rng day_rng = rng.Split();
    for (std::size_t d = 0; d < config_.days; ++d) {
      const util::Timestamp day_start =
          config_.start_day +
          static_cast<util::Timestamp>(d) * util::kSecondsPerDay;
      const auto plan = GenerateDayPlan(profiles_[a], *universe_,
                                        config_.schedule, day_start, day_rng);
      std::vector<model::Trace> session_traces;
      simulator.SimulateDay(user, profiles_[a], plan, day_rng,
                            session_traces, ground_truth_);
      for (auto& trace : session_traces) {
        assert(trace.IsTimeOrdered());
        if (trace.size() < 2) continue;
        dataset_.AddTrace(std::move(trace));
        trace_day_.push_back(d);
      }
    }
  }
}

std::vector<GroundTruthVisit> SyntheticWorld::VisitsOfUser(
    model::UserId user) const {
  std::vector<GroundTruthVisit> out;
  for (const auto& visit : ground_truth_) {
    if (visit.user == user) out.push_back(visit);
  }
  return out;
}

model::Dataset SyntheticWorld::DatasetForDays(
    const std::vector<std::size_t>& day_indices) const {
  model::Dataset out;
  // Intern every user first so ids match the full dataset.
  for (std::size_t a = 0; a < config_.agents; ++a) {
    out.InternUser("agent" + std::to_string(a));
  }
  for (std::size_t i = 0; i < dataset_.traces().size(); ++i) {
    const std::size_t day = trace_day_[i];
    for (const std::size_t wanted : day_indices) {
      if (day == wanted) {
        out.AddTrace(dataset_.traces()[i]);
        break;
      }
    }
  }
  return out;
}

SyntheticWorld MakeCrossingPairScenario(std::uint64_t seed) {
  PopulationConfig config;
  config.agents = 2;
  config.days = 1;
  config.seed = seed;
  config.road.width_m = 4000.0;
  config.road.height_m = 4000.0;
  config.road.block_size_m = 200.0;
  config.pois.homes = 12;
  config.pois.workplaces = 4;
  config.pois.leisure = 4;
  config.pois.shops = 3;
  config.pois.transit_hubs = 1;  // a single hub: both commutes cross there
  config.schedule.work_start_stddev = 5 * util::kSecondsPerMinute;
  config.schedule.evening_leisure_prob = 0.0;
  config.schedule.evening_shop_prob = 0.0;
  config.simulator.sampling_interval_s = 20;
  config.force_shared_hub = true;
  return SyntheticWorld(config);
}

}  // namespace mobipriv::synth
