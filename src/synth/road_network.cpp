#include "synth/road_network.h"

#include "geo/distance.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

namespace mobipriv::synth {
namespace {

/// Union-find used to keep the grid connected while removing edges.
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

RoadNetwork::RoadNetwork(const RoadNetworkConfig& config, util::Rng& rng) {
  assert(config.block_size_m > 0.0);
  const auto cols = static_cast<std::size_t>(
      std::max(2.0, std::floor(config.width_m / config.block_size_m) + 1.0));
  const auto rows = static_cast<std::size_t>(
      std::max(2.0, std::floor(config.height_m / config.block_size_m) + 1.0));

  nodes_.reserve(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double x = static_cast<double>(c) * config.block_size_m +
                       rng.Gaussian(0.0, config.jitter_m);
      const double y = static_cast<double>(r) * config.block_size_m +
                       rng.Gaussian(0.0, config.jitter_m);
      nodes_.push_back({x, y});
    }
  }
  adjacency_.assign(nodes_.size(), {});

  // Candidate grid edges: right and up neighbours.
  std::vector<std::pair<NodeId, NodeId>> candidates;
  const auto index = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) candidates.emplace_back(index(r, c), index(r, c + 1));
      if (r + 1 < rows) candidates.emplace_back(index(r, c), index(r + 1, c));
    }
  }

  // Decide removals first, then add back any removal that would disconnect.
  std::vector<std::pair<NodeId, NodeId>> kept;
  std::vector<std::pair<NodeId, NodeId>> removed;
  kept.reserve(candidates.size());
  for (const auto& edge : candidates) {
    if (rng.Bernoulli(config.edge_removal_prob)) {
      removed.push_back(edge);
    } else {
      kept.push_back(edge);
    }
  }
  DisjointSet dsu(nodes_.size());
  for (const auto& [a, b] : kept) dsu.Union(a, b);
  for (const auto& [a, b] : removed) {
    if (dsu.Find(a) != dsu.Find(b)) {
      dsu.Union(a, b);
      kept.emplace_back(a, b);  // restore to preserve connectivity
    }
  }
  for (const auto& [a, b] : kept) {
    adjacency_[a].push_back(b);
    adjacency_[b].push_back(a);
  }

  extent_ = geo::Rect::Of(nodes_);
}

RoadNetwork RoadNetwork::FromGraph(
    std::vector<geo::Point2> nodes,
    const std::vector<std::pair<NodeId, NodeId>>& edges) {
  RoadNetwork net;
  net.nodes_ = std::move(nodes);
  net.adjacency_.assign(net.nodes_.size(), {});
  for (const auto& [a, b] : edges) {
    net.adjacency_.at(a).push_back(b);
    net.adjacency_.at(b).push_back(a);
  }
  if (!net.nodes_.empty()) net.extent_ = geo::Rect::Of(net.nodes_);
  return net;
}

NodeId RoadNetwork::NearestNode(geo::Point2 p) const {
  assert(!nodes_.empty());
  NodeId best = 0;
  double best_dist = geo::DistanceSquared(nodes_[0], p);
  for (NodeId i = 1; i < nodes_.size(); ++i) {
    const double d = geo::DistanceSquared(nodes_[i], p);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

std::optional<std::vector<geo::Point2>> RoadNetwork::ShortestPath(
    NodeId from, NodeId to) const {
  assert(from < nodes_.size() && to < nodes_.size());
  if (from == to) return std::vector<geo::Point2>{nodes_[from]};

  struct QueueEntry {
    double f;  // g + heuristic
    NodeId node;
    bool operator>(const QueueEntry& other) const noexcept {
      return f > other.f;
    }
  };
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> g(nodes_.size(), kInf);
  std::vector<NodeId> came_from(nodes_.size(), kInvalidNode);
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      open;
  g[from] = 0.0;
  open.push({geo::Distance(nodes_[from], nodes_[to]), from});

  while (!open.empty()) {
    const auto [f, node] = open.top();
    open.pop();
    if (node == to) break;
    // Stale entry check: the recorded g plus heuristic should match.
    if (f > g[node] + geo::Distance(nodes_[node], nodes_[to]) + 1e-9) continue;
    for (const NodeId next : adjacency_[node]) {
      const double tentative = g[node] + geo::Distance(nodes_[node], nodes_[next]);
      if (tentative < g[next]) {
        g[next] = tentative;
        came_from[next] = node;
        open.push({tentative + geo::Distance(nodes_[next], nodes_[to]), next});
      }
    }
  }
  if (came_from[to] == kInvalidNode) return std::nullopt;

  std::vector<geo::Point2> path;
  for (NodeId node = to; node != kInvalidNode; node = came_from[node]) {
    path.push_back(nodes_[node]);
    if (node == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double RoadNetwork::PathLength(const std::vector<geo::Point2>& path) {
  return geo::PathLength(path);
}

}  // namespace mobipriv::synth
