#include "synth/schedule.h"

#include <algorithm>
#include <cassert>

namespace mobipriv::synth {
namespace {

/// Conservative travel-time estimate between two sites: straight-line
/// distance inflated by a 1.4 road-detour factor at the agent's speed.
util::Timestamp TravelEstimate(const PoiUniverse& universe, PoiId from,
                               PoiId to, double speed_mps) {
  const double dist =
      geo::Distance(universe.site(from).position, universe.site(to).position);
  return static_cast<util::Timestamp>(dist * 1.4 / speed_mps) + 60;
}

util::Timestamp SamplePositive(util::Rng& rng, util::Timestamp mean,
                               util::Timestamp stddev,
                               util::Timestamp floor) {
  const double sampled = rng.Gaussian(static_cast<double>(mean),
                                      static_cast<double>(stddev));
  return std::max(floor, static_cast<util::Timestamp>(sampled));
}

PoiId PickFrom(const std::vector<PoiId>& choices, util::Rng& rng) {
  assert(!choices.empty());
  return choices[rng.NextBounded(choices.size())];
}

}  // namespace

AgentProfile SampleProfile(const PoiUniverse& universe, util::Rng& rng) {
  AgentProfile profile;
  const auto homes = universe.OfCategory(PoiCategory::kHome);
  const auto works = universe.OfCategory(PoiCategory::kWork);
  const auto leisure = universe.OfCategory(PoiCategory::kLeisure);
  const auto shops = universe.OfCategory(PoiCategory::kShop);
  const auto hubs = universe.OfCategory(PoiCategory::kTransitHub);
  assert(!homes.empty() && !works.empty());

  profile.home = PickFrom(homes, rng);
  profile.work = PickFrom(works, rng);
  const std::size_t n_leisure =
      leisure.empty() ? 0 : 1 + rng.NextBounded(std::min<std::size_t>(3, leisure.size()));
  for (std::size_t i = 0; i < n_leisure; ++i) {
    profile.favourite_leisure.push_back(PickFrom(leisure, rng));
  }
  const std::size_t n_shops =
      shops.empty() ? 0 : 1 + rng.NextBounded(std::min<std::size_t>(2, shops.size()));
  for (std::size_t i = 0; i < n_shops; ++i) {
    profile.favourite_shops.push_back(PickFrom(shops, rng));
  }
  profile.travel_speed_mps = rng.Uniform(5.0, 14.0);
  profile.hub_commute_prob = rng.Uniform(0.3, 0.9);
  if (!hubs.empty()) profile.commute_hub = PickFrom(hubs, rng);
  return profile;
}

std::vector<ScheduledVisit> GenerateDayPlan(const AgentProfile& profile,
                                            const PoiUniverse& universe,
                                            const ScheduleConfig& config,
                                            util::Timestamp day_start,
                                            util::Rng& rng) {
  std::vector<ScheduledVisit> plan;
  const util::Timestamp day_end = day_start + util::kSecondsPerDay;

  const util::Timestamp work_start =
      day_start + SamplePositive(rng, config.work_start_mean,
                                 config.work_start_stddev,
                                 6 * util::kSecondsPerHour);
  const util::Timestamp commute =
      TravelEstimate(universe, profile.home, profile.work,
                     profile.travel_speed_mps);

  // Morning at home until it is time to leave for work.
  ScheduledVisit home_morning;
  home_morning.poi = profile.home;
  home_morning.arrival = day_start;
  home_morning.departure = std::max(day_start + config.min_dwell,
                                    work_start - commute);
  plan.push_back(home_morning);

  // Work block.
  ScheduledVisit work;
  work.poi = profile.work;
  work.arrival = home_morning.departure + commute;
  work.departure =
      work.arrival + SamplePositive(rng, config.work_duration_mean,
                                    config.work_duration_stddev,
                                    4 * util::kSecondsPerHour);
  plan.push_back(work);

  util::Timestamp cursor = work.departure;
  PoiId previous = profile.work;

  // Optional evening activity.
  const bool go_leisure = !profile.favourite_leisure.empty() &&
                          rng.Bernoulli(config.evening_leisure_prob);
  const bool go_shop = !go_leisure && !profile.favourite_shops.empty() &&
                       rng.Bernoulli(config.evening_shop_prob);
  if (go_leisure || go_shop) {
    const PoiId stop = go_leisure ? PickFrom(profile.favourite_leisure, rng)
                                  : PickFrom(profile.favourite_shops, rng);
    ScheduledVisit visit;
    visit.poi = stop;
    visit.arrival = cursor + TravelEstimate(universe, previous, stop,
                                            profile.travel_speed_mps);
    visit.departure =
        visit.arrival + SamplePositive(rng, config.leisure_duration_mean,
                                       config.leisure_duration_stddev,
                                       config.min_dwell);
    plan.push_back(visit);
    cursor = visit.departure;
    previous = stop;
  }

  // Evening at home until end of day.
  ScheduledVisit home_evening;
  home_evening.poi = profile.home;
  home_evening.arrival = cursor + TravelEstimate(universe, previous,
                                                 profile.home,
                                                 profile.travel_speed_mps);
  home_evening.departure = std::max(home_evening.arrival + config.min_dwell,
                                    day_end);
  plan.push_back(home_evening);
  return plan;
}

}  // namespace mobipriv::synth
