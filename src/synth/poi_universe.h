// The POI universe: the set of semantic places agents visit. Each site sits
// on a road-network node; categories drive both the schedule model (where
// agents go when) and the ground truth the attacks are scored against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/point2.h"
#include "synth/road_network.h"
#include "util/rng.h"

namespace mobipriv::synth {

enum class PoiCategory : std::uint8_t {
  kHome,
  kWork,
  kLeisure,  // restaurants, parks, cinemas
  kShop,
  kTransitHub,  // stations/malls: the natural mix-zone locations
};

[[nodiscard]] std::string_view PoiCategoryName(PoiCategory c) noexcept;

using PoiId = std::uint32_t;
inline constexpr PoiId kInvalidPoi = static_cast<PoiId>(-1);

struct PoiSite {
  PoiId id = kInvalidPoi;
  PoiCategory category = PoiCategory::kHome;
  geo::Point2 position;  ///< planar metres (same frame as the road network)
  NodeId node = kInvalidNode;  ///< road node the site is attached to
};

struct PoiUniverseConfig {
  std::size_t homes = 200;
  std::size_t workplaces = 40;
  std::size_t leisure = 30;
  std::size_t shops = 20;
  std::size_t transit_hubs = 6;
  /// Workplaces/leisure/hubs cluster towards the centre with this Gaussian
  /// fraction of the city extent; homes spread uniformly.
  double center_concentration = 0.25;
};

class PoiUniverse {
 public:
  /// Samples sites on road nodes. Distinct sites may share a node only for
  /// kTransitHub vs others (hubs are busy places).
  PoiUniverse(const PoiUniverseConfig& config, const RoadNetwork& network,
              util::Rng& rng);

  [[nodiscard]] const std::vector<PoiSite>& sites() const noexcept {
    return sites_;
  }
  [[nodiscard]] const PoiSite& site(PoiId id) const { return sites_.at(id); }
  [[nodiscard]] std::size_t size() const noexcept { return sites_.size(); }

  /// Ids of all sites of one category.
  [[nodiscard]] std::vector<PoiId> OfCategory(PoiCategory category) const;

  /// Site nearest to a planar point (any category). Requires non-empty.
  [[nodiscard]] PoiId Nearest(geo::Point2 p) const;

 private:
  std::vector<PoiSite> sites_;
};

}  // namespace mobipriv::synth
