// Synthetic road network: a jittered grid graph over a city-sized planar
// area, with A* routing. Trajectories in the generator follow shortest road
// paths between POIs, giving traces the road-constrained geometry that real
// mobility data has (and that distinguishes a moving user from GPS noise).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/bounding_box.h"
#include "geo/point2.h"
#include "util/rng.h"

namespace mobipriv::synth {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

struct RoadNetworkConfig {
  double width_m = 10000.0;       ///< east-west extent
  double height_m = 10000.0;      ///< north-south extent
  double block_size_m = 250.0;    ///< spacing between grid intersections
  double jitter_m = 40.0;         ///< positional jitter on intersections
  double edge_removal_prob = 0.08;  ///< fraction of street segments removed
};

class RoadNetwork {
 public:
  /// Builds the jittered grid. The generated graph is guaranteed connected:
  /// removal never disconnects (checked by union-find during removal).
  RoadNetwork(const RoadNetworkConfig& config, util::Rng& rng);

  [[nodiscard]] std::size_t NodeCount() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] geo::Point2 NodePosition(NodeId id) const {
    return nodes_.at(id);
  }
  [[nodiscard]] const std::vector<NodeId>& Neighbors(NodeId id) const {
    return adjacency_.at(id);
  }
  [[nodiscard]] geo::Rect Extent() const noexcept { return extent_; }

  /// Node nearest to an arbitrary planar point.
  [[nodiscard]] NodeId NearestNode(geo::Point2 p) const;

  /// Shortest road path (A*, Euclidean heuristic) between two nodes, as the
  /// sequence of node positions including both endpoints. nullopt only if
  /// the nodes are disconnected (cannot happen for generated graphs, but the
  /// API is honest for hand-built ones in tests).
  [[nodiscard]] std::optional<std::vector<geo::Point2>> ShortestPath(
      NodeId from, NodeId to) const;

  /// Total length in metres of a node path as produced by ShortestPath.
  [[nodiscard]] static double PathLength(const std::vector<geo::Point2>& path);

  /// Builds an arbitrary graph (tests); edges are undirected index pairs.
  static RoadNetwork FromGraph(std::vector<geo::Point2> nodes,
                               const std::vector<std::pair<NodeId, NodeId>>& edges);

 private:
  RoadNetwork() = default;

  std::vector<geo::Point2> nodes_;
  std::vector<std::vector<NodeId>> adjacency_;
  geo::Rect extent_{};
};

}  // namespace mobipriv::synth
