// Out-of-core world generation: simulates a population directly into a
// SaveShards directory without ever holding the dataset in memory.
//
// SyntheticWorld materializes every trace (plus ground truth) before
// anything is written — fine at 10^3 agents, hopeless at 10^6, where the
// dataset alone is gigabytes. GenerateShardedWorld streams instead: the
// road network and POI universe are built once, then agents are simulated
// one at a time and each finished trace is appended to the agent's home
// shard through a model::ColumnarAppender. Peak memory is the static world
// plus the per-shard chunk buffers plus one agent's day in flight —
// independent of the agent count.
//
// Sharding and ordering contracts:
//   * Home shard = model::ShardedDataset::ShardOfUser(name, shard_count) —
//     the same stable hash Partition uses, so every trace of one agent
//     lands in one shard and the layout passes core::ProbeShardStream.
//   * Agent names ("agent0".."agent<N-1>") are pre-interned into their
//     home shards in global order, so shard-local user ids match what
//     Partition of the equivalent in-memory dataset would assign.
//   * The manifest records origin = global generation index of every
//     trace (strictly ascending within each shard), so
//     OpenShards(dir).Merge() — and the engine's whole-view shard bind —
//     reproduce the generation order exactly.
//
// Determinism: per-agent streams are derived with util::DeriveStreamSeed
// from one master draw, so an agent's trajectory depends only on
// (seed, agent index) — never on batch boundaries or flush chunking — and
// the shard files are byte-identical at every flush_chunk_events value
// (the ColumnarAppender bitwise contract). Note this scheme intentionally
// differs from SyntheticWorld's sequential rng.Split() discipline, so the
// two generators do NOT produce byte-identical worlds for the same seed;
// each is internally deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "synth/population.h"

namespace mobipriv::synth {

struct StreamingWorldConfig {
  /// Population sizing and physics: identical knobs to SyntheticWorld
  /// (road/pois/schedule/simulator/origin/start_day reused verbatim).
  PopulationConfig population;
  /// Shard fan-out of the output directory. Clamped to >= 1.
  std::size_t shard_count = 8;
  /// Events buffered per shard column before spilling (the
  /// ColumnarAppender memory knob). Purely a resource setting: output
  /// bytes are identical at any value. 0 = appender default.
  std::size_t flush_chunk_events = 0;
};

/// What one generation run produced (and wrote).
struct StreamingWorldStats {
  std::size_t agents = 0;
  std::size_t traces = 0;
  std::size_t events = 0;
  std::size_t shards = 0;
  std::uint64_t bytes_written = 0;  ///< total size of the published files
};

/// Generates the world described by `config` straight into `dir` as a
/// SaveShards-compatible directory (shard-*.mpc + manifest.mpm, manifest
/// committed last). Creates `dir` if missing. Throws model::IoError on any
/// filesystem failure; on throw no manifest is published, so the directory
/// is never observable half-written.
StreamingWorldStats GenerateShardedWorld(const StreamingWorldConfig& config,
                                         const std::string& dir);

}  // namespace mobipriv::synth
