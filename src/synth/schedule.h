// Daily activity schedules. Each agent has a persistent profile (home, work,
// favourite leisure/shopping places) and generates per-day itineraries:
// sequences of (POI, arrival, departure). The regularity — same home/work
// every day — is what makes POI-based re-identification attacks work on raw
// data, and hence what the paper's mechanism must defeat.
#pragma once

#include <vector>

#include "synth/poi_universe.h"
#include "util/rng.h"
#include "util/time_utils.h"

namespace mobipriv::synth {

/// One stop of a day plan: be at `poi` from `arrival` to `departure`.
struct ScheduledVisit {
  PoiId poi = kInvalidPoi;
  util::Timestamp arrival = 0;
  util::Timestamp departure = 0;
};

/// Persistent per-agent places.
struct AgentProfile {
  PoiId home = kInvalidPoi;
  PoiId work = kInvalidPoi;
  std::vector<PoiId> favourite_leisure;  // 1..3 places
  std::vector<PoiId> favourite_shops;    // 1..2 places
  /// Average travel speed of this agent, m/s (walking+transit mix).
  double travel_speed_mps = 8.0;
  /// Probability the agent routes via a transit hub on home<->work legs.
  double hub_commute_prob = 0.6;
  PoiId commute_hub = kInvalidPoi;  ///< the hub used when commuting
};

struct ScheduleConfig {
  util::Timestamp work_start_mean = 9 * util::kSecondsPerHour;
  util::Timestamp work_start_stddev = 30 * util::kSecondsPerMinute;
  util::Timestamp work_duration_mean = 8 * util::kSecondsPerHour;
  util::Timestamp work_duration_stddev = util::kSecondsPerHour;
  double evening_leisure_prob = 0.55;
  double evening_shop_prob = 0.30;
  util::Timestamp leisure_duration_mean = 90 * util::kSecondsPerMinute;
  util::Timestamp leisure_duration_stddev = 30 * util::kSecondsPerMinute;
  /// Minimum dwell for any visit; also the floor used when durations are
  /// sampled negative.
  util::Timestamp min_dwell = 15 * util::kSecondsPerMinute;
};

/// Samples a persistent profile: home uniform over homes, work over
/// workplaces, favourites over leisure/shops, commute hub over hubs.
[[nodiscard]] AgentProfile SampleProfile(const PoiUniverse& universe,
                                         util::Rng& rng);

/// Generates one day's itinerary for the agent. `day_start` is the UTC
/// midnight timestamp of the simulated day. The plan always starts and ends
/// at home; a work day is: home -> work -> [leisure|shop] -> home.
/// Visits are strictly ordered and non-overlapping, leaving travel slack
/// between consecutive stops proportional to the agent's speed.
[[nodiscard]] std::vector<ScheduledVisit> GenerateDayPlan(
    const AgentProfile& profile, const PoiUniverse& universe,
    const ScheduleConfig& config, util::Timestamp day_start, util::Rng& rng);

}  // namespace mobipriv::synth
