#include "synth/simulator.h"

#include <cassert>

#include "geo/polyline.h"

namespace mobipriv::synth {

Simulator::Simulator(const RoadNetwork& network, const PoiUniverse& universe,
                     const geo::LocalProjection& projection,
                     SimulatorConfig config)
    : network_(network),
      universe_(universe),
      projection_(projection),
      config_(config) {
  assert(config_.sampling_interval_s > 0);
}

model::Event Simulator::MakeEvent(geo::Point2 p, util::Timestamp t,
                                  double noise_m, util::Rng& rng) const {
  const geo::Point2 noisy{p.x + rng.Gaussian(0.0, noise_m),
                          p.y + rng.Gaussian(0.0, noise_m)};
  return model::Event{projection_.Unproject(noisy), t};
}

void Simulator::EmitDwell(const PoiSite& site, util::Timestamp from,
                          util::Timestamp to, util::Rng& rng,
                          model::Trace& trace) const {
  for (util::Timestamp t = from; t <= to; t += config_.sampling_interval_s) {
    // Wander around the site within the dwell jitter radius.
    const double r = std::abs(rng.Gaussian(0.0, config_.dwell_jitter_m));
    const double theta = rng.Angle();
    const geo::Point2 p{site.position.x + r * std::cos(theta),
                        site.position.y + r * std::sin(theta)};
    trace.Append(MakeEvent(p, t, config_.gps_noise_m, rng));
  }
}

void Simulator::EmitTravel(const std::vector<geo::Point2>& path,
                           util::Timestamp from, util::Timestamp to,
                           util::Rng& rng, model::Trace& trace) const {
  if (path.empty() || to <= from) return;
  const auto cumulative = geo::CumulativeLengths(path);
  const double length = cumulative.back();
  const auto duration = static_cast<double>(to - from);
  // Strictly after `from` (the dwell already emitted a fix at `from`) and
  // at least one sampling interval before `to` (where the next dwell fix
  // lands), so the emitted fix period is never shorter than configured.
  for (util::Timestamp t = from + config_.sampling_interval_s;
       t + config_.sampling_interval_s <= to;
       t += config_.sampling_interval_s) {
    const double progress = static_cast<double>(t - from) / duration;
    const geo::Point2 p =
        geo::PointAtLength(path, cumulative, progress * length);
    trace.Append(MakeEvent(p, t, config_.gps_noise_m, rng));
  }
}

std::vector<geo::Point2> Simulator::Route(PoiId from, PoiId to,
                                          PoiId via) const {
  const NodeId start = universe_.site(from).node;
  const NodeId goal = universe_.site(to).node;
  std::vector<geo::Point2> path;
  if (via != kInvalidPoi) {
    const NodeId hub = universe_.site(via).node;
    auto first = network_.ShortestPath(start, hub);
    auto second = network_.ShortestPath(hub, goal);
    if (first && second) {
      path = std::move(*first);
      // Skip the duplicated hub vertex.
      path.insert(path.end(), second->begin() + 1, second->end());
      return path;
    }
  }
  auto direct = network_.ShortestPath(start, goal);
  // Generated road networks are connected, so this always succeeds.
  assert(direct.has_value());
  return direct ? std::move(*direct)
                : std::vector<geo::Point2>{universe_.site(from).position,
                                           universe_.site(to).position};
}

void Simulator::SimulateDay(model::UserId user, const AgentProfile& profile,
                            const std::vector<ScheduledVisit>& plan,
                            util::Rng& rng, std::vector<model::Trace>& traces,
                            std::vector<GroundTruthVisit>& ground_truth) const {
  // Choose the route of each leg once (shared by both recording modes).
  std::vector<std::vector<geo::Point2>> leg_paths;
  for (std::size_t i = 0; i + 1 < plan.size(); ++i) {
    const ScheduledVisit& visit = plan[i];
    const ScheduledVisit& next = plan[i + 1];
    // Home<->work legs go via the commute hub with the agent's propensity,
    // creating the natural path crossings mix-zones exploit.
    PoiId via = kInvalidPoi;
    const bool is_commute =
        (visit.poi == profile.home && next.poi == profile.work) ||
        (visit.poi == profile.work && next.poi == profile.home);
    if (is_commute && profile.commute_hub != kInvalidPoi &&
        rng.Bernoulli(profile.hub_commute_prob)) {
      via = profile.commute_hub;
    }
    leg_paths.push_back(Route(visit.poi, next.poi, via));
  }

  for (const ScheduledVisit& visit : plan) {
    const PoiSite& site = universe_.site(visit.poi);
    ground_truth.push_back(GroundTruthVisit{user, visit.poi, site.position,
                                            visit.arrival, visit.departure});
  }

  if (config_.continuous_recording) {
    model::Trace trace;
    trace.set_user(user);
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const ScheduledVisit& visit = plan[i];
      EmitDwell(universe_.site(visit.poi), visit.arrival, visit.departure,
                rng, trace);
      if (i + 1 < plan.size()) {
        EmitTravel(leg_paths[i], visit.departure, plan[i + 1].arrival, rng,
                   trace);
      }
    }
    traces.push_back(std::move(trace));
    return;
  }

  // Session mode: one trace per leg, with dwell tails at both ends.
  for (std::size_t i = 0; i + 1 < plan.size(); ++i) {
    const ScheduledVisit& from = plan[i];
    const ScheduledVisit& to = plan[i + 1];
    model::Trace trace;
    trace.set_user(user);
    const util::Timestamp tail_start =
        std::max(from.arrival, from.departure - config_.session_dwell_s);
    EmitDwell(universe_.site(from.poi), tail_start, from.departure, rng,
              trace);
    EmitTravel(leg_paths[i], from.departure, to.arrival, rng, trace);
    const util::Timestamp head_end =
        std::min(to.departure, to.arrival + config_.session_dwell_s);
    EmitDwell(universe_.site(to.poi), to.arrival, head_end, rng, trace);
    traces.push_back(std::move(trace));
  }
}

}  // namespace mobipriv::synth
