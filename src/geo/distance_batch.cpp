#include "geo/distance_batch.h"

#include <bit>
#include <cmath>

#include "util/simd.h"

namespace mobipriv::geo {

using util::F64x4;

void ProjectedMetricBatch(const double* x, const double* y, std::size_t n,
                          Point2 anchor, double* out) noexcept {
  const F64x4 ax = F64x4::Set1(anchor.x);
  const F64x4 ay = F64x4::Set1(anchor.y);
  std::size_t i = 0;
  for (; i + util::kSimdWidth <= n; i += util::kSimdWidth) {
    const F64x4 dx = F64x4::Load(x + i) - ax;
    const F64x4 dy = F64x4::Load(y + i) - ay;
    util::Sqrt(util::Fma(dx, dx, dy * dy)).Store(out + i);
  }
  for (; i < n; ++i) {
    const double dx = x[i] - anchor.x;
    const double dy = y[i] - anchor.y;
    out[i] = std::sqrt(std::fma(dx, dx, dy * dy));
  }
}

void EquirectangularBatch(const double* lat, const double* lng, std::size_t n,
                          LatLng anchor, double* out) noexcept {
  // Scalar reference (geo::EquirectangularDistance with a <-> b roles
  // fixed): mean_lat = (anchor.lat + lat)*0.5*kDegToRad;
  // dx = (lng - anchor.lng)*kDegToRad*cos(mean_lat);
  // dy = (lat - anchor.lat)*kDegToRad; R*hypot(dx, dy).
  const F64x4 alat = F64x4::Set1(anchor.lat);
  const F64x4 alng = F64x4::Set1(anchor.lng);
  const F64x4 half = F64x4::Set1(0.5);
  const F64x4 deg_to_rad = F64x4::Set1(kDegToRad);
  const F64x4 radius = F64x4::Set1(kEarthRadiusMeters);
  std::size_t i = 0;
  for (; i + util::kSimdWidth <= n; i += util::kSimdWidth) {
    const F64x4 plat = F64x4::Load(lat + i);
    // cos has no vector form with known rounding — evaluate per lane on
    // the vector-computed mean latitudes (same op order as the scalar
    // routine, so the cos inputs are bit-equal to its).
    double mean[4];
    ((alat + plat) * half * deg_to_rad).Store(mean);
    const F64x4 cos_mean = F64x4::Set(std::cos(mean[0]), std::cos(mean[1]),
                                      std::cos(mean[2]), std::cos(mean[3]));
    const F64x4 dx = (F64x4::Load(lng + i) - alng) * deg_to_rad * cos_mean;
    const F64x4 dy = (plat - alat) * deg_to_rad;
    (radius * util::Sqrt(util::Fma(dx, dx, dy * dy))).Store(out + i);
  }
  for (; i < n; ++i) {
    const double mean_lat = (anchor.lat + lat[i]) * 0.5 * kDegToRad;
    const double dx = (lng[i] - anchor.lng) * kDegToRad * std::cos(mean_lat);
    const double dy = (lat[i] - anchor.lat) * kDegToRad;
    out[i] = kEarthRadiusMeters * std::sqrt(std::fma(dx, dx, dy * dy));
  }
}

void HaversineBatch(const double* lat, const double* lng, std::size_t n,
                    LatLng anchor, double* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = HaversineDistance(LatLng{lat[i], lng[i]}, anchor);
  }
}

std::size_t WithinRadiusMask(const double* x, const double* y, std::size_t n,
                             Point2 anchor, double radius,
                             std::uint8_t* mask) noexcept {
  const double r_sq = radius * radius;
  const F64x4 ax = F64x4::Set1(anchor.x);
  const F64x4 ay = F64x4::Set1(anchor.y);
  const F64x4 vr2 = F64x4::Set1(r_sq);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + util::kSimdWidth <= n; i += util::kSimdWidth) {
    const F64x4 dx = F64x4::Load(x + i) - ax;
    const F64x4 dy = F64x4::Load(y + i) - ay;
    const int m = util::MoveMask(util::CmpLe(dx * dx + dy * dy, vr2));
    mask[i] = static_cast<std::uint8_t>(m & 1);
    mask[i + 1] = static_cast<std::uint8_t>((m >> 1) & 1);
    mask[i + 2] = static_cast<std::uint8_t>((m >> 2) & 1);
    mask[i + 3] = static_cast<std::uint8_t>((m >> 3) & 1);
    count += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(m)));
  }
  for (; i < n; ++i) {
    const double dx = x[i] - anchor.x;
    const double dy = y[i] - anchor.y;
    mask[i] = dx * dx + dy * dy <= r_sq ? 1 : 0;
    count += mask[i];
  }
  return count;
}

}  // namespace mobipriv::geo
