// Distance-function abstraction. Algorithms that must run both on raw
// geographic coordinates and on projected planar points (clustering, the
// tracker, mix-zone detection) take a DistanceFn so tests can exercise them
// in exact planar space while production paths use geographic distance.
#pragma once

#include <functional>

#include "geo/latlng.h"
#include "geo/point2.h"

namespace mobipriv::geo {

/// Metric on WGS84 coordinates, metres.
using GeoDistanceFn = std::function<double(LatLng, LatLng)>;

/// Default geographic metric (haversine).
[[nodiscard]] GeoDistanceFn DefaultGeoDistance();

/// Fast approximate metric (equirectangular), for hot loops over
/// city-scale data.
[[nodiscard]] GeoDistanceFn FastGeoDistance();

/// Length in metres of a geographic path given as consecutive coordinates.
[[nodiscard]] double PathLength(const std::vector<LatLng>& path) noexcept;

/// Length in metres of a planar path.
[[nodiscard]] double PathLength(const std::vector<Point2>& path) noexcept;

}  // namespace mobipriv::geo
