// Distance-metric abstraction. Algorithms that must run both on raw
// geographic coordinates and on projected planar points (clustering, the
// tracker, mix-zone detection) take a metric so tests can exercise them
// in exact planar space while production paths use geographic distance.
//
// Two forms:
//   * metric FUNCTORS (HaversineMetric, EquirectangularMetric,
//     ProjectedMetric) — empty/inline-able structs for templated kernels:
//     the distance call compiles down to the arithmetic itself, no
//     std::function dispatch in the inner loop. Prefer these in any loop
//     that runs per event.
//   * GeoDistanceFn (std::function) — type-erased form for configuration
//     boundaries (pick-a-metric-at-runtime call sites), NOT for hot loops:
//     every call is an indirect dispatch.
#pragma once

#include <functional>
#include <vector>

#include "geo/latlng.h"
#include "geo/point2.h"
#include "geo/projection.h"

namespace mobipriv::geo {

/// Exact great-circle metric on WGS84 coordinates, metres. Stateless and
/// inlineable — `Metric{}(a, b)` in a template compiles to the haversine
/// arithmetic directly.
struct HaversineMetric {
  [[nodiscard]] double operator()(LatLng a, LatLng b) const noexcept {
    return HaversineDistance(a, b);
  }
};

/// Fast approximate metric (equirectangular) on WGS84 coordinates, for
/// city-scale data where the flat-earth error is negligible.
struct EquirectangularMetric {
  [[nodiscard]] double operator()(LatLng a, LatLng b) const noexcept {
    return EquirectangularDistance(a, b);
  }
};

/// Planar metric through a per-dataset local tangent frame: endpoints are
/// projected (one cached-cosine multiply each, no per-call trig beyond the
/// frame's construction) and measured with plain Euclidean arithmetic.
/// This is the trig-free inner-loop form — project the dataset once,
/// measure millions of times.
class ProjectedMetric {
 public:
  explicit ProjectedMetric(const LocalProjection& frame) noexcept
      : frame_(&frame) {}

  [[nodiscard]] double operator()(LatLng a, LatLng b) const noexcept {
    return Distance(frame_->Project(a), frame_->Project(b));
  }
  [[nodiscard]] double operator()(Point2 a, Point2 b) const noexcept {
    return Distance(a, b);
  }

 private:
  const LocalProjection* frame_;
};

/// Type-erased metric on WGS84 coordinates, metres. Configuration-boundary
/// form only — inner loops should take one of the functors above as a
/// template parameter instead.
using GeoDistanceFn = std::function<double(LatLng, LatLng)>;

/// Default geographic metric (haversine).
[[nodiscard]] GeoDistanceFn DefaultGeoDistance();

/// Fast approximate metric (equirectangular), for hot loops over
/// city-scale data.
[[nodiscard]] GeoDistanceFn FastGeoDistance();

/// Length in metres of a path under any inlineable metric.
template <typename Points, typename Metric>
[[nodiscard]] double PathLength(const Points& path, Metric&& metric) noexcept {
  double total = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    total += metric(path[i - 1], path[i]);
  }
  return total;
}

/// Length in metres of a geographic path given as consecutive coordinates.
[[nodiscard]] double PathLength(const std::vector<LatLng>& path) noexcept;

/// Length in metres of a planar path.
[[nodiscard]] double PathLength(const std::vector<Point2>& path) noexcept;

}  // namespace mobipriv::geo
