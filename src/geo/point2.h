// Planar 2-D point/vector in metres, used after projecting WGS84 coordinates
// to a local tangent plane. Header-only value type with the usual vector
// algebra; every geometric routine in the library (resampling, clustering,
// mix-zone detection) works in this metric space.
#pragma once

#include <cmath>

namespace mobipriv::geo {

struct Point2 {
  double x = 0.0;  ///< metres east of the projection origin
  double y = 0.0;  ///< metres north of the projection origin

  friend constexpr Point2 operator+(Point2 a, Point2 b) noexcept {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point2 operator-(Point2 a, Point2 b) noexcept {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr Point2 operator*(Point2 p, double s) noexcept {
    return {p.x * s, p.y * s};
  }
  friend constexpr Point2 operator*(double s, Point2 p) noexcept {
    return p * s;
  }
  friend constexpr Point2 operator/(Point2 p, double s) noexcept {
    return {p.x / s, p.y / s};
  }
  friend constexpr bool operator==(Point2 a, Point2 b) noexcept {
    return a.x == b.x && a.y == b.y;
  }

  [[nodiscard]] constexpr double Dot(Point2 other) const noexcept {
    return x * other.x + y * other.y;
  }
  /// 2-D cross product (z-component); sign gives turn direction.
  [[nodiscard]] constexpr double Cross(Point2 other) const noexcept {
    return x * other.y - y * other.x;
  }
  [[nodiscard]] constexpr double NormSquared() const noexcept {
    return x * x + y * y;
  }
  [[nodiscard]] double Norm() const noexcept { return std::hypot(x, y); }

  /// Unit vector in the same direction; the zero vector is returned as-is.
  [[nodiscard]] Point2 Normalized() const noexcept {
    const double n = Norm();
    return n > 0.0 ? Point2{x / n, y / n} : Point2{};
  }
};

/// Euclidean distance in metres.
[[nodiscard]] inline double Distance(Point2 a, Point2 b) noexcept {
  return (a - b).Norm();
}

[[nodiscard]] inline constexpr double DistanceSquared(Point2 a,
                                                      Point2 b) noexcept {
  return (a - b).NormSquared();
}

/// Linear interpolation: t=0 -> a, t=1 -> b (t may lie outside [0,1]).
[[nodiscard]] inline constexpr Point2 Lerp(Point2 a, Point2 b,
                                           double t) noexcept {
  return a + (b - a) * t;
}

/// Midpoint of the segment ab.
[[nodiscard]] inline constexpr Point2 Midpoint(Point2 a, Point2 b) noexcept {
  return Lerp(a, b, 0.5);
}

/// Distance from p to the *segment* [a, b] (not the infinite line).
[[nodiscard]] inline double DistanceToSegment(Point2 p, Point2 a,
                                              Point2 b) noexcept {
  const Point2 ab = b - a;
  const double len_sq = ab.NormSquared();
  if (len_sq == 0.0) return Distance(p, a);
  double t = (p - a).Dot(ab) / len_sq;
  t = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
  return Distance(p, a + ab * t);
}

}  // namespace mobipriv::geo
