#include "geo/polyline.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace mobipriv::geo {

double PolylineLength(const std::vector<Point2>& path) noexcept {
  double total = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    total += Distance(path[i - 1], path[i]);
  }
  return total;
}

std::vector<double> CumulativeLengths(const std::vector<Point2>& path) {
  std::vector<double> out;
  out.reserve(path.size());
  double total = 0.0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i > 0) total += Distance(path[i - 1], path[i]);
    out.push_back(total);
  }
  return out;
}

Point2 PointAtLength(const std::vector<Point2>& path,
                     const std::vector<double>& cumulative,
                     double s) noexcept {
  assert(!path.empty());
  assert(cumulative.size() == path.size());
  if (s <= 0.0) return path.front();
  if (s >= cumulative.back()) return path.back();
  // First vertex with cumulative length >= s; s < back() so it exists and
  // is not the first vertex.
  const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), s);
  const auto idx = static_cast<std::size_t>(it - cumulative.begin());
  const double seg_start = cumulative[idx - 1];
  const double seg_len = cumulative[idx] - seg_start;
  if (seg_len <= 0.0) return path[idx];
  const double t = (s - seg_start) / seg_len;
  return Lerp(path[idx - 1], path[idx], t);
}

Point2 PointAtLength(const std::vector<Point2>& path, double s) {
  return PointAtLength(path, CumulativeLengths(path), s);
}

std::vector<Point2> ResampleUniform(const std::vector<Point2>& path,
                                    double spacing) {
  assert(spacing > 0.0);
  if (path.empty()) return {};
  if (path.size() == 1) return {path.front()};
  const auto cumulative = CumulativeLengths(path);
  const double length = cumulative.back();
  if (length <= 0.0) return {path.front(), path.back()};
  // n-1 intervals of exact spacing length/(n-1) <= requested spacing.
  const auto intervals =
      static_cast<std::size_t>(std::max(1.0, std::ceil(length / spacing)));
  std::vector<Point2> out;
  out.reserve(intervals + 1);
  for (std::size_t k = 0; k <= intervals; ++k) {
    const double s =
        length * static_cast<double>(k) / static_cast<double>(intervals);
    out.push_back(PointAtLength(path, cumulative, s));
  }
  // Endpoints exactly (PointAtLength already clamps, this removes rounding).
  out.front() = path.front();
  out.back() = path.back();
  return out;
}

std::vector<Point2> ResampleCount(const std::vector<Point2>& path,
                                  std::size_t count) {
  assert(count >= 2);
  if (path.empty()) return {};
  if (path.size() == 1) return std::vector<Point2>(count, path.front());
  const auto cumulative = CumulativeLengths(path);
  const double length = cumulative.back();
  std::vector<Point2> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const double s = length * static_cast<double>(k) /
                     static_cast<double>(count - 1);
    out.push_back(PointAtLength(path, cumulative, s));
  }
  out.front() = path.front();
  out.back() = path.back();
  return out;
}

std::vector<Point2> ChordResample(const std::vector<Point2>& path,
                                  double spacing) {
  assert(spacing > 0.0);
  if (path.empty()) return {};
  if (path.size() == 1) return {path.front()};

  std::vector<Point2> out{path.front()};
  Point2 anchor = path.front();
  for (std::size_t i = 1; i < path.size(); ++i) {
    Point2 a = path[i - 1];
    const Point2 b = path[i];
    // Repeatedly find where the segment [a, b] exits the spacing-circle
    // around the current anchor; each exit becomes an output point and the
    // new anchor (and the new segment start).
    for (;;) {
      const Point2 d = b - a;
      const Point2 m = a - anchor;
      const double dd = d.NormSquared();
      if (dd == 0.0) break;  // degenerate segment
      const double md = m.Dot(d);
      const double c = m.NormSquared() - spacing * spacing;
      // c < 0 always holds (a is within the circle); the outward crossing
      // is the larger quadratic root.
      const double disc = md * md - dd * c;
      if (disc < 0.0) break;  // numerically inside for the whole segment
      const double t = (-md + std::sqrt(disc)) / dd;
      if (t > 1.0) break;  // segment ends inside the circle
      const Point2 crossing = a + d * t;
      out.push_back(crossing);
      anchor = crossing;
      a = crossing;  // continue scanning the remainder of this segment
    }
  }
  // Preserve the final fix (possibly closer than `spacing` to the last
  // emitted point); skip only an exact duplicate.
  if (!(out.back() == path.back())) out.push_back(path.back());
  return out;
}

namespace {

void RdpRecurse(const std::vector<Point2>& path, std::size_t first,
                std::size_t last, double epsilon, std::vector<bool>& keep) {
  if (last <= first + 1) return;
  double max_dist = -1.0;
  std::size_t max_idx = first;
  for (std::size_t i = first + 1; i < last; ++i) {
    const double d = DistanceToSegment(path[i], path[first], path[last]);
    if (d > max_dist) {
      max_dist = d;
      max_idx = i;
    }
  }
  if (max_dist > epsilon) {
    keep[max_idx] = true;
    RdpRecurse(path, first, max_idx, epsilon, keep);
    RdpRecurse(path, max_idx, last, epsilon, keep);
  }
}

}  // namespace

std::vector<Point2> SimplifyRdp(const std::vector<Point2>& path,
                                double epsilon) {
  if (path.size() < 3) return path;
  std::vector<bool> keep(path.size(), false);
  keep.front() = keep.back() = true;
  RdpRecurse(path, 0, path.size() - 1, epsilon, keep);
  std::vector<Point2> out;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (keep[i]) out.push_back(path[i]);
  }
  return out;
}

std::optional<std::size_t> NearestVertex(const std::vector<Point2>& path,
                                         Point2 p) noexcept {
  if (path.empty()) return std::nullopt;
  std::size_t best = 0;
  double best_dist = DistanceSquared(path[0], p);
  for (std::size_t i = 1; i < path.size(); ++i) {
    const double d = DistanceSquared(path[i], p);
    if (d < best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

double DistanceToPolyline(const std::vector<Point2>& path, Point2 p) noexcept {
  assert(!path.empty());
  if (path.size() == 1) return Distance(path.front(), p);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i < path.size(); ++i) {
    best = std::min(best, DistanceToSegment(p, path[i - 1], path[i]));
  }
  return best;
}

}  // namespace mobipriv::geo
