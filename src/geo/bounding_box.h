// Axis-aligned bounding boxes, both geographic (degrees) and planar (metres).
// Used for dataset extents, range queries and the spatial grid index.
#pragma once

#include <vector>

#include "geo/latlng.h"
#include "geo/point2.h"

namespace mobipriv::geo {

/// Geographic AABB in degrees. An empty box (no Extend yet) contains nothing.
class GeoBoundingBox {
 public:
  GeoBoundingBox() = default;
  GeoBoundingBox(LatLng south_west, LatLng north_east) noexcept;

  void Extend(LatLng p) noexcept;
  void Extend(const GeoBoundingBox& other) noexcept;

  [[nodiscard]] bool IsEmpty() const noexcept { return !initialized_; }
  [[nodiscard]] bool Contains(LatLng p) const noexcept;
  [[nodiscard]] bool Intersects(const GeoBoundingBox& other) const noexcept;
  [[nodiscard]] LatLng SouthWest() const noexcept { return sw_; }
  [[nodiscard]] LatLng NorthEast() const noexcept { return ne_; }
  [[nodiscard]] LatLng Center() const noexcept;
  /// Great-circle length of the box diagonal, metres. 0 for empty boxes.
  [[nodiscard]] double DiagonalMeters() const noexcept;

  /// Smallest box containing all points (empty input -> empty box).
  static GeoBoundingBox Of(const std::vector<LatLng>& points);

 private:
  LatLng sw_{90.0, 180.0};
  LatLng ne_{-90.0, -180.0};
  bool initialized_ = false;
};

/// Planar AABB in metres (after projection). Closed on all sides.
struct Rect {
  Point2 min;  ///< lower-left corner
  Point2 max;  ///< upper-right corner

  [[nodiscard]] constexpr bool Contains(Point2 p) const noexcept {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  [[nodiscard]] constexpr bool Intersects(const Rect& o) const noexcept {
    return min.x <= o.max.x && o.min.x <= max.x && min.y <= o.max.y &&
           o.min.y <= max.y;
  }
  [[nodiscard]] constexpr double Width() const noexcept { return max.x - min.x; }
  [[nodiscard]] constexpr double Height() const noexcept {
    return max.y - min.y;
  }
  [[nodiscard]] constexpr double Area() const noexcept {
    return Width() * Height();
  }
  [[nodiscard]] constexpr Point2 Center() const noexcept {
    return {(min.x + max.x) / 2.0, (min.y + max.y) / 2.0};
  }

  /// Smallest rect containing all points. Degenerate (zero-area) rect for a
  /// single point; callers must check for empty input themselves.
  static Rect Of(const std::vector<Point2>& points);
};

}  // namespace mobipriv::geo
