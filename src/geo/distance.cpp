#include "geo/distance.h"

#include <vector>

namespace mobipriv::geo {

GeoDistanceFn DefaultGeoDistance() { return HaversineMetric{}; }

GeoDistanceFn FastGeoDistance() { return EquirectangularMetric{}; }

double PathLength(const std::vector<LatLng>& path) noexcept {
  return PathLength(path, HaversineMetric{});
}

double PathLength(const std::vector<Point2>& path) noexcept {
  return PathLength(path, [](Point2 a, Point2 b) { return Distance(a, b); });
}

}  // namespace mobipriv::geo
