#include "geo/distance.h"

#include <vector>

namespace mobipriv::geo {

GeoDistanceFn DefaultGeoDistance() {
  return [](LatLng a, LatLng b) { return HaversineDistance(a, b); };
}

GeoDistanceFn FastGeoDistance() {
  return [](LatLng a, LatLng b) { return EquirectangularDistance(a, b); };
}

double PathLength(const std::vector<LatLng>& path) noexcept {
  double total = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    total += HaversineDistance(path[i - 1], path[i]);
  }
  return total;
}

double PathLength(const std::vector<Point2>& path) noexcept {
  double total = 0.0;
  for (std::size_t i = 1; i < path.size(); ++i) {
    total += Distance(path[i - 1], path[i]);
  }
  return total;
}

}  // namespace mobipriv::geo
