// Batch geometry kernels: N source points against one anchor, built on the
// util/simd.h shim. These are the bulk forms of the scalar primitives in
// geo/latlng.h and geo/point2.h, each with an explicit numerical contract
// (mirrored in docs/PERFORMANCE.md):
//
//   * ProjectedMetricBatch — planar distances. Computes
//     sqrt(dx*dx + dy*dy) instead of std::hypot(dx, dy): both are within
//     a few ULP of the true distance but are NOT bit-equal, so the
//     contract is <= 4 ULP of geo::Distance. (hypot defends against
//     overflow/underflow of dx^2; metric-frame coordinates are metres
//     within one metropolitan area, so the squares are far from both.)
//   * EquirectangularBatch — flat-earth WGS84 distances. The per-point
//     cos(mean_lat) stays a scalar libm call (there is no correctly-
//     rounded vector cos); everything around it vectorizes, and the
//     final hypot is replaced as above. Contract: <= 4 ULP of
//     geo::EquirectangularDistance.
//   * HaversineBatch — great-circle distances. sin/cos/asin error near
//     antipodal points amplifies without bound (d asin/dh -> inf as
//     h -> 1), so no useful ULP bound exists for a reordered evaluation;
//     the batch form therefore calls the scalar routine per lane and is
//     bit-identical to geo::HaversineDistance by construction. It exists
//     so call sites can choose the metric per element without changing
//     loop shape.
//   * WithinRadiusMask — the pairwise-within-radius predicate
//     (dx*dx + dy*dy <= r*r) as a byte mask. Squared comparison only, no
//     sqrt: bit-identical to the scalar predicate used by GridIndex and
//     the mix-zone scans.
//
// All kernels accept unaligned, contiguous columns and any n (vector body
// + scalar tail that performs the same arithmetic).
#pragma once

#include <cstddef>
#include <cstdint>

#include "geo/latlng.h"
#include "geo/point2.h"

namespace mobipriv::geo {

/// out[i] = planar distance from (x[i], y[i]) to `anchor`, metres.
/// Contract: <= 4 ULP of geo::Distance (sqrt of squares vs hypot).
void ProjectedMetricBatch(const double* x, const double* y, std::size_t n,
                          Point2 anchor, double* out) noexcept;

/// out[i] = equirectangular distance from (lat[i], lng[i]) to `anchor`,
/// metres. Contract: <= 4 ULP of geo::EquirectangularDistance.
void EquirectangularBatch(const double* lat, const double* lng, std::size_t n,
                          LatLng anchor, double* out) noexcept;

/// out[i] = great-circle distance from (lat[i], lng[i]) to `anchor`,
/// metres. Contract: bit-identical to geo::HaversineDistance (per-lane
/// scalar; libm-bound, provided for call-site uniformity).
void HaversineBatch(const double* lat, const double* lng, std::size_t n,
                    LatLng anchor, double* out) noexcept;

/// mask[i] = 1 when (x[i], y[i]) lies within `radius` of `anchor`
/// (inclusive), else 0; returns the number of set entries. Contract:
/// bit-identical to the scalar predicate dx*dx + dy*dy <= radius*radius.
std::size_t WithinRadiusMask(const double* x, const double* y, std::size_t n,
                             Point2 anchor, double radius,
                             std::uint8_t* mask) noexcept;

}  // namespace mobipriv::geo
