// Local tangent-plane projection (azimuthal equirectangular around a chosen
// origin). Mobility datasets cover a single metropolitan area, where this
// projection is accurate to centimetres; it gives us a Euclidean space in
// which segment lengths, interpolation and clustering are exact and cheap.
//
// The projection is invertible: Unproject(Project(p)) == p up to floating
// point rounding, a property the round-trip tests assert.
#pragma once

#include "geo/latlng.h"
#include "geo/point2.h"

#include <vector>

namespace mobipriv::geo {

class LocalProjection {
 public:
  /// `origin` becomes planar (0, 0). Typically the dataset's bounding-box
  /// centre.
  explicit LocalProjection(LatLng origin) noexcept;

  [[nodiscard]] LatLng Origin() const noexcept { return origin_; }

  /// WGS84 -> metres east/north of the origin.
  [[nodiscard]] Point2 Project(LatLng p) const noexcept;

  /// Metres east/north of the origin -> WGS84.
  [[nodiscard]] LatLng Unproject(Point2 p) const noexcept;

  [[nodiscard]] std::vector<Point2> Project(
      const std::vector<LatLng>& path) const;
  [[nodiscard]] std::vector<LatLng> Unproject(
      const std::vector<Point2>& path) const;

 private:
  LatLng origin_;
  double cos_lat_;  // cached scale factor for the longitude axis
};

}  // namespace mobipriv::geo
