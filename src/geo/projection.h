// Local tangent-plane projection (azimuthal equirectangular around a chosen
// origin). Mobility datasets cover a single metropolitan area, where this
// projection is accurate to centimetres; it gives us a Euclidean space in
// which segment lengths, interpolation and clustering are exact and cheap.
//
// The projection is invertible: Unproject(Project(p)) == p up to floating
// point rounding, a property the round-trip tests assert.
#pragma once

#include "geo/latlng.h"
#include "geo/point2.h"
#include "util/simd.h"

#include <vector>

namespace mobipriv::geo {

class LocalProjection {
 public:
  /// `origin` becomes planar (0, 0). Typically the dataset's bounding-box
  /// centre.
  explicit LocalProjection(LatLng origin) noexcept;

  [[nodiscard]] LatLng Origin() const noexcept { return origin_; }

  /// WGS84 -> metres east/north of the origin.
  [[nodiscard]] Point2 Project(LatLng p) const noexcept;

  /// Metres east/north of the origin -> WGS84.
  [[nodiscard]] LatLng Unproject(Point2 p) const noexcept;

  /// 4-wide Project: lanes are bit-identical to Project on the same inputs
  /// (same operations in the same order, no fused contractions), so
  /// vectorized kernels keep the byte-identity contracts of their scalar
  /// originals. Lane i of (x, y) is Project({lat[i], lng[i]}).
  void Project4(util::F64x4 lat, util::F64x4 lng, util::F64x4& x,
                util::F64x4& y) const noexcept {
    using util::F64x4;
    const F64x4 deg_to_rad = F64x4::Set1(kDegToRad);
    const F64x4 radius = F64x4::Set1(kEarthRadiusMeters);
    x = (lng - F64x4::Set1(origin_.lng)) * deg_to_rad *
        F64x4::Set1(cos_lat_) * radius;
    y = (lat - F64x4::Set1(origin_.lat)) * deg_to_rad * radius;
  }

  /// 4-wide Unproject, bit-identical per lane to Unproject (see Project4).
  void Unproject4(util::F64x4 x, util::F64x4 y, util::F64x4& lat,
                  util::F64x4& lng) const noexcept {
    using util::F64x4;
    const F64x4 rad_to_deg = F64x4::Set1(kRadToDeg);
    lat = F64x4::Set1(origin_.lat) +
          (y / F64x4::Set1(kEarthRadiusMeters)) * rad_to_deg;
    lng = F64x4::Set1(origin_.lng) +
          (x / F64x4::Set1(kEarthRadiusMeters * cos_lat_)) * rad_to_deg;
  }

  [[nodiscard]] std::vector<Point2> Project(
      const std::vector<LatLng>& path) const;
  [[nodiscard]] std::vector<LatLng> Unproject(
      const std::vector<Point2>& path) const;

 private:
  LatLng origin_;
  double cos_lat_;  // cached scale factor for the longitude axis
};

}  // namespace mobipriv::geo
