// Polyline algebra on planar paths. This module carries the geometric core
// of the paper's first stage: ResampleUniform() places points at *equal
// spatial spacing* along a path, which combined with equally-spaced
// timestamps yields the constant-speed trace of Section III.
#pragma once

#include <optional>
#include <vector>

#include "geo/point2.h"

namespace mobipriv::geo {

/// Total arc length (metres) of the path; 0 for fewer than 2 points.
[[nodiscard]] double PolylineLength(const std::vector<Point2>& path) noexcept;

/// Cumulative arc length at every vertex: out[0] = 0, out.back() = length.
/// Empty input yields an empty vector.
[[nodiscard]] std::vector<double> CumulativeLengths(
    const std::vector<Point2>& path);

/// Point at arc length `s` along the path (clamped to [0, length]).
/// Requires a non-empty path.
[[nodiscard]] Point2 PointAtLength(const std::vector<Point2>& path,
                                   const std::vector<double>& cumulative,
                                   double s) noexcept;

/// Convenience overload that recomputes the cumulative lengths.
[[nodiscard]] Point2 PointAtLength(const std::vector<Point2>& path, double s);

/// Resamples the path at uniform arc-length spacing.
///
/// The output always contains the first and last input vertices. Interior
/// output points lie exactly on the input polyline at arc lengths
/// k * L/(n-1) where L is the total length and n the output size chosen so
/// the realized spacing is the largest value <= `spacing` that divides L
/// evenly (so spacing is *exactly* uniform, which the constant-speed
/// guarantee requires). Degenerate inputs:
///   - empty path          -> empty output
///   - single point        -> that point
///   - zero-length path    -> {first, last}
/// Requires spacing > 0.
[[nodiscard]] std::vector<Point2> ResampleUniform(
    const std::vector<Point2>& path, double spacing);

/// Resamples to exactly `count` >= 2 points at uniform spacing (first and
/// last preserved). Used when the caller wants to keep the original point
/// count rather than a target spacing.
[[nodiscard]] std::vector<Point2> ResampleCount(const std::vector<Point2>& path,
                                                std::size_t count);

/// Resamples the path at uniform *chord* spacing: every consecutive pair of
/// output points is exactly `spacing` metres apart in straight-line
/// (Euclidean) distance — except the final pair, which may be closer.
///
/// The walk keeps the last emitted point as an anchor and advances through
/// the input vertices until the straight-line distance from the anchor
/// exceeds `spacing`, emitting the crossing point of the `spacing`-circle
/// with the current segment. Consequences that make this the right
/// primitive for the paper's constant-speed stage (see
/// mechanisms/speed_smoothing.h):
///   - "equal distance between two consecutive points" holds *exactly*;
///   - excursions that stay within `spacing` of the anchor are absorbed:
///     GPS jitter while the user dwells at a POI — kilometres of wiggly
///     polyline inside a few metres — contributes no output points at all,
///     so stops become invisible;
///   - corners are cut by at most `spacing`.
/// Degenerate inputs behave like ResampleUniform. Requires spacing > 0.
[[nodiscard]] std::vector<Point2> ChordResample(
    const std::vector<Point2>& path, double spacing);

/// Ramer–Douglas–Peucker simplification with tolerance `epsilon` metres.
/// Keeps endpoints; removes interior vertices whose removal changes the path
/// by less than epsilon. Used by the synthetic generator to keep road paths
/// compact and by ablation benches.
[[nodiscard]] std::vector<Point2> SimplifyRdp(const std::vector<Point2>& path,
                                              double epsilon);

/// Index of the path vertex nearest to `p` (nullopt for an empty path).
[[nodiscard]] std::optional<std::size_t> NearestVertex(
    const std::vector<Point2>& path, Point2 p) noexcept;

/// Minimum distance from `p` to the polyline (segments, not just vertices).
/// Requires a non-empty path.
[[nodiscard]] double DistanceToPolyline(const std::vector<Point2>& path,
                                        Point2 p) noexcept;

}  // namespace mobipriv::geo
