#include "geo/projection.h"

#include <cmath>

namespace mobipriv::geo {

LocalProjection::LocalProjection(LatLng origin) noexcept
    : origin_(origin), cos_lat_(std::cos(origin.lat * kDegToRad)) {}

Point2 LocalProjection::Project(LatLng p) const noexcept {
  const double x = (p.lng - origin_.lng) * kDegToRad * cos_lat_ *
                   kEarthRadiusMeters;
  const double y = (p.lat - origin_.lat) * kDegToRad * kEarthRadiusMeters;
  return {x, y};
}

LatLng LocalProjection::Unproject(Point2 p) const noexcept {
  const double lat = origin_.lat + (p.y / kEarthRadiusMeters) * kRadToDeg;
  const double lng =
      origin_.lng + (p.x / (kEarthRadiusMeters * cos_lat_)) * kRadToDeg;
  return {lat, lng};
}

std::vector<Point2> LocalProjection::Project(
    const std::vector<LatLng>& path) const {
  std::vector<Point2> out;
  out.reserve(path.size());
  for (const auto& p : path) out.push_back(Project(p));
  return out;
}

std::vector<LatLng> LocalProjection::Unproject(
    const std::vector<Point2>& path) const {
  std::vector<LatLng> out;
  out.reserve(path.size());
  for (const auto& p : path) out.push_back(Unproject(p));
  return out;
}

}  // namespace mobipriv::geo
