#include "geo/grid_index.h"

#include <cassert>
#include <cmath>

namespace mobipriv::geo {

GridIndex::GridIndex(double cell_size) : cell_size_(cell_size) {
  assert(cell_size > 0.0);
}

GridIndex::CellKey GridIndex::KeyFor(Point2 p) const noexcept {
  return {static_cast<std::int64_t>(std::floor(p.x / cell_size_)),
          static_cast<std::int64_t>(std::floor(p.y / cell_size_))};
}

void GridIndex::Insert(Point2 p, std::uint64_t id) {
  cells_[KeyFor(p)].push_back(Entry{p, id});
  ++count_;
}

std::vector<std::uint64_t> GridIndex::QueryRadius(Point2 center,
                                                  double radius) const {
  assert(radius >= 0.0);
  std::vector<std::uint64_t> out;
  const double r_sq = radius * radius;
  // Number of cells the radius spans (>=1 so the 3x3 case stays fast).
  const auto span =
      static_cast<std::int64_t>(std::ceil(radius / cell_size_));
  const CellKey center_key = KeyFor(center);
  for (std::int64_t dx = -span; dx <= span; ++dx) {
    for (std::int64_t dy = -span; dy <= span; ++dy) {
      const auto it =
          cells_.find(CellKey{center_key.cx + dx, center_key.cy + dy});
      if (it == cells_.end()) continue;
      for (const Entry& e : it->second) {
        if (DistanceSquared(e.point, center) <= r_sq) out.push_back(e.id);
      }
    }
  }
  return out;
}

std::vector<std::pair<std::uint64_t, Point2>> GridIndex::QueryBoxCandidates(
    Point2 center, double radius) const {
  std::vector<std::pair<std::uint64_t, Point2>> out;
  const auto span =
      static_cast<std::int64_t>(std::ceil(radius / cell_size_));
  const CellKey center_key = KeyFor(center);
  for (std::int64_t dx = -span; dx <= span; ++dx) {
    for (std::int64_t dy = -span; dy <= span; ++dy) {
      const auto it =
          cells_.find(CellKey{center_key.cx + dx, center_key.cy + dy});
      if (it == cells_.end()) continue;
      for (const Entry& e : it->second) out.emplace_back(e.id, e.point);
    }
  }
  return out;
}

void GridIndex::Clear() {
  cells_.clear();
  count_ = 0;
}

}  // namespace mobipriv::geo
