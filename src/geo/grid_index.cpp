#include "geo/grid_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace mobipriv::geo {

GridIndex::GridIndex(double cell_size) : cell_size_(cell_size) {
  assert(cell_size > 0.0);
}

GridIndex::CellKey GridIndex::KeyFor(Point2 p) const noexcept {
  return {static_cast<std::int64_t>(std::floor(p.x / cell_size_)),
          static_cast<std::int64_t>(std::floor(p.y / cell_size_))};
}

std::int32_t GridIndex::AcquireSlot(Point2 p, std::uint64_t id) {
  std::int32_t slot;
  if (free_head_ != -1) {
    slot = free_head_;
    free_head_ = entries_[static_cast<std::size_t>(slot)].next;
    entries_[static_cast<std::size_t>(slot)] = Entry{p, id, -1};
  } else {
    // Chains are int32-indexed; past 2^31 entries the cast would wrap and
    // corrupt traversal silently.
    assert(entries_.size() <=
           static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()));
    slot = static_cast<std::int32_t>(entries_.size());
    entries_.push_back(Entry{p, id, -1});
  }
  return slot;
}

void GridIndex::AppendToBucket(Bucket& bucket, std::int32_t slot) {
  if (bucket.head == -1) {
    bucket.head = bucket.tail = slot;
  } else {
    entries_[static_cast<std::size_t>(bucket.tail)].next = slot;
    bucket.tail = slot;
  }
}

void GridIndex::Insert(Point2 p, std::uint64_t id) {
  const CellKey key = KeyFor(p);
  if (count_ == 0) {
    min_cx_ = max_cx_ = key.cx;
    min_cy_ = max_cy_ = key.cy;
  } else {
    min_cx_ = std::min(min_cx_, key.cx);
    max_cx_ = std::max(max_cx_, key.cx);
    min_cy_ = std::min(min_cy_, key.cy);
    max_cy_ = std::max(max_cy_, key.cy);
  }
  AppendToBucket(cells_[key], AcquireSlot(p, id));
  ++count_;
}

void GridIndex::UnlinkFromCell(CellKey key, std::int32_t slot) {
  const auto it = cells_.find(key);
  assert(it != cells_.end());
  Bucket& bucket = it->second;
  std::int32_t prev = -1;
  for (std::int32_t cur = bucket.head; cur != -1;
       cur = entries_[static_cast<std::size_t>(cur)].next) {
    if (cur == slot) {
      const std::int32_t next = entries_[static_cast<std::size_t>(cur)].next;
      if (prev == -1) {
        bucket.head = next;
      } else {
        entries_[static_cast<std::size_t>(prev)].next = next;
      }
      if (bucket.tail == slot) bucket.tail = prev;
      if (bucket.head == -1) cells_.erase(it);
      return;
    }
    prev = cur;
  }
  assert(false && "slot not found in its cell chain");
}

bool GridIndex::Remove(Point2 p, std::uint64_t id) {
  const CellKey key = KeyFor(p);
  const auto it = cells_.find(key);
  if (it == cells_.end()) return false;
  for (std::int32_t cur = it->second.head; cur != -1;
       cur = entries_[static_cast<std::size_t>(cur)].next) {
    Entry& e = entries_[static_cast<std::size_t>(cur)];
    if (e.id == id && e.point.x == p.x && e.point.y == p.y) {
      UnlinkFromCell(key, cur);
      e.next = free_head_;
      free_head_ = cur;
      --count_;
      return true;
    }
  }
  return false;
}

bool GridIndex::Move(Point2 from, Point2 to, std::uint64_t id) {
  const CellKey from_key = KeyFor(from);
  const auto it = cells_.find(from_key);
  if (it == cells_.end()) return false;
  for (std::int32_t cur = it->second.head; cur != -1;
       cur = entries_[static_cast<std::size_t>(cur)].next) {
    Entry& e = entries_[static_cast<std::size_t>(cur)];
    if (e.id != id || e.point.x != from.x || e.point.y != from.y) continue;
    const CellKey to_key = KeyFor(to);
    if (to_key == from_key) {
      e.point = to;
    } else {
      UnlinkFromCell(from_key, cur);
      e.point = to;
      e.next = -1;
      AppendToBucket(cells_[to_key], cur);
      min_cx_ = std::min(min_cx_, to_key.cx);
      max_cx_ = std::max(max_cx_, to_key.cx);
      min_cy_ = std::min(min_cy_, to_key.cy);
      max_cy_ = std::max(max_cy_, to_key.cy);
    }
    return true;
  }
  return false;
}

void GridIndex::Reserve(std::size_t n) {
  entries_.reserve(n);
  cells_.reserve(n);
}

void GridIndex::QueryRadius(Point2 center, double radius,
                            std::vector<std::uint64_t>& out) const {
  assert(radius >= 0.0);
  out.clear();
  const double r_sq = radius * radius;
  // Number of cells the radius spans (>=1 so the 3x3 case stays fast).
  const auto span =
      static_cast<std::int64_t>(std::ceil(radius / cell_size_));
  const CellKey center_key = KeyFor(center);
  for (std::int64_t dx = -span; dx <= span; ++dx) {
    for (std::int64_t dy = -span; dy <= span; ++dy) {
      const auto it =
          cells_.find(CellKey{center_key.cx + dx, center_key.cy + dy});
      if (it == cells_.end()) continue;
      for (std::int32_t cur = it->second.head; cur != -1;
           cur = entries_[static_cast<std::size_t>(cur)].next) {
        const Entry& e = entries_[static_cast<std::size_t>(cur)];
        if (DistanceSquared(e.point, center) <= r_sq) out.push_back(e.id);
      }
    }
  }
}

std::vector<std::uint64_t> GridIndex::QueryRadius(Point2 center,
                                                  double radius) const {
  std::vector<std::uint64_t> out;
  QueryRadius(center, radius, out);
  return out;
}

void GridIndex::QueryBoxCandidates(
    Point2 center, double radius,
    std::vector<std::pair<std::uint64_t, Point2>>& out) const {
  out.clear();
  const auto span =
      static_cast<std::int64_t>(std::ceil(radius / cell_size_));
  const CellKey center_key = KeyFor(center);
  for (std::int64_t dx = -span; dx <= span; ++dx) {
    for (std::int64_t dy = -span; dy <= span; ++dy) {
      const auto it =
          cells_.find(CellKey{center_key.cx + dx, center_key.cy + dy});
      if (it == cells_.end()) continue;
      for (std::int32_t cur = it->second.head; cur != -1;
           cur = entries_[static_cast<std::size_t>(cur)].next) {
        const Entry& e = entries_[static_cast<std::size_t>(cur)];
        out.emplace_back(e.id, e.point);
      }
    }
  }
}

std::vector<std::pair<std::uint64_t, Point2>> GridIndex::QueryBoxCandidates(
    Point2 center, double radius) const {
  std::vector<std::pair<std::uint64_t, Point2>> out;
  QueryBoxCandidates(center, radius, out);
  return out;
}

std::optional<NearestResult> GridIndex::QueryNearest(Point2 center) const {
  if (count_ == 0) return std::nullopt;
  const CellKey center_key = KeyFor(center);

  double best_sq = std::numeric_limits<double>::infinity();
  const Entry* best = nullptr;

  const auto consider_cell = [&](std::int64_t cx, std::int64_t cy) {
    const auto it = cells_.find(CellKey{cx, cy});
    if (it == cells_.end()) return;
    for (std::int32_t cur = it->second.head; cur != -1;
         cur = entries_[static_cast<std::size_t>(cur)].next) {
      const Entry& e = entries_[static_cast<std::size_t>(cur)];
      const double d_sq = DistanceSquared(e.point, center);
      if (d_sq < best_sq ||
          (d_sq == best_sq && best != nullptr && e.id < best->id)) {
        best_sq = d_sq;
        best = &e;
      }
    }
  };

  // Ring search: cells at Chebyshev ring r are at least (r-1)*cell_size
  // away from any point inside the centre cell, so once a candidate beats
  // that bound no farther ring can improve on it. The search never needs to
  // leave the occupied-cell extent.
  const std::int64_t max_ring = std::max(
      std::max(std::abs(center_key.cx - min_cx_),
               std::abs(center_key.cx - max_cx_)),
      std::max(std::abs(center_key.cy - min_cy_),
               std::abs(center_key.cy - max_cy_)));
  // Rings closer than the occupied-cell box are empty by construction;
  // start at the box (queries far outside the cloud skip straight to it).
  const auto outside = [](std::int64_t v, std::int64_t lo, std::int64_t hi) {
    return v < lo ? lo - v : (v > hi ? v - hi : 0);
  };
  const std::int64_t first_ring =
      std::max(outside(center_key.cx, min_cx_, max_cx_),
               outside(center_key.cy, min_cy_, max_cy_));
  for (std::int64_t r = first_ring; r <= max_ring; ++r) {
    if (best != nullptr) {
      const double ring_lower = static_cast<double>(r - 1) * cell_size_;
      if (ring_lower > 0.0 && ring_lower * ring_lower > best_sq) break;
    }
    if (r == 0) {
      consider_cell(center_key.cx, center_key.cy);
      continue;
    }
    for (std::int64_t dx = -r; dx <= r; ++dx) {
      consider_cell(center_key.cx + dx, center_key.cy - r);
      consider_cell(center_key.cx + dx, center_key.cy + r);
    }
    for (std::int64_t dy = -r + 1; dy <= r - 1; ++dy) {
      consider_cell(center_key.cx - r, center_key.cy + dy);
      consider_cell(center_key.cx + r, center_key.cy + dy);
    }
  }
  assert(best != nullptr);
  return NearestResult{best->id, best->point, std::sqrt(best_sq)};
}

void GridIndex::Clear() {
  cells_.clear();
  entries_.clear();
  free_head_ = -1;
  count_ = 0;
}

}  // namespace mobipriv::geo
