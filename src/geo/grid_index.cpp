#include "geo/grid_index.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace mobipriv::geo {

namespace {
/// Smallest power-of-two table that keeps the load factor under ~0.75
/// for `cells` occupied slots.
std::size_t TableCapacityFor(std::size_t cells) {
  std::size_t capacity = 16;
  while (capacity * 3 / 4 < cells) capacity *= 2;
  return capacity;
}
}  // namespace

GridIndex::GridIndex(double cell_size) : cell_size_(cell_size) {
  assert(cell_size > 0.0);
}

void GridIndex::Rehash(std::size_t min_capacity) {
  const std::size_t capacity = TableCapacityFor(
      std::max(min_capacity, cell_count_));
  if (capacity == cells_.size()) return;
  std::vector<Cell> old = std::move(cells_);
  cells_.assign(capacity, Cell{});
  const std::size_t mask = capacity - 1;
  for (const Cell& cell : old) {
    if (!cell.used) continue;
    std::size_t i = HashKey(cell.key) & mask;
    while (cells_[i].used) i = (i + 1) & mask;
    cells_[i] = cell;
  }
}

std::size_t GridIndex::FindOrInsertCell(CellKey key) {
  if (cells_.empty() || (cell_count_ + 1) * 4 > cells_.size() * 3) {
    Rehash(cell_count_ + 1);
  }
  const std::size_t mask = cells_.size() - 1;
  std::size_t i = HashKey(key) & mask;
  while (cells_[i].used) {
    if (cells_[i].key == key) return i;
    i = (i + 1) & mask;
  }
  cells_[i].key = key;
  cells_[i].bucket = Bucket{};
  cells_[i].used = true;
  ++cell_count_;
  return i;
}

void GridIndex::EraseCellSlot(std::size_t slot) {
  // Backward-shift deletion: walk the probe chain after `slot` and pull
  // back any cell whose ideal position lies at or before the hole, so
  // lookups never need tombstones.
  const std::size_t mask = cells_.size() - 1;
  std::size_t hole = slot;
  std::size_t i = (hole + 1) & mask;
  while (cells_[i].used) {
    const std::size_t ideal = HashKey(cells_[i].key) & mask;
    // Distance from ideal to current position (mod table size) >= distance
    // from ideal to the hole means the cell may legally move into the hole.
    const std::size_t dist_cur = (i - ideal) & mask;
    const std::size_t dist_hole = (hole - ideal) & mask;
    if (dist_cur >= dist_hole) {
      cells_[hole] = cells_[i];
      hole = i;
    }
    i = (i + 1) & mask;
  }
  cells_[hole].used = false;
  cells_[hole].bucket = Bucket{};
  --cell_count_;
}

std::int32_t GridIndex::AcquireSlot(Point2 p, std::uint64_t id) {
  std::int32_t slot;
  if (free_head_ != -1) {
    slot = free_head_;
    free_head_ = entries_[static_cast<std::size_t>(slot)].next;
    entries_[static_cast<std::size_t>(slot)] = Entry{p, id, -1};
  } else {
    // Chains are int32-indexed; past 2^31 entries the cast would wrap and
    // corrupt traversal silently.
    assert(entries_.size() <=
           static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max()));
    slot = static_cast<std::int32_t>(entries_.size());
    entries_.push_back(Entry{p, id, -1});
  }
  return slot;
}

void GridIndex::AppendToBucket(Bucket& bucket, std::int32_t slot) {
  if (bucket.head == -1) {
    bucket.head = bucket.tail = slot;
  } else {
    entries_[static_cast<std::size_t>(bucket.tail)].next = slot;
    bucket.tail = slot;
  }
}

void GridIndex::Insert(Point2 p, std::uint64_t id) {
  const CellKey key = KeyFor(p);
  if (count_ == 0) {
    min_cx_ = max_cx_ = key.cx;
    min_cy_ = max_cy_ = key.cy;
  } else {
    min_cx_ = std::min(min_cx_, key.cx);
    max_cx_ = std::max(max_cx_, key.cx);
    min_cy_ = std::min(min_cy_, key.cy);
    max_cy_ = std::max(max_cy_, key.cy);
  }
  const std::int32_t slot = AcquireSlot(p, id);
  AppendToBucket(cells_[FindOrInsertCell(key)].bucket, slot);
  ++count_;
}

void GridIndex::UnlinkFromCell(CellKey key, std::int32_t slot) {
  const std::size_t cell = FindCell(key);
  assert(cell != kNpos);
  Bucket& bucket = cells_[cell].bucket;
  std::int32_t prev = -1;
  for (std::int32_t cur = bucket.head; cur != -1;
       cur = entries_[static_cast<std::size_t>(cur)].next) {
    if (cur == slot) {
      const std::int32_t next = entries_[static_cast<std::size_t>(cur)].next;
      if (prev == -1) {
        bucket.head = next;
      } else {
        entries_[static_cast<std::size_t>(prev)].next = next;
      }
      if (bucket.tail == slot) bucket.tail = prev;
      if (bucket.head == -1) EraseCellSlot(cell);
      return;
    }
    prev = cur;
  }
  assert(false && "slot not found in its cell chain");
}

bool GridIndex::Remove(Point2 p, std::uint64_t id) {
  const CellKey key = KeyFor(p);
  const std::size_t cell = FindCell(key);
  if (cell == kNpos) return false;
  for (std::int32_t cur = cells_[cell].bucket.head; cur != -1;
       cur = entries_[static_cast<std::size_t>(cur)].next) {
    Entry& e = entries_[static_cast<std::size_t>(cur)];
    if (e.id == id && e.point.x == p.x && e.point.y == p.y) {
      UnlinkFromCell(key, cur);
      e.next = free_head_;
      free_head_ = cur;
      --count_;
      return true;
    }
  }
  return false;
}

bool GridIndex::Move(Point2 from, Point2 to, std::uint64_t id) {
  const CellKey from_key = KeyFor(from);
  const std::size_t cell = FindCell(from_key);
  if (cell == kNpos) return false;
  for (std::int32_t cur = cells_[cell].bucket.head; cur != -1;
       cur = entries_[static_cast<std::size_t>(cur)].next) {
    Entry& e = entries_[static_cast<std::size_t>(cur)];
    if (e.id != id || e.point.x != from.x || e.point.y != from.y) continue;
    const CellKey to_key = KeyFor(to);
    if (to_key == from_key) {
      e.point = to;
    } else {
      UnlinkFromCell(from_key, cur);
      e.point = to;
      e.next = -1;
      AppendToBucket(cells_[FindOrInsertCell(to_key)].bucket, cur);
      min_cx_ = std::min(min_cx_, to_key.cx);
      max_cx_ = std::max(max_cx_, to_key.cx);
      min_cy_ = std::min(min_cy_, to_key.cy);
      max_cy_ = std::max(max_cy_, to_key.cy);
    }
    return true;
  }
  return false;
}

void GridIndex::Reserve(std::size_t n) {
  entries_.reserve(n);
  Rehash(n);
}

void GridIndex::QueryRadius(Point2 center, double radius,
                            std::vector<std::uint64_t>& out) const {
  assert(radius >= 0.0);
  out.clear();
  ForEachInRadius(center, radius,
                  [&](std::uint64_t id, Point2) { out.push_back(id); });
}

std::vector<std::uint64_t> GridIndex::QueryRadius(Point2 center,
                                                  double radius) const {
  std::vector<std::uint64_t> out;
  QueryRadius(center, radius, out);
  return out;
}

void GridIndex::QueryBoxCandidates(
    Point2 center, double radius,
    std::vector<std::pair<std::uint64_t, Point2>>& out) const {
  out.clear();
  ForEachCellInBox(center, radius, [&](std::int32_t head) {
    for (std::int32_t cur = head; cur != -1;
         cur = entries_[static_cast<std::size_t>(cur)].next) {
      const Entry& e = entries_[static_cast<std::size_t>(cur)];
      out.emplace_back(e.id, e.point);
    }
    return true;
  });
}

std::vector<std::pair<std::uint64_t, Point2>> GridIndex::QueryBoxCandidates(
    Point2 center, double radius) const {
  std::vector<std::pair<std::uint64_t, Point2>> out;
  QueryBoxCandidates(center, radius, out);
  return out;
}

std::optional<NearestResult> GridIndex::QueryNearest(Point2 center) const {
  if (count_ == 0) return std::nullopt;
  const CellKey center_key = KeyFor(center);

  double best_sq = std::numeric_limits<double>::infinity();
  const Entry* best = nullptr;

  const auto consider_cell = [&](std::int64_t cx, std::int64_t cy) {
    for (std::int32_t cur = CellHead(CellKey{cx, cy}); cur != -1;
         cur = entries_[static_cast<std::size_t>(cur)].next) {
      const Entry& e = entries_[static_cast<std::size_t>(cur)];
      const double d_sq = DistanceSquared(e.point, center);
      if (d_sq < best_sq ||
          (d_sq == best_sq && best != nullptr && e.id < best->id)) {
        best_sq = d_sq;
        best = &e;
      }
    }
  };

  // Ring search: cells at Chebyshev ring r are at least (r-1)*cell_size
  // away from any point inside the centre cell, so once a candidate beats
  // that bound no farther ring can improve on it. The search never needs to
  // leave the occupied-cell extent.
  const std::int64_t max_ring = std::max(
      std::max(std::abs(center_key.cx - min_cx_),
               std::abs(center_key.cx - max_cx_)),
      std::max(std::abs(center_key.cy - min_cy_),
               std::abs(center_key.cy - max_cy_)));
  // Rings closer than the occupied-cell box are empty by construction;
  // start at the box (queries far outside the cloud skip straight to it).
  const auto outside = [](std::int64_t v, std::int64_t lo, std::int64_t hi) {
    return v < lo ? lo - v : (v > hi ? v - hi : 0);
  };
  const std::int64_t first_ring =
      std::max(outside(center_key.cx, min_cx_, max_cx_),
               outside(center_key.cy, min_cy_, max_cy_));
  for (std::int64_t r = first_ring; r <= max_ring; ++r) {
    if (best != nullptr) {
      const double ring_lower = static_cast<double>(r - 1) * cell_size_;
      if (ring_lower > 0.0 && ring_lower * ring_lower > best_sq) break;
    }
    if (r == 0) {
      consider_cell(center_key.cx, center_key.cy);
      continue;
    }
    for (std::int64_t dx = -r; dx <= r; ++dx) {
      consider_cell(center_key.cx + dx, center_key.cy - r);
      consider_cell(center_key.cx + dx, center_key.cy + r);
    }
    for (std::int64_t dy = -r + 1; dy <= r - 1; ++dy) {
      consider_cell(center_key.cx - r, center_key.cy + dy);
      consider_cell(center_key.cx + r, center_key.cy + dy);
    }
  }
  assert(best != nullptr);
  return NearestResult{best->id, best->point, std::sqrt(best_sq)};
}

void GridIndex::Clear() {
  cells_.clear();
  cell_count_ = 0;
  entries_.clear();
  free_head_ = -1;
  count_ = 0;
}

}  // namespace mobipriv::geo
