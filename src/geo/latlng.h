// WGS84 geographic coordinate. Datasets are ingested and published in
// lat/lng degrees; all geometric computation happens after projection to a
// local tangent plane (see geo/projection.h).
#pragma once

#include <string>

namespace mobipriv::geo {

inline constexpr double kEarthRadiusMeters = 6371008.8;  // IUGG mean radius
inline constexpr double kDegToRad = 0.017453292519943295;
inline constexpr double kRadToDeg = 57.29577951308232;

struct LatLng {
  double lat = 0.0;  ///< degrees, [-90, 90]
  double lng = 0.0;  ///< degrees, [-180, 180]

  friend constexpr bool operator==(LatLng a, LatLng b) noexcept {
    return a.lat == b.lat && a.lng == b.lng;
  }

  /// True if the coordinate lies in the valid WGS84 range.
  [[nodiscard]] constexpr bool IsValid() const noexcept {
    return lat >= -90.0 && lat <= 90.0 && lng >= -180.0 && lng <= 180.0;
  }

  /// "lat,lng" with 6 decimals (~0.1 m resolution) for CSV output.
  [[nodiscard]] std::string ToString() const;
};

/// Great-circle distance in metres (haversine formula). Numerically robust
/// for both antipodal and very close points.
[[nodiscard]] double HaversineDistance(LatLng a, LatLng b) noexcept;

/// Fast flat-earth approximation of the distance in metres; accurate to
/// <0.5 % for points within a few tens of kilometres, which is the scale of
/// every mobility dataset we process. Used on hot paths (clustering).
[[nodiscard]] double EquirectangularDistance(LatLng a, LatLng b) noexcept;

/// Initial great-circle bearing from a to b, radians in [0, 2*pi).
[[nodiscard]] double InitialBearing(LatLng a, LatLng b) noexcept;

/// Destination point at `distance_m` metres from `origin` along `bearing_rad`
/// (great-circle). Inverse of InitialBearing/HaversineDistance.
[[nodiscard]] LatLng Destination(LatLng origin, double bearing_rad,
                                 double distance_m) noexcept;

}  // namespace mobipriv::geo
