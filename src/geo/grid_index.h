// Uniform-grid spatial index over planar points. Used by the mix-zone
// detector (find co-located users fast), the POI clustering attack and the
// heatmap metric. Cell size should be >= the query radius for the classic
// 3x3-neighbourhood query to be exact.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/point2.h"

namespace mobipriv::geo {

/// Maps points (with caller-supplied payload ids) to grid cells and answers
/// radius queries by scanning the 3x3 cell neighbourhood (exact when
/// cell_size >= radius; the index verifies candidates with a true distance
/// test so results are always exact, the cell size only affects speed).
class GridIndex {
 public:
  explicit GridIndex(double cell_size);

  /// Inserts a point with an opaque id (e.g. event index).
  void Insert(Point2 p, std::uint64_t id);

  /// Ids of all inserted points within `radius` of `center` (inclusive).
  [[nodiscard]] std::vector<std::uint64_t> QueryRadius(Point2 center,
                                                       double radius) const;

  /// All (id, point) pairs sharing cells intersecting the axis-aligned
  /// square of half-width `radius` around `center` (superset of the true
  /// radius query; cheap pre-filter for custom predicates).
  [[nodiscard]] std::vector<std::pair<std::uint64_t, Point2>> QueryBoxCandidates(
      Point2 center, double radius) const;

  [[nodiscard]] std::size_t Size() const noexcept { return count_; }
  [[nodiscard]] double CellSize() const noexcept { return cell_size_; }
  void Clear();

 private:
  struct CellKey {
    std::int64_t cx;
    std::int64_t cy;
    friend bool operator==(CellKey a, CellKey b) noexcept {
      return a.cx == b.cx && a.cy == b.cy;
    }
  };
  struct CellKeyHash {
    std::size_t operator()(CellKey k) const noexcept {
      // 2-D -> 1-D mix (large odd constants, xor-fold).
      const auto ux = static_cast<std::uint64_t>(k.cx);
      const auto uy = static_cast<std::uint64_t>(k.cy);
      std::uint64_t h = ux * 0x9E3779B97F4A7C15ULL;
      h ^= uy * 0xC2B2AE3D27D4EB4FULL + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };
  struct Entry {
    Point2 point;
    std::uint64_t id;
  };

  [[nodiscard]] CellKey KeyFor(Point2 p) const noexcept;

  double cell_size_;
  std::size_t count_ = 0;
  std::unordered_map<CellKey, std::vector<Entry>, CellKeyHash> cells_;
};

}  // namespace mobipriv::geo
