// Uniform-grid spatial index over planar points. The shared substrate of
// every neighbourhood kernel in the library: mix-zone encounter detection,
// POI cluster merging, re-identification nearest-profile search and the
// heatmap metric.
//
// Storage is flat: one entries array plus per-cell intrusive FIFO chains, so
// inserts never allocate per-cell vectors and queries touch one contiguous
// pool. Cells live in an open-addressed, power-of-two hash table (linear
// probing, backward-shift deletion) instead of std::unordered_map: a cell
// lookup is a multiply-mix plus a masked probe — no prime modulo, no bucket
// node chase — which matters because radius queries perform one lookup per
// covered cell and the mix-zone detector issues millions of them.
//
// The query path has caller-provided-buffer overloads that perform no
// allocation at all, and templated visitor queries (ForEachInRadius /
// AnyWithin) that inline the per-hit predicate into the cell scan — hot
// loops pay neither a std::function dispatch nor an output buffer write.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "geo/point2.h"
#include "util/simd.h"

namespace mobipriv::geo {

/// Result of a nearest-neighbour query.
struct NearestResult {
  std::uint64_t id = 0;
  Point2 point;
  double distance = 0.0;
};

/// 2-D grid-cell coordinate mix (large odd constants, xor-fold, finalizer)
/// shared by every open-addressed cell table in the library (GridIndex,
/// the mix-zone detector's CSR grid). Tables are power-of-two sized and
/// masked, so the mix must scramble low bits well.
[[nodiscard]] inline std::size_t HashCell2D(std::int64_t cx,
                                            std::int64_t cy) noexcept {
  const auto ux = static_cast<std::uint64_t>(cx);
  const auto uy = static_cast<std::uint64_t>(cy);
  std::uint64_t h = ux * 0x9E3779B97F4A7C15ULL;
  h ^= uy * 0xC2B2AE3D27D4EB4FULL + (h << 6) + (h >> 2);
  h ^= h >> 29;  // fold high entropy into the masked low bits
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 32;
  return static_cast<std::size_t>(h);
}

/// Maps points (with caller-supplied payload ids) to grid cells and answers
/// radius / nearest queries by scanning cell neighbourhoods. Results are
/// always exact — candidates are verified with a true distance test — the
/// cell size only affects speed. Within one cell, points are returned in
/// insertion order.
class GridIndex {
 public:
  explicit GridIndex(double cell_size);

  /// Inserts a point with an opaque id (e.g. event index).
  void Insert(Point2 p, std::uint64_t id);

  /// Removes one previously inserted (point, id) entry; the point must match
  /// the inserted coordinates exactly. Returns false when no entry matches.
  bool Remove(Point2 p, std::uint64_t id);

  /// Relocates one entry from `from` to `to` (exact-match on `from` + id).
  /// Equivalent to Remove+Insert but reuses the entry slot and, when both
  /// positions fall in the same cell, touches nothing but the coordinates.
  /// Note: within-cell FIFO order is preserved only in that same-cell case;
  /// a cross-cell move re-appends at the tail of the destination cell.
  bool Move(Point2 from, Point2 to, std::uint64_t id);

  /// Pre-allocates storage for `n` entries.
  void Reserve(std::size_t n);

  /// Visits every inserted (id, point) within `radius` of `center`
  /// (inclusive), in cell-scan order (x-major over the covered cells,
  /// insertion order within a cell — the order QueryRadius reports).
  /// `visit` is invoked as visit(id, point); if it returns bool, a false
  /// return stops the scan early. The visitor is inlined into the cell
  /// walk — this is the allocation- and indirection-free form every hot
  /// kernel should prefer.
  template <typename Visitor>
  void ForEachInRadius(Point2 center, double radius, Visitor&& visit) const {
    const double r_sq = radius * radius;
    const util::F64x4 vcx = util::F64x4::Set1(center.x);
    const util::F64x4 vcy = util::F64x4::Set1(center.y);
    const util::F64x4 vr2 = util::F64x4::Set1(r_sq);
    // Whether the visitor can stop the scan (returns bool) — resolved at
    // compile time, shared by the vector and tail emission below.
    using VisitResult = decltype(visit(std::uint64_t{}, Point2{}));
    constexpr bool kStoppable = std::is_same_v<VisitResult, bool>;
    ForEachCellInBox(center, radius, [&](std::int32_t head) {
      // The chain walk IS the gather: batches of entries go into stack
      // lanes, the distance test runs 4-wide, and hits are emitted from
      // the mask in lane order — the exact chain (insertion) order and
      // the exact scalar predicate dx*dx + dy*dy <= r*r, so results and
      // visit order are bit-identical to the scalar walk, early exit
      // included.
      constexpr int kBuf = 32;
      double xs[kBuf], ys[kBuf];
      std::uint64_t ids[kBuf];
      std::int32_t cur = head;
      while (cur != -1) {
        int n = 0;
        while (cur != -1 && n < kBuf) {
          const Entry& e = entries_[static_cast<std::size_t>(cur)];
          xs[n] = e.point.x;
          ys[n] = e.point.y;
          ids[n] = e.id;
          ++n;
          cur = e.next;
        }
        int i = 0;
        for (; i + util::kSimdWidth <= n; i += util::kSimdWidth) {
          const util::F64x4 dx = util::F64x4::Load(xs + i) - vcx;
          const util::F64x4 dy = util::F64x4::Load(ys + i) - vcy;
          int m = util::MoveMask(util::CmpLe(dx * dx + dy * dy, vr2));
          while (m != 0) {
            const int at =
                i + std::countr_zero(static_cast<unsigned>(m));
            m &= m - 1;
            if constexpr (kStoppable) {
              if (!visit(ids[at], Point2{xs[at], ys[at]})) return false;
            } else {
              visit(ids[at], Point2{xs[at], ys[at]});
            }
          }
        }
        for (; i < n; ++i) {
          const double ddx = xs[i] - center.x;
          const double ddy = ys[i] - center.y;
          if (ddx * ddx + ddy * ddy <= r_sq) {
            if constexpr (kStoppable) {
              if (!visit(ids[i], Point2{xs[i], ys[i]})) return false;
            } else {
              visit(ids[i], Point2{xs[i], ys[i]});
            }
          }
        }
      }
      return true;
    });
  }

  /// True when any inserted point lies within `radius` of `center`
  /// (inclusive). Early-exits on the first hit — the cheap form of the
  /// "is anything nearby?" probe (greedy first-fit clustering), which a
  /// QueryRadius + empty() test would answer only after collecting every
  /// neighbour.
  [[nodiscard]] bool AnyWithin(Point2 center, double radius) const {
    bool found = false;
    ForEachInRadius(center, radius, [&](std::uint64_t, Point2) {
      found = true;
      return false;  // stop at the first hit
    });
    return found;
  }

  /// Ids of all inserted points within `radius` of `center` (inclusive).
  /// The overload taking `out` clears and fills it without allocating
  /// (beyond the buffer's own growth on first uses).
  [[nodiscard]] std::vector<std::uint64_t> QueryRadius(Point2 center,
                                                       double radius) const;
  void QueryRadius(Point2 center, double radius,
                   std::vector<std::uint64_t>& out) const;

  /// All (id, point) pairs sharing cells intersecting the axis-aligned
  /// square of half-width `radius` around `center` (superset of the true
  /// radius query; cheap pre-filter for custom predicates).
  [[nodiscard]] std::vector<std::pair<std::uint64_t, Point2>> QueryBoxCandidates(
      Point2 center, double radius) const;
  void QueryBoxCandidates(Point2 center, double radius,
                          std::vector<std::pair<std::uint64_t, Point2>>& out)
      const;

  /// Exact nearest entry to `center` (expanding-ring search), or nullopt
  /// when the index is empty. Ties on distance break towards the smaller id
  /// so the result never depends on insertion or cell iteration order.
  [[nodiscard]] std::optional<NearestResult> QueryNearest(Point2 center) const;

  [[nodiscard]] std::size_t Size() const noexcept { return count_; }
  [[nodiscard]] double CellSize() const noexcept { return cell_size_; }
  void Clear();

 private:
  struct CellKey {
    std::int64_t cx;
    std::int64_t cy;
    friend bool operator==(CellKey a, CellKey b) noexcept {
      return a.cx == b.cx && a.cy == b.cy;
    }
  };
  /// Intrusive FIFO chain into entries_ (FIFO keeps query output in
  /// insertion order, matching the historical per-cell vector behaviour).
  struct Bucket {
    std::int32_t head = -1;
    std::int32_t tail = -1;
  };
  /// One open-addressing slot: a cell key plus its chain. `used` marks
  /// occupancy (deletion backward-shifts, so there are no tombstones).
  struct Cell {
    CellKey key;
    Bucket bucket;
    bool used = false;
  };
  struct Entry {
    Point2 point;
    std::uint64_t id;
    std::int32_t next;  ///< next entry in the cell chain, -1 = end
  };

  [[nodiscard]] static std::size_t HashKey(CellKey k) noexcept {
    return HashCell2D(k.cx, k.cy);
  }

  [[nodiscard]] CellKey KeyFor(Point2 p) const noexcept {
    return {static_cast<std::int64_t>(std::floor(p.x / cell_size_)),
            static_cast<std::int64_t>(std::floor(p.y / cell_size_))};
  }

  /// Linear probe for `key`. Returns the occupied slot index, or npos.
  [[nodiscard]] std::size_t FindCell(CellKey key) const noexcept {
    if (cells_.empty()) return kNpos;
    const std::size_t mask = cells_.size() - 1;
    std::size_t i = HashKey(key) & mask;
    while (cells_[i].used) {
      if (cells_[i].key == key) return i;
      i = (i + 1) & mask;
    }
    return kNpos;
  }

  /// Chain head of the cell holding `key`, or -1 when the cell is empty —
  /// the inlineable primitive every query builds on.
  [[nodiscard]] std::int32_t CellHead(CellKey key) const noexcept {
    const std::size_t slot = FindCell(key);
    return slot == kNpos ? -1 : cells_[slot].bucket.head;
  }

  /// Invokes visit(head) for every non-empty cell intersecting the
  /// axis-aligned square of half-width `radius` around `center`, x-major.
  /// `visit` returns false to stop early.
  template <typename CellVisitor>
  void ForEachCellInBox(Point2 center, double radius,
                        CellVisitor&& visit) const {
    const auto span = static_cast<std::int64_t>(
        std::ceil(radius / cell_size_));
    const CellKey center_key = KeyFor(center);
    for (std::int64_t dx = -span; dx <= span; ++dx) {
      for (std::int64_t dy = -span; dy <= span; ++dy) {
        const std::int32_t head =
            CellHead(CellKey{center_key.cx + dx, center_key.cy + dy});
        if (head == -1) continue;
        if (!visit(head)) return;
      }
    }
  }

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

  /// Occupied slot for `key`, inserting an empty cell (growing the table
  /// as needed) when absent.
  std::size_t FindOrInsertCell(CellKey key);
  /// Doubles the table (or sets the initial capacity) and re-seats every
  /// occupied cell.
  void Rehash(std::size_t min_capacity);
  /// Backward-shift removal of the occupied slot `slot`.
  void EraseCellSlot(std::size_t slot);

  std::int32_t AcquireSlot(Point2 p, std::uint64_t id);
  void AppendToBucket(Bucket& bucket, std::int32_t slot);
  /// Unlinks `slot` from its bucket; erases the cell when it empties.
  void UnlinkFromCell(CellKey key, std::int32_t slot);

  double cell_size_;
  std::size_t count_ = 0;
  std::vector<Cell> cells_;        ///< open-addressed, power-of-two size
  std::size_t cell_count_ = 0;     ///< occupied slots in cells_
  std::vector<Entry> entries_;
  std::int32_t free_head_ = -1;  ///< recycled entry slots (chained via next)
  // Occupied-cell extent, used to terminate the nearest-neighbour ring
  // search. Grows on insert; never shrinks (stays a valid upper bound).
  std::int64_t min_cx_ = 0, max_cx_ = 0, min_cy_ = 0, max_cy_ = 0;
};

}  // namespace mobipriv::geo
