// Uniform-grid spatial index over planar points. The shared substrate of
// every neighbourhood kernel in the library: mix-zone encounter detection,
// POI cluster merging, re-identification nearest-profile search and the
// heatmap metric.
//
// Storage is flat: one entries array plus per-cell intrusive FIFO chains, so
// inserts never allocate per-cell vectors and queries touch one contiguous
// pool. The query path has caller-provided-buffer overloads that perform no
// allocation at all — hot loops reuse one buffer across millions of queries.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "geo/point2.h"

namespace mobipriv::geo {

/// Result of a nearest-neighbour query.
struct NearestResult {
  std::uint64_t id = 0;
  Point2 point;
  double distance = 0.0;
};

/// Maps points (with caller-supplied payload ids) to grid cells and answers
/// radius / nearest queries by scanning cell neighbourhoods. Results are
/// always exact — candidates are verified with a true distance test — the
/// cell size only affects speed. Within one cell, points are returned in
/// insertion order.
class GridIndex {
 public:
  explicit GridIndex(double cell_size);

  /// Inserts a point with an opaque id (e.g. event index).
  void Insert(Point2 p, std::uint64_t id);

  /// Removes one previously inserted (point, id) entry; the point must match
  /// the inserted coordinates exactly. Returns false when no entry matches.
  bool Remove(Point2 p, std::uint64_t id);

  /// Relocates one entry from `from` to `to` (exact-match on `from` + id).
  /// Equivalent to Remove+Insert but reuses the entry slot and, when both
  /// positions fall in the same cell, touches nothing but the coordinates.
  /// Note: within-cell FIFO order is preserved only in that same-cell case;
  /// a cross-cell move re-appends at the tail of the destination cell.
  bool Move(Point2 from, Point2 to, std::uint64_t id);

  /// Pre-allocates storage for `n` entries.
  void Reserve(std::size_t n);

  /// Ids of all inserted points within `radius` of `center` (inclusive).
  /// The overload taking `out` clears and fills it without allocating
  /// (beyond the buffer's own growth on first uses).
  [[nodiscard]] std::vector<std::uint64_t> QueryRadius(Point2 center,
                                                       double radius) const;
  void QueryRadius(Point2 center, double radius,
                   std::vector<std::uint64_t>& out) const;

  /// All (id, point) pairs sharing cells intersecting the axis-aligned
  /// square of half-width `radius` around `center` (superset of the true
  /// radius query; cheap pre-filter for custom predicates).
  [[nodiscard]] std::vector<std::pair<std::uint64_t, Point2>> QueryBoxCandidates(
      Point2 center, double radius) const;
  void QueryBoxCandidates(Point2 center, double radius,
                          std::vector<std::pair<std::uint64_t, Point2>>& out)
      const;

  /// Exact nearest entry to `center` (expanding-ring search), or nullopt
  /// when the index is empty. Ties on distance break towards the smaller id
  /// so the result never depends on insertion or cell iteration order.
  [[nodiscard]] std::optional<NearestResult> QueryNearest(Point2 center) const;

  [[nodiscard]] std::size_t Size() const noexcept { return count_; }
  [[nodiscard]] double CellSize() const noexcept { return cell_size_; }
  void Clear();

 private:
  struct CellKey {
    std::int64_t cx;
    std::int64_t cy;
    friend bool operator==(CellKey a, CellKey b) noexcept {
      return a.cx == b.cx && a.cy == b.cy;
    }
  };
  struct CellKeyHash {
    std::size_t operator()(CellKey k) const noexcept {
      // 2-D -> 1-D mix (large odd constants, xor-fold).
      const auto ux = static_cast<std::uint64_t>(k.cx);
      const auto uy = static_cast<std::uint64_t>(k.cy);
      std::uint64_t h = ux * 0x9E3779B97F4A7C15ULL;
      h ^= uy * 0xC2B2AE3D27D4EB4FULL + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };
  struct Entry {
    Point2 point;
    std::uint64_t id;
    std::int32_t next;  ///< next entry in the cell chain, -1 = end
  };
  /// Intrusive FIFO chain into entries_ (FIFO keeps query output in
  /// insertion order, matching the historical per-cell vector behaviour).
  struct Bucket {
    std::int32_t head = -1;
    std::int32_t tail = -1;
  };

  [[nodiscard]] CellKey KeyFor(Point2 p) const noexcept;
  std::int32_t AcquireSlot(Point2 p, std::uint64_t id);
  void AppendToBucket(Bucket& bucket, std::int32_t slot);
  /// Unlinks `slot` from its bucket; erases the cell when it empties.
  void UnlinkFromCell(CellKey key, std::int32_t slot);

  double cell_size_;
  std::size_t count_ = 0;
  std::unordered_map<CellKey, Bucket, CellKeyHash> cells_;
  std::vector<Entry> entries_;
  std::int32_t free_head_ = -1;  ///< recycled entry slots (chained via next)
  // Occupied-cell extent, used to terminate the nearest-neighbour ring
  // search. Grows on insert; never shrinks (stays a valid upper bound).
  std::int64_t min_cx_ = 0, max_cx_ = 0, min_cy_ = 0, max_cy_ = 0;
};

}  // namespace mobipriv::geo
