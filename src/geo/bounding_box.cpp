#include "geo/bounding_box.h"

#include <algorithm>
#include <cassert>

namespace mobipriv::geo {

GeoBoundingBox::GeoBoundingBox(LatLng south_west, LatLng north_east) noexcept
    : sw_(south_west), ne_(north_east), initialized_(true) {
  assert(south_west.lat <= north_east.lat);
  assert(south_west.lng <= north_east.lng);
}

void GeoBoundingBox::Extend(LatLng p) noexcept {
  sw_.lat = std::min(sw_.lat, p.lat);
  sw_.lng = std::min(sw_.lng, p.lng);
  ne_.lat = std::max(ne_.lat, p.lat);
  ne_.lng = std::max(ne_.lng, p.lng);
  initialized_ = true;
}

void GeoBoundingBox::Extend(const GeoBoundingBox& other) noexcept {
  if (other.IsEmpty()) return;
  Extend(other.sw_);
  Extend(other.ne_);
}

bool GeoBoundingBox::Contains(LatLng p) const noexcept {
  return initialized_ && p.lat >= sw_.lat && p.lat <= ne_.lat &&
         p.lng >= sw_.lng && p.lng <= ne_.lng;
}

bool GeoBoundingBox::Intersects(const GeoBoundingBox& other) const noexcept {
  if (IsEmpty() || other.IsEmpty()) return false;
  return sw_.lat <= other.ne_.lat && other.sw_.lat <= ne_.lat &&
         sw_.lng <= other.ne_.lng && other.sw_.lng <= ne_.lng;
}

LatLng GeoBoundingBox::Center() const noexcept {
  return {(sw_.lat + ne_.lat) / 2.0, (sw_.lng + ne_.lng) / 2.0};
}

double GeoBoundingBox::DiagonalMeters() const noexcept {
  if (IsEmpty()) return 0.0;
  return HaversineDistance(sw_, ne_);
}

GeoBoundingBox GeoBoundingBox::Of(const std::vector<LatLng>& points) {
  GeoBoundingBox box;
  for (const auto& p : points) box.Extend(p);
  return box;
}

Rect Rect::Of(const std::vector<Point2>& points) {
  assert(!points.empty());
  Rect r{points.front(), points.front()};
  for (const auto& p : points) {
    r.min.x = std::min(r.min.x, p.x);
    r.min.y = std::min(r.min.y, p.y);
    r.max.x = std::max(r.max.x, p.x);
    r.max.y = std::max(r.max.y, p.y);
  }
  return r;
}

}  // namespace mobipriv::geo
