#include "geo/latlng.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/string_utils.h"

namespace mobipriv::geo {

std::string LatLng::ToString() const {
  return util::FormatDouble(lat, 6) + "," + util::FormatDouble(lng, 6);
}

double HaversineDistance(LatLng a, LatLng b) noexcept {
  const double phi1 = a.lat * kDegToRad;
  const double phi2 = b.lat * kDegToRad;
  const double dphi = (b.lat - a.lat) * kDegToRad;
  const double dlambda = (b.lng - a.lng) * kDegToRad;
  const double sin_dphi = std::sin(dphi / 2.0);
  const double sin_dlambda = std::sin(dlambda / 2.0);
  const double h = sin_dphi * sin_dphi +
                   std::cos(phi1) * std::cos(phi2) * sin_dlambda * sin_dlambda;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

double EquirectangularDistance(LatLng a, LatLng b) noexcept {
  const double mean_lat = (a.lat + b.lat) * 0.5 * kDegToRad;
  const double dx = (b.lng - a.lng) * kDegToRad * std::cos(mean_lat);
  const double dy = (b.lat - a.lat) * kDegToRad;
  return kEarthRadiusMeters * std::hypot(dx, dy);
}

double InitialBearing(LatLng a, LatLng b) noexcept {
  const double phi1 = a.lat * kDegToRad;
  const double phi2 = b.lat * kDegToRad;
  const double dlambda = (b.lng - a.lng) * kDegToRad;
  const double y = std::sin(dlambda) * std::cos(phi2);
  const double x = std::cos(phi1) * std::sin(phi2) -
                   std::sin(phi1) * std::cos(phi2) * std::cos(dlambda);
  double bearing = std::atan2(y, x);
  if (bearing < 0.0) bearing += 2.0 * std::numbers::pi;
  return bearing;
}

LatLng Destination(LatLng origin, double bearing_rad,
                   double distance_m) noexcept {
  const double delta = distance_m / kEarthRadiusMeters;  // angular distance
  const double phi1 = origin.lat * kDegToRad;
  const double lambda1 = origin.lng * kDegToRad;
  const double sin_phi2 =
      std::sin(phi1) * std::cos(delta) +
      std::cos(phi1) * std::sin(delta) * std::cos(bearing_rad);
  const double phi2 = std::asin(std::clamp(sin_phi2, -1.0, 1.0));
  const double y = std::sin(bearing_rad) * std::sin(delta) * std::cos(phi1);
  const double x = std::cos(delta) - std::sin(phi1) * sin_phi2;
  double lambda2 = lambda1 + std::atan2(y, x);
  // Normalise longitude to [-180, 180).
  double lng = lambda2 * kRadToDeg;
  while (lng >= 180.0) lng -= 360.0;
  while (lng < -180.0) lng += 360.0;
  return LatLng{phi2 * kRadToDeg, lng};
}

}  // namespace mobipriv::geo
