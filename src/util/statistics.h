// Summary statistics used throughout metrics and benchmark reporting.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace mobipriv::util {

/// Online mean / variance accumulator (Welford's algorithm), O(1) memory.
class RunningStat {
 public:
  void Add(double x) noexcept;
  void Merge(const RunningStat& other) noexcept;

  [[nodiscard]] std::size_t Count() const noexcept { return count_; }
  [[nodiscard]] double Mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  [[nodiscard]] double Variance() const noexcept;
  [[nodiscard]] double Stddev() const noexcept;
  [[nodiscard]] double Min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double Max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double Sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number-style summary of a batch of samples.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  /// Computes the summary of `values` (copies and sorts internally; the
  /// input is left untouched). Empty input yields an all-zero summary.
  static Summary Of(std::span<const double> values);

  /// Compact single-line rendering, e.g. for benchmark table cells.
  [[nodiscard]] std::string ToString() const;
};

/// Linear-interpolated percentile of *sorted* data, q in [0, 1].
/// Requires sorted_values non-empty and ascending.
[[nodiscard]] double PercentileSorted(std::span<const double> sorted_values,
                                      double q);

/// Convenience: percentile of unsorted data (copies and sorts).
[[nodiscard]] double Percentile(std::span<const double> values, double q);

/// Arithmetic mean; 0 for empty input.
[[nodiscard]] double Mean(std::span<const double> values);

/// Fixed-bin histogram over [lo, hi); values outside are clamped to the
/// first/last bin. Used for distance-error distributions in benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void Add(double x) noexcept;
  [[nodiscard]] std::size_t BinCount() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t CountInBin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::size_t TotalCount() const noexcept { return total_; }
  /// Inclusive-lower bound of bin i.
  [[nodiscard]] double BinLower(std::size_t i) const;
  /// Fraction of samples in bin i (0 if histogram is empty).
  [[nodiscard]] double Fraction(std::size_t i) const;
  /// Multi-line ASCII rendering with proportional bars.
  [[nodiscard]] std::string ToString(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mobipriv::util
