#include "util/spec.h"

#include <algorithm>
#include <cctype>

#include "util/string_utils.h"

namespace mobipriv::util {
namespace {

[[noreturn]] void Malformed(std::string_view text, const std::string& what) {
  throw SpecError("malformed spec \"" + std::string(text) + "\": " + what);
}

}  // namespace

std::string_view StripUnitSuffix(std::string_view value) {
  while (!value.empty() &&
         std::isalpha(static_cast<unsigned char>(value.back())) != 0) {
    value.remove_suffix(1);
  }
  return value;
}

Spec Spec::Parse(std::string_view text) {
  const std::size_t open = text.find('[');
  Spec spec;
  spec.base_ = std::string(text.substr(0, open));
  if (spec.base_.empty()) Malformed(text, "empty base name");
  if (open == std::string_view::npos) return spec;
  if (text.back() != ']') Malformed(text, "missing closing ]");
  std::string_view body = text.substr(open + 1, text.size() - open - 2);
  if (body.find('[') != std::string_view::npos ||
      body.find(']') != std::string_view::npos) {
    Malformed(text, "nested brackets");
  }
  while (!body.empty()) {
    const std::size_t comma = body.find(',');
    const std::string_view entry = body.substr(0, comma);
    body = comma == std::string_view::npos ? std::string_view{}
                                           : body.substr(comma + 1);
    if (entry.empty()) Malformed(text, "empty entry");
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      spec.AddFlag(std::string(entry));
    } else {
      if (eq == 0) Malformed(text, "empty key");
      spec.Add(std::string(entry.substr(0, eq)),
               std::string(entry.substr(eq + 1)));
    }
  }
  return spec;
}

std::string Spec::ToString() const {
  if (entries_.empty()) return base_;
  std::string out = base_ + "[";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0) out += ",";
    out += entries_[i].key;
    if (entries_[i].has_value) {
      out += "=";
      out += entries_[i].value;
    }
  }
  out += "]";
  return out;
}

void Spec::Add(std::string key, std::string value) {
  entries_.push_back({std::move(key), std::move(value), /*has_value=*/true});
}

void Spec::AddFlag(std::string token) {
  entries_.push_back({std::move(token), "", /*has_value=*/false});
}

std::optional<std::string> Spec::Get(std::string_view key) const {
  for (const Entry& entry : entries_) {
    if (entry.has_value && entry.key == key) return entry.value;
  }
  return std::nullopt;
}

bool Spec::HasFlag(std::string_view token) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const Entry& e) {
                       return !e.has_value && e.key == token;
                     });
}

double Spec::NumberOf(std::string_view key, double fallback) const {
  const auto value = Get(key);
  if (!value) return fallback;
  const auto parsed = ParseDouble(StripUnitSuffix(*value));
  if (!parsed) {
    throw SpecError("spec " + ToString() + ": parameter " + std::string(key) +
                    "=\"" + *value + "\" is not a number");
  }
  return *parsed;
}

std::int64_t Spec::IntOf(std::string_view key, std::int64_t fallback) const {
  const auto value = Get(key);
  if (!value) return fallback;
  const auto parsed = ParseInt(StripUnitSuffix(*value));
  if (!parsed) {
    throw SpecError("spec " + ToString() + ": parameter " + std::string(key) +
                    "=\"" + *value + "\" is not an integer");
  }
  return *parsed;
}

SpecChain SpecChain::Parse(std::string_view text) {
  SpecChain chain;
  for (const std::string& piece : SplitTopLevel(text, '|')) {
    if (piece.empty()) Malformed(text, "empty chain stage");
    chain.stages_.push_back(Spec::Parse(piece));
  }
  return chain;
}

std::string SpecChain::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (i > 0) out += "|";
    out += stages_[i].ToString();
  }
  return out;
}

std::vector<std::string> SplitTopLevel(std::string_view text, char separator) {
  std::vector<std::string> pieces;
  std::size_t depth = 0;
  std::string current;
  for (const char c : text) {
    if (c == '[') ++depth;
    if (c == ']' && depth > 0) --depth;
    if (c == separator && depth == 0) {
      pieces.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  pieces.push_back(std::move(current));
  return pieces;
}

void Spec::RequireKnownKeys(std::initializer_list<std::string_view> known,
                            const std::string& context) const {
  for (const Entry& entry : entries_) {
    if (std::find(known.begin(), known.end(), entry.key) == known.end()) {
      throw SpecError(context + ": unknown parameter \"" + entry.key +
                      "\" in spec " + ToString());
    }
  }
}

}  // namespace mobipriv::util
