// Process resource introspection for benchmarks and CLIs. Peak RSS is the
// out-of-core evidence: a streaming run over a multi-gigabyte world must
// report a peak far below the dataset size, and the throughput benches
// publish this number next to rows/sec so regressions in residency are as
// visible as regressions in speed.
#pragma once

#include <cstdint>

namespace mobipriv::util {

/// Peak resident set size of the current process in bytes, as reported by
/// getrusage(RUSAGE_SELF). Monotone over the process lifetime (the kernel
/// high-water mark never resets), so deltas across a phase only bound that
/// phase from above. Returns 0 on platforms without getrusage.
[[nodiscard]] std::uint64_t PeakRssBytes() noexcept;

}  // namespace mobipriv::util
