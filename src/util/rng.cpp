#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace mobipriv::util {
namespace {

constexpr std::uint64_t SplitMix64Step(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SeedSequence::Next() noexcept { return SplitMix64Step(state_); }

std::uint64_t DeriveStreamSeed(std::uint64_t master, std::uint64_t a,
                               std::uint64_t b) noexcept {
  // Fold the identifying indices into the master seed with distinct odd
  // multipliers, then finalize twice so close-by (a, b) pairs land far
  // apart in seed space.
  std::uint64_t state =
      master ^ (a * 0xD6E8FEB86659FD93ULL) ^ (b * 0xA5CB3D9B1D9D1B6BULL);
  (void)SplitMix64Step(state);
  return SplitMix64Step(state);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64Step(s);
}

std::uint64_t Rng::NextU64() noexcept {
  const std::uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() noexcept {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) noexcept {
  assert(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::NextBounded(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire's nearly-divisionless unbiased bounded sampling.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t draw = (span == 0) ? NextU64() : NextBounded(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

bool Rng::Bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Gaussian() noexcept {
  // Marsaglia polar method; discard the second variate to keep the sampler
  // stateless (simpler reproducibility reasoning than caching).
  for (;;) {
    const double u = Uniform(-1.0, 1.0);
    const double v = Uniform(-1.0, 1.0);
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::Gaussian(double mean, double sigma) noexcept {
  assert(sigma >= 0.0);
  return mean + sigma * Gaussian();
}

double Rng::Exponential(double lambda) noexcept {
  assert(lambda > 0.0);
  // 1 - NextDouble() is in (0, 1], so the log is finite.
  return -std::log(1.0 - NextDouble()) / lambda;
}

double Rng::Laplace(double mu, double b) noexcept {
  assert(b > 0.0);
  // Inverse-CDF sampling: X = mu - b * sgn(u) * ln(1 - 2|u|), u ~ U(-1/2, 1/2).
  const double u = NextDouble() - 0.5;
  const double sign = (u < 0.0) ? -1.0 : 1.0;
  return mu - b * sign * std::log(1.0 - 2.0 * std::abs(u));
}

double Rng::Angle() noexcept {
  return NextDouble() * 2.0 * std::numbers::pi;
}

std::size_t Rng::WeightedIndex(std::span<const double> weights) noexcept {
  assert(!weights.empty());
  double total = 0.0;
  for (const double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return static_cast<std::size_t>(NextBounded(weights.size()));
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  return weights.size() - 1;  // numeric edge: fell off the end
}

Rng Rng::Split() noexcept { return Rng(NextU64()); }

}  // namespace mobipriv::util
