// Leveled stderr logging for examples and benches. The library core never
// logs on hot paths; logging exists for tools and long-running experiment
// drivers. Thread-compatible: severity filtering is atomic, each Log() call
// writes its full line with a single stream insertion.
#pragma once

#include <sstream>
#include <string>

namespace mobipriv::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum severity; messages below it are discarded.
void SetLogLevel(LogLevel level) noexcept;
[[nodiscard]] LogLevel GetLogLevel() noexcept;

/// Emits one formatted line "[LEVEL] message" to stderr if enabled.
void Log(LogLevel level, const std::string& message);

namespace detail {

/// Builds the message from stream-style usage then emits on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { Log(level_, stream_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

}  // namespace mobipriv::util

#define MOBIPRIV_LOG_DEBUG() \
  ::mobipriv::util::detail::LogMessage(::mobipriv::util::LogLevel::kDebug)
#define MOBIPRIV_LOG_INFO() \
  ::mobipriv::util::detail::LogMessage(::mobipriv::util::LogLevel::kInfo)
#define MOBIPRIV_LOG_WARNING() \
  ::mobipriv::util::detail::LogMessage(::mobipriv::util::LogLevel::kWarning)
#define MOBIPRIV_LOG_ERROR() \
  ::mobipriv::util::detail::LogMessage(::mobipriv::util::LogLevel::kError)
