// Chunked reading of line-oriented text: the substrate of parallel
// streaming ingestion. A file is slurped once, split into byte ranges whose
// boundaries fall only on line breaks, and the ranges parse independently
// on the thread pool. Because every physical line belongs to exactly one
// chunk and chunks are merged in file order, the concatenated parse result
// is identical to a serial scan for ANY chunking — worker count and chunk
// count can vary freely without violating the byte-identical contract.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace mobipriv::util {

/// One chunk of a line-split text buffer.
struct LineChunk {
  std::size_t begin = 0;      ///< byte offset of the first line's start
  std::size_t end = 0;        ///< one past the last line's terminator (or EOF)
  std::size_t first_line = 1; ///< 1-based physical line number at `begin`
};

/// Splits `text` into at most `max_chunks` ranges cut only immediately
/// after '\n'. Chunks cover the text exactly, in order, and are at least
/// `min_chunk_bytes` long (except possibly the last); a text smaller than
/// `min_chunk_bytes` yields one chunk. `first_line` counts newlines before
/// `begin`, so chunk parsers can report exact global line numbers.
[[nodiscard]] std::vector<LineChunk> SplitLineChunks(
    std::string_view text, std::size_t max_chunks,
    std::size_t min_chunk_bytes = 64 * 1024);

/// Calls fn(line, line_number) for every physical line of `chunk_text`
/// (a range produced by SplitLineChunks). Line terminators handled exactly
/// like the streaming CsvReader: "\n", "\r\n" and lone "\r" all end a line
/// and are not part of it; a final line without a terminator still counts.
template <typename Fn>
void ForEachLine(std::string_view chunk_text, std::size_t first_line,
                 Fn&& fn) {
  std::size_t line_number = first_line;
  std::size_t pos = 0;
  while (pos < chunk_text.size()) {
    std::size_t eol = pos;
    while (eol < chunk_text.size() && chunk_text[eol] != '\n' &&
           chunk_text[eol] != '\r') {
      ++eol;
    }
    fn(chunk_text.substr(pos, eol - pos), line_number);
    ++line_number;
    if (eol >= chunk_text.size()) return;
    // Swallow the terminator ("\r\n" counts as one).
    if (chunk_text[eol] == '\r' && eol + 1 < chunk_text.size() &&
        chunk_text[eol + 1] == '\n') {
      ++eol;
    }
    pos = eol + 1;
  }
}

/// Reads a whole stream into a string (the slurp that precedes chunking).
[[nodiscard]] std::string ReadAll(std::istream& in);

}  // namespace mobipriv::util
