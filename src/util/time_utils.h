// Timestamp helpers. All trajectory timestamps in the library are plain Unix
// seconds stored as std::int64_t (field name `Timestamp`); sub-second GPS
// resolution is irrelevant at the sampling rates mobility datasets use, and
// integral seconds make the constant-speed arithmetic exact to test.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mobipriv::util {

using Timestamp = std::int64_t;  ///< Unix seconds.

inline constexpr Timestamp kSecondsPerMinute = 60;
inline constexpr Timestamp kSecondsPerHour = 3600;
inline constexpr Timestamp kSecondsPerDay = 86400;

/// Parses "YYYY-MM-DD hh:mm:ss" (or with 'T' separator) as UTC.
/// Returns nullopt on malformed input. Days-from-civil algorithm (Hinnant),
/// no locale or timezone dependence.
[[nodiscard]] std::optional<Timestamp> ParseDateTime(std::string_view text);

/// Formats a Unix timestamp as "YYYY-MM-DD hh:mm:ss" UTC.
[[nodiscard]] std::string FormatDateTime(Timestamp ts);

/// Seconds elapsed since the enclosing UTC midnight, in [0, 86400).
[[nodiscard]] Timestamp SecondsOfDay(Timestamp ts) noexcept;

/// UTC midnight at or before ts.
[[nodiscard]] Timestamp StartOfDay(Timestamp ts) noexcept;

/// Human-readable duration, e.g. "2h03m" or "45s" (for logs/reports).
[[nodiscard]] std::string FormatDuration(Timestamp seconds);

}  // namespace mobipriv::util
