// Fault injection: named failure points threaded through the persistence
// and engine layers, so the failure model is testable instead of implied.
//
// Every risky operation the system wants to be honest about (file opens,
// writes, renames, cache loads, mechanism node execution) evaluates a
// *named injection point* before proceeding:
//
//   if (MOBIPRIV_FAULT_POINT(fault::points::kColumnarWriteOpen)) {
//     throw IoError("injected fault ...");
//   }
//
// Points are inert by default: the macro compiles to one relaxed atomic
// load and a never-taken branch (nothing is looked up, no lock is
// touched), so shipping the points in release builds is free — the
// bench-regression gate in CI pins that. A point becomes active when a
// test (or operator) arms it:
//
//   * programmatically — fault::Arm("columnar.write.short", config) /
//     fault::Disarm / fault::DisarmAll (tests);
//   * by environment — MOBIPRIV_FAULTS="point=spec;point=spec" parsed at
//     process start (CLI smoke tests, chaos runs). Spec grammar:
//       once        trip exactly once, then pass
//       times:N     trip the first N evaluations
//       p:P[@SEED]  trip each evaluation with probability P (seeded,
//                   deterministic draw sequence; default seed 1)
//       short:N     short I/O: the operation transfers at most N bytes,
//                   then fails (torn-write / truncated-read simulation)
//       delay:MS    sleep MS milliseconds, then pass (watchdog testing)
//       kill:SIG@N  raise signal number SIG on the Nth matching
//                   evaluation (N optional, default 1) — the crash lever
//                   of the worker-supervision test matrix
//     Any spec may append `,key:K` to set the key filter from the
//     environment (e.g. "worker.apply=kill:9@1,key:gaussian#0").
//
// A Config may carry a `key_filter`: the point then only trips for
// evaluations whose key matches (e.g. fail exactly the "gaussian[...]"
// mechanism node of an engine grid, deterministically at any thread
// count). A filter ending in '*' matches any key with that prefix
// ("gaussian#*" trips every retry attempt of one worker request).
//
// The canonical list of points lives below in `fault::points` — one named
// constant per injection site. docs/ROBUSTNESS.md documents each point in
// a table that scripts/check_format_docs.sh lints against this header, so
// the table cannot rot.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>

namespace mobipriv::util::fault {

/// What an armed point does when an evaluation trips it.
enum class Mode {
  kFailTimes,        ///< fail the first `times` evaluations, then pass
  kFailProbability,  ///< fail with probability `probability` (seeded draw)
  kShortIo,          ///< cap the operation at `bytes` bytes, then fail
  kDelay,            ///< sleep `delay_ms`, then pass (never fails)
  kKill,             ///< raise(`kill_signal`) on matching evaluation #`times`
};

struct Config {
  Mode mode = Mode::kFailTimes;
  /// kFailTimes / kShortIo: trip budget. kKill: the 1-based ordinal of
  /// the matching evaluation that raises the signal (evaluations before
  /// and after it pass untouched).
  std::uint64_t times = 1;
  double probability = 0.0;    ///< kFailProbability
  std::uint64_t seed = 1;      ///< kFailProbability draw stream
  std::size_t bytes = 0;       ///< kShortIo: max bytes transferred
  std::uint64_t delay_ms = 0;  ///< kDelay
  int kill_signal = 9;         ///< kKill: signal number to raise (SIGKILL)
  /// When non-empty, only evaluations whose key matches this trip (other
  /// keys pass untouched). Keys are site-defined: the engine passes the
  /// canonical mechanism/evaluator name, shard opens pass the file name,
  /// worker-side points pass "<prefix>#<attempt>". A filter ending in
  /// '*' matches any key starting with the part before the '*'.
  std::string key_filter;
};

/// What the evaluating site must do. `io_cap` is the byte budget for the
/// operation (SIZE_MAX = unlimited); `fail` means the operation must
/// raise its domain error (after honoring `io_cap`, which is how a short
/// write tears a file realistically: prefix lands, then the error).
struct Decision {
  bool fail = false;
  std::size_t io_cap = std::numeric_limits<std::size_t>::max();
};

namespace detail {
// Number of currently armed points. The ONLY thing the disabled fast
// path reads.
extern std::atomic<int> g_armed_points;
}  // namespace detail

/// True when any point is armed. One relaxed load — the entire cost of
/// fault injection in a normal run.
[[nodiscard]] inline bool Enabled() noexcept {
  return detail::g_armed_points.load(std::memory_order_relaxed) != 0;
}

/// Arms `point` with `config` (replacing any previous arming).
void Arm(std::string_view point, const Config& config);
/// Disarms `point` (no-op when not armed).
void Disarm(std::string_view point);
/// Disarms everything (test teardown).
void DisarmAll();
/// Parses a MOBIPRIV_FAULTS-style string ("point=spec;point=spec", see
/// the header comment for the spec grammar) and arms every entry.
/// Returns the number of points armed; throws std::invalid_argument on a
/// malformed spec. Called automatically at process start with the
/// MOBIPRIV_FAULTS environment variable.
std::size_t ArmFromSpec(std::string_view spec);

/// Evaluates one injection point. Cheap no-op when nothing is armed;
/// sites should gate on Enabled() first (the macros below do).
[[nodiscard]] Decision Evaluate(std::string_view point,
                                std::string_view key = {}) noexcept;

/// Times `point` has tripped (fired a failure / short-io / delay) since
/// arming. 0 when not armed.
[[nodiscard]] std::uint64_t TripCount(std::string_view point) noexcept;

namespace points {

// Columnar `.mpc` persistence (model/columnar_file.cpp, via the atomic
// commit helper in model/atomic_file.cpp).
inline constexpr std::string_view kColumnarWriteOpen = "columnar.write.open";
inline constexpr std::string_view kColumnarWriteShort = "columnar.write.short";
inline constexpr std::string_view kColumnarWriteCommit = "columnar.write.commit";
inline constexpr std::string_view kColumnarReadOpen = "columnar.read.open";
inline constexpr std::string_view kColumnarReadShort = "columnar.read.short";
inline constexpr std::string_view kColumnarMapOpen = "columnar.map.open";

// Shard directory persistence (model/sharded_dataset.cpp).
inline constexpr std::string_view kManifestWriteOpen = "manifest.write.open";
inline constexpr std::string_view kManifestWriteShort = "manifest.write.short";
inline constexpr std::string_view kManifestWriteCommit = "manifest.write.commit";
inline constexpr std::string_view kManifestReadOpen = "manifest.read.open";
inline constexpr std::string_view kShardOpenRead = "shard.open.read";

// Engine mechanism-output cache (core/engine.cpp).
inline constexpr std::string_view kCacheReadLoad = "cache.read.load";
inline constexpr std::string_view kCacheWriteSpill = "cache.write.spill";

// CSV ingestion (model/io.cpp).
inline constexpr std::string_view kCsvReadOpen = "csv.read.open";
inline constexpr std::string_view kCsvReadShort = "csv.read.short";

// Scenario engine node execution (core/engine.cpp). Keyed by the node's
// canonical mechanism / evaluator name.
inline constexpr std::string_view kEngineMechanismRun = "engine.mechanism.run";
inline constexpr std::string_view kEngineEvaluatorRun = "engine.evaluator.run";

// Multi-process shard execution (core/shard_exec.cpp supervisor and the
// mobipriv_worker binary). The worker-side points are evaluated inside
// the worker PROCESS — arm them via MOBIPRIV_FAULTS, which the
// supervisor's environment passes through to every worker it spawns.
// Keys are "<stage prefix name>#<attempt>" (worker side, one evaluation
// per owned shard / per result write) and the stage prefix name
// (supervisor-side validation).
inline constexpr std::string_view kWorkerApply = "worker.apply";
inline constexpr std::string_view kWorkerResultWrite = "worker.result.write";
inline constexpr std::string_view kSupervisorResultValidate =
    "supervisor.result.validate";

}  // namespace points

/// Every registered injection point (the constants above). The
/// fault-matrix test drives each of these; the docs lint compares the
/// list against the table in docs/ROBUSTNESS.md.
[[nodiscard]] std::span<const std::string_view> AllPoints() noexcept;

}  // namespace mobipriv::util::fault

/// Evaluates `point` and yields true when the site must fail. Zero-cost
/// when nothing is armed (one relaxed load, branch not taken).
#define MOBIPRIV_FAULT_POINT(point)             \
  (::mobipriv::util::fault::Enabled() &&        \
   ::mobipriv::util::fault::Evaluate(point).fail)

/// Keyed form: the point only trips when the armed config's key_filter
/// matches `key` (or is empty).
#define MOBIPRIV_FAULT_POINT_KEYED(point, key)  \
  (::mobipriv::util::fault::Enabled() &&        \
   ::mobipriv::util::fault::Evaluate(point, key).fail)
