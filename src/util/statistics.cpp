#include "util/statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace mobipriv::util {

void RunningStat::Add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::Variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStat::Stddev() const noexcept { return std::sqrt(Variance()); }

double PercentileSorted(std::span<const double> sorted_values, double q) {
  assert(!sorted_values.empty());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_values.size() - 1);
  const auto lower = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lower);
  if (lower + 1 >= sorted_values.size()) return sorted_values.back();
  return sorted_values[lower] * (1.0 - frac) + sorted_values[lower + 1] * frac;
}

double Percentile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return PercentileSorted(sorted, q);
}

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

Summary Summary::Of(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  RunningStat rs;
  for (const double v : sorted) rs.Add(v);
  s.count = rs.Count();
  s.mean = rs.Mean();
  s.stddev = rs.Stddev();
  s.min = sorted.front();
  s.p25 = PercentileSorted(sorted, 0.25);
  s.median = PercentileSorted(sorted, 0.50);
  s.p75 = PercentileSorted(sorted, 0.75);
  s.p95 = PercentileSorted(sorted, 0.95);
  s.p99 = PercentileSorted(sorted, 0.99);
  s.max = sorted.back();
  return s;
}

std::string Summary::ToString() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " sd=" << stddev << " min=" << min
     << " p50=" << median << " p95=" << p95 << " max=" << max;
  return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(bins > 0);
  assert(lo < hi);
}

void Histogram::Add(double x) noexcept {
  const double span = hi_ - lo_;
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / span *
                                         static_cast<double>(counts_.size()));
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::BinLower(std::size_t i) const {
  assert(i < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::Fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

std::string Histogram::ToString(std::size_t bar_width) const {
  std::ostringstream os;
  std::size_t max_count = 0;
  for (const auto c : counts_) max_count = std::max(max_count, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double frac_of_max =
        max_count ? static_cast<double>(counts_[i]) /
                        static_cast<double>(max_count)
                  : 0.0;
    const auto bar =
        static_cast<std::size_t>(frac_of_max * static_cast<double>(bar_width));
    os << "[" << BinLower(i) << ", ";
    if (i + 1 == counts_.size()) {
      os << hi_;
    } else {
      os << BinLower(i + 1);
    }
    os << ") " << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace mobipriv::util
