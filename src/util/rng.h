// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library (synthetic data generation,
// noise mechanisms, shuffling inside mix-zones, ...) draws from an
// explicitly-seeded Rng instance that is passed in by the caller. No global
// RNG state exists anywhere in the library, so two runs with the same seeds
// produce bit-identical datasets, mechanisms outputs and attack results.
//
// The core generator is SplitMix64 (Steele et al., "Fast splittable
// pseudorandom number generators", OOPSLA 2014) used to seed xoshiro256++
// (Blackman & Vigna, 2019): small state, excellent statistical quality, and
// trivially reproducible across platforms, unlike std::mt19937 whose
// distributions are not portable across standard library implementations.
// All distribution sampling (uniform, Gaussian, exponential, Laplace, planar
// Laplace) is implemented here so results do not depend on libstdc++
// internals.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace mobipriv::util {

/// Counter-based splitter used to derive independent streams from one seed.
/// Calling next() repeatedly yields a deterministic sequence of 64-bit
/// values suitable as seeds for independent Rng instances.
class SeedSequence {
 public:
  explicit SeedSequence(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next derived seed (SplitMix64 step).
  [[nodiscard]] std::uint64_t Next() noexcept;

 private:
  std::uint64_t state_;
};

/// Deterministically derives the seed of an independent per-item stream
/// from a master seed plus two identifying indices (e.g. user id and trace
/// index). Used by the parallel batch engine: every trace gets its own
/// stream, so output is byte-identical whatever the worker count.
[[nodiscard]] std::uint64_t DeriveStreamSeed(std::uint64_t master,
                                             std::uint64_t a,
                                             std::uint64_t b) noexcept;

/// xoshiro256++ pseudo-random generator with portable distribution sampling.
///
/// Satisfies the C++ UniformRandomBitGenerator concept so it can also be
/// plugged into <random> facilities when portability of the stream is not
/// required.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0xDEADBEEFCAFEF00DULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Raw 64 uniform bits.
  result_type operator()() noexcept { return NextU64(); }
  std::uint64_t NextU64() noexcept;

  /// Uniform double in [0, 1).
  double NextDouble() noexcept;
  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). Requires n > 0. Unbiased (Lemire's method).
  std::uint64_t NextBounded(std::uint64_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p) noexcept;
  /// Standard normal via Marsaglia polar method (portable, no cached state
  /// dependence on library internals).
  double Gaussian() noexcept;
  /// Normal with the given mean and standard deviation (sigma >= 0).
  double Gaussian(double mean, double sigma) noexcept;
  /// Exponential with rate lambda > 0 (mean 1/lambda).
  double Exponential(double lambda) noexcept;
  /// One-dimensional Laplace with location mu and scale b > 0.
  double Laplace(double mu, double b) noexcept;
  /// Angle uniform in [0, 2*pi).
  double Angle() noexcept;

  /// Fisher–Yates shuffle of a span, deterministic given the Rng state.
  template <typename T>
  void Shuffle(std::span<T> values) noexcept {
    if (values.size() < 2) return;
    for (std::size_t i = values.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBounded(i + 1));
      using std::swap;
      swap(values[i], values[j]);
    }
  }

  template <typename T>
  void Shuffle(std::vector<T>& values) noexcept {
    Shuffle(std::span<T>(values));
  }

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Non-positive weights are treated as zero; if all weights are
  /// zero the choice is uniform.
  std::size_t WeightedIndex(std::span<const double> weights) noexcept;

  /// Derives an independent child generator (stream splitting).
  [[nodiscard]] Rng Split() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mobipriv::util
