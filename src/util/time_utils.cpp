#include "util/time_utils.h"

#include <cstdio>

#include "util/string_utils.h"

namespace mobipriv::util {
namespace {

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm,
/// valid for the full int range we care about).
constexpr std::int64_t DaysFromCivil(std::int64_t y, unsigned m,
                                     unsigned d) noexcept {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const auto yoe = static_cast<unsigned>(y - era * 400);             // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;        // [0, 146096]
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}

/// Inverse of DaysFromCivil.
constexpr void CivilFromDays(std::int64_t z, std::int64_t& y, unsigned& m,
                             unsigned& d) noexcept {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const auto doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  y = static_cast<std::int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  d = doy - (153 * mp + 2) / 5 + 1;                              // [1, 31]
  m = mp + (mp < 10 ? 3 : -9);                                   // [1, 12]
  y += (m <= 2);
}

}  // namespace

std::optional<Timestamp> ParseDateTime(std::string_view text) {
  text = Trim(text);
  // Expected: "YYYY-MM-DD hh:mm:ss" or "YYYY-MM-DDThh:mm:ss" (19 chars).
  if (text.size() != 19) return std::nullopt;
  if (text[4] != '-' || text[7] != '-' ||
      (text[10] != ' ' && text[10] != 'T') || text[13] != ':' ||
      text[16] != ':') {
    return std::nullopt;
  }
  const auto year = ParseInt(text.substr(0, 4));
  const auto month = ParseInt(text.substr(5, 2));
  const auto day = ParseInt(text.substr(8, 2));
  const auto hour = ParseInt(text.substr(11, 2));
  const auto minute = ParseInt(text.substr(14, 2));
  const auto second = ParseInt(text.substr(17, 2));
  if (!year || !month || !day || !hour || !minute || !second) {
    return std::nullopt;
  }
  if (*month < 1 || *month > 12 || *day < 1 || *day > 31 || *hour > 23 ||
      *hour < 0 || *minute < 0 || *minute > 59 || *second < 0 ||
      *second > 60) {
    return std::nullopt;
  }
  const std::int64_t days = DaysFromCivil(*year, static_cast<unsigned>(*month),
                                          static_cast<unsigned>(*day));
  return days * kSecondsPerDay + *hour * kSecondsPerHour +
         *minute * kSecondsPerMinute + *second;
}

std::string FormatDateTime(Timestamp ts) {
  std::int64_t days = ts / kSecondsPerDay;
  Timestamp sec_of_day = ts % kSecondsPerDay;
  if (sec_of_day < 0) {
    sec_of_day += kSecondsPerDay;
    --days;
  }
  std::int64_t year = 0;
  unsigned month = 0;
  unsigned day = 0;
  CivilFromDays(days, year, month, day);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer),
                "%04lld-%02u-%02u %02lld:%02lld:%02lld",
                static_cast<long long>(year), month, day,
                static_cast<long long>(sec_of_day / kSecondsPerHour),
                static_cast<long long>((sec_of_day / kSecondsPerMinute) % 60),
                static_cast<long long>(sec_of_day % 60));
  return buffer;
}

Timestamp SecondsOfDay(Timestamp ts) noexcept {
  Timestamp s = ts % kSecondsPerDay;
  if (s < 0) s += kSecondsPerDay;
  return s;
}

Timestamp StartOfDay(Timestamp ts) noexcept { return ts - SecondsOfDay(ts); }

std::string FormatDuration(Timestamp seconds) {
  if (seconds < 0) return "-" + FormatDuration(-seconds);
  char buffer[48];
  if (seconds < kSecondsPerMinute) {
    std::snprintf(buffer, sizeof(buffer), "%llds",
                  static_cast<long long>(seconds));
  } else if (seconds < kSecondsPerHour) {
    std::snprintf(buffer, sizeof(buffer), "%lldm%02llds",
                  static_cast<long long>(seconds / kSecondsPerMinute),
                  static_cast<long long>(seconds % kSecondsPerMinute));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%lldh%02lldm",
                  static_cast<long long>(seconds / kSecondsPerHour),
                  static_cast<long long>((seconds / kSecondsPerMinute) % 60));
  }
  return buffer;
}

}  // namespace mobipriv::util
