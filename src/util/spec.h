// Spec strings: the tiny declarative grammar shared by the mechanism
// registry and the evaluator registry.
//
//   chain     := spec ("|" spec)*
//   spec      := base [ "[" entry ("," entry)* "]" ]
//   entry     := key "=" value   (parameter)
//              | token           (flag, e.g. "speed+mix")
//   base/key  := [A-Za-z0-9_+.-]+
//   value     := anything up to the next "," or "]"
//
// A spec is what Mechanism::Name() already prints ("geo_ind[eps=0.0100]",
// "wait4me[k=4,delta=500m]"): this module makes those names parse back.
// A chain composes specs left to right ("geo_ind[eps=0.1]|downsampling"):
// stage separators are only recognized at the top level, never inside
// brackets. Numeric values may carry a trailing unit suffix ("500m",
// "600s") which NumberOf strips — units are documentation, not semantics.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace mobipriv::util {

/// Raised on malformed spec strings, unknown bases, or bad parameters.
class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Spec {
 public:
  struct Entry {
    std::string key;    ///< flag token when value is empty and !has_value
    std::string value;  ///< verbatim, unit suffix included
    bool has_value = false;
  };

  Spec() = default;
  explicit Spec(std::string base) : base_(std::move(base)) {}

  /// Parses `text`. Throws SpecError on empty base, unbalanced brackets,
  /// empty entries or trailing garbage after "]".
  [[nodiscard]] static Spec Parse(std::string_view text);

  /// Canonical rendering: base, then "[k=v,...]" when entries exist —
  /// Parse(s).ToString() == s for any already-canonical spec string.
  [[nodiscard]] std::string ToString() const;

  [[nodiscard]] const std::string& base() const noexcept { return base_; }
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }

  void Add(std::string key, std::string value);
  void AddFlag(std::string token);

  /// Value of key=value entry `key`, or nullopt (flags don't count).
  [[nodiscard]] std::optional<std::string> Get(std::string_view key) const;
  /// True when a valueless `token` flag entry is present.
  [[nodiscard]] bool HasFlag(std::string_view token) const;

  /// Numeric lookups; `fallback` when the key is absent. A trailing
  /// alphabetic unit suffix ("m", "s", "ms") is ignored. Throws SpecError
  /// when the value is present but not a number.
  [[nodiscard]] double NumberOf(std::string_view key, double fallback) const;
  [[nodiscard]] std::int64_t IntOf(std::string_view key,
                                   std::int64_t fallback) const;

  /// Throws SpecError unless every key=value key is in `known` (flags are
  /// checked against `known` too). `context` prefixes the message.
  void RequireKnownKeys(std::initializer_list<std::string_view> known,
                        const std::string& context) const;

 private:
  std::string base_;
  std::vector<Entry> entries_;
};

/// A pipeline of specs applied left to right: `"a[...]|b[...]|c"`.
/// Single-stage chains are ordinary specs — Parse accepts every string
/// Spec::Parse accepts and ToString then prints the identical text, so
/// existing single-mechanism call sites can adopt SpecChain untouched.
class SpecChain {
 public:
  SpecChain() = default;

  /// Splits on top-level '|' (separators inside brackets are literal) and
  /// parses each stage with Spec::Parse. Throws SpecError on empty stages
  /// ("a||b", "|a", "a|") or any per-stage parse failure.
  [[nodiscard]] static SpecChain Parse(std::string_view text);

  /// Stage ToString()s joined with '|': Parse(s).ToString() == s for any
  /// already-canonical chain string.
  [[nodiscard]] std::string ToString() const;

  [[nodiscard]] const std::vector<Spec>& stages() const noexcept {
    return stages_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return stages_.size(); }

  void Append(Spec stage) { stages_.push_back(std::move(stage)); }

 private:
  std::vector<Spec> stages_;
};

/// Splits `text` on `separator` occurrences outside "[...]" brackets.
/// Empty pieces are preserved ("a||b" -> {"a", "", "b"}); an empty input
/// yields one empty piece. Bracket balance is NOT validated here — each
/// piece is expected to go through Spec::Parse, which is.
[[nodiscard]] std::vector<std::string> SplitTopLevel(std::string_view text,
                                                     char separator);

/// Strips one trailing run of alphabetic characters ("500m" -> "500").
[[nodiscard]] std::string_view StripUnitSuffix(std::string_view value);

}  // namespace mobipriv::util
