#include "util/fault.h"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/rng.h"

namespace mobipriv::util::fault {

namespace detail {
std::atomic<int> g_armed_points{0};
}  // namespace detail

namespace {

struct ArmedPoint {
  Config config;
  std::uint64_t trips = 0;  // failures / short-ios / delays fired so far
  std::uint64_t seen = 0;   // kKill: matching evaluations counted so far
  Rng rng{1};               // kFailProbability draw stream
};

/// key_filter match: exact, or prefix when the filter ends in '*'.
bool KeyMatches(std::string_view filter, std::string_view key) {
  if (filter.empty()) return true;
  if (filter.back() == '*') {
    return key.substr(0, filter.size() - 1) == filter.substr(0, filter.size() - 1);
  }
  return key == filter;
}

// Registry state behind one mutex. Only touched when a point is armed
// (Enabled() short-circuits the hot path), so contention is a test-only
// concern.
struct Registry {
  std::mutex mutex;
  std::map<std::string, ArmedPoint, std::less<>> points;
};

Registry& TheRegistry() {
  static Registry registry;
  return registry;
}

// MOBIPRIV_FAULTS is parsed once, before main touches any I/O path.
// A malformed value aborts loudly rather than silently injecting nothing.
const std::size_t g_env_armed = [] {
  const char* env = std::getenv("MOBIPRIV_FAULTS");
  if (env == nullptr || *env == '\0') return std::size_t{0};
  return ArmFromSpec(env);
}();

Config ParseOneSpec(std::string_view point, std::string_view spec) {
  const auto bad = [&](const std::string& what) -> Config {
    throw std::invalid_argument("MOBIPRIV_FAULTS: point '" +
                                std::string(point) + "': " + what);
  };
  Config config;
  // Comma-separated options after the mode ("kill:9@1,key:gaussian#0").
  // Only `key:` exists today; the split keeps the grammar open.
  std::string_view body = spec;
  while (true) {
    const std::size_t comma = body.rfind(',');
    if (comma == std::string_view::npos) break;
    const std::string_view option = body.substr(comma + 1);
    if (!option.starts_with("key:")) {
      bad("unknown option '" + std::string(option) + "'");
    }
    config.key_filter = std::string(option.substr(4));
    body = body.substr(0, comma);
  }
  if (body == "once") return config;  // kFailTimes, times = 1
  const std::size_t colon = body.find(':');
  const std::string_view mode = body.substr(0, colon);
  const std::string_view arg =
      colon == std::string_view::npos ? std::string_view{}
                                      : body.substr(colon + 1);
  const auto require_arg = [&] {
    if (arg.empty()) bad("mode '" + std::string(mode) + "' needs an argument");
  };
  try {
    if (mode == "times") {
      require_arg();
      config.mode = Mode::kFailTimes;
      config.times = std::stoull(std::string(arg));
    } else if (mode == "p") {
      require_arg();
      config.mode = Mode::kFailProbability;
      std::string text(arg);
      const std::size_t at = text.find('@');
      if (at != std::string::npos) {
        config.seed = std::stoull(text.substr(at + 1));
        text.resize(at);
      }
      config.probability = std::stod(text);
      if (config.probability < 0.0 || config.probability > 1.0) {
        bad("probability out of [0, 1]");
      }
    } else if (mode == "short") {
      require_arg();
      config.mode = Mode::kShortIo;
      config.bytes = static_cast<std::size_t>(std::stoull(std::string(arg)));
    } else if (mode == "delay") {
      require_arg();
      config.mode = Mode::kDelay;
      config.delay_ms = std::stoull(std::string(arg));
    } else if (mode == "kill") {
      require_arg();
      config.mode = Mode::kKill;
      std::string text(arg);
      const std::size_t at = text.find('@');
      if (at != std::string::npos) {
        config.times = std::stoull(text.substr(at + 1));
        text.resize(at);
      }
      config.kill_signal = static_cast<int>(std::stoul(text));
      if (config.times == 0) bad("kill ordinal must be >= 1");
    } else {
      bad("unknown mode '" + std::string(mode) + "'");
    }
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception&) {
    bad("malformed numeric argument '" + std::string(arg) + "'");
  }
  return config;
}

}  // namespace

void Arm(std::string_view point, const Config& config) {
  Registry& registry = TheRegistry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  ArmedPoint armed;
  armed.config = config;
  armed.rng = Rng(config.seed);
  const auto [it, inserted] =
      registry.points.insert_or_assign(std::string(point), std::move(armed));
  (void)it;
  if (inserted) {
    detail::g_armed_points.fetch_add(1, std::memory_order_relaxed);
  }
}

void Disarm(std::string_view point) {
  Registry& registry = TheRegistry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.points.find(point);
  if (it == registry.points.end()) return;
  registry.points.erase(it);
  detail::g_armed_points.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAll() {
  Registry& registry = TheRegistry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  detail::g_armed_points.fetch_sub(static_cast<int>(registry.points.size()),
                                   std::memory_order_relaxed);
  registry.points.clear();
}

std::size_t ArmFromSpec(std::string_view spec) {
  std::size_t armed = 0;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(';', start);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw std::invalid_argument(
          "MOBIPRIV_FAULTS: entry '" + std::string(entry) +
          "' is not of the form point=spec");
    }
    const std::string_view point = entry.substr(0, eq);
    Arm(point, ParseOneSpec(point, entry.substr(eq + 1)));
    ++armed;
  }
  return armed;
}

Decision Evaluate(std::string_view point, std::string_view key) noexcept {
  Decision decision;
  if (!Enabled()) return decision;
  std::uint64_t delay_ms = 0;
  int kill_signal = 0;
  {
    Registry& registry = TheRegistry();
    const std::lock_guard<std::mutex> lock(registry.mutex);
    const auto it = registry.points.find(point);
    if (it == registry.points.end()) return decision;
    ArmedPoint& armed = it->second;
    const Config& config = armed.config;
    if (!KeyMatches(config.key_filter, key)) {
      return decision;
    }
    switch (config.mode) {
      case Mode::kFailTimes:
        if (armed.trips < config.times) {
          ++armed.trips;
          decision.fail = true;
        }
        break;
      case Mode::kFailProbability:
        if (armed.rng.NextDouble() < config.probability) {
          ++armed.trips;
          decision.fail = true;
        }
        break;
      case Mode::kShortIo:
        if (armed.trips < config.times) {
          ++armed.trips;
          decision.fail = true;
          decision.io_cap = config.bytes;
        }
        break;
      case Mode::kDelay:
        ++armed.trips;
        delay_ms = config.delay_ms;
        break;
      case Mode::kKill:
        if (++armed.seen == config.times) {
          ++armed.trips;
          kill_signal = config.kill_signal;
        }
        break;
    }
  }
  // Sleep / raise outside the registry lock so a delay fault cannot
  // serialize unrelated points (and a catchable signal's handler cannot
  // deadlock on the registry).
  if (delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
  }
  if (kill_signal != 0) {
    std::raise(kill_signal);
  }
  return decision;
}

std::uint64_t TripCount(std::string_view point) noexcept {
  Registry& registry = TheRegistry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.points.find(point);
  return it == registry.points.end() ? 0 : it->second.trips;
}

std::span<const std::string_view> AllPoints() noexcept {
  static constexpr std::string_view kAll[] = {
      points::kColumnarWriteOpen,  points::kColumnarWriteShort,
      points::kColumnarWriteCommit, points::kColumnarReadOpen,
      points::kColumnarReadShort,  points::kColumnarMapOpen,
      points::kManifestWriteOpen,  points::kManifestWriteShort,
      points::kManifestWriteCommit, points::kManifestReadOpen,
      points::kShardOpenRead,      points::kCacheReadLoad,
      points::kCacheWriteSpill,    points::kCsvReadOpen,
      points::kCsvReadShort,       points::kEngineMechanismRun,
      points::kEngineEvaluatorRun, points::kWorkerApply,
      points::kWorkerResultWrite,  points::kSupervisorResultValidate,
  };
  return kAll;
}

}  // namespace mobipriv::util::fault
