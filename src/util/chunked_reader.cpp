#include "util/chunked_reader.h"

#include <algorithm>
#include <istream>

namespace mobipriv::util {
namespace {

/// Number of line terminators in `text`, counting "\n", lone "\r" and
/// "\r\n" (once) — the record-terminator rules of ForEachLine/CsvReader.
std::size_t CountLineTerminators(std::string_view text) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      ++count;
    } else if (text[i] == '\r') {
      // "\r\n" is counted at its '\n'.
      if (i + 1 >= text.size() || text[i + 1] != '\n') ++count;
    }
  }
  return count;
}

}  // namespace

std::vector<LineChunk> SplitLineChunks(std::string_view text,
                                       std::size_t max_chunks,
                                       std::size_t min_chunk_bytes) {
  std::vector<LineChunk> chunks;
  if (text.empty()) return chunks;
  if (max_chunks == 0) max_chunks = 1;
  const std::size_t target =
      std::max<std::size_t>(std::max<std::size_t>(min_chunk_bytes, 1),
                            (text.size() + max_chunks - 1) / max_chunks);

  std::size_t begin = 0;
  std::size_t line = 1;
  while (begin < text.size()) {
    std::size_t end = text.size() - begin <= target ? text.size()
                                                    : begin + target;
    if (end < text.size()) {
      // Extend to just past the next '\n' so no line spans two chunks
      // (a candidate boundary already after '\n' stays put).
      const std::size_t nl = text.find('\n', end - 1);
      end = nl == std::string_view::npos ? text.size() : nl + 1;
    }
    chunks.push_back(LineChunk{begin, end, line});
    line += CountLineTerminators(text.substr(begin, end - begin));
    begin = end;
  }
  return chunks;
}

std::string ReadAll(std::istream& in) {
  std::string out;
  char buffer[1 << 16];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    out.append(buffer, static_cast<std::size_t>(in.gcount()));
  }
  return out;
}

}  // namespace mobipriv::util
