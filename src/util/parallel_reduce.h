// Deterministic parallel map/reduce on top of ParallelFor.
//
// The determinism rule of the batch engine, applied to reductions: block
// boundaries depend only on (n, grain) — never on the worker count — each
// block maps to one partial result in parallel, and partials fold strictly
// left to right on the calling thread. The result is byte-identical at any
// parallelism level whenever `map` is a pure function of its index range
// (the fold order is fixed, so even non-associative reductions — float
// sums, first-error-wins — are stable).
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace mobipriv::util {

/// Maps fixed blocks of [0, n) to partial results in parallel, then folds
/// them in block order. `map(begin, end)` -> Result; `reduce(acc, partial)`
/// merges a partial into the running accumulator (called serially, in
/// ascending block order, starting from the first block's result).
/// `grain` is the block size; 0 means one block per ~2x parallelism lane
/// (coarse enough to amortize, fine enough to balance).
template <typename Result, typename MapFn, typename ReduceFn>
Result ParallelReduce(std::size_t n, std::size_t grain, MapFn&& map,
                      ReduceFn&& reduce) {
  if (n == 0) return Result{};
  if (grain == 0) {
    // NOTE: this default ties block boundaries to the *configured*
    // parallelism level. Callers that need worker-count-invariant results
    // must pass an explicit grain (every ingestion call site does).
    grain = std::max<std::size_t>(1, n / (ParallelismLevel() * 2));
  }
  const std::size_t blocks = (n + grain - 1) / grain;
  std::vector<Result> partials(blocks);
  ParallelForEach(blocks, [&](std::size_t b) {
    const std::size_t begin = b * grain;
    const std::size_t end = std::min(n, begin + grain);
    partials[b] = map(begin, end);
  });
  Result acc = std::move(partials[0]);
  for (std::size_t b = 1; b < blocks; ++b) {
    reduce(acc, std::move(partials[b]));
  }
  return acc;
}

}  // namespace mobipriv::util
