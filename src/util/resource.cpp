#include "util/resource.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace mobipriv::util {

std::uint64_t PeakRssBytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  // Linux (and the BSDs) report kibibytes.
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
#endif
#else
  return 0;
#endif
}

}  // namespace mobipriv::util
