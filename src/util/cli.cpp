#include "util/cli.h"

#include <iostream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#endif

#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace mobipriv::util {

CliParser::CliParser(std::string description)
    : description_(std::move(description)) {}

void CliParser::AddOption(std::string name, std::string help,
                          std::string default_value) {
  options_[std::move(name)] =
      Option{std::move(help), std::move(default_value), /*is_flag=*/false,
             /*seen=*/false};
}

void CliParser::AddFlag(std::string name, std::string help) {
  options_[std::move(name)] =
      Option{std::move(help), "false", /*is_flag=*/true, /*seen=*/false};
}

bool CliParser::Parse(int argc, const char* const* argv) {
  program_name_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << Usage();
      return false;
    }
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name;
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      inline_value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
    }
    const auto it = options_.find(name);
    if (it == options_.end()) {
      std::cerr << "Unknown option --" << name << "\n" << Usage();
      return false;
    }
    Option& opt = it->second;
    opt.seen = true;
    if (opt.is_flag) {
      opt.value = inline_value.value_or("true");
    } else if (inline_value) {
      opt.value = *inline_value;
    } else {
      if (i + 1 >= argc) {
        std::cerr << "Missing value for --" << name << "\n" << Usage();
        return false;
      }
      opt.value = argv[++i];
    }
  }
  return true;
}

bool CliParser::Has(std::string_view name) const {
  const auto it = options_.find(name);
  return it != options_.end() && it->second.seen;
}

std::string CliParser::GetString(std::string_view name) const {
  const auto it = options_.find(name);
  return it == options_.end() ? std::string() : it->second.value;
}

double CliParser::GetDouble(std::string_view name) const {
  return ParseDouble(GetString(name)).value_or(0.0);
}

std::int64_t CliParser::GetInt(std::string_view name) const {
  return ParseInt(GetString(name)).value_or(0);
}

bool CliParser::GetBool(std::string_view name) const {
  const auto value = ToLower(GetString(name));
  return value == "true" || value == "1" || value == "yes" || value == "on";
}

std::string CliParser::Usage() const {
  std::ostringstream os;
  os << description_ << "\n\nUsage: " << program_name_ << " [options]\n\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    if (!opt.is_flag) os << " <value>";
    os << "\n      " << opt.help;
    if (!opt.is_flag && !opt.value.empty()) {
      os << " (default: " << opt.value << ")";
    }
    os << "\n";
  }
  os << "  --help\n      Show this message\n";
  return os.str();
}

void AddRunOptions(CliParser& cli, std::uint64_t default_seed) {
  cli.AddOption("threads",
                "worker threads (0 = all cores; results are identical at "
                "any value)",
                "0");
  cli.AddOption("seed", "random seed of the run", std::to_string(default_seed));
}

void IgnoreSigpipe() {
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction action {};
  action.sa_handler = SIG_IGN;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGPIPE, &action, nullptr);
#endif
}

bool FlushStdout(const char* tool) {
  std::cout.flush();
  if (std::cout.good()) return true;
  std::cerr << tool << ": error: writing to stdout failed (broken pipe?)\n";
  return false;
}

RunOptions ApplyRunOptions(const CliParser& cli) {
  RunOptions options;
  const std::int64_t threads = cli.GetInt("threads");
  options.threads = threads < 0 ? 0 : static_cast<std::size_t>(threads);
  options.seed = static_cast<std::uint64_t>(cli.GetInt("seed"));
  SetParallelismLevel(options.threads);
  return options;
}

}  // namespace mobipriv::util
