// Small string helpers shared by the CSV reader, CLI parser and report
// writers. Kept deliberately minimal: only what the library actually uses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mobipriv::util {

/// Splits `text` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string> Split(std::string_view text, char delim);

/// Removes leading/trailing ASCII whitespace.
[[nodiscard]] std::string_view Trim(std::string_view text);

/// Case-sensitive prefix/suffix tests (thin wrappers kept for call-site
/// clarity in pre-C++20-style call sites).
[[nodiscard]] bool StartsWith(std::string_view text, std::string_view prefix);
[[nodiscard]] bool EndsWith(std::string_view text, std::string_view suffix);

/// Lower-cases ASCII letters only.
[[nodiscard]] std::string ToLower(std::string_view text);

/// Strict parse helpers: the whole trimmed string must be consumed, otherwise
/// nullopt. Unlike std::stod they never throw and never accept trailing junk.
[[nodiscard]] std::optional<double> ParseDouble(std::string_view text);
[[nodiscard]] std::optional<std::int64_t> ParseInt(std::string_view text);

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
[[nodiscard]] std::string Join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Formats a double with fixed precision (used by report tables so output is
/// stable across locales).
[[nodiscard]] std::string FormatDouble(double value, int precision = 4);

/// 16-digit lower-case zero-padded hex of a 64-bit value ("00ab..."), used
/// for content-addressed file names and fingerprints in cache sidecars.
[[nodiscard]] std::string ToHex(std::uint64_t value);

}  // namespace mobipriv::util
