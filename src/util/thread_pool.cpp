#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace mobipriv::util {
namespace {

/// True while the current thread is executing a ParallelFor chunk; nested
/// parallel regions then degrade to inline loops.
thread_local bool t_in_parallel_region = false;

/// True on pool worker threads. A worker must never block waiting for
/// other pool tasks (every worker could be doing the same — e.g. scenario
/// DAG nodes whose kernels call ParallelFor — and the queue would
/// deadlock), so ParallelFor degrades to an inline loop on workers too:
/// tasks submitted directly to the pool are the parallelism grain.
thread_local bool t_is_pool_worker = false;

/// 0 = no override (use the default below).
std::atomic<std::size_t> g_parallelism_override{0};

std::size_t DefaultParallelism() {
  static const std::size_t value = [] {
    if (const char* env = std::getenv("MOBIPRIV_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 1) return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw == 0 ? 1 : hw);
  }();
  return value;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Global() {
  // The pool holds callers' helpers, so size it one short of the
  // parallelism target: the calling thread is always the +1. A floor of 7
  // helpers keeps ScopedParallelism able to genuinely multithread (e.g.
  // determinism tests) even on small machines; unused workers just sleep.
  static ThreadPool pool(std::max<std::size_t>(
      DefaultParallelism() > 1 ? DefaultParallelism() - 1 : 0, 7));
  return pool;
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_is_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t ParallelismLevel() noexcept {
  const std::size_t override = g_parallelism_override.load();
  const std::size_t level = override != 0 ? override : DefaultParallelism();
  // Serial callers must never touch Global(): constructing the pool spawns
  // worker threads, and the whole point of level 1 is to not have any.
  if (level <= 1) return 1;
  // The caller is one lane; the pool supplies the rest.
  return std::min(level, ThreadPool::Global().WorkerCount() + 1);
}

void SetParallelismLevel(std::size_t n) noexcept {
  g_parallelism_override.store(n);
}

std::size_t ParallelismOverride() noexcept {
  return g_parallelism_override.load();
}

void ParallelFor(std::size_t n,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t grain) {
  if (n == 0) return;
  const auto run_inline = [&body, n] {
    struct Reset {
      bool previous;
      ~Reset() { t_in_parallel_region = previous; }
    } reset{t_in_parallel_region};
    (void)reset;
    t_in_parallel_region = true;
    body(0, n);
  };
  const std::size_t lanes = ParallelismLevel();
  if (lanes <= 1 || n == 1 || t_in_parallel_region || t_is_pool_worker) {
    // Effective worker count 1 (or already inside a parallel region):
    // plain loop, zero pool round-trips, no shared state.
    run_inline();
    return;
  }

  if (grain == 0) {
    // ~4 chunks per lane: enough slack to absorb skewed chunk costs
    // without drowning in claim traffic.
    grain = std::max<std::size_t>(1, n / (lanes * 4));
  }
  const std::size_t chunks = (n + grain - 1) / grain;
  if (chunks <= 1) {
    // The whole range fits one chunk (n <= grain): fan-out would buy one
    // lane of work for a full pool round-trip — run it inline instead.
    run_inline();
    return;
  }
  const std::size_t helpers = std::min(lanes - 1, chunks - 1);

  struct Shared {
    std::atomic<std::size_t> next_chunk{0};
    std::atomic<std::size_t> active;
    std::mutex mutex;
    std::condition_variable done;
    std::exception_ptr error;
    explicit Shared(std::size_t lanes_in_flight) : active(lanes_in_flight) {}
  };
  // Helpers may still be draining when the caller returns would be a
  // use-after-free; shared_ptr keeps the state alive until the last lane
  // leaves (the caller still waits for all chunks to finish).
  auto shared = std::make_shared<Shared>(helpers + 1);

  const auto run_lane = [shared, &body, n, grain, chunks]() {
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    for (;;) {
      const std::size_t chunk = shared->next_chunk.fetch_add(1);
      if (chunk >= chunks) break;
      const std::size_t begin = chunk * grain;
      const std::size_t end = std::min(n, begin + grain);
      try {
        body(begin, end);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(shared->mutex);
        if (!shared->error) shared->error = std::current_exception();
        // Poison the counter so remaining chunks are skipped.
        shared->next_chunk.store(chunks);
      }
    }
    t_in_parallel_region = was_in_region;
    {
      const std::lock_guard<std::mutex> lock(shared->mutex);
      shared->active.fetch_sub(1);
    }
    shared->done.notify_one();
  };

  auto& pool = ThreadPool::Global();
  for (std::size_t h = 0; h < helpers; ++h) pool.Submit(run_lane);
  run_lane();

  std::unique_lock<std::mutex> lock(shared->mutex);
  shared->done.wait(lock, [&] { return shared->active.load() == 0; });
  if (shared->error) std::rethrow_exception(shared->error);
}

void ParallelForEach(std::size_t n,
                     const std::function<void(std::size_t)>& body,
                     std::size_t grain) {
  ParallelFor(
      n,
      [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      },
      grain);
}

}  // namespace mobipriv::util
