// Minimal CSV reading/writing used by the trajectory I/O layer and the
// benchmark harness. Supports RFC-4180-style quoting (double quotes, embedded
// separators/quotes/newlines inside quoted fields) which is enough for every
// mobility dataset format we ingest (plain CSV and Geolife-style PLT).
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mobipriv::util {

/// One parsed CSV record.
using CsvRow = std::vector<std::string>;

/// Streaming CSV reader. Rows are pulled one at a time so arbitrarily large
/// trace files can be ingested without loading them whole.
class CsvReader {
 public:
  /// The stream must outlive the reader. `delimiter` is typically ',' but
  /// PLT-derived files sometimes use ';'.
  explicit CsvReader(std::istream& in, char delimiter = ',');

  /// Reads the next record into `row`. Returns false at end of input.
  /// Handles quoted fields spanning multiple physical lines.
  bool ReadRow(CsvRow& row);

  /// Number of records returned so far (useful in error messages).
  [[nodiscard]] std::size_t RowsRead() const noexcept { return rows_read_; }

 private:
  std::istream& in_;
  char delimiter_;
  std::size_t rows_read_ = 0;
};

/// Parses a single CSV line (no embedded newlines) — convenience for tests
/// and simple formats.
[[nodiscard]] CsvRow ParseCsvLine(std::string_view line, char delimiter = ',');

/// CSV writer with automatic quoting of fields containing the delimiter,
/// quotes or newlines.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out, char delimiter = ',');

  void WriteRow(const CsvRow& row);
  void WriteRow(std::initializer_list<std::string_view> fields);

 private:
  void WriteField(std::string_view field);

  std::ostream& out_;
  char delimiter_;
};

}  // namespace mobipriv::util
