// Tiny declarative command-line parser for the example executables and
// benchmark drivers. Supports "--name value", "--name=value" and boolean
// "--flag" forms, typed lookups with defaults, and automatic --help output.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mobipriv::util {

class CliParser {
 public:
  /// `description` is printed at the top of --help.
  explicit CliParser(std::string description);

  /// Declares an option; must be called before Parse for it to appear in
  /// --help and be accepted. `name` without leading dashes, e.g. "users".
  void AddOption(std::string name, std::string help,
                 std::string default_value = "");
  void AddFlag(std::string name, std::string help);

  /// Parses argv. Returns false (after printing usage) on unknown options,
  /// missing values, or --help.
  [[nodiscard]] bool Parse(int argc, const char* const* argv);

  [[nodiscard]] bool Has(std::string_view name) const;
  [[nodiscard]] std::string GetString(std::string_view name) const;
  [[nodiscard]] double GetDouble(std::string_view name) const;
  [[nodiscard]] std::int64_t GetInt(std::string_view name) const;
  [[nodiscard]] bool GetBool(std::string_view name) const;

  /// Positional arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& Positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] std::string Usage() const;

 private:
  struct Option {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool seen = false;
  };

  std::string description_;
  std::string program_name_;
  std::map<std::string, Option, std::less<>> options_;
  std::vector<std::string> positional_;
};

/// The shared reproducibility flag pair of every engine-backed binary.
struct RunOptions {
  std::size_t threads = 0;  ///< 0 = ambient parallelism
  std::uint64_t seed = 0;
};

/// Declares `--threads N` (worker override, 0 = ambient) and `--seed N`
/// on `cli`. Call before Parse.
void AddRunOptions(CliParser& cli, std::uint64_t default_seed);

/// Reads the pair back after Parse and applies the thread override
/// process-wide (util::SetParallelismLevel), so a bench run is
/// reproducible from the command line: same --seed + any --threads =>
/// identical output.
RunOptions ApplyRunOptions(const CliParser& cli);

/// Ignores SIGPIPE for the process. Every CLI binary calls this first:
/// a dead pipe peer (supervisor, `head`, a crashed worker) must surface
/// as a write error the tool can report on stderr and turn into a
/// nonzero exit — not a silent SIGPIPE death that truncates output.
/// No-op on platforms without sigaction.
void IgnoreSigpipe();

/// Flushes std::cout and reports failure. Call before returning from a
/// CLI that streamed results to stdout: returns false (after printing
/// "<tool>: error: writing to stdout failed (broken pipe?)" to stderr)
/// when the flush fails, so the tool can exit nonzero instead of
/// pretending the truncated output was complete.
[[nodiscard]] bool FlushStdout(const char* tool);

}  // namespace mobipriv::util
