#include "util/string_utils.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace mobipriv::util {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && is_space(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.starts_with(prefix);
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.ends_with(suffix);
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::optional<double> ParseDouble(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  double value = 0.0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::optional<std::int64_t> ParseInt(std::string_view text) {
  text = Trim(text);
  if (text.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc() || ptr != end) return std::nullopt;
  return value;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string ToHex(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

}  // namespace mobipriv::util
