// Shared worker pool and chunked parallel-for, the execution substrate of
// every batch stage (mechanisms, attacks, metrics).
//
// Design constraints, in priority order:
//   1. *Determinism*: ParallelFor never decides anything the result can
//      depend on. Callers pre-split work into index ranges and write results
//      into pre-sized slots, so the output is byte-identical whatever the
//      worker count (including 1, i.e. fully serial).
//   2. *No oversubscription*: one process-wide pool, created lazily; nested
//      ParallelFor calls run inline on the calling worker instead of
//      deadlocking or spawning more threads.
//   3. *Zero cost when serial*: with an effective parallelism of 1 (single
//      core, MOBIPRIV_THREADS=1 or ScopedParallelism(1)) ParallelFor is a
//      plain loop — no pool, no atomics, no thread hop.
//
// The effective parallelism is, in decreasing precedence:
//   SetParallelismLevel(n) / ScopedParallelism  >  MOBIPRIV_THREADS  >
//   std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mobipriv::util {

/// Fixed-size worker pool. Most code should use ParallelFor instead; the
/// pool is exposed for long-lived background jobs (future streaming ingest).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Process-wide pool, created on first use with as many workers as the
  /// machine offers (capped by MOBIPRIV_THREADS when set).
  static ThreadPool& Global();

  void Submit(std::function<void()> task);

  [[nodiscard]] std::size_t WorkerCount() const noexcept {
    return workers_.size();
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Effective parallelism ParallelFor will use (>= 1).
[[nodiscard]] std::size_t ParallelismLevel() noexcept;

/// Overrides the effective parallelism. 0 restores the default
/// (MOBIPRIV_THREADS or hardware concurrency). Values are clamped to the
/// global pool size + 1 (the caller participates).
void SetParallelismLevel(std::size_t n) noexcept;

/// Raw override as set by SetParallelismLevel (0 = no override). Unlike
/// ParallelismLevel() this never clamps and never constructs the pool.
[[nodiscard]] std::size_t ParallelismOverride() noexcept;

/// RAII parallelism override, for tests and serial-vs-parallel comparisons.
class ScopedParallelism {
 public:
  explicit ScopedParallelism(std::size_t n) noexcept
      : previous_(ParallelismOverride()) {
    SetParallelismLevel(n);
  }
  ~ScopedParallelism() { SetParallelismLevel(previous_); }
  ScopedParallelism(const ScopedParallelism&) = delete;
  ScopedParallelism& operator=(const ScopedParallelism&) = delete;

 private:
  std::size_t previous_;
};

/// Runs body(begin, end) over disjoint chunks covering [0, n), using the
/// calling thread plus global-pool workers. Chunks are claimed dynamically
/// (atomic counter) for load balance; `grain` is the minimum chunk size
/// (0 = pick automatically). The call returns after every index is
/// processed; the first exception thrown by any chunk is rethrown on the
/// caller. Nested calls (from inside a chunk body) run inline.
void ParallelFor(std::size_t n,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t grain = 0);

/// Convenience element-wise overload: body(i) for each i in [0, n).
void ParallelForEach(std::size_t n,
                     const std::function<void(std::size_t)>& body,
                     std::size_t grain = 0);

}  // namespace mobipriv::util
