#include "util/csv.h"

#include <cassert>

namespace mobipriv::util {
namespace {

/// Returns true if the field must be quoted when written.
bool NeedsQuoting(std::string_view field, char delimiter) {
  for (const char c : field) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

CsvReader::CsvReader(std::istream& in, char delimiter)
    : in_(in), delimiter_(delimiter) {}

bool CsvReader::ReadRow(CsvRow& row) {
  row.clear();
  std::string field;
  bool in_quotes = false;
  bool saw_any_char = false;
  int c = 0;
  while ((c = in_.get()) != std::char_traits<char>::eof()) {
    saw_any_char = true;
    const char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (in_.peek() == '"') {
          in_.get();
          field.push_back('"');  // escaped quote
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(ch);
      }
      continue;
    }
    if (ch == '"' && field.empty()) {
      in_quotes = true;
    } else if (ch == delimiter_) {
      row.push_back(std::move(field));
      field.clear();
    } else if (ch == '\n') {
      row.push_back(std::move(field));
      ++rows_read_;
      return true;
    } else if (ch == '\r') {
      // Swallow \r of \r\n; a lone \r also terminates the record.
      if (in_.peek() == '\n') in_.get();
      row.push_back(std::move(field));
      ++rows_read_;
      return true;
    } else {
      field.push_back(ch);
    }
  }
  if (!saw_any_char) return false;
  // Final record without trailing newline.
  row.push_back(std::move(field));
  ++rows_read_;
  return true;
}

CsvRow ParseCsvLine(std::string_view line, char delimiter) {
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(ch);
      }
    } else if (ch == '"' && field.empty()) {
      in_quotes = true;
    } else if (ch == delimiter) {
      row.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(ch);
    }
  }
  row.push_back(std::move(field));
  return row;
}

CsvWriter::CsvWriter(std::ostream& out, char delimiter)
    : out_(out), delimiter_(delimiter) {}

void CsvWriter::WriteField(std::string_view field) {
  if (!NeedsQuoting(field, delimiter_)) {
    out_ << field;
    return;
  }
  out_ << '"';
  for (const char c : field) {
    if (c == '"') out_ << '"';
    out_ << c;
  }
  out_ << '"';
}

void CsvWriter::WriteRow(const CsvRow& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out_ << delimiter_;
    WriteField(row[i]);
  }
  out_ << '\n';
}

void CsvWriter::WriteRow(std::initializer_list<std::string_view> fields) {
  bool first = true;
  for (const auto field : fields) {
    if (!first) out_ << delimiter_;
    first = false;
    WriteField(field);
  }
  out_ << '\n';
}

}  // namespace mobipriv::util
