// Portable 4-wide f64 SIMD shim: one vector type, three backends.
//
// Backend selection is a compile-time choice:
//   * MOBIPRIV_SIMD_FORCE_SCALAR (CMake -DMOBIPRIV_SIMD=off) -> scalar,
//     the always-correct reference backend used by the parity CI job;
//   * __AVX2__ && __FMA__ (CMake -DMOBIPRIV_SIMD=auto on x86-64 hosts
//     that pass the configure-time run check) -> AVX2;
//   * __aarch64__ && __ARM_NEON -> NEON (two float64x2_t halves);
//   * anything else -> scalar.
//
// SEMANTICS ARE DEFINED BY THE SCALAR BACKEND and every vector backend
// must match it lane for lane, bit for bit:
//   * arithmetic (+, -, *, /, Sqrt, Floor) is IEEE-754 correctly rounded
//     on every backend, so lanes are bitwise equal to the same scalar
//     expression — the property every bit-identity kernel contract in
//     docs/PERFORMANCE.md rests on;
//   * Fma is a TRUE fused multiply-add (single rounding, std::fma /
//     vfmadd / vfma). It does NOT equal a*b+c computed with two
//     roundings, so bit-identity kernels must not use it; it is reserved
//     for kernels with a documented ULP-tolerance contract;
//   * Min/Max use the x86 ordering semantics `(a < b) ? a : b` — the
//     SECOND operand wins on a NaN compare and on equal-valued signed
//     zeros — which the NEON backend replicates with an explicit select
//     (vminq/vmaxq would propagate NaN instead);
//   * comparisons produce full-width lane masks (all-ones / all-zeros)
//     with quiet (non-signaling) NaN handling: any comparison involving
//     NaN is false, exactly like the scalar <, <=, == operators;
//   * Select is a full bitwise blend, so it is only meaningful on masks
//     produced by the comparison ops (matching _mm256_blendv_pd, whose
//     sign-bit selection coincides with bitwise selection for such
//     masks, and NEON vbsl).
//
// The whole shim is header-only and allocation-free; tests/test_simd.cpp
// pins every op against the scalar reference over edge values (signed
// zeros, denormals, NaN, infinities).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>

#if !defined(MOBIPRIV_SIMD_FORCE_SCALAR) && defined(__AVX2__) && \
    defined(__FMA__)
#define MOBIPRIV_SIMD_AVX2 1
#include <immintrin.h>
#elif !defined(MOBIPRIV_SIMD_FORCE_SCALAR) && defined(__aarch64__) && \
    defined(__ARM_NEON)
#define MOBIPRIV_SIMD_NEON 1
#include <arm_neon.h>
#else
#define MOBIPRIV_SIMD_SCALAR 1
#endif

namespace mobipriv::util {

/// Lane count of the shim's vector type (fixed: NEON runs two 2-wide
/// halves so every backend presents the same 4-wide shape).
inline constexpr int kSimdWidth = 4;

/// Human-readable name of the compiled backend, surfaced by tests, bench
/// context and docs tooling.
inline constexpr const char* kSimdBackend =
#if defined(MOBIPRIV_SIMD_AVX2)
    "avx2";
#elif defined(MOBIPRIV_SIMD_NEON)
    "neon";
#else
    "scalar";
#endif

/// True when a vector ISA backend (not the scalar fallback) is compiled in.
inline constexpr bool kSimdEnabled =
#if defined(MOBIPRIV_SIMD_SCALAR)
    false;
#else
    true;
#endif

/// 4 lanes of f64. Value type: pass and return by value.
struct F64x4 {
#if defined(MOBIPRIV_SIMD_AVX2)
  __m256d v;
#elif defined(MOBIPRIV_SIMD_NEON)
  float64x2_t lo, hi;
#else
  double lane_[4];
#endif

  /// Unaligned load of 4 consecutive doubles.
  [[nodiscard]] static F64x4 Load(const double* p) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
    return {_mm256_loadu_pd(p)};
#elif defined(MOBIPRIV_SIMD_NEON)
    return {vld1q_f64(p), vld1q_f64(p + 2)};
#else
    return {{p[0], p[1], p[2], p[3]}};
#endif
  }

  /// All four lanes = x.
  [[nodiscard]] static F64x4 Set1(double x) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
    return {_mm256_set1_pd(x)};
#elif defined(MOBIPRIV_SIMD_NEON)
    return {vdupq_n_f64(x), vdupq_n_f64(x)};
#else
    return {{x, x, x, x}};
#endif
  }

  /// Lanes (a, b, c, d) — a is lane 0.
  [[nodiscard]] static F64x4 Set(double a, double b, double c,
                                 double d) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
    return {_mm256_setr_pd(a, b, c, d)};
#elif defined(MOBIPRIV_SIMD_NEON)
    const double lo2[2] = {a, b};
    const double hi2[2] = {c, d};
    return {vld1q_f64(lo2), vld1q_f64(hi2)};
#else
    return {{a, b, c, d}};
#endif
  }

  /// Unaligned store of the 4 lanes.
  void Store(double* p) const noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
    _mm256_storeu_pd(p, v);
#elif defined(MOBIPRIV_SIMD_NEON)
    vst1q_f64(p, lo);
    vst1q_f64(p + 2, hi);
#else
    p[0] = lane_[0];
    p[1] = lane_[1];
    p[2] = lane_[2];
    p[3] = lane_[3];
#endif
  }

  /// Lane i (0..3). Not a hot-path primitive — spill via Store in loops.
  [[nodiscard]] double Lane(int i) const noexcept {
    double tmp[4];
    Store(tmp);
    return tmp[i];
  }

  friend F64x4 operator+(F64x4 a, F64x4 b) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
    return {_mm256_add_pd(a.v, b.v)};
#elif defined(MOBIPRIV_SIMD_NEON)
    return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
#else
    return {{a.lane_[0] + b.lane_[0], a.lane_[1] + b.lane_[1],
             a.lane_[2] + b.lane_[2], a.lane_[3] + b.lane_[3]}};
#endif
  }

  friend F64x4 operator-(F64x4 a, F64x4 b) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
    return {_mm256_sub_pd(a.v, b.v)};
#elif defined(MOBIPRIV_SIMD_NEON)
    return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
#else
    return {{a.lane_[0] - b.lane_[0], a.lane_[1] - b.lane_[1],
             a.lane_[2] - b.lane_[2], a.lane_[3] - b.lane_[3]}};
#endif
  }

  friend F64x4 operator*(F64x4 a, F64x4 b) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
    return {_mm256_mul_pd(a.v, b.v)};
#elif defined(MOBIPRIV_SIMD_NEON)
    return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
#else
    return {{a.lane_[0] * b.lane_[0], a.lane_[1] * b.lane_[1],
             a.lane_[2] * b.lane_[2], a.lane_[3] * b.lane_[3]}};
#endif
  }

  friend F64x4 operator/(F64x4 a, F64x4 b) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
    return {_mm256_div_pd(a.v, b.v)};
#elif defined(MOBIPRIV_SIMD_NEON)
    return {vdivq_f64(a.lo, b.lo), vdivq_f64(a.hi, b.hi)};
#else
    return {{a.lane_[0] / b.lane_[0], a.lane_[1] / b.lane_[1],
             a.lane_[2] / b.lane_[2], a.lane_[3] / b.lane_[3]}};
#endif
  }
};

/// a*b + c with a SINGLE rounding (true fused multiply-add on every
/// backend). NOT bit-equal to a*b+c — reserve for ULP-contract kernels.
[[nodiscard]] inline F64x4 Fma(F64x4 a, F64x4 b, F64x4 c) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
  return {_mm256_fmadd_pd(a.v, b.v, c.v)};
#elif defined(MOBIPRIV_SIMD_NEON)
  return {vfmaq_f64(c.lo, a.lo, b.lo), vfmaq_f64(c.hi, a.hi, b.hi)};
#else
  return {{std::fma(a.lane_[0], b.lane_[0], c.lane_[0]),
           std::fma(a.lane_[1], b.lane_[1], c.lane_[1]),
           std::fma(a.lane_[2], b.lane_[2], c.lane_[2]),
           std::fma(a.lane_[3], b.lane_[3], c.lane_[3])}};
#endif
}

/// Correctly-rounded square root (bit-equal to std::sqrt per lane).
[[nodiscard]] inline F64x4 Sqrt(F64x4 a) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
  return {_mm256_sqrt_pd(a.v)};
#elif defined(MOBIPRIV_SIMD_NEON)
  return {vsqrtq_f64(a.lo), vsqrtq_f64(a.hi)};
#else
  return {{std::sqrt(a.lane_[0]), std::sqrt(a.lane_[1]),
           std::sqrt(a.lane_[2]), std::sqrt(a.lane_[3])}};
#endif
}

/// Round toward -infinity (exact; bit-equal to std::floor per lane).
[[nodiscard]] inline F64x4 Floor(F64x4 a) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
  return {_mm256_floor_pd(a.v)};
#elif defined(MOBIPRIV_SIMD_NEON)
  return {vrndmq_f64(a.lo), vrndmq_f64(a.hi)};
#else
  return {{std::floor(a.lane_[0]), std::floor(a.lane_[1]),
           std::floor(a.lane_[2]), std::floor(a.lane_[3])}};
#endif
}

/// Sign-bit clear (bit-equal to std::fabs per lane, including on NaN).
[[nodiscard]] inline F64x4 Abs(F64x4 a) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
  return {_mm256_andnot_pd(_mm256_set1_pd(-0.0), a.v)};
#elif defined(MOBIPRIV_SIMD_NEON)
  return {vabsq_f64(a.lo), vabsq_f64(a.hi)};
#else
  return {{std::fabs(a.lane_[0]), std::fabs(a.lane_[1]),
           std::fabs(a.lane_[2]), std::fabs(a.lane_[3])}};
#endif
}

/// x86 minimum semantics: (a < b) ? a : b per lane — b wins on NaN and
/// on equal values (so Min(+0, -0) is -0 but Min(-0, +0) is +0).
[[nodiscard]] inline F64x4 Min(F64x4 a, F64x4 b) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
  return {_mm256_min_pd(a.v, b.v)};
#elif defined(MOBIPRIV_SIMD_NEON)
  return {vbslq_f64(vcltq_f64(a.lo, b.lo), a.lo, b.lo),
          vbslq_f64(vcltq_f64(a.hi, b.hi), a.hi, b.hi)};
#else
  return {{a.lane_[0] < b.lane_[0] ? a.lane_[0] : b.lane_[0],
           a.lane_[1] < b.lane_[1] ? a.lane_[1] : b.lane_[1],
           a.lane_[2] < b.lane_[2] ? a.lane_[2] : b.lane_[2],
           a.lane_[3] < b.lane_[3] ? a.lane_[3] : b.lane_[3]}};
#endif
}

/// x86 maximum semantics: (a > b) ? a : b per lane (see Min).
[[nodiscard]] inline F64x4 Max(F64x4 a, F64x4 b) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
  return {_mm256_max_pd(a.v, b.v)};
#elif defined(MOBIPRIV_SIMD_NEON)
  return {vbslq_f64(vcgtq_f64(a.lo, b.lo), a.lo, b.lo),
          vbslq_f64(vcgtq_f64(a.hi, b.hi), a.hi, b.hi)};
#else
  return {{a.lane_[0] > b.lane_[0] ? a.lane_[0] : b.lane_[0],
           a.lane_[1] > b.lane_[1] ? a.lane_[1] : b.lane_[1],
           a.lane_[2] > b.lane_[2] ? a.lane_[2] : b.lane_[2],
           a.lane_[3] > b.lane_[3] ? a.lane_[3] : b.lane_[3]}};
#endif
}

namespace simd_detail {
/// Scalar predicate result -> full-width lane mask.
[[nodiscard]] inline double MaskOf(bool p) noexcept {
  std::uint64_t bits = p ? ~std::uint64_t{0} : std::uint64_t{0};
  double out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}
}  // namespace simd_detail

/// Lane mask of a <= b (quiet: NaN compares false).
[[nodiscard]] inline F64x4 CmpLe(F64x4 a, F64x4 b) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LE_OQ)};
#elif defined(MOBIPRIV_SIMD_NEON)
  return {vreinterpretq_f64_u64(vcleq_f64(a.lo, b.lo)),
          vreinterpretq_f64_u64(vcleq_f64(a.hi, b.hi))};
#else
  using simd_detail::MaskOf;
  return {{MaskOf(a.lane_[0] <= b.lane_[0]), MaskOf(a.lane_[1] <= b.lane_[1]),
           MaskOf(a.lane_[2] <= b.lane_[2]),
           MaskOf(a.lane_[3] <= b.lane_[3])}};
#endif
}

/// Lane mask of a < b (quiet: NaN compares false).
[[nodiscard]] inline F64x4 CmpLt(F64x4 a, F64x4 b) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
  return {_mm256_cmp_pd(a.v, b.v, _CMP_LT_OQ)};
#elif defined(MOBIPRIV_SIMD_NEON)
  return {vreinterpretq_f64_u64(vcltq_f64(a.lo, b.lo)),
          vreinterpretq_f64_u64(vcltq_f64(a.hi, b.hi))};
#else
  using simd_detail::MaskOf;
  return {{MaskOf(a.lane_[0] < b.lane_[0]), MaskOf(a.lane_[1] < b.lane_[1]),
           MaskOf(a.lane_[2] < b.lane_[2]), MaskOf(a.lane_[3] < b.lane_[3])}};
#endif
}

/// Lane mask of a >= b (quiet: NaN compares false).
[[nodiscard]] inline F64x4 CmpGe(F64x4 a, F64x4 b) noexcept {
  return CmpLe(b, a);
}

/// Bitwise AND — combine lane masks.
[[nodiscard]] inline F64x4 And(F64x4 a, F64x4 b) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
  return {_mm256_and_pd(a.v, b.v)};
#elif defined(MOBIPRIV_SIMD_NEON)
  return {vreinterpretq_f64_u64(vandq_u64(vreinterpretq_u64_f64(a.lo),
                                          vreinterpretq_u64_f64(b.lo))),
          vreinterpretq_f64_u64(vandq_u64(vreinterpretq_u64_f64(a.hi),
                                          vreinterpretq_u64_f64(b.hi)))};
#else
  F64x4 out;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t x, y;
    std::memcpy(&x, &a.lane_[i], sizeof(x));
    std::memcpy(&y, &b.lane_[i], sizeof(y));
    x &= y;
    std::memcpy(&out.lane_[i], &x, sizeof(x));
  }
  return out;
#endif
}

/// Bitwise OR — combine lane masks.
[[nodiscard]] inline F64x4 Or(F64x4 a, F64x4 b) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
  return {_mm256_or_pd(a.v, b.v)};
#elif defined(MOBIPRIV_SIMD_NEON)
  return {vreinterpretq_f64_u64(vorrq_u64(vreinterpretq_u64_f64(a.lo),
                                          vreinterpretq_u64_f64(b.lo))),
          vreinterpretq_f64_u64(vorrq_u64(vreinterpretq_u64_f64(a.hi),
                                          vreinterpretq_u64_f64(b.hi)))};
#else
  F64x4 out;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t x, y;
    std::memcpy(&x, &a.lane_[i], sizeof(x));
    std::memcpy(&y, &b.lane_[i], sizeof(y));
    x |= y;
    std::memcpy(&out.lane_[i], &x, sizeof(x));
  }
  return out;
#endif
}

/// Full bitwise blend: lane = (mask & a) | (~mask & b). Use only with
/// masks produced by the comparison ops (all-ones / all-zeros lanes).
[[nodiscard]] inline F64x4 Select(F64x4 mask, F64x4 a, F64x4 b) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
  return {_mm256_blendv_pd(b.v, a.v, mask.v)};
#elif defined(MOBIPRIV_SIMD_NEON)
  return {vbslq_f64(vreinterpretq_u64_f64(mask.lo), a.lo, b.lo),
          vbslq_f64(vreinterpretq_u64_f64(mask.hi), a.hi, b.hi)};
#else
  F64x4 out;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t m, x, y;
    std::memcpy(&m, &mask.lane_[i], sizeof(m));
    std::memcpy(&x, &a.lane_[i], sizeof(x));
    std::memcpy(&y, &b.lane_[i], sizeof(y));
    const std::uint64_t r = (m & x) | (~m & y);
    std::memcpy(&out.lane_[i], &r, sizeof(r));
  }
  return out;
#endif
}

/// 4-bit sign mask: bit i set iff lane i's sign bit is set. On compare
/// results: bit i set iff lane i's predicate held.
[[nodiscard]] inline int MoveMask(F64x4 a) noexcept {
#if defined(MOBIPRIV_SIMD_AVX2)
  return _mm256_movemask_pd(a.v);
#elif defined(MOBIPRIV_SIMD_NEON)
  const uint64x2_t lo = vshrq_n_u64(vreinterpretq_u64_f64(a.lo), 63);
  const uint64x2_t hi = vshrq_n_u64(vreinterpretq_u64_f64(a.hi), 63);
  return static_cast<int>(vgetq_lane_u64(lo, 0)) |
         (static_cast<int>(vgetq_lane_u64(lo, 1)) << 1) |
         (static_cast<int>(vgetq_lane_u64(hi, 0)) << 2) |
         (static_cast<int>(vgetq_lane_u64(hi, 1)) << 3);
#else
  int mask = 0;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &a.lane_[i], sizeof(bits));
    mask |= static_cast<int>(bits >> 63) << i;
  }
  return mask;
#endif
}

/// Gather 4 lanes from anything indexable by operator[] (StridedSpan,
/// TraceView column accessors via a lambda-free call site) — the strided
/// (AoS) load form of the kernels; contiguous columns use Load.
template <typename Indexable>
[[nodiscard]] inline F64x4 GatherAt(const Indexable& v,
                                    std::size_t i) noexcept {
  return F64x4::Set(v[i], v[i + 1], v[i + 2], v[i + 3]);
}

}  // namespace mobipriv::util
