#include "mechanisms/registry.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>

// The "ours" pipeline is assembled in core/ (it composes two mech/ stages
// and owns the shard-wise run logic), but its Name() must round-trip
// through this registry like every baseline's, so the registry reaches up
// one layer for the one composite the paper is about.
#include "core/anonymizer.h"
#include "mechanisms/chain.h"
#include "mechanisms/cloaking.h"
#include "mechanisms/downsampling.h"
#include "mechanisms/gaussian_noise.h"
#include "mechanisms/geo_indistinguishability.h"
#include "mechanisms/identity.h"
#include "mechanisms/mixzone.h"
#include "mechanisms/speed_smoothing.h"
#include "mechanisms/wait4me.h"

namespace mobipriv::mech {
namespace {

struct Registry {
  std::mutex mutex;
  std::map<std::string, MechanismFactory, std::less<>> factories;
};

void FillSpeedConfig(const util::Spec& spec, SpeedSmoothingConfig& config) {
  config.spacing_m = spec.NumberOf("eps", config.spacing_m);
  config.min_length_m = spec.NumberOf("min_len", config.min_length_m);
}

void FillMixZoneConfig(const util::Spec& spec, MixZoneConfig& config) {
  config.zone_radius_m = spec.NumberOf("r", config.zone_radius_m);
  config.time_window_s = static_cast<util::Timestamp>(
      spec.IntOf("w", config.time_window_s));
  config.min_users = static_cast<std::size_t>(
      spec.IntOf("min_users", static_cast<std::int64_t>(config.min_users)));
  config.suppress_zone_points =
      spec.IntOf("suppress", config.suppress_zone_points ? 1 : 0) != 0;
}

/// "ours[...]": the bracket body is stage flags joined by '+'
/// ("speed+mix", "speed", "mix") plus optional stage parameters. Stage
/// knobs reuse the stage mechanisms' parameter names (eps/min_len for
/// speed smoothing, r/w/min_users for mix zones).
std::unique_ptr<Mechanism> MakeOurs(const util::Spec& spec) {
  core::AnonymizerConfig config;
  bool speed = false;
  bool mix = false;
  bool any_flag = false;
  for (const util::Spec::Entry& entry : spec.entries()) {
    if (entry.has_value) continue;
    any_flag = true;
    std::stringstream tokens(entry.key);
    std::string token;
    while (std::getline(tokens, token, '+')) {
      if (token == "speed") {
        speed = true;
      } else if (token == "mix") {
        mix = true;
      } else {
        throw util::SpecError("ours: unknown stage \"" + token +
                              "\" (expected speed and/or mix)");
      }
    }
  }
  // Bare "ours" means the full pipeline.
  config.enable_speed_smoothing = !any_flag || speed;
  config.enable_mixzones = !any_flag || mix;
  for (const util::Spec::Entry& entry : spec.entries()) {
    if (!entry.has_value) continue;
    static constexpr std::string_view kKnown[] = {"eps", "min_len", "r", "w",
                                                  "min_users", "suppress"};
    if (std::find(std::begin(kKnown), std::end(kKnown), entry.key) ==
        std::end(kKnown)) {
      throw util::SpecError("ours: unknown parameter \"" + entry.key + "\"");
    }
  }
  FillSpeedConfig(spec, config.speed);
  FillMixZoneConfig(spec, config.mixzone);
  return std::make_unique<core::Anonymizer>(config);
}

Registry& GlobalRegistry() {
  static Registry* registry = [] {
    auto* r = new Registry();
    auto& f = r->factories;
    f["identity"] = [](const util::Spec& spec) -> std::unique_ptr<Mechanism> {
      spec.RequireKnownKeys({}, "identity");
      return std::make_unique<Identity>();
    };
    f["speed_smoothing"] =
        [](const util::Spec& spec) -> std::unique_ptr<Mechanism> {
      spec.RequireKnownKeys({"eps", "min_len"}, "speed_smoothing");
      SpeedSmoothingConfig config;
      FillSpeedConfig(spec, config);
      return std::make_unique<SpeedSmoothing>(config);
    };
    f["mixzone"] = [](const util::Spec& spec) -> std::unique_ptr<Mechanism> {
      spec.RequireKnownKeys({"r", "w", "min_users", "suppress"}, "mixzone");
      MixZoneConfig config;
      FillMixZoneConfig(spec, config);
      return std::make_unique<MixZone>(config);
    };
    f["geo_ind"] = [](const util::Spec& spec) -> std::unique_ptr<Mechanism> {
      spec.RequireKnownKeys({"eps"}, "geo_ind");
      GeoIndConfig config;
      config.epsilon = spec.NumberOf("eps", config.epsilon);
      return std::make_unique<GeoIndistinguishability>(config);
    };
    f["wait4me"] = [](const util::Spec& spec) -> std::unique_ptr<Mechanism> {
      spec.RequireKnownKeys({"k", "delta", "grid", "overlap"}, "wait4me");
      Wait4MeConfig config;
      config.k = static_cast<std::size_t>(
          spec.IntOf("k", static_cast<std::int64_t>(config.k)));
      config.delta_m = spec.NumberOf("delta", config.delta_m);
      config.grid_step_s =
          static_cast<util::Timestamp>(spec.IntOf("grid", config.grid_step_s));
      config.min_overlap_fraction =
          spec.NumberOf("overlap", config.min_overlap_fraction);
      return std::make_unique<Wait4Me>(config);
    };
    f["cloaking"] = [](const util::Spec& spec) -> std::unique_ptr<Mechanism> {
      spec.RequireKnownKeys({"cell"}, "cloaking");
      CloakingConfig config;
      config.cell_size_m = spec.NumberOf("cell", config.cell_size_m);
      return std::make_unique<Cloaking>(config);
    };
    f["gaussian"] = [](const util::Spec& spec) -> std::unique_ptr<Mechanism> {
      spec.RequireKnownKeys({"sigma"}, "gaussian");
      GaussianNoiseConfig config;
      config.sigma_m = spec.NumberOf("sigma", config.sigma_m);
      return std::make_unique<GaussianNoise>(config);
    };
    f["downsampling"] =
        [](const util::Spec& spec) -> std::unique_ptr<Mechanism> {
      spec.RequireKnownKeys({"dt"}, "downsampling");
      DownsamplingConfig config;
      config.min_interval_s = static_cast<util::Timestamp>(
          spec.IntOf("dt", config.min_interval_s));
      return std::make_unique<Downsampling>(config);
    };
    f["ours"] = MakeOurs;
    return r;
  }();
  return *registry;
}

}  // namespace

void RegisterMechanism(std::string base, MechanismFactory factory) {
  Registry& registry = GlobalRegistry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  registry.factories[std::move(base)] = std::move(factory);
}

std::unique_ptr<Mechanism> CreateMechanism(std::string_view spec_text) {
  // Chain texts ("a[...]|b") dispatch before Spec::Parse: '|' is a chain
  // separator only at the top level, and a single Spec has no stage list.
  if (util::SplitTopLevel(spec_text, '|').size() > 1) {
    return CreateChain(spec_text);
  }
  const util::Spec spec = util::Spec::Parse(spec_text);
  MechanismFactory factory;
  {
    Registry& registry = GlobalRegistry();
    const std::lock_guard<std::mutex> lock(registry.mutex);
    const auto it = registry.factories.find(spec.base());
    if (it == registry.factories.end()) {
      std::string known;
      for (const auto& [base, unused] : registry.factories) {
        if (!known.empty()) known += ", ";
        known += base;
      }
      throw util::SpecError("unknown mechanism \"" + spec.base() +
                            "\" (registered: " + known + ")");
    }
    factory = it->second;
  }
  return factory(spec);
}

std::vector<std::string> RegisteredMechanismBases() {
  Registry& registry = GlobalRegistry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::string> bases;
  bases.reserve(registry.factories.size());
  for (const auto& [base, unused] : registry.factories) bases.push_back(base);
  return bases;
}

}  // namespace mobipriv::mech
