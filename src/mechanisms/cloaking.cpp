#include "mechanisms/cloaking.h"

#include <cassert>
#include <cmath>

#include "geo/projection.h"
#include "util/string_utils.h"

namespace mobipriv::mech {

Cloaking::Cloaking(CloakingConfig config) : config_(config) {
  assert(config_.cell_size_m > 0.0);
}

std::string Cloaking::Name() const {
  return "cloaking[cell=" + util::FormatDouble(config_.cell_size_m, 0) + "m]";
}

void Cloaking::ApplyToTraceColumns(const model::TraceView& trace,
                                   model::TraceBuffer& out,
                                   util::Rng& rng) const {
  (void)rng;
  if (trace.empty()) return;
  const geo::LocalProjection projection(trace.BoundingBox().Center());
  const double cell = config_.cell_size_m;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const geo::Point2 p = projection.Project(trace.position(i));
    const geo::Point2 snapped{
        (std::floor(p.x / cell) + 0.5) * cell,
        (std::floor(p.y / cell) + 0.5) * cell};
    out.Append(projection.Unproject(snapped), trace.time(i));
  }
}

model::Trace Cloaking::ApplyToTrace(const model::Trace& trace,
                                    util::Rng& rng) const {
  return ApplyToTraceViaColumns(trace, rng);
}

}  // namespace mobipriv::mech
