#include "mechanisms/cloaking.h"

#include <cassert>
#include <cmath>

#include "geo/projection.h"
#include "util/simd.h"
#include "util/string_utils.h"

namespace mobipriv::mech {

Cloaking::Cloaking(CloakingConfig config) : config_(config) {
  assert(config_.cell_size_m > 0.0);
}

std::string Cloaking::Name() const {
  return "cloaking[cell=" + util::FormatDouble(config_.cell_size_m, 0) + "m]";
}

void Cloaking::ApplyToTraceColumns(const model::TraceView& trace,
                                   model::TraceBuffer& out,
                                   util::Rng& rng) const {
  (void)rng;
  if (trace.empty()) return;
  const geo::LocalProjection projection(trace.BoundingBox().Center());
  const double cell = config_.cell_size_m;
  const std::size_t n = trace.size();
  const auto rows = out.Extend(n);
  using util::F64x4;
  // Vector body: project, snap to cell centre, unproject — 4 fixes per
  // step, every operation correctly rounded in the scalar op order, so
  // lanes are bit-identical to the scalar tail below (and to the
  // pre-vectorization kernel).
  const F64x4 vcell = F64x4::Set1(cell);
  const F64x4 vhalf = F64x4::Set1(0.5);
  std::size_t i = 0;
  for (; i + util::kSimdWidth <= n; i += util::kSimdWidth) {
    const F64x4 lat = F64x4::Set(trace.lat(i), trace.lat(i + 1),
                                 trace.lat(i + 2), trace.lat(i + 3));
    const F64x4 lng = F64x4::Set(trace.lng(i), trace.lng(i + 1),
                                 trace.lng(i + 2), trace.lng(i + 3));
    F64x4 x, y;
    projection.Project4(lat, lng, x, y);
    x = (util::Floor(x / vcell) + vhalf) * vcell;
    y = (util::Floor(y / vcell) + vhalf) * vcell;
    F64x4 olat, olng;
    projection.Unproject4(x, y, olat, olng);
    olat.Store(rows.lat + i);
    olng.Store(rows.lng + i);
    rows.time[i] = trace.time(i);
    rows.time[i + 1] = trace.time(i + 1);
    rows.time[i + 2] = trace.time(i + 2);
    rows.time[i + 3] = trace.time(i + 3);
  }
  for (; i < n; ++i) {
    const geo::Point2 p = projection.Project(trace.position(i));
    const geo::Point2 snapped{(std::floor(p.x / cell) + 0.5) * cell,
                              (std::floor(p.y / cell) + 0.5) * cell};
    const geo::LatLng q = projection.Unproject(snapped);
    rows.lat[i] = q.lat;
    rows.lng[i] = q.lng;
    rows.time[i] = trace.time(i);
  }
}

model::Trace Cloaking::ApplyToTrace(const model::Trace& trace,
                                    util::Rng& rng) const {
  return ApplyToTraceViaColumns(trace, rng);
}

}  // namespace mobipriv::mech
