#include "mechanisms/cloaking.h"

#include <cassert>
#include <cmath>

#include "geo/projection.h"
#include "util/string_utils.h"

namespace mobipriv::mech {

Cloaking::Cloaking(CloakingConfig config) : config_(config) {
  assert(config_.cell_size_m > 0.0);
}

std::string Cloaking::Name() const {
  return "cloaking[cell=" + util::FormatDouble(config_.cell_size_m, 0) + "m]";
}

model::Trace Cloaking::ApplyToTrace(const model::Trace& trace,
                                    util::Rng& rng) const {
  (void)rng;
  model::Trace out;
  out.set_user(trace.user());
  if (trace.empty()) return out;
  const geo::LocalProjection projection(trace.BoundingBox().Center());
  const double cell = config_.cell_size_m;
  for (const auto& event : trace) {
    const geo::Point2 p = projection.Project(event.position);
    const geo::Point2 snapped{
        (std::floor(p.x / cell) + 0.5) * cell,
        (std::floor(p.y / cell) + 0.5) * cell};
    out.Append(model::Event{projection.Unproject(snapped), event.time});
  }
  return out;
}

}  // namespace mobipriv::mech
