#include "mechanisms/identity.h"

namespace mobipriv::mech {

model::Dataset Identity::Apply(const model::Dataset& input,
                               util::Rng& rng) const {
  (void)rng;
  return input.Clone();
}

}  // namespace mobipriv::mech
