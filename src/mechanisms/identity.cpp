#include "mechanisms/identity.h"

namespace mobipriv::mech {

model::Dataset Identity::Apply(const model::Dataset& input,
                               util::Rng& rng) const {
  (void)rng;
  return input.Clone();
}

model::EventStore Identity::ApplyToStore(const model::DatasetView& input,
                                         util::Rng& rng) const {
  (void)rng;
  const auto& traces = input.traces();
  std::size_t total = 0;
  for (const model::TraceView& t : traces) total += t.size();

  std::vector<double> lat;
  std::vector<double> lng;
  std::vector<util::Timestamp> time;
  lat.reserve(total);
  lng.reserve(total);
  time.reserve(total);
  std::vector<model::EventStore::TraceRange> table;
  table.reserve(traces.size());
  for (const model::TraceView& t : traces) {
    const std::size_t begin = time.size();
    for (std::size_t i = 0; i < t.size(); ++i) {
      lat.push_back(t.lat(i));
      lng.push_back(t.lng(i));
      time.push_back(t.time(i));
    }
    table.push_back(
        model::EventStore::TraceRange{t.user(), begin, time.size()});
  }
  std::vector<std::string> names;
  names.reserve(input.UserCount());
  for (model::UserId id = 0;
       id < static_cast<model::UserId>(input.UserCount()); ++id) {
    names.push_back(input.UserName(id));
  }
  return model::EventStore::FromColumns(std::move(names), std::move(table),
                                        std::move(lat), std::move(lng),
                                        std::move(time));
}

}  // namespace mobipriv::mech
