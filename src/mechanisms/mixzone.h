// Stage 2 of the paper's solution (Section III): mix-zone trajectory
// swapping.
//
// When users naturally meet (public transport, malls, workplaces), the
// meeting area becomes a mix-zone in the sense of Beresford & Stajano [6]:
// a well-delimited disc in which nobody is tracked. The mechanism
//   1. *detects* natural meetings — events of distinct users within
//      `zone_radius_m` of each other within `time_window_s`;
//   2. clusters those encounters into zones (disc of radius zone_radius_m);
//   3. for each zone *occurrence* (a maximal episode during which >= 2 users
//      are simultaneously inside), suppresses every in-zone event and
//      applies a uniformly random permutation to the participants'
//      identities from their zone exit onwards.
// The identity permutation may be the identity permutation — exactly the
// point: an adversary observing entries and exits cannot tell whether a
// swap happened. Zones are never fabricated: only naturally crossing paths
// are used, so no location is distorted (the paper's utility goal); the only
// utility loss is the suppressed in-zone points.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/point2.h"
#include "geo/projection.h"
#include "mechanisms/mechanism.h"

namespace mobipriv::mech {

struct MixZoneConfig {
  /// Zone disc radius, metres ("reasonably small" per the paper).
  double zone_radius_m = 150.0;
  /// Two users' events count as an encounter when within zone_radius_m and
  /// their timestamps differ by at most this window.
  util::Timestamp time_window_s = 600;
  /// Zones need at least this many distinct users per occurrence to mix
  /// (the anonymity-set floor; 2 is the paper's implicit minimum).
  std::size_t min_users = 2;
  /// If false, identities are permuted but in-zone points are kept
  /// (ablation knob; leaks the meeting location — see bench E5).
  bool suppress_zone_points = true;
};

/// One detected zone with its occurrences (for reports and tests).
struct MixZoneInfo {
  geo::Point2 center;  ///< planar, in the dataset projection frame
  double radius_m = 0.0;
  std::size_t occurrences = 0;
  std::size_t max_anonymity_set = 0;  ///< most users mixed in one occurrence
};

/// One zone episode that actually mixed (for uncertainty accounting).
struct OccurrenceInfo {
  std::size_t zone_index = 0;               ///< into MixZoneReport::zones
  std::vector<model::UserId> users;         ///< distinct participants
  bool swapped = false;                     ///< non-identity permutation drawn
};

/// Aggregate outcome of one MixZone application.
struct MixZoneReport {
  std::vector<MixZoneInfo> zones;
  std::vector<OccurrenceInfo> occurrence_details;
  std::size_t encounters = 0;         ///< raw co-location pairs found
  std::size_t occurrences = 0;        ///< zone episodes with >= min_users
  std::size_t swaps_applied = 0;      ///< non-identity permutations drawn
  std::size_t suppressed_events = 0;  ///< points removed inside zones
  std::size_t total_events = 0;       ///< events in the input dataset
  std::vector<std::size_t> anonymity_set_sizes;  ///< one per occurrence

  [[nodiscard]] double SuppressionRatio() const noexcept {
    return total_events == 0
               ? 0.0
               : static_cast<double>(suppressed_events) /
                     static_cast<double>(total_events);
  }
  [[nodiscard]] std::string ToString() const;
};

class MixZone final : public Mechanism {
 public:
  explicit MixZone(MixZoneConfig config = {});

  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] const MixZoneConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] model::Dataset Apply(const model::Dataset& input,
                                     util::Rng& rng) const override;

  /// View-native entry point: detection, clustering and reassembly all run
  /// off the view's columns directly — mmap'd `.mpc` sources and EventStore
  /// outputs feed the detector without a full-dataset materialization.
  [[nodiscard]] model::Dataset ApplyView(const model::DatasetView& input,
                                         util::Rng& rng) const override;

  /// Apply() variant that also returns the detection/swap report.
  [[nodiscard]] model::Dataset ApplyWithReport(const model::Dataset& input,
                                               util::Rng& rng,
                                               MixZoneReport& report) const;

  /// The shared view engine: the AoS entry points wrap this one (viewing
  /// their input zero-copy), so all Dataset-producing paths are
  /// byte-identical by construction.
  [[nodiscard]] model::Dataset ApplyViewWithReport(
      const model::DatasetView& input, util::Rng& rng,
      MixZoneReport& report) const;

  /// SoA-native output: detection, clustering and reassembly run off the
  /// view's columns and the suppressed/cut traces are assembled directly
  /// into EventStore columns — no AoS dataset and no per-trace Event
  /// vectors anywhere between input view and store (the scenario engine's
  /// zero-TraceCopyCount contract). Same rng discipline as Apply: the
  /// store is bit-for-bit EventStore::FromDataset(Apply(...)).
  [[nodiscard]] model::EventStore ApplyToStore(const model::DatasetView& input,
                                               util::Rng& rng) const override;

  /// ApplyToStore variant that also returns the detection/swap report.
  [[nodiscard]] model::EventStore ApplyToStoreWithReport(
      const model::DatasetView& input, util::Rng& rng,
      MixZoneReport& report) const;

  /// Runs detection only (projection + cell-grid encounter scan, steps the
  /// full mechanism shares) and returns the raw encounter count. Cheap
  /// instrumentation surface for benchmarks and tuning — no rng, no
  /// clustering, no output assembly.
  [[nodiscard]] std::size_t CountEncounters(
      const model::DatasetView& input) const;

 private:
  MixZoneConfig config_;
};

}  // namespace mobipriv::mech
