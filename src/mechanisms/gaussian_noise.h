// Independent Gaussian perturbation baseline: isotropic planar noise of
// standard deviation sigma added to every fix. The classical location-
// alteration approach the paper contrasts with (heavy spatial distortion).
#pragma once

#include "mechanisms/mechanism.h"

namespace mobipriv::mech {

struct GaussianNoiseConfig {
  double sigma_m = 100.0;  ///< noise stddev per axis, metres
};

class GaussianNoise final : public PerTraceMechanism {
 public:
  explicit GaussianNoise(GaussianNoiseConfig config = {});

  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] const GaussianNoiseConfig& config() const noexcept {
    return config_;
  }

 protected:
  [[nodiscard]] model::Trace ApplyToTrace(const model::Trace& trace,
                                          util::Rng& rng) const override;
  void ApplyToTraceColumns(const model::TraceView& trace,
                           model::TraceBuffer& out,
                           util::Rng& rng) const override;

 private:
  GaussianNoiseConfig config_;
};

}  // namespace mobipriv::mech
