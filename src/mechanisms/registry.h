// String-keyed mechanism registry: every mechanism in the library (and any
// user-registered extension) can be instantiated from the spec string its
// Name() prints — Name() is round-trippable:
//
//   CreateMechanism(m->Name())->Name() == m->Name()
//
// for every mechanism the library ships. This is what lets an experiment
// grid be *declarative*: a ScenarioSpec names mechanisms as strings
// ("geo_ind[eps=0.0100]", "ours[speed]", "wait4me[k=4,delta=500m]") and
// the engine builds them on demand, replacing the hardcoded roster loops
// the bench binaries used to copy around (core::StandardRoster is now a
// canned list of spec strings over this registry).
//
// Grammar: util::Spec ("base[key=value,...]"; numeric values may carry a
// unit suffix). Spec texts with a top-level '|' are chains
// ("geo_ind[eps=0.1]|downsampling") and build a mech::ChainMechanism that
// applies the stages left to right. Unknown bases and unknown parameters
// throw util::SpecError — a typo'd grid cell fails loudly at compile
// time, not silently at report time.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mechanisms/mechanism.h"
#include "util/spec.h"

namespace mobipriv::mech {

/// Builds a mechanism from a parsed spec. Factories must validate their
/// parameters (util::Spec::RequireKnownKeys) and throw util::SpecError on
/// anything they do not understand.
using MechanismFactory =
    std::function<std::unique_ptr<Mechanism>(const util::Spec&)>;

/// Registers (or replaces) the factory for `base`. The library's own
/// mechanisms are pre-registered; this is the extension point for
/// downstream mechanisms, which then participate in scenario grids like
/// any built-in.
void RegisterMechanism(std::string base, MechanismFactory factory);

/// Instantiates a mechanism from its spec string. Throws util::SpecError
/// on malformed specs, unknown base names or unknown parameters.
[[nodiscard]] std::unique_ptr<Mechanism> CreateMechanism(
    std::string_view spec);

/// Registered base names, sorted (for error messages and --help output).
[[nodiscard]] std::vector<std::string> RegisteredMechanismBases();

}  // namespace mobipriv::mech
