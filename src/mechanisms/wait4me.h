// Wait For Me baseline (Abul, Bonchi, Nanni [3]): (k, delta)-anonymity for
// moving-object databases. Every published trajectory must, at every
// instant, travel within a cylinder of diameter delta together with at
// least k-1 other trajectories.
//
// This is a faithful reimplementation of the published pipeline shape:
//   1. temporal alignment — all traces are resampled onto a common time
//      grid over their overlapping span;
//   2. greedy clustering — pick an unassigned pivot, attach its k-1 nearest
//      trajectories under synchronized Euclidean distance; clusters that
//      cannot reach size k are suppressed ("trash" in the original paper —
//      the source of its poor utility on sparse real-life data, which our
//      bench E3/E7 rows reproduce);
//   3. space translation — within each cluster and at each time step, any
//      point farther than delta/2 from the cluster centroid is pulled onto
//      the delta/2 disc boundary.
#pragma once

#include "mechanisms/mechanism.h"

namespace mobipriv::mech {

struct Wait4MeConfig {
  std::size_t k = 4;           ///< anonymity-set size
  double delta_m = 500.0;      ///< cylinder diameter
  util::Timestamp grid_step_s = 60;  ///< temporal alignment step
  /// Traces whose time span overlaps the dataset's common span by less than
  /// this fraction are suppressed up front (cannot be aligned).
  double min_overlap_fraction = 0.5;
};

class Wait4Me final : public Mechanism {
 public:
  explicit Wait4Me(Wait4MeConfig config = {});

  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] const Wait4MeConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] model::Dataset Apply(const model::Dataset& input,
                                     util::Rng& rng) const override;

  /// View-native entry point: alignment, clustering and translation build
  /// their working sets (aligned planar tracks) straight from the view's
  /// columns — no full-dataset materialization for mmap'd sources. Apply
  /// wraps this with a zero-copy view, so both paths are one algorithm.
  [[nodiscard]] model::Dataset ApplyView(const model::DatasetView& input,
                                         util::Rng& rng) const override;

  /// Fraction of input traces suppressed on the last Apply call (the
  /// original paper's headline utility cost). Valid after Apply.
  [[nodiscard]] double LastSuppressionRatio() const noexcept {
    return last_suppression_ratio_;
  }

 private:
  Wait4MeConfig config_;
  mutable double last_suppression_ratio_ = 0.0;
};

}  // namespace mobipriv::mech
