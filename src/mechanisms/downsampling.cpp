#include "mechanisms/downsampling.h"

#include <cassert>

namespace mobipriv::mech {

Downsampling::Downsampling(DownsamplingConfig config) : config_(config) {
  assert(config_.min_interval_s > 0);
}

std::string Downsampling::Name() const {
  return "downsampling[dt=" + std::to_string(config_.min_interval_s) + "s]";
}

void Downsampling::ApplyToTraceColumns(const model::TraceView& trace,
                                       model::TraceBuffer& out,
                                       util::Rng& rng) const {
  (void)rng;
  // `out` may already hold earlier traces; track this trace's last kept
  // timestamp locally instead of peeking at the buffer tail.
  bool any = false;
  util::Timestamp last = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const util::Timestamp t = trace.time(i);
    if (!any || t - last >= config_.min_interval_s) {
      out.Append(trace.position(i), t);
      any = true;
      last = t;
    }
  }
}

model::Trace Downsampling::ApplyToTrace(const model::Trace& trace,
                                        util::Rng& rng) const {
  return ApplyToTraceViaColumns(trace, rng);
}

}  // namespace mobipriv::mech
