#include "mechanisms/downsampling.h"

#include <cassert>

#include "util/simd.h"

namespace mobipriv::mech {

Downsampling::Downsampling(DownsamplingConfig config) : config_(config) {
  assert(config_.min_interval_s > 0);
}

std::string Downsampling::Name() const {
  return "downsampling[dt=" + std::to_string(config_.min_interval_s) + "s]";
}

void Downsampling::ApplyToTraceColumns(const model::TraceView& trace,
                                       model::TraceBuffer& out,
                                       util::Rng& rng) const {
  (void)rng;
  // `out` may already hold earlier traces; track this trace's last kept
  // timestamp locally instead of peeking at the buffer tail.
  const std::size_t n = trace.size();
  const util::Timestamp dt = config_.min_interval_s;
  bool any = false;
  util::Timestamp last = 0;
  std::size_t i = 0;
  while (i < n) {
    // Fast path for dense keep runs (the common case when the sampling
    // interval already exceeds dt): when all four upcoming gaps meet the
    // interval, the greedy scan keeps the whole block — emit it with one
    // Extend + vector coordinate copy instead of four branchy Appends.
    // The fallthrough step below is the untouched greedy rule, so the
    // kept set is identical to the pre-vectorization scan.
    if (any && i + util::kSimdWidth <= n) {
      const util::Timestamp t0 = trace.time(i);
      const util::Timestamp t1 = trace.time(i + 1);
      const util::Timestamp t2 = trace.time(i + 2);
      const util::Timestamp t3 = trace.time(i + 3);
      if (t0 - last >= dt && t1 - t0 >= dt && t2 - t1 >= dt &&
          t3 - t2 >= dt) {
        const auto rows = out.Extend(util::kSimdWidth);
        util::F64x4::Set(trace.lat(i), trace.lat(i + 1), trace.lat(i + 2),
                         trace.lat(i + 3))
            .Store(rows.lat);
        util::F64x4::Set(trace.lng(i), trace.lng(i + 1), trace.lng(i + 2),
                         trace.lng(i + 3))
            .Store(rows.lng);
        rows.time[0] = t0;
        rows.time[1] = t1;
        rows.time[2] = t2;
        rows.time[3] = t3;
        last = t3;
        i += util::kSimdWidth;
        continue;
      }
    }
    const util::Timestamp t = trace.time(i);
    if (!any || t - last >= dt) {
      out.Append(trace.position(i), t);
      any = true;
      last = t;
    }
    ++i;
  }
}

model::Trace Downsampling::ApplyToTrace(const model::Trace& trace,
                                        util::Rng& rng) const {
  return ApplyToTraceViaColumns(trace, rng);
}

}  // namespace mobipriv::mech
