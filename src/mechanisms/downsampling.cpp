#include "mechanisms/downsampling.h"

#include <cassert>

namespace mobipriv::mech {

Downsampling::Downsampling(DownsamplingConfig config) : config_(config) {
  assert(config_.min_interval_s > 0);
}

std::string Downsampling::Name() const {
  return "downsampling[dt=" + std::to_string(config_.min_interval_s) + "s]";
}

model::Trace Downsampling::ApplyToTrace(const model::Trace& trace,
                                        util::Rng& rng) const {
  (void)rng;
  model::Trace out;
  out.set_user(trace.user());
  for (const auto& event : trace) {
    if (out.empty() ||
        event.time - out.back().time >= config_.min_interval_s) {
      out.Append(event);
    }
  }
  return out;
}

}  // namespace mobipriv::mech
