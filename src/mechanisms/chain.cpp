#include "mechanisms/chain.h"

#include <stdexcept>
#include <utility>

#include "mechanisms/registry.h"
#include "util/spec.h"

namespace mobipriv::mech {

ChainMechanism::ChainMechanism(std::vector<std::unique_ptr<Mechanism>> stages)
    : stages_(std::move(stages)) {
  if (stages_.empty()) {
    throw std::invalid_argument("ChainMechanism requires >= 1 stage");
  }
  for (const auto& stage : stages_) {
    if (stage == nullptr) {
      throw std::invalid_argument("ChainMechanism stage is null");
    }
  }
}

std::string ChainMechanism::Name() const {
  std::string name;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    if (i > 0) name += "|";
    name += stages_[i]->Name();
  }
  return name;
}

model::Dataset ChainMechanism::Apply(const model::Dataset& input,
                                     util::Rng& rng) const {
  model::Dataset current = stages_.front()->Apply(input, rng);
  for (std::size_t i = 1; i < stages_.size(); ++i) {
    current = stages_[i]->Apply(current, rng);
  }
  return current;
}

model::Dataset ChainMechanism::ApplyView(const model::DatasetView& input,
                                         util::Rng& rng) const {
  model::Dataset current = stages_.front()->ApplyView(input, rng);
  for (std::size_t i = 1; i < stages_.size(); ++i) {
    current = stages_[i]->ApplyView(model::DatasetView::Of(current), rng);
  }
  return current;
}

model::EventStore ChainMechanism::ApplyToStore(const model::DatasetView& input,
                                               util::Rng& rng) const {
  model::EventStore current = stages_.front()->ApplyToStore(input, rng);
  for (std::size_t i = 1; i < stages_.size(); ++i) {
    current = stages_[i]->ApplyToStore(current.View(), rng);
  }
  return current;
}

std::unique_ptr<Mechanism> CreateChain(std::string_view text) {
  const util::SpecChain chain = util::SpecChain::Parse(text);
  if (chain.size() == 1) return CreateMechanism(text);
  std::vector<std::unique_ptr<Mechanism>> stages;
  stages.reserve(chain.size());
  for (const util::Spec& stage : chain.stages()) {
    // Stage instances are built from the stage's ORIGINAL spec text (the
    // parsed entries verbatim), matching the single-mechanism contract.
    stages.push_back(CreateMechanism(stage.ToString()));
  }
  return std::make_unique<ChainMechanism>(std::move(stages));
}

}  // namespace mobipriv::mech
