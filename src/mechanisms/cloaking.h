// Spatial cloaking baseline: every location is snapped to the centre of its
// cell in a fixed square grid (the "simple anonymization technique" class
// the paper's abstract warns about). Cheap, deterministic, and a useful
// utility/privacy anchor between identity and heavy noise.
#pragma once

#include "mechanisms/mechanism.h"

namespace mobipriv::mech {

struct CloakingConfig {
  double cell_size_m = 250.0;  ///< grid cell edge length
};

class Cloaking final : public PerTraceMechanism {
 public:
  explicit Cloaking(CloakingConfig config = {});

  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] const CloakingConfig& config() const noexcept {
    return config_;
  }

 protected:
  [[nodiscard]] model::Trace ApplyToTrace(const model::Trace& trace,
                                          util::Rng& rng) const override;
  void ApplyToTraceColumns(const model::TraceView& trace,
                           model::TraceBuffer& out,
                           util::Rng& rng) const override;

 private:
  CloakingConfig config_;
};

}  // namespace mobipriv::mech
