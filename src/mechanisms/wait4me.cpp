#include "mechanisms/wait4me.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "geo/projection.h"
#include "util/string_utils.h"

namespace mobipriv::mech {
namespace {

/// Synchronized Euclidean distance between two aligned planar tracks of the
/// same length (mean over time steps).
double SynchronizedDistance(const std::vector<geo::Point2>& a,
                            const std::vector<geo::Point2>& b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total += geo::Distance(a[i], b[i]);
  }
  return total / static_cast<double>(a.size());
}

}  // namespace

Wait4Me::Wait4Me(Wait4MeConfig config) : config_(config) {
  assert(config_.k >= 2);
  assert(config_.delta_m > 0.0);
  assert(config_.grid_step_s > 0);
}

std::string Wait4Me::Name() const {
  return "wait4me[k=" + std::to_string(config_.k) +
         ",delta=" + util::FormatDouble(config_.delta_m, 0) + "m]";
}

model::Dataset Wait4Me::Apply(const model::Dataset& input,
                              util::Rng& rng) const {
  return ApplyView(model::DatasetView::Of(input), rng);
}

model::Dataset Wait4Me::ApplyView(const model::DatasetView& input,
                                  util::Rng& rng) const {
  (void)rng;  // deterministic given the input
  model::Dataset output;
  for (model::UserId id = 0; id < input.UserCount(); ++id) {
    output.InternUser(input.UserName(id));
  }
  last_suppression_ratio_ = 0.0;
  const auto& traces = input.traces();
  if (traces.empty()) return output;

  // ---- 1. Temporal alignment onto the median common span. ----
  // Use the span covered by most traces: [median of starts, median of ends].
  std::vector<double> starts;
  std::vector<double> ends;
  for (const model::TraceView& t : traces) {
    if (t.size() < 2) continue;
    starts.push_back(static_cast<double>(t.time(0)));
    ends.push_back(static_cast<double>(t.time(t.size() - 1)));
  }
  if (starts.empty()) {
    last_suppression_ratio_ = 1.0;
    return output;
  }
  std::sort(starts.begin(), starts.end());
  std::sort(ends.begin(), ends.end());
  const auto span_start =
      static_cast<util::Timestamp>(starts[starts.size() / 2]);
  const auto span_end = static_cast<util::Timestamp>(ends[ends.size() / 2]);
  if (span_end <= span_start) {
    last_suppression_ratio_ = 1.0;
    return output;
  }

  const geo::LocalProjection projection(input.BoundingBox().Center());
  std::vector<std::size_t> alive;  // indices into traces
  std::vector<std::vector<geo::Point2>> aligned;
  std::vector<util::Timestamp> grid;
  for (util::Timestamp t = span_start; t <= span_end;
       t += config_.grid_step_s) {
    grid.push_back(t);
  }
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const model::TraceView& trace = traces[i];
    if (trace.size() < 2) continue;
    // Overlap check.
    const auto overlap_start = std::max(span_start, trace.time(0));
    const auto overlap_end =
        std::min(span_end, trace.time(trace.size() - 1));
    const double overlap = static_cast<double>(
        std::max<util::Timestamp>(0, overlap_end - overlap_start));
    if (overlap < config_.min_overlap_fraction *
                      static_cast<double>(span_end - span_start)) {
      continue;  // suppressed: cannot align
    }
    std::vector<geo::Point2> track;
    track.reserve(grid.size());
    for (const auto t : grid) {
      track.push_back(projection.Project(model::InterpolateAt(trace, t)));
    }
    alive.push_back(i);
    aligned.push_back(std::move(track));
  }

  // ---- 2. Greedy k-clustering under synchronized distance. ----
  std::vector<bool> assigned(alive.size(), false);
  std::vector<std::vector<std::size_t>> clusters;  // indices into `alive`
  for (std::size_t pivot = 0; pivot < alive.size(); ++pivot) {
    if (assigned[pivot]) continue;
    // Distances from the pivot to every other unassigned track.
    std::vector<std::pair<double, std::size_t>> candidates;
    for (std::size_t j = 0; j < alive.size(); ++j) {
      if (j == pivot || assigned[j]) continue;
      candidates.emplace_back(
          SynchronizedDistance(aligned[pivot], aligned[j]), j);
    }
    if (candidates.size() + 1 < config_.k) continue;  // pivot unassignable
    std::nth_element(candidates.begin(),
                     candidates.begin() +
                         static_cast<std::ptrdiff_t>(config_.k - 2),
                     candidates.end());
    std::vector<std::size_t> cluster{pivot};
    for (std::size_t c = 0; c + 1 < config_.k; ++c) {
      cluster.push_back(candidates[c].second);
    }
    for (const std::size_t member : cluster) assigned[member] = true;
    clusters.push_back(std::move(cluster));
  }

  // ---- 3. Space translation into the delta/2 cylinder. ----
  std::size_t published = 0;
  for (const auto& cluster : clusters) {
    // Per-time-step centroid.
    std::vector<geo::Point2> centroid(grid.size());
    for (std::size_t step = 0; step < grid.size(); ++step) {
      geo::Point2 sum{};
      for (const std::size_t member : cluster) {
        sum = sum + aligned[member][step];
      }
      centroid[step] = sum / static_cast<double>(cluster.size());
    }
    // Slightly inside delta/2 so the guarantee survives re-measurement in
    // a different local projection (frames differ by ~1e-4 relative).
    const double radius = config_.delta_m / 2.0 * 0.999;
    for (const std::size_t member : cluster) {
      model::Trace out_trace;
      out_trace.set_user(traces[alive[member]].user());
      for (std::size_t step = 0; step < grid.size(); ++step) {
        geo::Point2 p = aligned[member][step];
        const geo::Point2 offset = p - centroid[step];
        const double dist = offset.Norm();
        if (dist > radius) {
          p = centroid[step] + offset * (radius / dist);
        }
        out_trace.Append(
            model::Event{projection.Unproject(p), grid[step]});
      }
      output.AddTrace(std::move(out_trace));
      ++published;
    }
  }
  last_suppression_ratio_ =
      1.0 - static_cast<double>(published) /
                static_cast<double>(traces.size());
  return output;
}

}  // namespace mobipriv::mech
