// Mechanism composition: a chain "a[...]|b[...]|c" applies its stages left
// to right, each stage consuming the previous stage's output. Chains are
// ordinary mechanisms — they register through the same CreateMechanism
// entry point (any spec text with a top-level '|') and their Name() is the
// stage Name()s joined with '|', so chain names round-trip exactly like
// single-stage names.
//
// RNG discipline (monolithic object): all three entry points thread the
// single caller-supplied rng through the stages in order — stage k starts
// drawing exactly where stage k-1 stopped. This makes ChainMechanism
// output trivially bitwise identical to manually applying the stages in
// sequence with one rng, and (by each stage's own contract) keeps
// ApplyToStore bit-for-bit FromDataset(Apply(...)).
//
// The scenario engine intentionally does NOT run chains through this
// object: it compiles each chain into per-stage nodes with per-PREFIX rng
// streams (seeded from the prefix canonical name) so grid rows sharing a
// prefix can reuse one cached stage output. The two disciplines produce
// different bytes by design; they never mix because engine cache keys are
// derived from the names of what actually ran (see docs/FORMAT.md,
// "Chain prefixes and cache keys").
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "mechanisms/mechanism.h"

namespace mobipriv::mech {

class ChainMechanism final : public Mechanism {
 public:
  /// Takes ownership of the stage instances; requires >= 1 stage.
  explicit ChainMechanism(std::vector<std::unique_ptr<Mechanism>> stages);

  [[nodiscard]] std::string Name() const override;

  [[nodiscard]] model::Dataset Apply(const model::Dataset& input,
                                     util::Rng& rng) const override;
  [[nodiscard]] model::Dataset ApplyView(const model::DatasetView& input,
                                         util::Rng& rng) const override;
  [[nodiscard]] model::EventStore ApplyToStore(const model::DatasetView& input,
                                               util::Rng& rng) const override;

  [[nodiscard]] const std::vector<std::unique_ptr<Mechanism>>& stages()
      const noexcept {
    return stages_;
  }

 private:
  std::vector<std::unique_ptr<Mechanism>> stages_;
};

/// Builds a ChainMechanism from a chain spec text ("a[...]|b"), creating
/// each stage through the mechanism registry. Single-stage texts return
/// the stage itself (no wrapper), so CreateChain("geo_ind") ==
/// CreateMechanism("geo_ind") in behavior and Name().
[[nodiscard]] std::unique_ptr<Mechanism> CreateChain(std::string_view text);

}  // namespace mobipriv::mech
