#include "mechanisms/mechanism.h"

namespace mobipriv::mech {

model::Dataset PerTraceMechanism::Apply(const model::Dataset& input,
                                        util::Rng& rng) const {
  model::Dataset output;
  // Re-intern users in id order so ids are identical in input and output.
  for (model::UserId id = 0; id < input.UserCount(); ++id) {
    output.InternUser(input.UserName(id));
  }
  for (const auto& trace : input.traces()) {
    model::Trace transformed = ApplyToTrace(trace, rng);
    if (transformed.empty()) continue;  // mechanism suppressed the trace
    transformed.set_user(trace.user());
    output.AddTrace(std::move(transformed));
  }
  return output;
}

}  // namespace mobipriv::mech
