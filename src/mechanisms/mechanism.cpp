#include "mechanisms/mechanism.h"

#include "util/thread_pool.h"

namespace mobipriv::mech {

model::Dataset PerTraceMechanism::Apply(const model::Dataset& input,
                                        util::Rng& rng) const {
  model::Dataset output;
  // Re-intern users in id order so ids are identical in input and output.
  for (model::UserId id = 0; id < input.UserCount(); ++id) {
    output.InternUser(input.UserName(id));
  }
  const auto& traces = input.traces();
  const std::size_t n = traces.size();

  // One master draw whatever the worker count: the caller's rng advances
  // identically in serial and parallel runs, and every trace derives its
  // own independent stream from (master, user, trace index). Output is
  // therefore byte-identical at any parallelism level.
  const std::uint64_t master = rng.NextU64();
  std::vector<model::Trace> transformed(n);
  util::ParallelFor(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      util::Rng trace_rng(util::DeriveStreamSeed(
          master, static_cast<std::uint64_t>(traces[t].user()),
          static_cast<std::uint64_t>(t)));
      transformed[t] = ApplyToTrace(traces[t], trace_rng);
    }
  });

  for (std::size_t t = 0; t < n; ++t) {
    if (transformed[t].empty()) continue;  // mechanism suppressed the trace
    transformed[t].set_user(traces[t].user());
    output.AddTrace(std::move(transformed[t]));
  }
  return output;
}

}  // namespace mobipriv::mech
