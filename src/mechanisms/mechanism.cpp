#include "mechanisms/mechanism.h"

#include "util/thread_pool.h"

namespace mobipriv::mech {

model::Dataset Mechanism::ApplyView(const model::DatasetView& input,
                                    util::Rng& rng) const {
  // Default adapter: materialize once, run the AoS implementation.
  const model::Dataset materialized = input.Materialize();
  return Apply(materialized, rng);
}

template <typename NameOf, typename UserOf, typename TraceOf>
model::Dataset PerTraceMechanism::ApplyEngine(model::UserId user_count,
                                              NameOf&& name_of, std::size_t n,
                                              UserOf&& user_of,
                                              TraceOf&& trace_of,
                                              util::Rng& rng) const {
  model::Dataset output;
  // Re-intern users in id order so ids are identical in input and output.
  for (model::UserId id = 0; id < user_count; ++id) {
    output.InternUser(name_of(id));
  }
  // One master draw whatever the worker count: the caller's rng advances
  // identically in serial and parallel runs, and every trace derives its
  // own independent stream from (master, user, trace index). Output is
  // therefore byte-identical at any parallelism level — and identical
  // between the AoS and view entry points, which both land here.
  const std::uint64_t master = rng.NextU64();
  std::vector<model::Trace> transformed(n);
  util::ParallelFor(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      util::Rng trace_rng(util::DeriveStreamSeed(
          master, static_cast<std::uint64_t>(user_of(t)),
          static_cast<std::uint64_t>(t)));
      // Lifetime-extended when trace_of materializes a temporary.
      const model::Trace& trace = trace_of(t);
      transformed[t] = ApplyToTrace(trace, trace_rng);
    }
  });

  for (std::size_t t = 0; t < n; ++t) {
    if (transformed[t].empty()) continue;  // mechanism suppressed the trace
    transformed[t].set_user(user_of(t));
    output.AddTrace(std::move(transformed[t]));
  }
  return output;
}

model::Dataset PerTraceMechanism::Apply(const model::Dataset& input,
                                        util::Rng& rng) const {
  const auto& traces = input.traces();
  return ApplyEngine(
      static_cast<model::UserId>(input.UserCount()),
      [&](model::UserId id) { return input.UserName(id); }, traces.size(),
      [&](std::size_t t) { return traces[t].user(); },
      [&](std::size_t t) -> const model::Trace& { return traces[t]; }, rng);
}

model::Dataset PerTraceMechanism::ApplyView(const model::DatasetView& input,
                                            util::Rng& rng) const {
  const auto& traces = input.traces();
  return ApplyEngine(
      static_cast<model::UserId>(input.UserCount()),
      [&](model::UserId id) { return input.UserName(id); }, traces.size(),
      [&](std::size_t t) { return traces[t].user(); },
      [&](std::size_t t) { return traces[t].Materialize(); }, rng);
}

}  // namespace mobipriv::mech
