#include "mechanisms/mechanism.h"

#include <algorithm>
#include <cstdint>

#include "util/thread_pool.h"

namespace mobipriv::mech {

model::Dataset Mechanism::ApplyView(const model::DatasetView& input,
                                    util::Rng& rng) const {
  // Default adapter: materialize once, run the AoS implementation.
  const model::Dataset materialized = input.Materialize();
  return Apply(materialized, rng);
}

model::EventStore Mechanism::ApplyToStore(const model::DatasetView& input,
                                          util::Rng& rng) const {
  // Default adapter: run the view path, convert the output once. The
  // conversion is O(output events) column scatter — mechanisms whose
  // output is much smaller than their input (mixzone, wait4me) lose
  // little; per-trace mechanisms override this with the two-pass fill.
  return model::EventStore::FromDataset(ApplyView(input, rng));
}

void PerTraceMechanism::ApplyToTraceColumns(const model::TraceView& trace,
                                            model::TraceBuffer& out,
                                            util::Rng& rng) const {
  // Default adapter for subclasses that only implement ApplyToTrace:
  // materialize the one trace (counted by model::TraceCopyCount), run the
  // AoS kernel, append its output.
  const model::Trace transformed = ApplyToTrace(trace.Materialize(), rng);
  for (const model::Event& e : transformed) {
    out.Append(e.position, e.time);
  }
}

model::Trace PerTraceMechanism::ApplyToTraceViaColumns(
    const model::Trace& trace, util::Rng& rng) const {
  model::TraceBuffer buffer;
  ApplyToTraceColumns(model::TraceView::Of(trace), buffer, rng);
  return buffer.ToTrace(trace.user());
}

template <typename NameOf, typename UserOf, typename Transform>
model::Dataset PerTraceMechanism::ApplyEngine(model::UserId user_count,
                                              NameOf&& name_of, std::size_t n,
                                              UserOf&& user_of,
                                              Transform&& transform,
                                              util::Rng& rng) const {
  model::Dataset output;
  // Re-intern users in id order so ids are identical in input and output.
  for (model::UserId id = 0; id < user_count; ++id) {
    output.InternUser(name_of(id));
  }
  // One master draw whatever the worker count: the caller's rng advances
  // identically in serial and parallel runs, and every trace derives its
  // own independent stream from (master, user, trace index). Output is
  // therefore byte-identical at any parallelism level — and identical
  // between the AoS, view and store entry points, which all use this
  // stream scheme.
  const std::uint64_t master = rng.NextU64();
  std::vector<model::Trace> transformed(n);
  util::ParallelFor(n, [&](std::size_t begin, std::size_t end) {
    model::TraceBuffer buffer;  // per-chunk scratch, reused across traces
    for (std::size_t t = begin; t < end; ++t) {
      util::Rng trace_rng(util::DeriveStreamSeed(
          master, static_cast<std::uint64_t>(user_of(t)),
          static_cast<std::uint64_t>(t)));
      transformed[t] = transform(t, trace_rng, buffer);
    }
  });

  for (std::size_t t = 0; t < n; ++t) {
    if (transformed[t].empty()) continue;  // mechanism suppressed the trace
    transformed[t].set_user(user_of(t));
    output.AddTrace(std::move(transformed[t]));
  }
  return output;
}

model::Dataset PerTraceMechanism::Apply(const model::Dataset& input,
                                        util::Rng& rng) const {
  const auto& traces = input.traces();
  return ApplyEngine(
      static_cast<model::UserId>(input.UserCount()),
      [&](model::UserId id) { return input.UserName(id); }, traces.size(),
      [&](std::size_t t) { return traces[t].user(); },
      [&](std::size_t t, util::Rng& trace_rng, model::TraceBuffer&) {
        return ApplyToTrace(traces[t], trace_rng);
      },
      rng);
}

model::Dataset PerTraceMechanism::ApplyView(const model::DatasetView& input,
                                            util::Rng& rng) const {
  const auto& traces = input.traces();
  return ApplyEngine(
      static_cast<model::UserId>(input.UserCount()),
      [&](model::UserId id) { return input.UserName(id); }, traces.size(),
      [&](std::size_t t) { return traces[t].user(); },
      [&](std::size_t t, util::Rng& trace_rng, model::TraceBuffer& buffer) {
        buffer.Clear();
        ApplyToTraceColumns(traces[t], buffer, trace_rng);
        return buffer.ToTrace(traces[t].user());
      },
      rng);
}

model::EventStore PerTraceMechanism::ApplyToStore(
    const model::DatasetView& input, util::Rng& rng) const {
  const auto& traces = input.traces();
  const std::size_t n = traces.size();
  const std::uint64_t master = rng.NextU64();

  // ---- Pass 1: transform. ----
  // Traces are split into fixed-size blocks (independent of the worker
  // count, so the layout below is deterministic). Each block appends its
  // traces' output to ONE reused column buffer and records per-trace
  // sizes — zero per-trace allocations, amortized-O(1) appends.
  constexpr std::size_t kBlockTraces = 64;
  const std::size_t blocks = (n + kBlockTraces - 1) / kBlockTraces;
  struct Block {
    model::TraceBuffer buffer;
    std::vector<std::uint32_t> sizes;
  };
  std::vector<Block> results(blocks);
  util::ParallelForEach(blocks, [&](std::size_t b) {
    Block& block = results[b];
    const std::size_t lo = b * kBlockTraces;
    const std::size_t hi = std::min(n, lo + kBlockTraces);
    block.sizes.reserve(hi - lo);
    for (std::size_t t = lo; t < hi; ++t) {
      util::Rng trace_rng(util::DeriveStreamSeed(
          master, static_cast<std::uint64_t>(traces[t].user()),
          static_cast<std::uint64_t>(t)));
      const std::size_t before = block.buffer.size();
      ApplyToTraceColumns(traces[t], block.buffer, trace_rng);
      block.sizes.push_back(
          static_cast<std::uint32_t>(block.buffer.size() - before));
    }
  });

  // ---- Pass 2: lay out and fill. ----
  // Prefix-sum block sizes into final column offsets, then copy every
  // block's buffer into its pre-sized slot in parallel (pure memcpy of
  // column slices; order-independent because slots are disjoint).
  std::vector<std::size_t> block_offset(blocks + 1, 0);
  for (std::size_t b = 0; b < blocks; ++b) {
    block_offset[b + 1] = block_offset[b] + results[b].buffer.size();
  }
  const std::size_t total = block_offset[blocks];

  std::vector<double> lat(total);
  std::vector<double> lng(total);
  std::vector<util::Timestamp> time(total);
  util::ParallelForEach(blocks, [&](std::size_t b) {
    const model::TraceBuffer& buffer = results[b].buffer;
    const std::size_t at = block_offset[b];
    std::copy(buffer.lat().begin(), buffer.lat().end(), lat.begin() + at);
    std::copy(buffer.lng().begin(), buffer.lng().end(), lng.begin() + at);
    std::copy(buffer.time().begin(), buffer.time().end(), time.begin() + at);
  });

  // Trace table in input order, skipping suppressed (empty) outputs —
  // exactly the traces Apply would keep.
  std::vector<model::EventStore::TraceRange> table;
  table.reserve(n);
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t at = block_offset[b];
    const std::size_t lo = b * kBlockTraces;
    for (std::size_t k = 0; k < results[b].sizes.size(); ++k) {
      const std::size_t len = results[b].sizes[k];
      if (len > 0) {
        table.push_back(model::EventStore::TraceRange{
            traces[lo + k].user(), at, at + len});
      }
      at += len;
    }
  }

  // Names carried through in id order — a straight copy of the input's
  // table, no hash-map re-interning of event data.
  std::vector<std::string> names;
  names.reserve(input.UserCount());
  for (model::UserId id = 0;
       id < static_cast<model::UserId>(input.UserCount()); ++id) {
    names.push_back(input.UserName(id));
  }
  return model::EventStore::FromColumns(std::move(names), std::move(table),
                                        std::move(lat), std::move(lng),
                                        std::move(time));
}

}  // namespace mobipriv::mech
