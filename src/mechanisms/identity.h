// The no-op mechanism: publishes the dataset unchanged. Baseline row of
// every experiment table (maximum utility, zero privacy).
#pragma once

#include "mechanisms/mechanism.h"

namespace mobipriv::mech {

class Identity final : public Mechanism {
 public:
  [[nodiscard]] std::string Name() const override { return "identity"; }
  [[nodiscard]] model::Dataset Apply(const model::Dataset& input,
                                     util::Rng& rng) const override;
  /// Straight column copy of the view — no AoS dataset, no re-interning,
  /// empty traces preserved (exactly what Apply's Clone keeps).
  [[nodiscard]] model::EventStore ApplyToStore(const model::DatasetView& input,
                                               util::Rng& rng) const override;
};

}  // namespace mobipriv::mech
