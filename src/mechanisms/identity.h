// The no-op mechanism: publishes the dataset unchanged. Baseline row of
// every experiment table (maximum utility, zero privacy).
#pragma once

#include "mechanisms/mechanism.h"

namespace mobipriv::mech {

class Identity final : public Mechanism {
 public:
  [[nodiscard]] std::string Name() const override { return "identity"; }
  [[nodiscard]] model::Dataset Apply(const model::Dataset& input,
                                     util::Rng& rng) const override;
};

}  // namespace mobipriv::mech
