// Common interface of all publication mechanisms (the paper's solution and
// every baseline). A mechanism maps a raw dataset to a sanitized dataset;
// randomness is supplied by the caller so runs are reproducible.
//
// Three entry points, one determinism contract:
//   * Apply(Dataset)          — AoS in, AoS out (the historical API);
//   * ApplyView(DatasetView)  — any storage layout in (AoS, EventStore,
//                               mmap'd .mpc), AoS out;
//   * ApplyToStore(DatasetView) — any layout in, columnar EventStore out:
//                               the SoA-native path the scenario engine
//                               runs, with no per-trace std::vector<Event>
//                               and no name re-interning on the way out.
// All three draw from `rng` identically, so for the same input and seed
// ApplyToStore(view) is bit-for-bit FromDataset(Apply(dataset)) — the
// equivalence the test suite pins for every registry mechanism.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/dataset.h"
#include "model/event_store.h"
#include "model/views.h"
#include "util/rng.h"

namespace mobipriv::mech {

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Stable identifier used in benchmark tables ("speed_smoothing",
  /// "geo_ind[eps=0.01]", ...).
  [[nodiscard]] virtual std::string Name() const = 0;

  /// Produces the sanitized dataset. Implementations must not mutate the
  /// input and must leave `rng` in a valid (advanced) state.
  [[nodiscard]] virtual model::Dataset Apply(const model::Dataset& input,
                                             util::Rng& rng) const = 0;

  /// View-based entry point (named, not overloaded, so derived classes
  /// overriding Apply don't hide it): lets columnar stores (EventStore)
  /// and shard slices feed mechanisms without building an AoS dataset
  /// first. The default adapter materializes the view; PerTraceMechanism
  /// overrides it to run per trace without any full materialization.
  [[nodiscard]] virtual model::Dataset ApplyView(
      const model::DatasetView& input, util::Rng& rng) const;

  /// SoA-native entry point: the sanitized dataset as an EventStore
  /// (contiguous lat/lng/time columns + trace table), the layout the
  /// scenario engine memoizes, fans out to evaluators zero-copy, and
  /// spills to `.mpc`. The default adapter converts ApplyView's output;
  /// PerTraceMechanism overrides it with a two-pass fill that never builds
  /// an AoS dataset at all. Same rng stream discipline as Apply: for a
  /// given input and rng state the store is bit-for-bit
  /// EventStore::FromDataset(Apply(...)).
  [[nodiscard]] virtual model::EventStore ApplyToStore(
      const model::DatasetView& input, util::Rng& rng) const;
};

/// Helper base for mechanisms that transform each trace independently.
class PerTraceMechanism : public Mechanism {
 public:
  [[nodiscard]] model::Dataset Apply(const model::Dataset& input,
                                     util::Rng& rng) const final;

  /// Per-trace view adapter: workers stream the view one trace at a time
  /// through the columns kernel (peak extra memory = one trace per lane,
  /// not one dataset).
  [[nodiscard]] model::Dataset ApplyView(const model::DatasetView& input,
                                         util::Rng& rng) const final;

  /// The allocation-free path: two-pass ParallelFor (transform each trace
  /// into a per-chunk column buffer recording output sizes, prefix-sum the
  /// offsets, bulk-copy every chunk into its pre-sized slot). Zero
  /// per-trace vector<Event> allocations, zero per-trace view
  /// materializations for mechanisms implementing the columns kernel, and
  /// names carried through without re-interning.
  [[nodiscard]] model::EventStore ApplyToStore(const model::DatasetView& input,
                                               util::Rng& rng) const final;

  /// One trace of the batch determinism scheme, exposed for out-of-core
  /// executors: transforms `trace` with the stream Rng that ApplyToStore
  /// would use for dataset-order index `index` under master draw `master`
  /// (DeriveStreamSeed(master, user, index)), appending the output fixes
  /// to `out`. A shard-streamed engine that maps one shard at a time and
  /// feeds each trace its ORIGINAL dataset index therefore reproduces the
  /// whole-view ApplyToStore output bit for bit, without the input ever
  /// being resident at once.
  void ApplyToIndexedTrace(const model::TraceView& trace, std::uint64_t master,
                           std::uint64_t index, model::TraceBuffer& out) const {
    util::Rng trace_rng(util::DeriveStreamSeed(
        master, static_cast<std::uint64_t>(trace.user()), index));
    ApplyToTraceColumns(trace, out, trace_rng);
  }

 protected:
  /// Transforms one trace. The returned trace keeps the input's user id.
  /// Built-in mechanisms implement this as ApplyToTraceViaColumns (one
  /// kernel, two layouts); external subclasses may implement it directly
  /// and inherit the materializing ApplyToTraceColumns adapter.
  [[nodiscard]] virtual model::Trace ApplyToTrace(const model::Trace& trace,
                                                  util::Rng& rng) const = 0;

  /// SoA per-trace kernel: transforms `trace` and APPENDS the output fixes
  /// to `out` (which may already hold earlier traces' output — kernels must
  /// only append, never clear). The default adapter materializes the view
  /// and routes through ApplyToTrace (counting one model::TraceCopyCount
  /// per trace); built-in mechanisms override it with the real kernel.
  virtual void ApplyToTraceColumns(const model::TraceView& trace,
                                   model::TraceBuffer& out,
                                   util::Rng& rng) const;

  /// Implements ApplyToTrace on top of an overridden ApplyToTraceColumns
  /// (views the AoS trace zero-copy, runs the kernel, assembles the Trace).
  [[nodiscard]] model::Trace ApplyToTraceViaColumns(const model::Trace& trace,
                                                    util::Rng& rng) const;

 private:
  /// Shared engine of Apply/ApplyView, so the determinism scheme (user
  /// re-interning order, one master draw, DeriveStreamSeed(master, user,
  /// trace index) per-trace streams, suppressed-trace merge) lives in one
  /// place. `transform(t, rng, buffer)` yields the t-th output trace; the
  /// buffer is per-chunk scratch reused across that chunk's traces.
  template <typename NameOf, typename UserOf, typename Transform>
  [[nodiscard]] model::Dataset ApplyEngine(model::UserId user_count,
                                           NameOf&& name_of, std::size_t n,
                                           UserOf&& user_of,
                                           Transform&& transform,
                                           util::Rng& rng) const;
};

}  // namespace mobipriv::mech
