// Common interface of all publication mechanisms (the paper's solution and
// every baseline). A mechanism maps a raw dataset to a sanitized dataset;
// randomness is supplied by the caller so runs are reproducible.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/dataset.h"
#include "util/rng.h"

namespace mobipriv::mech {

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Stable identifier used in benchmark tables ("speed_smoothing",
  /// "geo_ind[eps=0.01]", ...).
  [[nodiscard]] virtual std::string Name() const = 0;

  /// Produces the sanitized dataset. Implementations must not mutate the
  /// input and must leave `rng` in a valid (advanced) state.
  [[nodiscard]] virtual model::Dataset Apply(const model::Dataset& input,
                                             util::Rng& rng) const = 0;
};

/// Helper base for mechanisms that transform each trace independently.
class PerTraceMechanism : public Mechanism {
 public:
  [[nodiscard]] model::Dataset Apply(const model::Dataset& input,
                                     util::Rng& rng) const final;

 protected:
  /// Transforms one trace. The returned trace keeps the input's user id.
  [[nodiscard]] virtual model::Trace ApplyToTrace(const model::Trace& trace,
                                                  util::Rng& rng) const = 0;
};

}  // namespace mobipriv::mech
