// Common interface of all publication mechanisms (the paper's solution and
// every baseline). A mechanism maps a raw dataset to a sanitized dataset;
// randomness is supplied by the caller so runs are reproducible.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "model/dataset.h"
#include "model/views.h"
#include "util/rng.h"

namespace mobipriv::mech {

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Stable identifier used in benchmark tables ("speed_smoothing",
  /// "geo_ind[eps=0.01]", ...).
  [[nodiscard]] virtual std::string Name() const = 0;

  /// Produces the sanitized dataset. Implementations must not mutate the
  /// input and must leave `rng` in a valid (advanced) state.
  [[nodiscard]] virtual model::Dataset Apply(const model::Dataset& input,
                                             util::Rng& rng) const = 0;

  /// View-based entry point (named, not overloaded, so derived classes
  /// overriding Apply don't hide it): lets columnar stores (EventStore)
  /// and shard slices feed mechanisms without building an AoS dataset
  /// first. The default adapter materializes the view; PerTraceMechanism
  /// overrides it to materialize per trace, in parallel.
  [[nodiscard]] virtual model::Dataset ApplyView(
      const model::DatasetView& input, util::Rng& rng) const;
};

/// Helper base for mechanisms that transform each trace independently.
class PerTraceMechanism : public Mechanism {
 public:
  [[nodiscard]] model::Dataset Apply(const model::Dataset& input,
                                     util::Rng& rng) const final;

  /// Per-trace view adapter: each worker materializes one trace at a time
  /// (peak extra memory = one trace per lane, not one dataset).
  [[nodiscard]] model::Dataset ApplyView(const model::DatasetView& input,
                                         util::Rng& rng) const final;

 protected:
  /// Transforms one trace. The returned trace keeps the input's user id.
  [[nodiscard]] virtual model::Trace ApplyToTrace(const model::Trace& trace,
                                                  util::Rng& rng) const = 0;

 private:
  /// Shared engine of Apply/ApplyView, so the determinism scheme (user
  /// re-interning order, one master draw, DeriveStreamSeed(master, user,
  /// trace index) per-trace streams, suppressed-trace merge) lives in one
  /// place. `trace_of(t)` yields the t-th input trace: a const reference
  /// for the AoS path, a per-worker materialized Trace for the view path.
  template <typename NameOf, typename UserOf, typename TraceOf>
  [[nodiscard]] model::Dataset ApplyEngine(model::UserId user_count,
                                           NameOf&& name_of, std::size_t n,
                                           UserOf&& user_of,
                                           TraceOf&& trace_of,
                                           util::Rng& rng) const;
};

}  // namespace mobipriv::mech
