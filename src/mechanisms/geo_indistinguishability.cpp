#include "mechanisms/geo_indistinguishability.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>

#include "geo/projection.h"
#include "util/simd.h"
#include "util/string_utils.h"

namespace mobipriv::mech {

double LambertWMinus1(double x) {
  assert(x >= -1.0 / std::numbers::e_v<double> && x < 0.0);
  // Initial guess (Barry et al. 2000): accurate near the branch point and
  // for x -> 0^- where W_{-1} -> -inf like ln(-x).
  double w;
  if (x < -0.25) {
    // Near the branch point -1/e: series in sqrt(2(1 + e*x)). The max()
    // guards the exact branch point, where rounding can push the radicand
    // infinitesimally negative.
    const double sigma = std::sqrt(
        std::max(0.0, 2.0 * (1.0 + std::numbers::e_v<double> * x)));
    w = -1.0 - sigma + sigma * sigma / 3.0;
  } else {
    // Asymptotic: W_{-1}(x) ~ ln(-x) - ln(-ln(-x)).
    const double l1 = std::log(-x);
    const double l2 = std::log(-l1);
    w = l1 - l2 + l2 / l1;
  }
  // Halley refinement of f(w) = w*e^w - x.
  for (int iter = 0; iter < 32; ++iter) {
    const double ew = std::exp(w);
    const double f = w * ew - x;
    const double fp = ew * (w + 1.0);
    if (fp == 0.0) break;  // exactly at the branch point w = -1
    const double fpp = ew * (w + 2.0);
    const double denom = fp - 0.5 * f * fpp / fp;
    if (denom == 0.0) break;
    const double delta = f / denom;
    w -= delta;
    if (std::abs(delta) <= 1e-14 * std::max(1.0, std::abs(w))) break;
  }
  return w;
}

double SamplePlanarLaplaceRadius(double epsilon, util::Rng& rng) {
  assert(epsilon > 0.0);
  // p uniform in (0, 1); r = -(1/eps) * (W_{-1}((p-1)/e) + 1).
  double p = rng.NextDouble();
  if (p <= 0.0) p = std::numeric_limits<double>::min();
  if (p >= 1.0) p = 1.0 - 1e-16;
  const double arg = (p - 1.0) / std::numbers::e_v<double>;
  return -(LambertWMinus1(arg) + 1.0) / epsilon;
}

GeoIndistinguishability::GeoIndistinguishability(GeoIndConfig config)
    : config_(config) {
  assert(config_.epsilon > 0.0);
}

std::string GeoIndistinguishability::Name() const {
  return "geo_ind[eps=" + util::FormatDouble(config_.epsilon, 4) + "]";
}

void GeoIndistinguishability::ApplyToTraceColumns(
    const model::TraceView& trace, model::TraceBuffer& out,
    util::Rng& rng) const {
  if (trace.empty()) return;
  const geo::LocalProjection projection(trace.BoundingBox().Center());
  const std::size_t n = trace.size();
  const auto rows = out.Extend(n);
  using util::F64x4;
  std::size_t i = 0;
  // The planar-Laplace draws (radius, angle, and the r*cos/r*sin offset
  // products) stay scalar in the exact per-fix order of the scalar loop;
  // the projection round trip and offset addition run 4-wide. Same ops
  // in the same order -> bit-identical to the tail.
  for (; i + util::kSimdWidth <= n; i += util::kSimdWidth) {
    double ox[4], oy[4];
    for (int k = 0; k < util::kSimdWidth; ++k) {
      const double r = SamplePlanarLaplaceRadius(config_.epsilon, rng);
      const double theta = rng.Angle();
      ox[k] = r * std::cos(theta);
      oy[k] = r * std::sin(theta);
    }
    const F64x4 lat = F64x4::Set(trace.lat(i), trace.lat(i + 1),
                                 trace.lat(i + 2), trace.lat(i + 3));
    const F64x4 lng = F64x4::Set(trace.lng(i), trace.lng(i + 1),
                                 trace.lng(i + 2), trace.lng(i + 3));
    F64x4 x, y;
    projection.Project4(lat, lng, x, y);
    x = x + F64x4::Load(ox);
    y = y + F64x4::Load(oy);
    F64x4 olat, olng;
    projection.Unproject4(x, y, olat, olng);
    olat.Store(rows.lat + i);
    olng.Store(rows.lng + i);
    rows.time[i] = trace.time(i);
    rows.time[i + 1] = trace.time(i + 1);
    rows.time[i + 2] = trace.time(i + 2);
    rows.time[i + 3] = trace.time(i + 3);
  }
  for (; i < n; ++i) {
    const double r = SamplePlanarLaplaceRadius(config_.epsilon, rng);
    const double theta = rng.Angle();
    geo::Point2 p = projection.Project(trace.position(i));
    p.x += r * std::cos(theta);
    p.y += r * std::sin(theta);
    const geo::LatLng q = projection.Unproject(p);
    rows.lat[i] = q.lat;
    rows.lng[i] = q.lng;
    rows.time[i] = trace.time(i);
  }
}

model::Trace GeoIndistinguishability::ApplyToTrace(const model::Trace& trace,
                                                   util::Rng& rng) const {
  return ApplyToTraceViaColumns(trace, rng);
}

}  // namespace mobipriv::mech
