// Stage 1 of the paper's solution (Section III): constant-speed enforcement
// by time distortion.
//
// POIs appear in a raw trace as clusters of fixes where the user is
// stationary. Instead of perturbing locations (the classical approach, which
// destroys spatial utility), the trace is transformed so that consecutive
// published points have *equal spatial spacing* and *equal time spacing* —
// i.e. the user appears to move at constant speed from the first to the last
// fix. A stationary period contributes no extra points, so an adversary
// cannot tell a 2-hour picnic from simply passing through the park.
//
// Algorithm per trace:
//   1. project fixes to the local tangent plane;
//   2. resample the trajectory at uniform *chord* spacing `spacing_m`
//      (geo::ChordResample): consecutive published points are exactly
//      `spacing_m` apart, and — crucially — the kilometres of GPS-jitter
//      polyline a user accumulates while dwelling at a POI are absorbed,
//      because the walk only advances when it gets `spacing_m` away from
//      the last published point. A stop therefore contributes no points;
//   3. assign uniformly spaced timestamps spanning the original [t0, t1].
//
// The trailing sub-spacing remainder is trimmed (as in the authors' later
// Promesse system), so the published trace has dist(p_i, p_{i+1}) ==
// spacing_m exactly for every hop, and t_{i+1} - t_i uniform to +-0.5 s
// rounding, i.e. constant speed — the property tests assert both. The
// published trace may therefore end up to one spacing short of the final
// input fix.
#pragma once

#include <optional>

#include "geo/projection.h"
#include "mechanisms/mechanism.h"

namespace mobipriv::mech {

struct SpeedSmoothingConfig {
  /// Chord spacing between published points, metres. Smaller keeps more
  /// spatial detail but absorbs less jitter; it must exceed the dwell
  /// wander radius at POIs (tens of metres for GPS) for stops to vanish.
  double spacing_m = 100.0;
  /// Drop traces shorter than this many metres instead of publishing a
  /// degenerate 2-point trace (they are almost surely a single POI — the
  /// most privacy-sensitive object there is).
  double min_length_m = 200.0;
};

class SpeedSmoothing final : public PerTraceMechanism {
 public:
  explicit SpeedSmoothing(SpeedSmoothingConfig config = {});

  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] const SpeedSmoothingConfig& config() const noexcept {
    return config_;
  }

  /// Transforms one trace (exposed for direct use and tests). Returns an
  /// empty trace when the input is dropped by the min-length rule.
  [[nodiscard]] model::Trace Smooth(const model::Trace& trace) const;

 protected:
  [[nodiscard]] model::Trace ApplyToTrace(const model::Trace& trace,
                                          util::Rng& rng) const override;
  /// The real kernel: projects the view's columns, chord-resamples, and
  /// appends the published fixes — no AoS trace is ever built on this path.
  void ApplyToTraceColumns(const model::TraceView& trace,
                           model::TraceBuffer& out,
                           util::Rng& rng) const override;

 private:
  SpeedSmoothingConfig config_;
};

}  // namespace mobipriv::mech
