#include "mechanisms/speed_smoothing.h"

#include <cassert>
#include <cmath>

#include "geo/polyline.h"
#include "util/simd.h"
#include "util/string_utils.h"

namespace mobipriv::mech {
namespace {

/// The whole algorithm over a view, appending published fixes to `out`.
/// Appends nothing when the trace is suppressed (too short / too little
/// published geometry).
void SmoothColumns(const model::TraceView& trace, double spacing_m,
                   double min_length_m, model::TraceBuffer& out) {
  if (trace.size() < 2) return;  // nothing publishable
  using util::F64x4;

  // Project on a per-trace tangent plane centred on the trace itself: the
  // projection error is then bounded by the trace extent, not the dataset's.
  // Both the projection pass here and the unprojection pass below run
  // 4-wide with the scalar op order preserved, so published coordinates
  // are bit-identical to the scalar kernel's.
  const geo::LocalProjection projection(trace.BoundingBox().Center());
  std::vector<geo::Point2> path(trace.size());
  std::size_t i = 0;
  for (; i + util::kSimdWidth <= trace.size(); i += util::kSimdWidth) {
    const F64x4 lat = F64x4::Set(trace.lat(i), trace.lat(i + 1),
                                 trace.lat(i + 2), trace.lat(i + 3));
    const F64x4 lng = F64x4::Set(trace.lng(i), trace.lng(i + 1),
                                 trace.lng(i + 2), trace.lng(i + 3));
    F64x4 x, y;
    projection.Project4(lat, lng, x, y);
    double tx[4], ty[4];
    x.Store(tx);
    y.Store(ty);
    for (int k = 0; k < util::kSimdWidth; ++k) {
      path[i + k] = geo::Point2{tx[k], ty[k]};
    }
  }
  for (; i < trace.size(); ++i) {
    path[i] = projection.Project(trace.position(i));
  }

  std::vector<geo::Point2> resampled = geo::ChordResample(path, spacing_m);
  // ChordResample keeps the exact final fix, which usually sits less than
  // one spacing from the previous point. Trim it (as Promesse does) so
  // every published hop is exactly one spacing and the speed is exactly
  // constant; keep it only when it happens to land a full spacing away.
  if (resampled.size() >= 3) {
    const double last_hop = geo::Distance(resampled[resampled.size() - 2],
                                          resampled.back());
    if (last_hop < spacing_m * 0.999) resampled.pop_back();
  }
  // Chord length of the *published* geometry, jitter excluded: a user who
  // never got far from one place yields a near-empty resample and is
  // dropped entirely (publishing it would reveal a single POI).
  if (resampled.size() < 2 ||
      geo::PolylineLength(resampled) < min_length_m) {
    return;
  }

  // Uniform timestamps across the original time span. Interior timestamps
  // are fractional seconds rounded to the nearest second; the rounding error
  // (<= 0.5 s) is the only deviation from exact constant speed.
  const util::Timestamp t0 = trace.time(0);
  const util::Timestamp t1 = trace.time(trace.size() - 1);
  const auto n = resampled.size();
  const auto rows = out.Extend(n);
  const auto time_at = [&](std::size_t k) {
    const double alpha =
        static_cast<double>(k) / static_cast<double>(n - 1);
    return static_cast<util::Timestamp>(
        std::llround(static_cast<double>(t0) +
                     alpha * static_cast<double>(t1 - t0)));
  };
  std::size_t k = 0;
  for (; k + util::kSimdWidth <= n; k += util::kSimdWidth) {
    const F64x4 x = F64x4::Set(resampled[k].x, resampled[k + 1].x,
                               resampled[k + 2].x, resampled[k + 3].x);
    const F64x4 y = F64x4::Set(resampled[k].y, resampled[k + 1].y,
                               resampled[k + 2].y, resampled[k + 3].y);
    F64x4 olat, olng;
    projection.Unproject4(x, y, olat, olng);
    olat.Store(rows.lat + k);
    olng.Store(rows.lng + k);
    rows.time[k] = time_at(k);
    rows.time[k + 1] = time_at(k + 1);
    rows.time[k + 2] = time_at(k + 2);
    rows.time[k + 3] = time_at(k + 3);
  }
  for (; k < n; ++k) {
    const geo::LatLng q = projection.Unproject(resampled[k]);
    rows.lat[k] = q.lat;
    rows.lng[k] = q.lng;
    rows.time[k] = time_at(k);
  }
}

}  // namespace

SpeedSmoothing::SpeedSmoothing(SpeedSmoothingConfig config)
    : config_(config) {
  assert(config_.spacing_m > 0.0);
}

std::string SpeedSmoothing::Name() const {
  return "speed_smoothing[eps=" + util::FormatDouble(config_.spacing_m, 0) +
         "m]";
}

model::Trace SpeedSmoothing::Smooth(const model::Trace& trace) const {
  model::TraceBuffer buffer;
  SmoothColumns(model::TraceView::Of(trace), config_.spacing_m,
                config_.min_length_m, buffer);
  return buffer.ToTrace(trace.user());
}

void SpeedSmoothing::ApplyToTraceColumns(const model::TraceView& trace,
                                         model::TraceBuffer& out,
                                         util::Rng& rng) const {
  (void)rng;  // deterministic mechanism
  SmoothColumns(trace, config_.spacing_m, config_.min_length_m, out);
}

model::Trace SpeedSmoothing::ApplyToTrace(const model::Trace& trace,
                                          util::Rng& rng) const {
  (void)rng;
  return Smooth(trace);
}

}  // namespace mobipriv::mech
