#include "mechanisms/speed_smoothing.h"

#include <cassert>
#include <cmath>

#include "geo/polyline.h"
#include "util/string_utils.h"

namespace mobipriv::mech {

SpeedSmoothing::SpeedSmoothing(SpeedSmoothingConfig config)
    : config_(config) {
  assert(config_.spacing_m > 0.0);
}

std::string SpeedSmoothing::Name() const {
  return "speed_smoothing[eps=" + util::FormatDouble(config_.spacing_m, 0) +
         "m]";
}

model::Trace SpeedSmoothing::Smooth(const model::Trace& trace) const {
  model::Trace out;
  out.set_user(trace.user());
  if (trace.size() < 2) return out;  // nothing publishable

  // Project on a per-trace tangent plane centred on the trace itself: the
  // projection error is then bounded by the trace extent, not the dataset's.
  const geo::LocalProjection projection(trace.BoundingBox().Center());
  const std::vector<geo::Point2> path = projection.Project(trace.Positions());

  std::vector<geo::Point2> resampled =
      geo::ChordResample(path, config_.spacing_m);
  // ChordResample keeps the exact final fix, which usually sits less than
  // one spacing from the previous point. Trim it (as Promesse does) so
  // every published hop is exactly one spacing and the speed is exactly
  // constant; keep it only when it happens to land a full spacing away.
  if (resampled.size() >= 3) {
    const double last_hop = geo::Distance(resampled[resampled.size() - 2],
                                          resampled.back());
    if (last_hop < config_.spacing_m * 0.999) resampled.pop_back();
  }
  // Chord length of the *published* geometry, jitter excluded: a user who
  // never got far from one place yields a near-empty resample and is
  // dropped entirely (publishing it would reveal a single POI).
  if (resampled.size() < 2 ||
      geo::PolylineLength(resampled) < config_.min_length_m) {
    return out;
  }

  // Uniform timestamps across the original time span. Interior timestamps
  // are fractional seconds rounded to the nearest second; the rounding error
  // (<= 0.5 s) is the only deviation from exact constant speed.
  const util::Timestamp t0 = trace.front().time;
  const util::Timestamp t1 = trace.back().time;
  const auto n = resampled.size();
  for (std::size_t k = 0; k < n; ++k) {
    const double alpha =
        static_cast<double>(k) / static_cast<double>(n - 1);
    const auto t = static_cast<util::Timestamp>(
        std::llround(static_cast<double>(t0) +
                     alpha * static_cast<double>(t1 - t0)));
    out.Append(model::Event{projection.Unproject(resampled[k]), t});
  }
  return out;
}

model::Trace SpeedSmoothing::ApplyToTrace(const model::Trace& trace,
                                          util::Rng& rng) const {
  (void)rng;  // deterministic mechanism
  return Smooth(trace);
}

}  // namespace mobipriv::mech
