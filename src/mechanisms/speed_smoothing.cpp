#include "mechanisms/speed_smoothing.h"

#include <cassert>
#include <cmath>

#include "geo/polyline.h"
#include "util/string_utils.h"

namespace mobipriv::mech {
namespace {

/// The whole algorithm over a view, appending published fixes to `out`.
/// Appends nothing when the trace is suppressed (too short / too little
/// published geometry).
void SmoothColumns(const model::TraceView& trace, double spacing_m,
                   double min_length_m, model::TraceBuffer& out) {
  if (trace.size() < 2) return;  // nothing publishable

  // Project on a per-trace tangent plane centred on the trace itself: the
  // projection error is then bounded by the trace extent, not the dataset's.
  const geo::LocalProjection projection(trace.BoundingBox().Center());
  std::vector<geo::Point2> path;
  path.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    path.push_back(projection.Project(trace.position(i)));
  }

  std::vector<geo::Point2> resampled = geo::ChordResample(path, spacing_m);
  // ChordResample keeps the exact final fix, which usually sits less than
  // one spacing from the previous point. Trim it (as Promesse does) so
  // every published hop is exactly one spacing and the speed is exactly
  // constant; keep it only when it happens to land a full spacing away.
  if (resampled.size() >= 3) {
    const double last_hop = geo::Distance(resampled[resampled.size() - 2],
                                          resampled.back());
    if (last_hop < spacing_m * 0.999) resampled.pop_back();
  }
  // Chord length of the *published* geometry, jitter excluded: a user who
  // never got far from one place yields a near-empty resample and is
  // dropped entirely (publishing it would reveal a single POI).
  if (resampled.size() < 2 ||
      geo::PolylineLength(resampled) < min_length_m) {
    return;
  }

  // Uniform timestamps across the original time span. Interior timestamps
  // are fractional seconds rounded to the nearest second; the rounding error
  // (<= 0.5 s) is the only deviation from exact constant speed.
  const util::Timestamp t0 = trace.time(0);
  const util::Timestamp t1 = trace.time(trace.size() - 1);
  const auto n = resampled.size();
  for (std::size_t k = 0; k < n; ++k) {
    const double alpha =
        static_cast<double>(k) / static_cast<double>(n - 1);
    const auto t = static_cast<util::Timestamp>(
        std::llround(static_cast<double>(t0) +
                     alpha * static_cast<double>(t1 - t0)));
    out.Append(projection.Unproject(resampled[k]), t);
  }
}

}  // namespace

SpeedSmoothing::SpeedSmoothing(SpeedSmoothingConfig config)
    : config_(config) {
  assert(config_.spacing_m > 0.0);
}

std::string SpeedSmoothing::Name() const {
  return "speed_smoothing[eps=" + util::FormatDouble(config_.spacing_m, 0) +
         "m]";
}

model::Trace SpeedSmoothing::Smooth(const model::Trace& trace) const {
  model::TraceBuffer buffer;
  SmoothColumns(model::TraceView::Of(trace), config_.spacing_m,
                config_.min_length_m, buffer);
  return buffer.ToTrace(trace.user());
}

void SpeedSmoothing::ApplyToTraceColumns(const model::TraceView& trace,
                                         model::TraceBuffer& out,
                                         util::Rng& rng) const {
  (void)rng;  // deterministic mechanism
  SmoothColumns(trace, config_.spacing_m, config_.min_length_m, out);
}

model::Trace SpeedSmoothing::ApplyToTrace(const model::Trace& trace,
                                          util::Rng& rng) const {
  (void)rng;
  return Smooth(trace);
}

}  // namespace mobipriv::mech
