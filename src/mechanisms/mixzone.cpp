#include "mechanisms/mixzone.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <map>
#include <numeric>
#include <sstream>

#include "geo/grid_index.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace mobipriv::mech {
namespace {

/// Flattened event reference used during detection.
struct FlatEvent {
  std::uint32_t trace = 0;
  std::uint32_t index = 0;  // within the trace
  geo::Point2 position;
  util::Timestamp time = 0;
  model::UserId user = model::kInvalidUser;
};

/// A raw co-location of two distinct users.
struct Encounter {
  geo::Point2 midpoint;
  util::Timestamp time = 0;
};

/// A maximal in-zone run of one trace.
struct ZonePassage {
  std::uint32_t trace = 0;
  model::UserId user = model::kInvalidUser;
  util::Timestamp enter = 0;
  util::Timestamp exit = 0;
  std::uint32_t first_event = 0;
  std::uint32_t last_event = 0;  // inclusive
};

/// Cell-bucketed CSR layout of the flat events, replacing per-event
/// GridIndex radius queries in the detection hot loop. Events are grouped
/// by grid cell into contiguous SoA slices ordered by flat id, so
///   * a cell scan streams packed x/y/time/user arrays (no intrusive-chain
///     pointer chasing), and
///   * the encounter rule's "only pairs (a, b) with b > a" filter becomes a
///     binary search for the first in-cell id greater than a — candidates
///     below a are never visited instead of being visited and discarded.
/// Scanning a cell slice in storage order reproduces the GridIndex FIFO
/// (insertion == id) order exactly, which pins the encounter sequence — and
/// with it zone clustering and the final output — bit for bit.
class EventCellGrid {
 public:
  EventCellGrid(double cell_size, const std::vector<FlatEvent>& flat)
      : cell_size_(cell_size) {
    const std::size_t n = flat.size();
    event_cx_.resize(n);
    event_cy_.resize(n);
    event_cell_.resize(n);

    // Open-addressed (cx, cy) -> dense cell id table (power-of-two,
    // linear probing; sized once — n events bound the live cell count).
    std::size_t capacity = 16;
    while (capacity * 3 / 4 < n + 1) capacity *= 2;
    tab_cx_.assign(capacity, 0);
    tab_cy_.assign(capacity, 0);
    tab_cell_.assign(capacity, -1);

    std::vector<std::uint32_t> counts;
    for (std::size_t id = 0; id < n; ++id) {
      const auto cx = static_cast<std::int64_t>(
          std::floor(flat[id].position.x / cell_size_));
      const auto cy = static_cast<std::int64_t>(
          std::floor(flat[id].position.y / cell_size_));
      event_cx_[id] = cx;
      event_cy_[id] = cy;
      const std::size_t mask = capacity - 1;
      std::size_t i = Hash(cx, cy) & mask;
      while (tab_cell_[i] != -1 &&
             (tab_cx_[i] != cx || tab_cy_[i] != cy)) {
        i = (i + 1) & mask;
      }
      if (tab_cell_[i] == -1) {
        tab_cx_[i] = cx;
        tab_cy_[i] = cy;
        tab_cell_[i] = static_cast<std::int32_t>(counts.size());
        counts.push_back(0);
      }
      event_cell_[id] = tab_cell_[i];
      ++counts[static_cast<std::size_t>(tab_cell_[i])];
    }

    begin_.resize(counts.size() + 1, 0);
    for (std::size_t c = 0; c < counts.size(); ++c) {
      begin_[c + 1] = begin_[c] + counts[c];
    }
    x_.resize(n);
    y_.resize(n);
    time_.resize(n);
    user_.resize(n);
    id_.resize(n);
    std::vector<std::uint32_t> fill(counts.size(), 0);
    for (std::size_t id = 0; id < n; ++id) {
      const auto cell = static_cast<std::size_t>(event_cell_[id]);
      const std::size_t pos = begin_[cell] + fill[cell]++;
      x_[pos] = flat[id].position.x;
      y_[pos] = flat[id].position.y;
      time_[pos] = flat[id].time;
      user_[pos] = flat[id].user;
      id_[pos] = static_cast<std::uint32_t>(id);
    }
  }

  /// Dense cell id for grid coordinates, or -1 when the cell is empty.
  [[nodiscard]] std::int32_t Find(std::int64_t cx,
                                  std::int64_t cy) const noexcept {
    const std::size_t mask = tab_cell_.size() - 1;
    std::size_t i = Hash(cx, cy) & mask;
    while (tab_cell_[i] != -1) {
      if (tab_cx_[i] == cx && tab_cy_[i] == cy) return tab_cell_[i];
      i = (i + 1) & mask;
    }
    return -1;
  }

  /// Grid coordinates of event `id`'s cell.
  [[nodiscard]] std::int64_t EventCx(std::size_t id) const {
    return event_cx_[id];
  }
  [[nodiscard]] std::int64_t EventCy(std::size_t id) const {
    return event_cy_[id];
  }

  /// [begin, end) slice of a dense cell in the SoA arrays (id-ascending).
  [[nodiscard]] std::size_t CellBegin(std::int32_t cell) const {
    return begin_[static_cast<std::size_t>(cell)];
  }
  [[nodiscard]] std::size_t CellEnd(std::int32_t cell) const {
    return begin_[static_cast<std::size_t>(cell) + 1];
  }

  [[nodiscard]] double x(std::size_t i) const { return x_[i]; }
  [[nodiscard]] double y(std::size_t i) const { return y_[i]; }
  [[nodiscard]] util::Timestamp time(std::size_t i) const { return time_[i]; }
  [[nodiscard]] model::UserId user(std::size_t i) const { return user_[i]; }
  [[nodiscard]] std::uint32_t id(std::size_t i) const { return id_[i]; }

  /// First index in the cell slice whose flat id exceeds `flat_id`.
  [[nodiscard]] std::size_t FirstAbove(std::int32_t cell,
                                       std::uint32_t flat_id) const {
    const auto first = id_.begin() + static_cast<std::ptrdiff_t>(
                                         CellBegin(cell));
    const auto last =
        id_.begin() + static_cast<std::ptrdiff_t>(CellEnd(cell));
    return static_cast<std::size_t>(
        std::upper_bound(first, last, flat_id) - id_.begin());
  }

 private:
  [[nodiscard]] static std::size_t Hash(std::int64_t cx,
                                        std::int64_t cy) noexcept {
    return geo::HashCell2D(cx, cy);
  }

  double cell_size_;
  std::vector<std::int64_t> tab_cx_, tab_cy_;
  std::vector<std::int32_t> tab_cell_;
  std::vector<std::int64_t> event_cx_, event_cy_;
  std::vector<std::int32_t> event_cell_;
  std::vector<std::size_t> begin_;
  std::vector<double> x_, y_;
  std::vector<util::Timestamp> time_;
  std::vector<model::UserId> user_;
  std::vector<std::uint32_t> id_;
};

}  // namespace

std::string MixZoneReport::ToString() const {
  std::ostringstream os;
  os << "zones=" << zones.size() << " occurrences=" << occurrences
     << " encounters=" << encounters << " swaps=" << swaps_applied
     << " suppressed=" << suppressed_events << "/" << total_events << " ("
     << util::FormatDouble(100.0 * SuppressionRatio(), 2) << "%)";
  return os.str();
}

MixZone::MixZone(MixZoneConfig config) : config_(config) {
  assert(config_.zone_radius_m > 0.0);
  assert(config_.time_window_s > 0);
  assert(config_.min_users >= 2);
}

std::string MixZone::Name() const {
  return "mixzone[r=" + util::FormatDouble(config_.zone_radius_m, 0) +
         "m,w=" + std::to_string(config_.time_window_s) + "s]";
}

model::Dataset MixZone::Apply(const model::Dataset& input,
                              util::Rng& rng) const {
  MixZoneReport report;
  return ApplyWithReport(input, rng, report);
}

model::Dataset MixZone::ApplyView(const model::DatasetView& input,
                                  util::Rng& rng) const {
  MixZoneReport report;
  return ApplyViewWithReport(input, rng, report);
}

model::Dataset MixZone::ApplyWithReport(const model::Dataset& input,
                                        util::Rng& rng,
                                        MixZoneReport& report) const {
  return ApplyViewWithReport(model::DatasetView::Of(input), rng, report);
}

model::Dataset MixZone::ApplyViewWithReport(const model::DatasetView& input,
                                            util::Rng& rng,
                                            MixZoneReport& report) const {
  report = MixZoneReport{};
  report.total_events = input.EventCount();

  // ---- 0. Project everything onto one dataset-wide tangent plane. ----
  const geo::GeoBoundingBox bbox = input.BoundingBox();
  const geo::LocalProjection projection(
      bbox.IsEmpty() ? geo::LatLng{0.0, 0.0} : bbox.Center());
  const auto& traces = input.traces();

  // Flat slot per event, computed up front so projection parallelizes.
  std::vector<std::size_t> offset(traces.size() + 1, 0);
  for (std::size_t t = 0; t < traces.size(); ++t) {
    offset[t + 1] = offset[t] + traces[t].size();
  }
  std::vector<FlatEvent> flat(offset.back());
  util::ParallelForEach(traces.size(), [&](std::size_t t) {
    const model::TraceView& trace = traces[t];
    for (std::uint32_t i = 0; i < trace.size(); ++i) {
      const geo::Point2 p = projection.Project(trace.position(i));
      flat[offset[t] + i] = FlatEvent{static_cast<std::uint32_t>(t), i, p,
                                      trace.time(i), trace.user()};
    }
  });

  // ---- 1. Encounter detection via the cell-bucketed event grid. ----
  const double radius = config_.zone_radius_m;
  const double r_sq = radius * radius;
  // Cell size equals the query radius, so every radius-r disc is covered
  // by the 3x3 cell neighbourhood of its centre.
  const std::int64_t span = 1;
  const EventCellGrid grid(radius, flat);
  // Each id-range block collects its encounters independently; blocks are
  // concatenated in id order afterwards, so the encounter sequence (and
  // with it the greedy zone clustering below) is byte-identical to a
  // serial scan whatever the worker count.
  const std::size_t block_size = 1024;
  const std::size_t blocks = (flat.size() + block_size - 1) / block_size;
  std::vector<std::vector<Encounter>> block_encounters(blocks);
  util::ParallelForEach(blocks, [&](std::size_t block) {
    const std::uint64_t lo = block * block_size;
    const std::uint64_t hi =
        std::min<std::uint64_t>(flat.size(), lo + block_size);
    for (std::uint64_t id = lo; id < hi; ++id) {
      const FlatEvent& a = flat[id];
      const std::int64_t acx = grid.EventCx(id);
      const std::int64_t acy = grid.EventCy(id);
      for (std::int64_t dx = -span; dx <= span; ++dx) {
        for (std::int64_t dy = -span; dy <= span; ++dy) {
          const std::int32_t cell = grid.Find(acx + dx, acy + dy);
          if (cell < 0) continue;
          const std::size_t end = grid.CellEnd(cell);
          for (std::size_t j = grid.FirstAbove(
                   cell, static_cast<std::uint32_t>(id));
               j < end; ++j) {
            const double ddx = grid.x(j) - a.position.x;
            const double ddy = grid.y(j) - a.position.y;
            if (ddx * ddx + ddy * ddy > r_sq) continue;
            if (a.user == grid.user(j)) continue;
            if (std::abs(a.time - grid.time(j)) > config_.time_window_s) {
              continue;
            }
            block_encounters[block].push_back(Encounter{
                geo::Midpoint(a.position, {grid.x(j), grid.y(j)}),
                std::min(a.time, grid.time(j))});
          }
        }
      }
    }
  });
  std::vector<Encounter> encounters;
  for (const auto& block : block_encounters) {
    encounters.insert(encounters.end(), block.begin(), block.end());
  }
  report.encounters = encounters.size();

  // ---- 2. Greedy zone clustering (first-fit by centre distance). ----
  // Centers are immutable once created, so a grid over them answers the
  // first-fit probe ("is any existing center within the zone radius?") in
  // O(1) instead of scanning every center per encounter — AnyWithin
  // early-exits on the first hit, never collecting the neighbour list.
  std::vector<geo::Point2> zone_centers;
  geo::GridIndex center_index(config_.zone_radius_m);
  for (const Encounter& e : encounters) {
    if (center_index.AnyWithin(e.midpoint, config_.zone_radius_m)) continue;
    center_index.Insert(e.midpoint,
                        static_cast<std::uint64_t>(zone_centers.size()));
    zone_centers.push_back(e.midpoint);
  }

  // ---- 3 & 4. Per-zone passages and occurrence grouping. ----
  struct Occurrence {
    std::size_t zone = 0;
    std::vector<ZonePassage> passages;
    util::Timestamp end = 0;  // latest exit among passages
  };
  // Every zone's passage/occurrence detection is independent: compute them
  // in parallel into per-zone outcomes, then merge in zone order so the
  // result is identical to the serial zone-by-zone scan.
  struct ZoneOutcome {
    MixZoneInfo info;
    std::vector<Occurrence> occurrences;
    std::vector<std::size_t> anonymity_set_sizes;
  };
  std::vector<ZoneOutcome> outcomes(zone_centers.size());
  util::ParallelForEach(zone_centers.size(), [&](std::size_t z) {
    ZoneOutcome& outcome = outcomes[z];
    const geo::Point2 center = zone_centers[z];
    // In-zone events come straight from the event grid; a passage is a
    // maximal run of consecutive fixes of one trace inside the disc, i.e.
    // a maximal run of consecutive flat indices among the hits (flat ids
    // are assigned per trace in time order). Traces that never touch the
    // zone cost nothing.
    std::vector<std::uint64_t> hits;
    const auto ccx =
        static_cast<std::int64_t>(std::floor(center.x / radius));
    const auto ccy =
        static_cast<std::int64_t>(std::floor(center.y / radius));
    for (std::int64_t dx = -span; dx <= span; ++dx) {
      for (std::int64_t dy = -span; dy <= span; ++dy) {
        const std::int32_t cell = grid.Find(ccx + dx, ccy + dy);
        if (cell < 0) continue;
        const std::size_t end = grid.CellEnd(cell);
        for (std::size_t j = grid.CellBegin(cell); j < end; ++j) {
          const double ddx = grid.x(j) - center.x;
          const double ddy = grid.y(j) - center.y;
          if (ddx * ddx + ddy * ddy <= r_sq) hits.push_back(grid.id(j));
        }
      }
    }
    std::sort(hits.begin(), hits.end());
    std::vector<ZonePassage> passages;
    std::size_t h = 0;
    while (h < hits.size()) {
      const FlatEvent& first = flat[hits[h]];
      std::size_t run_end = h;
      while (run_end + 1 < hits.size() &&
             hits[run_end + 1] == hits[run_end] + 1 &&
             flat[hits[run_end + 1]].trace == first.trace) {
        ++run_end;
      }
      const FlatEvent& last = flat[hits[run_end]];
      passages.push_back(ZonePassage{first.trace,
                                     traces[first.trace].user(), first.time,
                                     last.time, first.index, last.index});
      h = run_end + 1;
    }
    // Group passages whose intervals (dilated by the time window) overlap.
    std::sort(passages.begin(), passages.end(),
              [](const ZonePassage& a, const ZonePassage& b) {
                return a.enter < b.enter;
              });
    MixZoneInfo& info = outcome.info;
    info.center = center;
    info.radius_m = config_.zone_radius_m;
    std::size_t group_start = 0;
    util::Timestamp group_end = std::numeric_limits<util::Timestamp>::min();
    const auto flush_group = [&](std::size_t first, std::size_t last) {
      if (first >= last) return;
      Occurrence occ;
      occ.zone = z;
      occ.passages.assign(passages.begin() + static_cast<std::ptrdiff_t>(first),
                          passages.begin() + static_cast<std::ptrdiff_t>(last));
      std::size_t distinct_users = 0;
      {
        std::vector<model::UserId> users;
        for (const auto& p : occ.passages) users.push_back(p.user);
        std::sort(users.begin(), users.end());
        distinct_users = static_cast<std::size_t>(
            std::unique(users.begin(), users.end()) - users.begin());
      }
      if (distinct_users < config_.min_users) return;
      occ.end = 0;
      for (const auto& p : occ.passages) occ.end = std::max(occ.end, p.exit);
      ++info.occurrences;
      info.max_anonymity_set =
          std::max(info.max_anonymity_set, occ.passages.size());
      outcome.anonymity_set_sizes.push_back(occ.passages.size());
      outcome.occurrences.push_back(std::move(occ));
    };
    for (std::size_t k = 0; k < passages.size(); ++k) {
      if (k == group_start) {
        group_end = passages[k].exit;
        continue;
      }
      if (passages[k].enter <= group_end + config_.time_window_s) {
        group_end = std::max(group_end, passages[k].exit);
      } else {
        flush_group(group_start, k);
        group_start = k;
        group_end = passages[k].exit;
      }
    }
    flush_group(group_start, passages.size());
  });

  std::vector<Occurrence> occurrences;
  report.zones.reserve(zone_centers.size());
  // zone_centers index -> index in report.zones (only mixing zones appear).
  std::vector<std::ptrdiff_t> zone_report_index(zone_centers.size(), -1);
  for (std::size_t z = 0; z < zone_centers.size(); ++z) {
    ZoneOutcome& outcome = outcomes[z];
    if (outcome.info.occurrences > 0) {
      zone_report_index[z] =
          static_cast<std::ptrdiff_t>(report.zones.size());
      report.zones.push_back(outcome.info);
    }
    report.anonymity_set_sizes.insert(report.anonymity_set_sizes.end(),
                                      outcome.anonymity_set_sizes.begin(),
                                      outcome.anonymity_set_sizes.end());
    for (Occurrence& occ : outcome.occurrences) {
      occurrences.push_back(std::move(occ));
    }
  }
  report.occurrences = occurrences.size();

  // ---- 5. Chronological identity permutation + suppression marking. ----
  std::sort(occurrences.begin(), occurrences.end(),
            [](const Occurrence& a, const Occurrence& b) {
              return a.end < b.end;
            });
  std::vector<model::UserId> owner(traces.size());
  for (std::uint32_t t = 0; t < traces.size(); ++t) {
    owner[t] = traces[t].user();
  }
  std::vector<std::vector<bool>> suppressed(traces.size());
  for (std::uint32_t t = 0; t < traces.size(); ++t) {
    suppressed[t].assign(traces[t].size(), false);
  }
  // Per trace: (time, owner-from-then-on), appended in chronological order.
  std::vector<std::vector<std::pair<util::Timestamp, model::UserId>>>
      switches(traces.size());

  for (const Occurrence& occ : occurrences) {
    if (config_.suppress_zone_points) {
      for (const ZonePassage& p : occ.passages) {
        for (std::uint32_t i = p.first_event; i <= p.last_event; ++i) {
          if (!suppressed[p.trace][i]) {
            suppressed[p.trace][i] = true;
            ++report.suppressed_events;
          }
        }
      }
    }
    // Unique participating traces (a trace can pass the zone twice within
    // one occurrence; it gets a single identity slot).
    std::vector<std::uint32_t> participants;
    for (const ZonePassage& p : occ.passages) participants.push_back(p.trace);
    std::sort(participants.begin(), participants.end());
    participants.erase(
        std::unique(participants.begin(), participants.end()),
        participants.end());
    if (participants.size() < 2) continue;

    OccurrenceInfo detail;
    detail.zone_index = static_cast<std::size_t>(
        zone_report_index[occ.zone] < 0 ? 0 : zone_report_index[occ.zone]);
    for (const std::uint32_t trace_idx : participants) {
      detail.users.push_back(traces[trace_idx].user());
    }
    std::sort(detail.users.begin(), detail.users.end());
    detail.users.erase(
        std::unique(detail.users.begin(), detail.users.end()),
        detail.users.end());

    std::vector<std::size_t> perm(participants.size());
    std::iota(perm.begin(), perm.end(), 0);
    rng.Shuffle(std::span<std::size_t>(perm));
    bool is_identity = true;
    for (std::size_t k = 0; k < perm.size(); ++k) {
      if (perm[k] != k) {
        is_identity = false;
        break;
      }
    }
    detail.swapped = !is_identity;
    report.occurrence_details.push_back(detail);
    if (is_identity) continue;  // drew the identity permutation: no swap
    ++report.swaps_applied;

    std::vector<model::UserId> old_owners(participants.size());
    for (std::size_t k = 0; k < participants.size(); ++k) {
      old_owners[k] = owner[participants[k]];
    }
    for (std::size_t k = 0; k < participants.size(); ++k) {
      const model::UserId new_owner = old_owners[perm[k]];
      const std::uint32_t trace_idx = participants[k];
      if (owner[trace_idx] == new_owner) continue;
      owner[trace_idx] = new_owner;
      // The identity changes from this trace's own exit time onwards.
      util::Timestamp exit_time = occ.end;
      for (const ZonePassage& p : occ.passages) {
        if (p.trace == trace_idx) exit_time = p.exit;
      }
      switches[trace_idx].emplace_back(exit_time, new_owner);
    }
  }

  // Within one trace, apply identity switches in time order regardless of
  // the (occurrence-end) order they were generated in.
  for (auto& sw : switches) {
    std::stable_sort(sw.begin(), sw.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
  }

  // ---- 6. Reassemble output traces under final identities. ----
  // Each input trace is cut into segments at its identity switches; the
  // segments of one identity are then stitched back together only when
  // temporally adjacent (gap <= time window, i.e. the same mixing episode).
  // Pooling an identity's whole day into one trace would fabricate
  // continuity across recording sessions — and the session gap at a POI
  // would hand the attacker exactly the dwell the mechanism hides.
  model::Dataset output;
  for (model::UserId id = 0; id < input.UserCount(); ++id) {
    output.InternUser(input.UserName(id));
  }
  // A segment remembers whether it was severed by a zone (an identity
  // switch), as opposed to simply being the start/end of a recording
  // session. Only zone-severed ends may be stitched to zone-severed starts:
  // that reconnects a pseudonym's stream across the zone (A's prefix +
  // B's suffix) without fabricating continuity across session gaps.
  struct Segment {
    std::vector<model::Event> events;
    bool starts_at_zone = false;  // began right after an identity switch
    bool ends_at_zone = false;    // ended right before an identity switch
  };
  // Segment extraction is per-trace independent (each trace reads only its
  // own switches/suppression), so it fans out on the pool; per-trace
  // segment lists merge in trace order afterwards, reproducing the exact
  // per-identity segment sequence the serial trace-by-trace scan built.
  std::vector<std::vector<std::pair<model::UserId, Segment>>> trace_segments(
      traces.size());
  util::ParallelForEach(traces.size(), [&](std::size_t t) {
    const model::TraceView& trace = traces[t];
    const auto& sw = switches[t];
    auto& out_segments = trace_segments[t];
    Segment current;
    model::UserId current_owner = trace.user();
    for (std::uint32_t i = 0; i < trace.size(); ++i) {
      if (suppressed[t][i]) continue;
      const util::Timestamp time = trace.time(i);
      model::UserId who = trace.user();
      for (const auto& [switch_time, new_owner] : sw) {
        if (time > switch_time) {
          who = new_owner;
        } else {
          break;
        }
      }
      if (who != current_owner && !current.events.empty()) {
        current.ends_at_zone = true;
        out_segments.emplace_back(current_owner, std::move(current));
        current = Segment{};
        current.starts_at_zone = true;
      }
      current_owner = who;
      current.events.push_back(trace.event(i));
    }
    if (!current.events.empty()) {
      out_segments.emplace_back(current_owner, std::move(current));
    }
  });
  std::map<model::UserId, std::vector<Segment>> segments;
  for (auto& per_trace : trace_segments) {
    for (auto& [identity, segment] : per_trace) {
      segments[identity].push_back(std::move(segment));
    }
  }

  // Stitching is per-identity independent: each identity sorts and stitches
  // its own segments into traces in parallel, and the per-identity results
  // append to the output in ascending identity order — the order the serial
  // map walk emitted them in.
  std::vector<std::pair<const model::UserId, std::vector<Segment>>*> by_id;
  by_id.reserve(segments.size());
  for (auto& entry : segments) by_id.push_back(&entry);
  std::vector<std::vector<model::Trace>> stitched_traces(by_id.size());
  util::ParallelForEach(by_id.size(), [&](std::size_t k) {
    const model::UserId identity = by_id[k]->first;
    std::vector<Segment>& segs = by_id[k]->second;
    std::sort(segs.begin(), segs.end(),
              [](const Segment& a, const Segment& b) {
                return a.events.front().time < b.events.front().time;
              });
    std::vector<model::Event> stitched;
    bool stitched_open_at_zone = false;  // last segment ended at a zone
    const auto flush = [&] {
      if (!stitched.empty()) {
        stitched_traces[k].emplace_back(identity, std::move(stitched));
        stitched = std::vector<model::Event>{};
      }
    };
    for (auto& seg : segs) {
      const bool joinable =
          !stitched.empty() && stitched_open_at_zone && seg.starts_at_zone &&
          seg.events.front().time - stitched.back().time <=
              config_.time_window_s;
      if (!joinable) flush();
      stitched.insert(stitched.end(), seg.events.begin(),
                      seg.events.end());
      stitched_open_at_zone = seg.ends_at_zone;
    }
    flush();
  });
  for (auto& identity_traces : stitched_traces) {
    for (auto& trace : identity_traces) {
      output.AddTrace(std::move(trace));
    }
  }
  output.SortAll();
  return output;
}

}  // namespace mobipriv::mech
