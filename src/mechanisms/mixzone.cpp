#include "mechanisms/mixzone.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <map>
#include <numeric>
#include <sstream>

#include "geo/grid_index.h"
#include "util/simd.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace mobipriv::mech {
namespace {

/// Flattened event reference used during detection.
struct FlatEvent {
  std::uint32_t trace = 0;
  std::uint32_t index = 0;  // within the trace
  geo::Point2 position;
  util::Timestamp time = 0;
  model::UserId user = model::kInvalidUser;
};

/// A raw co-location of two distinct users.
struct Encounter {
  geo::Point2 midpoint;
  util::Timestamp time = 0;
};

/// A maximal in-zone run of one trace.
struct ZonePassage {
  std::uint32_t trace = 0;
  model::UserId user = model::kInvalidUser;
  util::Timestamp enter = 0;
  util::Timestamp exit = 0;
  std::uint32_t first_event = 0;
  std::uint32_t last_event = 0;  // inclusive
};

/// One output trace as bare columns — the mechanism's native result form.
/// The Dataset entry points assemble Events from these; the store entry
/// point concatenates them into EventStore columns without ever building
/// an Event.
struct StitchedColumns {
  model::UserId user = model::kInvalidUser;
  std::vector<double> lat, lng;
  std::vector<util::Timestamp> time;
  [[nodiscard]] std::size_t size() const noexcept { return time.size(); }
};

/// Cell-bucketed CSR layout of the flat events, replacing per-event
/// GridIndex radius queries in the detection hot loop. Events are grouped
/// by grid cell into contiguous SoA slices ordered by flat id, so
///   * a cell scan streams packed x/y/time/user arrays (no intrusive-chain
///     pointer chasing), and
///   * the encounter rule's "only pairs (a, b) with b > a" filter becomes a
///     binary search for the first in-cell id greater than a — candidates
///     below a are never visited instead of being visited and discarded.
/// Scanning a cell slice in storage order reproduces the GridIndex FIFO
/// (insertion == id) order exactly, which pins the encounter sequence — and
/// with it zone clustering and the final output — bit for bit.
class EventCellGrid {
 public:
  EventCellGrid(double cell_size, const std::vector<FlatEvent>& flat)
      : cell_size_(cell_size) {
    const std::size_t n = flat.size();
    event_cell_.resize(n);

    // Open-addressed (cx, cy) -> dense cell id table (power-of-two,
    // linear probing; sized once — n events bound the live cell count).
    std::size_t capacity = 16;
    while (capacity * 3 / 4 < n + 1) capacity *= 2;
    tab_cx_.assign(capacity, 0);
    tab_cy_.assign(capacity, 0);
    tab_cell_.assign(capacity, -1);

    std::vector<std::uint32_t> counts;
    for (std::size_t id = 0; id < n; ++id) {
      const auto cx = static_cast<std::int64_t>(
          std::floor(flat[id].position.x / cell_size_));
      const auto cy = static_cast<std::int64_t>(
          std::floor(flat[id].position.y / cell_size_));
      const std::size_t mask = capacity - 1;
      std::size_t i = Hash(cx, cy) & mask;
      while (tab_cell_[i] != -1 &&
             (tab_cx_[i] != cx || tab_cy_[i] != cy)) {
        i = (i + 1) & mask;
      }
      if (tab_cell_[i] == -1) {
        tab_cx_[i] = cx;
        tab_cy_[i] = cy;
        tab_cell_[i] = static_cast<std::int32_t>(counts.size());
        counts.push_back(0);
        cell_cx_.push_back(cx);
        cell_cy_.push_back(cy);
      }
      event_cell_[id] = tab_cell_[i];
      ++counts[static_cast<std::size_t>(tab_cell_[i])];
    }

    // Per-cell 3x3 neighbour table, resolved once: the detection loop
    // then costs one array load per event instead of nine hash probes.
    // Entry order is (dx, dy) row-major, matching the scan's historical
    // iteration order exactly.
    neighbors_.resize(counts.size());
    for (std::size_t c = 0; c < counts.size(); ++c) {
      int k = 0;
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        for (std::int64_t dy = -1; dy <= 1; ++dy) {
          neighbors_[c][static_cast<std::size_t>(k++)] =
              Find(cell_cx_[c] + dx, cell_cy_[c] + dy);
        }
      }
    }

    begin_.resize(counts.size() + 1, 0);
    for (std::size_t c = 0; c < counts.size(); ++c) {
      begin_[c + 1] = begin_[c] + counts[c];
    }
    x_.resize(n);
    y_.resize(n);
    time_.resize(n);
    user_.resize(n);
    id_.resize(n);
    std::vector<std::uint32_t> fill(counts.size(), 0);
    for (std::size_t id = 0; id < n; ++id) {
      const auto cell = static_cast<std::size_t>(event_cell_[id]);
      const std::size_t pos = begin_[cell] + fill[cell]++;
      x_[pos] = flat[id].position.x;
      y_[pos] = flat[id].position.y;
      time_[pos] = flat[id].time;
      user_[pos] = flat[id].user;
      id_[pos] = static_cast<std::uint32_t>(id);
    }
  }

  /// Dense cell id for grid coordinates, or -1 when the cell is empty.
  [[nodiscard]] std::int32_t Find(std::int64_t cx,
                                  std::int64_t cy) const noexcept {
    const std::size_t mask = tab_cell_.size() - 1;
    std::size_t i = Hash(cx, cy) & mask;
    while (tab_cell_[i] != -1) {
      if (tab_cx_[i] == cx && tab_cy_[i] == cy) return tab_cell_[i];
      i = (i + 1) & mask;
    }
    return -1;
  }

  /// Dense cell id of event `id`, and that cell's resolved 3x3
  /// neighbourhood in (dx, dy) row-major scan order (-1 = empty cell).
  [[nodiscard]] std::int32_t EventCell(std::size_t id) const {
    return event_cell_[id];
  }
  [[nodiscard]] const std::array<std::int32_t, 9>& Neighbors(
      std::int32_t cell) const {
    return neighbors_[static_cast<std::size_t>(cell)];
  }

  /// [begin, end) slice of a dense cell in the SoA arrays (id-ascending).
  [[nodiscard]] std::size_t CellBegin(std::int32_t cell) const {
    return begin_[static_cast<std::size_t>(cell)];
  }
  [[nodiscard]] std::size_t CellEnd(std::int32_t cell) const {
    return begin_[static_cast<std::size_t>(cell) + 1];
  }

  [[nodiscard]] double x(std::size_t i) const { return x_[i]; }
  [[nodiscard]] double y(std::size_t i) const { return y_[i]; }
  [[nodiscard]] util::Timestamp time(std::size_t i) const { return time_[i]; }
  [[nodiscard]] model::UserId user(std::size_t i) const { return user_[i]; }
  [[nodiscard]] std::uint32_t id(std::size_t i) const { return id_[i]; }

  /// Contiguous coordinate slices, the vector scans' load targets.
  [[nodiscard]] const double* x_data() const noexcept { return x_.data(); }
  [[nodiscard]] const double* y_data() const noexcept { return y_.data(); }

  /// First index in the cell slice whose flat id exceeds `flat_id`.
  [[nodiscard]] std::size_t FirstAbove(std::int32_t cell,
                                       std::uint32_t flat_id) const {
    const auto first = id_.begin() + static_cast<std::ptrdiff_t>(
                                         CellBegin(cell));
    const auto last =
        id_.begin() + static_cast<std::ptrdiff_t>(CellEnd(cell));
    return static_cast<std::size_t>(
        std::upper_bound(first, last, flat_id) - id_.begin());
  }

 private:
  [[nodiscard]] static std::size_t Hash(std::int64_t cx,
                                        std::int64_t cy) noexcept {
    return geo::HashCell2D(cx, cy);
  }

  double cell_size_;
  std::vector<std::int64_t> tab_cx_, tab_cy_;
  std::vector<std::int32_t> tab_cell_;
  std::vector<std::int64_t> cell_cx_, cell_cy_;
  std::vector<std::array<std::int32_t, 9>> neighbors_;
  std::vector<std::int32_t> event_cell_;
  std::vector<std::size_t> begin_;
  std::vector<double> x_, y_;
  std::vector<util::Timestamp> time_;
  std::vector<model::UserId> user_;
  std::vector<std::uint32_t> id_;
};

/// Flat slot per event, computed up front so projection parallelizes; the
/// projection itself runs 4 fixes per step with the scalar op order
/// preserved (Project4 lanes are bit-identical to Project).
std::vector<FlatEvent> FlattenAndProject(const model::DatasetView& input,
                                         const geo::LocalProjection& projection) {
  const auto& traces = input.traces();
  std::vector<std::size_t> offset(traces.size() + 1, 0);
  for (std::size_t t = 0; t < traces.size(); ++t) {
    offset[t + 1] = offset[t] + traces[t].size();
  }
  std::vector<FlatEvent> flat(offset.back());
  util::ParallelForEach(traces.size(), [&](std::size_t t) {
    using util::F64x4;
    const model::TraceView& trace = traces[t];
    const model::UserId user = trace.user();
    const auto tt = static_cast<std::uint32_t>(t);
    FlatEvent* slot = flat.data() + offset[t];
    std::uint32_t i = 0;
    const auto n = static_cast<std::uint32_t>(trace.size());
    for (; i + util::kSimdWidth <= n; i += util::kSimdWidth) {
      const F64x4 lat = F64x4::Set(trace.lat(i), trace.lat(i + 1),
                                   trace.lat(i + 2), trace.lat(i + 3));
      const F64x4 lng = F64x4::Set(trace.lng(i), trace.lng(i + 1),
                                   trace.lng(i + 2), trace.lng(i + 3));
      F64x4 x, y;
      projection.Project4(lat, lng, x, y);
      double tx[4], ty[4];
      x.Store(tx);
      y.Store(ty);
      for (int k = 0; k < util::kSimdWidth; ++k) {
        slot[i + k] = FlatEvent{tt, i + static_cast<std::uint32_t>(k),
                                geo::Point2{tx[k], ty[k]},
                                trace.time(i + k), user};
      }
    }
    for (; i < n; ++i) {
      const geo::Point2 p = projection.Project(trace.position(i));
      slot[i] = FlatEvent{tt, i, p, trace.time(i), user};
    }
  });
  return flat;
}

/// Encounter detection via the cell-bucketed event grid. The per-cell
/// position window test runs 4 candidates per step; the cheap user/time
/// checks and pair emission stay scalar on the surviving mask bits, in
/// ascending candidate order — the sequence is byte-identical to the
/// scalar scan (the vector mask is the exact inverse of the scalar
/// `d2 > r2` skip, so NaN coordinates survive it identically too).
std::vector<Encounter> DetectEncounters(const MixZoneConfig& config,
                                        const std::vector<FlatEvent>& flat,
                                        const EventCellGrid& grid) {
  const double radius = config.zone_radius_m;
  const double r_sq = radius * radius;
  // Cell size equals the query radius, so every radius-r disc is covered
  // by the 3x3 cell neighbourhood of its centre (grid.Neighbors).
  // Each id-range block collects its encounters independently; blocks are
  // concatenated in id order afterwards, so the encounter sequence (and
  // with it the greedy zone clustering) is byte-identical to a serial
  // scan whatever the worker count.
  const std::size_t block_size = 1024;
  const std::size_t blocks = (flat.size() + block_size - 1) / block_size;
  std::vector<std::vector<Encounter>> block_encounters(blocks);
  util::ParallelForEach(blocks, [&](std::size_t block) {
    using util::F64x4;
    const F64x4 vr2 = F64x4::Set1(r_sq);
    const std::uint64_t lo = block * block_size;
    const std::uint64_t hi =
        std::min<std::uint64_t>(flat.size(), lo + block_size);
    for (std::uint64_t id = lo; id < hi; ++id) {
      const FlatEvent& a = flat[id];
      const F64x4 vax = F64x4::Set1(a.position.x);
      const F64x4 vay = F64x4::Set1(a.position.y);
      // Scalar user/time filter + emission for one in-radius candidate.
      const auto emit = [&](std::size_t j) {
        if (a.user == grid.user(j)) return;
        if (std::abs(a.time - grid.time(j)) > config.time_window_s) return;
        block_encounters[block].push_back(Encounter{
            geo::Midpoint(a.position, {grid.x(j), grid.y(j)}),
            std::min(a.time, grid.time(j))});
      };
      // The grid pre-resolves each cell's 3x3 neighbourhood in the same
      // (dx, dy) order the historical nested loop probed, so swapping the
      // nine hash lookups for one table row keeps the candidate sequence
      // byte-identical.
      for (const std::int32_t cell : grid.Neighbors(grid.EventCell(id))) {
        if (cell < 0) continue;
        const std::size_t end = grid.CellEnd(cell);
        std::size_t j =
            grid.FirstAbove(cell, static_cast<std::uint32_t>(id));
        for (; j + util::kSimdWidth <= end; j += util::kSimdWidth) {
          const F64x4 ddx = F64x4::Load(grid.x_data() + j) - vax;
          const F64x4 ddy = F64x4::Load(grid.y_data() + j) - vay;
          // Candidates are the lanes NOT skipped by d2 > r2.
          int m = ~util::MoveMask(
                      util::CmpLt(vr2, ddx * ddx + ddy * ddy)) &
                  0xF;
          while (m != 0) {
            emit(j + static_cast<std::size_t>(
                         std::countr_zero(static_cast<unsigned>(m))));
            m &= m - 1;
          }
        }
        for (; j < end; ++j) {
          const double ddx = grid.x(j) - a.position.x;
          const double ddy = grid.y(j) - a.position.y;
          if (ddx * ddx + ddy * ddy > r_sq) continue;
          emit(j);
        }
      }
    }
  });
  std::vector<Encounter> encounters;
  for (const auto& block : block_encounters) {
    encounters.insert(encounters.end(), block.begin(), block.end());
  }
  return encounters;
}

/// Stable per-trace time ordering on columns — the exact permutation
/// Trace::SortByTime (std::stable_sort on time <) applies to events.
void SortColumnsByTime(StitchedColumns& st) {
  if (std::is_sorted(st.time.begin(), st.time.end())) return;
  const std::size_t n = st.time.size();
  std::vector<std::uint32_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  std::stable_sort(idx.begin(), idx.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return st.time[a] < st.time[b];
                   });
  std::vector<double> lat(n), lng(n);
  std::vector<util::Timestamp> time(n);
  for (std::size_t i = 0; i < n; ++i) {
    lat[i] = st.lat[idx[i]];
    lng[i] = st.lng[idx[i]];
    time[i] = st.time[idx[i]];
  }
  st.lat = std::move(lat);
  st.lng = std::move(lng);
  st.time = std::move(time);
}

/// The whole mechanism: detection, clustering, occurrence grouping,
/// identity permutation and reassembly — everything except the final
/// packaging of the stitched columns, which the Dataset and EventStore
/// entry points each do natively. Output traces arrive per-trace
/// time-sorted, in (ascending final identity, chronological) order — the
/// exact trace order and bytes of the historical Dataset path.
std::vector<StitchedColumns> MixCore(const MixZoneConfig& config,
                                     const model::DatasetView& input,
                                     util::Rng& rng, MixZoneReport& report) {
  report = MixZoneReport{};
  report.total_events = input.EventCount();

  // ---- 0. Project everything onto one dataset-wide tangent plane. ----
  const geo::GeoBoundingBox bbox = input.BoundingBox();
  const geo::LocalProjection projection(
      bbox.IsEmpty() ? geo::LatLng{0.0, 0.0} : bbox.Center());
  const auto& traces = input.traces();
  const std::vector<FlatEvent> flat = FlattenAndProject(input, projection);

  // ---- 1. Encounter detection via the cell-bucketed event grid. ----
  const double radius = config.zone_radius_m;
  const double r_sq = radius * radius;
  const std::int64_t span = 1;
  const EventCellGrid grid(radius, flat);
  const std::vector<Encounter> encounters =
      DetectEncounters(config, flat, grid);
  report.encounters = encounters.size();

  // ---- 2. Greedy zone clustering (first-fit by centre distance). ----
  // Centers are immutable once created, so a grid over them answers the
  // first-fit probe ("is any existing center within the zone radius?") in
  // O(1) instead of scanning every center per encounter — AnyWithin
  // early-exits on the first hit, never collecting the neighbour list.
  std::vector<geo::Point2> zone_centers;
  geo::GridIndex center_index(config.zone_radius_m);
  for (const Encounter& e : encounters) {
    if (center_index.AnyWithin(e.midpoint, config.zone_radius_m)) continue;
    center_index.Insert(e.midpoint,
                        static_cast<std::uint64_t>(zone_centers.size()));
    zone_centers.push_back(e.midpoint);
  }

  // ---- 3 & 4. Per-zone passages and occurrence grouping. ----
  struct Occurrence {
    std::size_t zone = 0;
    std::vector<ZonePassage> passages;
    util::Timestamp end = 0;  // latest exit among passages
  };
  // Every zone's passage/occurrence detection is independent: compute them
  // in parallel into per-zone outcomes, then merge in zone order so the
  // result is identical to the serial zone-by-zone scan.
  struct ZoneOutcome {
    MixZoneInfo info;
    std::vector<Occurrence> occurrences;
    std::vector<std::size_t> anonymity_set_sizes;
  };
  std::vector<ZoneOutcome> outcomes(zone_centers.size());
  util::ParallelForEach(zone_centers.size(), [&](std::size_t z) {
    using util::F64x4;
    ZoneOutcome& outcome = outcomes[z];
    const geo::Point2 center = zone_centers[z];
    // In-zone events come straight from the event grid; a passage is a
    // maximal run of consecutive fixes of one trace inside the disc, i.e.
    // a maximal run of consecutive flat indices among the hits (flat ids
    // are assigned per trace in time order). Traces that never touch the
    // zone cost nothing. The disc test runs 4 events per step (the same
    // d2 <= r2 predicate as the scalar tail).
    std::vector<std::uint64_t> hits;
    const F64x4 vcx = F64x4::Set1(center.x);
    const F64x4 vcy = F64x4::Set1(center.y);
    const F64x4 vr2 = F64x4::Set1(r_sq);
    const auto ccx =
        static_cast<std::int64_t>(std::floor(center.x / radius));
    const auto ccy =
        static_cast<std::int64_t>(std::floor(center.y / radius));
    for (std::int64_t dx = -span; dx <= span; ++dx) {
      for (std::int64_t dy = -span; dy <= span; ++dy) {
        const std::int32_t cell = grid.Find(ccx + dx, ccy + dy);
        if (cell < 0) continue;
        const std::size_t end = grid.CellEnd(cell);
        std::size_t j = grid.CellBegin(cell);
        for (; j + util::kSimdWidth <= end; j += util::kSimdWidth) {
          const F64x4 ddx = F64x4::Load(grid.x_data() + j) - vcx;
          const F64x4 ddy = F64x4::Load(grid.y_data() + j) - vcy;
          int m = util::MoveMask(util::CmpLe(ddx * ddx + ddy * ddy, vr2));
          while (m != 0) {
            hits.push_back(grid.id(
                j + static_cast<std::size_t>(
                        std::countr_zero(static_cast<unsigned>(m)))));
            m &= m - 1;
          }
        }
        for (; j < end; ++j) {
          const double ddx = grid.x(j) - center.x;
          const double ddy = grid.y(j) - center.y;
          if (ddx * ddx + ddy * ddy <= r_sq) hits.push_back(grid.id(j));
        }
      }
    }
    std::sort(hits.begin(), hits.end());
    std::vector<ZonePassage> passages;
    std::size_t h = 0;
    while (h < hits.size()) {
      const FlatEvent& first = flat[hits[h]];
      std::size_t run_end = h;
      while (run_end + 1 < hits.size() &&
             hits[run_end + 1] == hits[run_end] + 1 &&
             flat[hits[run_end + 1]].trace == first.trace) {
        ++run_end;
      }
      const FlatEvent& last = flat[hits[run_end]];
      passages.push_back(ZonePassage{first.trace,
                                     traces[first.trace].user(), first.time,
                                     last.time, first.index, last.index});
      h = run_end + 1;
    }
    // Group passages whose intervals (dilated by the time window) overlap.
    std::sort(passages.begin(), passages.end(),
              [](const ZonePassage& a, const ZonePassage& b) {
                return a.enter < b.enter;
              });
    MixZoneInfo& info = outcome.info;
    info.center = center;
    info.radius_m = config.zone_radius_m;
    std::size_t group_start = 0;
    util::Timestamp group_end = std::numeric_limits<util::Timestamp>::min();
    const auto flush_group = [&](std::size_t first, std::size_t last) {
      if (first >= last) return;
      Occurrence occ;
      occ.zone = z;
      occ.passages.assign(passages.begin() + static_cast<std::ptrdiff_t>(first),
                          passages.begin() + static_cast<std::ptrdiff_t>(last));
      std::size_t distinct_users = 0;
      {
        std::vector<model::UserId> users;
        for (const auto& p : occ.passages) users.push_back(p.user);
        std::sort(users.begin(), users.end());
        distinct_users = static_cast<std::size_t>(
            std::unique(users.begin(), users.end()) - users.begin());
      }
      if (distinct_users < config.min_users) return;
      occ.end = 0;
      for (const auto& p : occ.passages) occ.end = std::max(occ.end, p.exit);
      ++info.occurrences;
      info.max_anonymity_set =
          std::max(info.max_anonymity_set, occ.passages.size());
      outcome.anonymity_set_sizes.push_back(occ.passages.size());
      outcome.occurrences.push_back(std::move(occ));
    };
    for (std::size_t k = 0; k < passages.size(); ++k) {
      if (k == group_start) {
        group_end = passages[k].exit;
        continue;
      }
      if (passages[k].enter <= group_end + config.time_window_s) {
        group_end = std::max(group_end, passages[k].exit);
      } else {
        flush_group(group_start, k);
        group_start = k;
        group_end = passages[k].exit;
      }
    }
    flush_group(group_start, passages.size());
  });

  std::vector<Occurrence> occurrences;
  report.zones.reserve(zone_centers.size());
  // zone_centers index -> index in report.zones (only mixing zones appear).
  std::vector<std::ptrdiff_t> zone_report_index(zone_centers.size(), -1);
  for (std::size_t z = 0; z < zone_centers.size(); ++z) {
    ZoneOutcome& outcome = outcomes[z];
    if (outcome.info.occurrences > 0) {
      zone_report_index[z] =
          static_cast<std::ptrdiff_t>(report.zones.size());
      report.zones.push_back(outcome.info);
    }
    report.anonymity_set_sizes.insert(report.anonymity_set_sizes.end(),
                                      outcome.anonymity_set_sizes.begin(),
                                      outcome.anonymity_set_sizes.end());
    for (Occurrence& occ : outcome.occurrences) {
      occurrences.push_back(std::move(occ));
    }
  }
  report.occurrences = occurrences.size();

  // ---- 5. Chronological identity permutation + suppression marking. ----
  std::sort(occurrences.begin(), occurrences.end(),
            [](const Occurrence& a, const Occurrence& b) {
              return a.end < b.end;
            });
  std::vector<model::UserId> owner(traces.size());
  for (std::uint32_t t = 0; t < traces.size(); ++t) {
    owner[t] = traces[t].user();
  }
  std::vector<std::vector<bool>> suppressed(traces.size());
  for (std::uint32_t t = 0; t < traces.size(); ++t) {
    suppressed[t].assign(traces[t].size(), false);
  }
  // Per trace: (time, owner-from-then-on), appended in chronological order.
  std::vector<std::vector<std::pair<util::Timestamp, model::UserId>>>
      switches(traces.size());

  for (const Occurrence& occ : occurrences) {
    if (config.suppress_zone_points) {
      for (const ZonePassage& p : occ.passages) {
        for (std::uint32_t i = p.first_event; i <= p.last_event; ++i) {
          if (!suppressed[p.trace][i]) {
            suppressed[p.trace][i] = true;
            ++report.suppressed_events;
          }
        }
      }
    }
    // Unique participating traces (a trace can pass the zone twice within
    // one occurrence; it gets a single identity slot).
    std::vector<std::uint32_t> participants;
    for (const ZonePassage& p : occ.passages) participants.push_back(p.trace);
    std::sort(participants.begin(), participants.end());
    participants.erase(
        std::unique(participants.begin(), participants.end()),
        participants.end());
    if (participants.size() < 2) continue;

    OccurrenceInfo detail;
    detail.zone_index = static_cast<std::size_t>(
        zone_report_index[occ.zone] < 0 ? 0 : zone_report_index[occ.zone]);
    for (const std::uint32_t trace_idx : participants) {
      detail.users.push_back(traces[trace_idx].user());
    }
    std::sort(detail.users.begin(), detail.users.end());
    detail.users.erase(
        std::unique(detail.users.begin(), detail.users.end()),
        detail.users.end());

    std::vector<std::size_t> perm(participants.size());
    std::iota(perm.begin(), perm.end(), 0);
    rng.Shuffle(std::span<std::size_t>(perm));
    bool is_identity = true;
    for (std::size_t k = 0; k < perm.size(); ++k) {
      if (perm[k] != k) {
        is_identity = false;
        break;
      }
    }
    detail.swapped = !is_identity;
    report.occurrence_details.push_back(detail);
    if (is_identity) continue;  // drew the identity permutation: no swap
    ++report.swaps_applied;

    std::vector<model::UserId> old_owners(participants.size());
    for (std::size_t k = 0; k < participants.size(); ++k) {
      old_owners[k] = owner[participants[k]];
    }
    for (std::size_t k = 0; k < participants.size(); ++k) {
      const model::UserId new_owner = old_owners[perm[k]];
      const std::uint32_t trace_idx = participants[k];
      if (owner[trace_idx] == new_owner) continue;
      owner[trace_idx] = new_owner;
      // The identity changes from this trace's own exit time onwards.
      util::Timestamp exit_time = occ.end;
      for (const ZonePassage& p : occ.passages) {
        if (p.trace == trace_idx) exit_time = p.exit;
      }
      switches[trace_idx].emplace_back(exit_time, new_owner);
    }
  }

  // Within one trace, apply identity switches in time order regardless of
  // the (occurrence-end) order they were generated in.
  for (auto& sw : switches) {
    std::stable_sort(sw.begin(), sw.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
  }

  // ---- 6. Reassemble output traces under final identities. ----
  // Each input trace is cut into segments at its identity switches; the
  // segments of one identity are then stitched back together only when
  // temporally adjacent (gap <= time window, i.e. the same mixing episode).
  // Pooling an identity's whole day into one trace would fabricate
  // continuity across recording sessions — and the session gap at a POI
  // would hand the attacker exactly the dwell the mechanism hides.
  //
  // Everything below is column-native: segments copy the view's lat/lng/
  // time columns directly and the output stays columns to the end — no
  // model::Event is built anywhere in the mechanism.
  //
  // A segment remembers whether it was severed by a zone (an identity
  // switch), as opposed to simply being the start/end of a recording
  // session. Only zone-severed ends may be stitched to zone-severed starts:
  // that reconnects a pseudonym's stream across the zone (A's prefix +
  // B's suffix) without fabricating continuity across session gaps.
  struct Segment {
    std::vector<double> lat, lng;
    std::vector<util::Timestamp> time;
    bool starts_at_zone = false;  // began right after an identity switch
    bool ends_at_zone = false;    // ended right before an identity switch
    [[nodiscard]] bool empty() const noexcept { return time.empty(); }
  };
  // Segment extraction is per-trace independent (each trace reads only its
  // own switches/suppression), so it fans out on the pool; per-trace
  // segment lists merge in trace order afterwards, reproducing the exact
  // per-identity segment sequence the serial trace-by-trace scan built.
  std::vector<std::vector<std::pair<model::UserId, Segment>>> trace_segments(
      traces.size());
  util::ParallelForEach(traces.size(), [&](std::size_t t) {
    const model::TraceView& trace = traces[t];
    const auto& sw = switches[t];
    auto& out_segments = trace_segments[t];
    Segment current;
    model::UserId current_owner = trace.user();
    for (std::uint32_t i = 0; i < trace.size(); ++i) {
      if (suppressed[t][i]) continue;
      const util::Timestamp time = trace.time(i);
      model::UserId who = trace.user();
      for (const auto& [switch_time, new_owner] : sw) {
        if (time > switch_time) {
          who = new_owner;
        } else {
          break;
        }
      }
      if (who != current_owner && !current.empty()) {
        current.ends_at_zone = true;
        out_segments.emplace_back(current_owner, std::move(current));
        current = Segment{};
        current.starts_at_zone = true;
      }
      current_owner = who;
      current.lat.push_back(trace.lat(i));
      current.lng.push_back(trace.lng(i));
      current.time.push_back(time);
    }
    if (!current.empty()) {
      out_segments.emplace_back(current_owner, std::move(current));
    }
  });
  std::map<model::UserId, std::vector<Segment>> segments;
  for (auto& per_trace : trace_segments) {
    for (auto& [identity, segment] : per_trace) {
      segments[identity].push_back(std::move(segment));
    }
  }

  // Stitching is per-identity independent: each identity sorts and stitches
  // its own segments into traces in parallel, and the per-identity results
  // concatenate in ascending identity order — the order the serial map walk
  // emitted them in. Each finished trace gets the stable per-trace time
  // sort the Dataset path historically applied via SortAll().
  std::vector<std::pair<const model::UserId, std::vector<Segment>>*> by_id;
  by_id.reserve(segments.size());
  for (auto& entry : segments) by_id.push_back(&entry);
  std::vector<std::vector<StitchedColumns>> stitched_traces(by_id.size());
  util::ParallelForEach(by_id.size(), [&](std::size_t k) {
    const model::UserId identity = by_id[k]->first;
    std::vector<Segment>& segs = by_id[k]->second;
    std::sort(segs.begin(), segs.end(),
              [](const Segment& a, const Segment& b) {
                return a.time.front() < b.time.front();
              });
    StitchedColumns stitched;
    stitched.user = identity;
    bool stitched_open_at_zone = false;  // last segment ended at a zone
    const auto flush = [&] {
      if (!stitched.time.empty()) {
        SortColumnsByTime(stitched);
        stitched_traces[k].push_back(std::move(stitched));
        stitched = StitchedColumns{};
        stitched.user = identity;
      }
    };
    for (auto& seg : segs) {
      const bool joinable =
          !stitched.time.empty() && stitched_open_at_zone &&
          seg.starts_at_zone &&
          seg.time.front() - stitched.time.back() <= config.time_window_s;
      if (!joinable) flush();
      stitched.lat.insert(stitched.lat.end(), seg.lat.begin(),
                          seg.lat.end());
      stitched.lng.insert(stitched.lng.end(), seg.lng.begin(),
                          seg.lng.end());
      stitched.time.insert(stitched.time.end(), seg.time.begin(),
                           seg.time.end());
      stitched_open_at_zone = seg.ends_at_zone;
    }
    flush();
  });
  std::vector<StitchedColumns> out;
  std::size_t total_traces = 0;
  for (const auto& identity_traces : stitched_traces) {
    total_traces += identity_traces.size();
  }
  out.reserve(total_traces);
  for (auto& identity_traces : stitched_traces) {
    for (auto& st : identity_traces) {
      out.push_back(std::move(st));
    }
  }
  return out;
}

}  // namespace

std::string MixZoneReport::ToString() const {
  std::ostringstream os;
  os << "zones=" << zones.size() << " occurrences=" << occurrences
     << " encounters=" << encounters << " swaps=" << swaps_applied
     << " suppressed=" << suppressed_events << "/" << total_events << " ("
     << util::FormatDouble(100.0 * SuppressionRatio(), 2) << "%)";
  return os.str();
}

MixZone::MixZone(MixZoneConfig config) : config_(config) {
  assert(config_.zone_radius_m > 0.0);
  assert(config_.time_window_s > 0);
  assert(config_.min_users >= 2);
}

std::string MixZone::Name() const {
  return "mixzone[r=" + util::FormatDouble(config_.zone_radius_m, 0) +
         "m,w=" + std::to_string(config_.time_window_s) + "s]";
}

model::Dataset MixZone::Apply(const model::Dataset& input,
                              util::Rng& rng) const {
  MixZoneReport report;
  return ApplyWithReport(input, rng, report);
}

model::Dataset MixZone::ApplyView(const model::DatasetView& input,
                                  util::Rng& rng) const {
  MixZoneReport report;
  return ApplyViewWithReport(input, rng, report);
}

model::Dataset MixZone::ApplyWithReport(const model::Dataset& input,
                                        util::Rng& rng,
                                        MixZoneReport& report) const {
  return ApplyViewWithReport(model::DatasetView::Of(input), rng, report);
}

model::Dataset MixZone::ApplyViewWithReport(const model::DatasetView& input,
                                            util::Rng& rng,
                                            MixZoneReport& report) const {
  const std::vector<StitchedColumns> stitched =
      MixCore(config_, input, rng, report);
  model::Dataset output;
  for (model::UserId id = 0; id < input.UserCount(); ++id) {
    output.InternUser(input.UserName(id));
  }
  for (const StitchedColumns& st : stitched) {
    std::vector<model::Event> events;
    events.reserve(st.size());
    for (std::size_t i = 0; i < st.size(); ++i) {
      events.push_back(
          model::Event{geo::LatLng{st.lat[i], st.lng[i]}, st.time[i]});
    }
    output.AddTrace(model::Trace(st.user, std::move(events)));
  }
  return output;
}

model::EventStore MixZone::ApplyToStore(const model::DatasetView& input,
                                        util::Rng& rng) const {
  MixZoneReport report;
  return ApplyToStoreWithReport(input, rng, report);
}

model::EventStore MixZone::ApplyToStoreWithReport(
    const model::DatasetView& input, util::Rng& rng,
    MixZoneReport& report) const {
  const std::vector<StitchedColumns> stitched =
      MixCore(config_, input, rng, report);

  // Prefix-sum trace sizes into column offsets, then bulk-copy each
  // stitched trace's columns into its pre-sized slot (disjoint slices, so
  // the copies parallelize freely).
  std::vector<std::size_t> offset(stitched.size() + 1, 0);
  for (std::size_t t = 0; t < stitched.size(); ++t) {
    offset[t + 1] = offset[t] + stitched[t].size();
  }
  const std::size_t total = offset.back();
  std::vector<double> lat(total);
  std::vector<double> lng(total);
  std::vector<util::Timestamp> time(total);
  util::ParallelForEach(stitched.size(), [&](std::size_t t) {
    const StitchedColumns& st = stitched[t];
    const std::size_t at = offset[t];
    std::copy(st.lat.begin(), st.lat.end(), lat.begin() + at);
    std::copy(st.lng.begin(), st.lng.end(), lng.begin() + at);
    std::copy(st.time.begin(), st.time.end(), time.begin() + at);
  });

  std::vector<model::EventStore::TraceRange> table;
  table.reserve(stitched.size());
  for (std::size_t t = 0; t < stitched.size(); ++t) {
    table.push_back(model::EventStore::TraceRange{stitched[t].user,
                                                  offset[t], offset[t + 1]});
  }

  // Names carried through in id order, exactly like the Dataset path's
  // InternUser loop (and the per-trace mechanisms' store path).
  std::vector<std::string> names;
  names.reserve(input.UserCount());
  for (model::UserId id = 0;
       id < static_cast<model::UserId>(input.UserCount()); ++id) {
    names.push_back(input.UserName(id));
  }
  return model::EventStore::FromColumns(std::move(names), std::move(table),
                                        std::move(lat), std::move(lng),
                                        std::move(time));
}

std::size_t MixZone::CountEncounters(const model::DatasetView& input) const {
  const geo::GeoBoundingBox bbox = input.BoundingBox();
  const geo::LocalProjection projection(
      bbox.IsEmpty() ? geo::LatLng{0.0, 0.0} : bbox.Center());
  const std::vector<FlatEvent> flat = FlattenAndProject(input, projection);
  const EventCellGrid grid(config_.zone_radius_m, flat);
  return DetectEncounters(config_, flat, grid).size();
}

}  // namespace mobipriv::mech
