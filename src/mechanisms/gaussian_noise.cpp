#include "mechanisms/gaussian_noise.h"

#include <cassert>

#include "geo/projection.h"
#include "util/simd.h"
#include "util/string_utils.h"

namespace mobipriv::mech {

GaussianNoise::GaussianNoise(GaussianNoiseConfig config) : config_(config) {
  assert(config_.sigma_m >= 0.0);
}

std::string GaussianNoise::Name() const {
  return "gaussian[sigma=" + util::FormatDouble(config_.sigma_m, 0) + "m]";
}

void GaussianNoise::ApplyToTraceColumns(const model::TraceView& trace,
                                        model::TraceBuffer& out,
                                        util::Rng& rng) const {
  if (trace.empty()) return;
  const geo::LocalProjection projection(trace.BoundingBox().Center());
  const std::size_t n = trace.size();
  const auto rows = out.Extend(n);
  using util::F64x4;
  std::size_t i = 0;
  // RNG draws stay scalar, in the exact per-fix order of the scalar loop
  // (x then y noise per point); only the post-draw coordinate math runs
  // 4-wide. Same ops in the same order -> bit-identical to the tail.
  for (; i + util::kSimdWidth <= n; i += util::kSimdWidth) {
    double nx[4], ny[4];
    for (int k = 0; k < util::kSimdWidth; ++k) {
      nx[k] = rng.Gaussian(0.0, config_.sigma_m);
      ny[k] = rng.Gaussian(0.0, config_.sigma_m);
    }
    const F64x4 lat = F64x4::Set(trace.lat(i), trace.lat(i + 1),
                                 trace.lat(i + 2), trace.lat(i + 3));
    const F64x4 lng = F64x4::Set(trace.lng(i), trace.lng(i + 1),
                                 trace.lng(i + 2), trace.lng(i + 3));
    F64x4 x, y;
    projection.Project4(lat, lng, x, y);
    x = x + F64x4::Load(nx);
    y = y + F64x4::Load(ny);
    F64x4 olat, olng;
    projection.Unproject4(x, y, olat, olng);
    olat.Store(rows.lat + i);
    olng.Store(rows.lng + i);
    rows.time[i] = trace.time(i);
    rows.time[i + 1] = trace.time(i + 1);
    rows.time[i + 2] = trace.time(i + 2);
    rows.time[i + 3] = trace.time(i + 3);
  }
  for (; i < n; ++i) {
    geo::Point2 p = projection.Project(trace.position(i));
    p.x += rng.Gaussian(0.0, config_.sigma_m);
    p.y += rng.Gaussian(0.0, config_.sigma_m);
    const geo::LatLng q = projection.Unproject(p);
    rows.lat[i] = q.lat;
    rows.lng[i] = q.lng;
    rows.time[i] = trace.time(i);
  }
}

model::Trace GaussianNoise::ApplyToTrace(const model::Trace& trace,
                                         util::Rng& rng) const {
  return ApplyToTraceViaColumns(trace, rng);
}

}  // namespace mobipriv::mech
