#include "mechanisms/gaussian_noise.h"

#include <cassert>

#include "geo/projection.h"
#include "util/string_utils.h"

namespace mobipriv::mech {

GaussianNoise::GaussianNoise(GaussianNoiseConfig config) : config_(config) {
  assert(config_.sigma_m >= 0.0);
}

std::string GaussianNoise::Name() const {
  return "gaussian[sigma=" + util::FormatDouble(config_.sigma_m, 0) + "m]";
}

void GaussianNoise::ApplyToTraceColumns(const model::TraceView& trace,
                                        model::TraceBuffer& out,
                                        util::Rng& rng) const {
  if (trace.empty()) return;
  const geo::LocalProjection projection(trace.BoundingBox().Center());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    geo::Point2 p = projection.Project(trace.position(i));
    p.x += rng.Gaussian(0.0, config_.sigma_m);
    p.y += rng.Gaussian(0.0, config_.sigma_m);
    out.Append(projection.Unproject(p), trace.time(i));
  }
}

model::Trace GaussianNoise::ApplyToTrace(const model::Trace& trace,
                                         util::Rng& rng) const {
  return ApplyToTraceViaColumns(trace, rng);
}

}  // namespace mobipriv::mech
