#include "mechanisms/gaussian_noise.h"

#include <cassert>

#include "geo/projection.h"
#include "util/string_utils.h"

namespace mobipriv::mech {

GaussianNoise::GaussianNoise(GaussianNoiseConfig config) : config_(config) {
  assert(config_.sigma_m >= 0.0);
}

std::string GaussianNoise::Name() const {
  return "gaussian[sigma=" + util::FormatDouble(config_.sigma_m, 0) + "m]";
}

model::Trace GaussianNoise::ApplyToTrace(const model::Trace& trace,
                                         util::Rng& rng) const {
  model::Trace out;
  out.set_user(trace.user());
  if (trace.empty()) return out;
  const geo::LocalProjection projection(trace.BoundingBox().Center());
  for (const auto& event : trace) {
    geo::Point2 p = projection.Project(event.position);
    p.x += rng.Gaussian(0.0, config_.sigma_m);
    p.y += rng.Gaussian(0.0, config_.sigma_m);
    out.Append(model::Event{projection.Unproject(p), event.time});
  }
  return out;
}

}  // namespace mobipriv::mech
