// Geo-indistinguishability baseline (Andres et al., CCS'13 [2]): each
// location is independently perturbed with noise drawn from the planar
// Laplace distribution, the mechanism that achieves eps-geo-
// indistinguishability. The paper (Section II) reports that on real data
// this does *not* prevent POI extraction — at least 60 % of POIs survive
// even at high privacy levels — because a cloud of noisy points around a
// long stop still forms a cluster. Bench E2 reproduces that qualitative
// result against our POI attack.
//
// Sampling follows the authors' polar method: angle uniform in [0, 2*pi);
// radius r = C_eps^{-1}(p) = -(1/eps) * (W_{-1}((p-1)/e) + 1) with W_{-1}
// the lower branch of the Lambert W function, implemented here with a
// Halley iteration (no external dependencies).
#pragma once

#include "mechanisms/mechanism.h"

namespace mobipriv::mech {

struct GeoIndConfig {
  /// Privacy budget per point, in 1/metres. eps = ln(x)/r means locations r
  /// metres apart have likelihood ratio at most x. Typical evaluated range:
  /// 0.001 (strong, ~km-scale noise) to 0.1 (weak, ~10 m noise).
  double epsilon = 0.01;
};

/// Lower branch W_{-1}(x) of the Lambert W function for x in [-1/e, 0).
/// Exposed for direct testing against the defining identity W*e^W = x.
[[nodiscard]] double LambertWMinus1(double x);

/// Draws one planar-Laplace radius for budget `epsilon` (inverse-CDF).
[[nodiscard]] double SamplePlanarLaplaceRadius(double epsilon,
                                               util::Rng& rng);

class GeoIndistinguishability final : public PerTraceMechanism {
 public:
  explicit GeoIndistinguishability(GeoIndConfig config = {});

  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] const GeoIndConfig& config() const noexcept {
    return config_;
  }

 protected:
  [[nodiscard]] model::Trace ApplyToTrace(const model::Trace& trace,
                                          util::Rng& rng) const override;
  void ApplyToTraceColumns(const model::TraceView& trace,
                           model::TraceBuffer& out,
                           util::Rng& rng) const override;

 private:
  GeoIndConfig config_;
};

}  // namespace mobipriv::mech
