// Temporal downsampling baseline: publish at most one fix per
// `min_interval_s`. Degrades the adversary's sampling rate rather than the
// locations themselves; also used by E6 to derive low-rate inputs.
#pragma once

#include "mechanisms/mechanism.h"

namespace mobipriv::mech {

struct DownsamplingConfig {
  util::Timestamp min_interval_s = 120;  ///< minimum gap between kept fixes
};

class Downsampling final : public PerTraceMechanism {
 public:
  explicit Downsampling(DownsamplingConfig config = {});

  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] const DownsamplingConfig& config() const noexcept {
    return config_;
  }

 protected:
  [[nodiscard]] model::Trace ApplyToTrace(const model::Trace& trace,
                                          util::Rng& rng) const override;
  void ApplyToTraceColumns(const model::TraceView& trace,
                           model::TraceBuffer& out,
                           util::Rng& rng) const override;

 private:
  DownsamplingConfig config_;
};

}  // namespace mobipriv::mech
