#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "attacks/poi_extraction.h"
#include "core/evaluator.h"
#include "core/output_cache.h"
#include "core/shard_exec.h"
#include "core/worker_protocol.h"
#include "mechanisms/mechanism.h"
#include "mechanisms/registry.h"
#include "model/columnar_file.h"
#include "model/event_store.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/spec.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace mobipriv::core {
namespace {

namespace fault = util::fault;

/// One node of the compiled DAG. Nodes are stored in topological order
/// (mechanisms before their evaluations), so the serial fallback is a
/// plain index loop.
struct DagNode {
  std::function<void()> work;
  std::vector<std::size_t> dependents;
  std::size_t dependency_count = 0;
};

/// Per-node outcome of one DAG execution (graceful degradation: nothing
/// rethrows; every node gets a verdict).
enum class NodeStatus { kOk, kFailed, kSkipped };
struct NodeResult {
  NodeStatus status = NodeStatus::kOk;
  std::string error;  ///< exception text / watchdog verdict; empty when ok
};

/// Canonical watchdog verdict. Deliberately free of measured times: the
/// error row must be byte-identical at any thread count and on any
/// machine, so only the (deterministic) configured limit appears.
std::string WatchdogError(double timeout_ms) {
  return "node exceeded node_timeout (" +
         util::FormatDouble(timeout_ms, 0) + " ms watchdog)";
}

/// Executes the DAG with per-node error containment. A node that throws
/// is recorded kFailed (exception text captured); every transitive
/// dependent is recorded kSkipped with the root cause, WITHOUT running;
/// all other branches complete normally. With `node_timeout_ms` > 0, a
/// node whose work exceeds the wall-clock budget is recorded kFailed
/// after completion (containment, not preemption — see ScenarioSpec).
///
/// Parallel path: every dependency-free node is submitted to the shared
/// pool; completions decrement their dependents' pending counts and
/// submit newly-ready nodes. All results land in pre-sized slots, so
/// scheduling order never shows in the output.
std::vector<NodeResult> ExecuteDag(std::vector<DagNode>& nodes,
                                   double node_timeout_ms) {
  std::vector<NodeResult> results(nodes.size());

  // Runs one node's work in containment: records ok/failed (+ watchdog).
  const auto run_contained = [&](std::size_t index) {
    NodeResult& result = results[index];
    const auto start = std::chrono::steady_clock::now();
    try {
      nodes[index].work();
    } catch (const std::exception& e) {
      result.status = NodeStatus::kFailed;
      result.error = e.what();
      return;
    } catch (...) {
      result.status = NodeStatus::kFailed;
      result.error = "unknown exception";
      return;
    }
    if (node_timeout_ms > 0.0) {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      if (elapsed_ms > node_timeout_ms) {
        result.status = NodeStatus::kFailed;
        result.error = WatchdogError(node_timeout_ms);
      }
    }
  };
  // Marks `dependent` skipped because `index` did not finish ok. First
  // cause wins (a node with two failed dependencies reports the one that
  // reached it first — in the serial schedule that is the lower index,
  // and the parallel path pins the same choice via the skip guard below).
  const auto skip_reason = [&](std::size_t index) {
    const NodeResult& cause = results[index];
    return cause.status == NodeStatus::kFailed
               ? "dependency failed: " + cause.error
               : cause.error;  // transitively skipped: forward root cause
  };

  // Effective worker count 1, or a DAG too small to amortize a pool
  // round-trip: run the topological order inline (nodes are stored in
  // dependency order, so a plain index loop is a valid schedule).
  if (util::ParallelismLevel() <= 1 || nodes.size() <= 1) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (results[i].status == NodeStatus::kOk) run_contained(i);
      if (results[i].status == NodeStatus::kOk) continue;
      for (const std::size_t dependent : nodes[i].dependents) {
        if (results[dependent].status == NodeStatus::kOk) {
          results[dependent].status = NodeStatus::kSkipped;
          results[dependent].error = skip_reason(i);
        }
      }
    }
    return results;
  }

  std::vector<std::atomic<std::size_t>> pending(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    pending[i].store(nodes[i].dependency_count, std::memory_order_relaxed);
  }

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t completed = 0;

  util::ThreadPool& pool = util::ThreadPool::Global();
  std::function<void(std::size_t)> run_node = [&](std::size_t index) {
    bool skipped;
    {
      // The skip mark (written by a failed parent under this mutex,
      // before it decrements our pending count) is visible here: the
      // last decrement happens-before this node runs.
      const std::lock_guard<std::mutex> lock(mutex);
      skipped = results[index].status == NodeStatus::kSkipped;
    }
    if (!skipped) run_contained(index);
    const bool propagate = results[index].status != NodeStatus::kOk;
    for (const std::size_t dependent : nodes[index].dependents) {
      if (propagate) {
        const std::lock_guard<std::mutex> lock(mutex);
        // First cause wins; a dependent two failed parents race for is
        // claimed exactly once.
        if (results[dependent].status == NodeStatus::kOk) {
          results[dependent].status = NodeStatus::kSkipped;
          results[dependent].error = skip_reason(index);
        }
      }
      if (pending[dependent].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        pool.Submit([&run_node, dependent] { run_node(dependent); });
      }
    }
    {
      // Notify under the lock: the waiter owns this stack frame, so it
      // must not be able to wake, return and destroy the cv while this
      // worker is still inside notify_one.
      const std::lock_guard<std::mutex> lock(mutex);
      ++completed;
      done_cv.notify_one();
    }
  };

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].dependency_count == 0) {
      pool.Submit([&run_node, i] { run_node(i); });
    }
  }
  std::unique_lock<std::mutex> lock(mutex);
  done_cv.wait(lock, [&] { return completed == nodes.size(); });
  return results;
}

}  // namespace

std::string_view ToString(RowStatus status) noexcept {
  switch (status) {
    case RowStatus::kOk:
      return "ok";
    case RowStatus::kFailed:
      return "failed";
    case RowStatus::kSkipped:
      return "skipped";
  }
  return "unknown";
}

bool Report::AllOk() const noexcept {
  return std::all_of(rows_.begin(), rows_.end(), [](const ReportRow& row) {
    return row.status == RowStatus::kOk;
  });
}

Table Report::ToTable() const {
  Table table({"mechanism", "seed", "evaluator", "metric", "value", "status",
               "error"});
  for (const ReportRow& row : rows_) {
    // Non-ok rows render a blank value: 0.0 would read as a measurement.
    table.AddRow({row.mechanism, std::to_string(row.seed), row.evaluator,
                  row.metric,
                  row.status == RowStatus::kOk
                      ? util::FormatDouble(row.value, kValuePrecision)
                      : std::string(),
                  std::string(ToString(row.status)), row.error});
  }
  return table;
}

std::string Report::ToCsv() const { return ToTable().ToCsv(); }

Table Report::Pivot(std::string_view evaluator) const {
  // Collect metric columns in first-appearance order, then one wide row
  // per (mechanism, seed) in row order.
  std::vector<std::string> metrics;
  for (const ReportRow& row : rows_) {
    if (row.evaluator != evaluator) continue;
    if (row.status != RowStatus::kOk) continue;  // no "" metric column
    if (std::find(metrics.begin(), metrics.end(), row.metric) ==
        metrics.end()) {
      metrics.push_back(row.metric);
    }
  }
  std::vector<std::string> headers = {"mechanism", "seed"};
  headers.insert(headers.end(), metrics.begin(), metrics.end());
  Table table(std::move(headers));

  std::vector<std::pair<std::string, std::uint64_t>> keys;
  std::map<std::pair<std::string, std::uint64_t>,
           std::vector<std::string>> cells;
  for (const ReportRow& row : rows_) {
    if (row.evaluator != evaluator) continue;
    if (row.status != RowStatus::kOk) continue;  // degraded cells stay blank
    const auto key = std::make_pair(row.mechanism, row.seed);
    auto it = cells.find(key);
    if (it == cells.end()) {
      keys.push_back(key);
      it = cells.emplace(key, std::vector<std::string>(metrics.size()))
               .first;
    }
    const auto column = std::find(metrics.begin(), metrics.end(), row.metric);
    it->second[static_cast<std::size_t>(column - metrics.begin())] =
        util::FormatDouble(row.value, kValuePrecision);
  }
  for (const auto& key : keys) {
    std::vector<std::string> row = {key.first, std::to_string(key.second)};
    const auto& values = cells[key];
    row.insert(row.end(), values.begin(), values.end());
    table.AddRow(std::move(row));
  }
  return table;
}

std::string EngineStats::ToString() const {
  std::ostringstream os;
  os << "grid_cells=" << grid_cells
     << " mechanism_nodes=" << mechanism_nodes
     << " evaluator_nodes=" << evaluator_nodes;
  if (stage_reuses > 0) os << " stage_reuses=" << stage_reuses;
  if (cache_hits + cache_misses > 0) {
    os << " cache_hits=" << cache_hits << " cache_misses=" << cache_misses;
  }
  if (cache_read_retries > 0) {
    os << " cache_read_retries=" << cache_read_retries;
  }
  if (cache_evictions > 0) os << " cache_evictions=" << cache_evictions;
  if (streamed_shards > 0) os << " streamed_shards=" << streamed_shards;
  if (workers_spawned > 0) {
    os << " workers_spawned=" << workers_spawned
       << " worker_restarts=" << worker_restarts
       << " worker_failures=" << worker_failures;
  }
  if (failed_nodes + skipped_nodes > 0) {
    os << " failed_nodes=" << failed_nodes
       << " skipped_nodes=" << skipped_nodes;
  }
  os << " bind_ms=" << util::FormatDouble(bind_ms, 2)
     << " run_ms=" << util::FormatDouble(run_ms, 2);
  return os.str();
}

struct ScenarioEngine::Compiled {
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  /// One memoized stage node: a distinct (prefix canonical name, seed)
  /// pair. The instance is built from the stage's ORIGINAL spec text,
  /// never from the canonical name — Name() prints numbers at fixed
  /// precision, so re-parsing it could silently change parameters (e.g.
  /// eps=0.00004 -> "eps=0.0000" -> 0.0). One instance per node because
  /// some baselines keep mutable per-Apply scratch (e.g. Wait4Me's
  /// suppression ratio) that must not be shared between
  /// concurrently-running nodes.
  struct StagePlan {
    std::string prefix_name;  ///< stage names [0..k] joined with '|'
    std::string spec_text;    ///< original stage spec text (worker dispatch)
    std::size_t parent = kNoParent;  ///< previous stage's node, if any
    std::size_t seed_index = 0;
    std::unique_ptr<mech::Mechanism> instance;
  };
  /// One report row group: a deduped chain (possibly single-stage) of the
  /// spec, in first-appearance order. Rows that canonicalize to the same
  /// chain name share everything (first spec text wins).
  struct RowPlan {
    std::string name;                   ///< canonical chain Name()
    std::vector<std::size_t> terminal;  ///< last stage node, per seed index
  };

  ScenarioSpec spec;
  std::vector<StagePlan> stage_nodes;  ///< parents precede children
  std::vector<RowPlan> rows;
  std::size_t stage_refs = 0;  ///< total (row, seed, stage) references
  std::vector<std::string> eval_names;
  std::vector<std::unique_ptr<Evaluator>> evaluators;
  bool ran = false;
};

ScenarioEngine::ScenarioEngine(ScenarioSpec spec)
    : compiled_(std::make_unique<Compiled>()) {
  compiled_->spec = std::move(spec);
  Compiled& c = *compiled_;
  const ScenarioSpec& s = c.spec;
  if (s.mechanisms.empty()) {
    throw util::SpecError("scenario has no mechanisms");
  }
  if (s.evaluators.empty()) {
    throw util::SpecError("scenario has no evaluators");
  }
  if (s.seeds.empty()) throw util::SpecError("scenario has no seeds");

  const std::size_t seed_count = s.seeds.size();
  // (prefix canonical name, seed index) -> stage node. The map is the
  // in-memory memoization: rows sharing a chain prefix reuse its nodes.
  std::map<std::pair<std::string, std::size_t>, std::size_t> node_index;
  for (const std::string& text : s.mechanisms) {
    const util::SpecChain chain = util::SpecChain::Parse(text);
    std::vector<std::string> stage_texts;
    std::vector<std::string> stage_names;
    for (const util::Spec& stage : chain.stages()) {
      // Spec entries keep values verbatim, so ToString() reproduces the
      // stage's original text (no precision loss).
      stage_texts.push_back(stage.ToString());
      stage_names.push_back(
          mech::CreateMechanism(stage_texts.back())->Name());
    }
    const std::string chain_name = util::Join(stage_names, "|");
    if (std::any_of(c.rows.begin(), c.rows.end(),
                    [&](const Compiled::RowPlan& row) {
                      return row.name == chain_name;
                    })) {
      continue;  // deduped: first spec text wins
    }
    Compiled::RowPlan row;
    row.name = chain_name;
    row.terminal.resize(seed_count);
    for (std::size_t seed = 0; seed < seed_count; ++seed) {
      std::size_t parent = Compiled::kNoParent;
      std::string prefix;
      for (std::size_t k = 0; k < stage_names.size(); ++k) {
        if (k > 0) prefix += "|";
        prefix += stage_names[k];
        ++c.stage_refs;
        const auto key = std::make_pair(prefix, seed);
        auto it = node_index.find(key);
        if (it == node_index.end()) {
          Compiled::StagePlan plan;
          plan.prefix_name = prefix;
          plan.spec_text = stage_texts[k];
          plan.parent = parent;
          plan.seed_index = seed;
          plan.instance = mech::CreateMechanism(stage_texts[k]);
          c.stage_nodes.push_back(std::move(plan));
          it = node_index.emplace(key, c.stage_nodes.size() - 1).first;
        }
        parent = it->second;
      }
      row.terminal[seed] = parent;
    }
    c.rows.push_back(std::move(row));
  }
  for (const std::string& text : s.evaluators) {
    auto evaluator = CreateEvaluator(text);
    std::string name = evaluator->Name();
    if (std::find(c.eval_names.begin(), c.eval_names.end(), name) ==
        c.eval_names.end()) {
      c.eval_names.push_back(std::move(name));
      c.evaluators.push_back(std::move(evaluator));
    }
  }
}

ScenarioEngine::~ScenarioEngine() = default;

Report ScenarioEngine::Run() {
  Compiled& c = *compiled_;
  if (c.ran) throw std::logic_error("ScenarioEngine::Run called twice");
  c.ran = true;

  // threads == 0 inherits the ambient level (a --threads flag or an
  // enclosing ScopedParallelism); ScopedParallelism(0) would instead
  // RESET to the hardware default, so only scope when explicitly set.
  std::optional<util::ScopedParallelism> scope;
  if (c.spec.threads != 0) scope.emplace(c.spec.threads);

  const std::vector<std::uint64_t>& seeds = c.spec.seeds;
  const std::size_t seed_count = seeds.size();
  const std::size_t eval_count = c.evaluators.size();
  const std::size_t stage_count = c.stage_nodes.size();
  const std::size_t row_count = c.rows.size();
  const std::size_t eval_nodes = row_count * seed_count * eval_count;

  stats_.grid_cells =
      c.spec.mechanisms.size() * seed_count * c.spec.evaluators.size();
  stats_.mechanism_nodes = stage_count;
  stats_.stage_reuses = c.stage_refs - stage_count;
  stats_.evaluator_nodes = eval_nodes;

  // ---- Report assembly, shared by both executors. ---------------------
  // A row whose terminal did not finish ok contributes one
  // mechanism-level error row (empty evaluator/metric) followed by one
  // skipped row per evaluator; a terminal skipped by an interior stage
  // failure forwards the root cause. A failed evaluator node contributes
  // one error row for its cell. The assembly reads only node_results and
  // results slots — both indexed, never schedule-ordered — so degraded
  // reports are as reproducible as healthy ones.
  const auto assemble =
      [&](const std::vector<NodeResult>& node_results,
          const std::vector<std::vector<MetricValue>>& results) {
        for (const NodeResult& result : node_results) {
          if (result.status == NodeStatus::kFailed) ++stats_.failed_nodes;
          if (result.status == NodeStatus::kSkipped) ++stats_.skipped_nodes;
        }
        const auto to_row_status = [](NodeStatus status) {
          return status == NodeStatus::kFailed ? RowStatus::kFailed
                                               : RowStatus::kSkipped;
        };
        Report report;
        for (std::size_t r = 0; r < row_count; ++r) {
          for (std::size_t s = 0; s < seed_count; ++s) {
            const NodeResult& terminal_result =
                node_results[c.rows[r].terminal[s]];
            if (terminal_result.status != NodeStatus::kOk) {
              report.rows_.push_back({c.rows[r].name, seeds[s], "", "", 0.0,
                                      to_row_status(terminal_result.status),
                                      terminal_result.error});
            }
            for (std::size_t e = 0; e < eval_count; ++e) {
              const std::size_t slot = (r * seed_count + s) * eval_count + e;
              const NodeResult& eval_result = node_results[stage_count + slot];
              if (eval_result.status != NodeStatus::kOk) {
                report.rows_.push_back({c.rows[r].name, seeds[s],
                                        c.eval_names[e], "", 0.0,
                                        to_row_status(eval_result.status),
                                        eval_result.error});
                continue;
              }
              for (const MetricValue& value : results[slot]) {
                report.rows_.push_back({c.rows[r].name, seeds[s],
                                        c.eval_names[e], value.metric,
                                        value.value, RowStatus::kOk, {}});
              }
            }
          }
        }
        return report;
      };

  // ---- Shard-streamed path (out-of-core execution). -------------------
  // Engages only when semantics are provably identical to the whole-view
  // DAG: a shard-dir source whose layout ProbeShardStream accepts, every
  // grid row a single-stage per-trace mechanism (cross-trace mechanisms
  // and chains need the whole view), every evaluator foldable
  // (core::TraceFold), no output cache (its keys fingerprint the whole
  // source) and no watchdog (a per-node wall clock has no meaning for
  // interleaved shard passes). Everything else falls back to the DAG.
  bool foldable =
      c.spec.source.kind == DatasetSourceSpec::Kind::kShardDir &&
      c.spec.mechanism_cache_dir.empty();
  for (std::size_t i = 0; foldable && i < stage_count; ++i) {
    foldable = c.stage_nodes[i].parent == Compiled::kNoParent &&
               dynamic_cast<const mech::PerTraceMechanism*>(
                   c.stage_nodes[i].instance.get()) != nullptr;
  }
  for (std::size_t e = 0; foldable && e < eval_count; ++e) {
    foldable = c.evaluators[e]->MakeTraceFold(seeds[0]) != nullptr;
  }
  // The multi-process path additionally needs a worker binary; the
  // watchdog is COMPATIBLE with it (it becomes the per-request deadline,
  // with real preemption), while the in-process streamed path must leave
  // watchdogged grids to the DAG.
  std::string worker_binary;
  if (foldable && c.spec.workers > 0) {
    worker_binary = c.spec.worker_binary.empty() ? DefaultWorkerBinary()
                                                 : c.spec.worker_binary;
  }
  const bool want_workers = foldable && !worker_binary.empty();
  const bool streamable = foldable && c.spec.node_timeout_ms == 0.0;
  std::optional<ShardStreamPlan> stream;
  if (want_workers || streamable) {
    // The probe is this path's bind: manifest + per-shard metadata, no
    // event column ever resident.
    const auto probe_start = std::chrono::steady_clock::now();
    stream = ProbeShardStream(c.spec.source.path);
    stats_.bind_ms += std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - probe_start)
                          .count();
  }

  // ---- Supervised multi-process path (core/shard_exec.h). -------------
  // Mechanism stages run in disposable worker processes (one per shard
  // subset) with heartbeat liveness, per-request deadlines and bounded
  // retry; the supervisor-side merge below then mirrors the streamed
  // path, reading each stage's published columns from the workers'
  // atomically-written `.mpc` result files instead of recomputing them.
  // `.mpc` round-trips doubles bitwise and per-trace RNG streams are
  // partition-independent, so the merged report is byte-identical to the
  // in-process run at any worker count. A stage whose retries exhaust
  // (or whose worker reports a permanent error) degrades to the same
  // failed/skipped rows the DAG would produce.
  if (stream && want_workers) {
    const ShardStreamPlan& plan = *stream;
    stats_.streamed_shards = plan.shard_count;
    std::vector<NodeResult> node_results(stage_count + eval_nodes);
    std::vector<std::vector<MetricValue>> results(eval_nodes);
    stats_.run_ms = TimeMs([&] {
      // Engine-side injected stage faults fire before any dispatch, with
      // the same error text as the other executors.
      for (std::size_t i = 0; i < stage_count; ++i) {
        const Compiled::StagePlan& stage = c.stage_nodes[i];
        if (MOBIPRIV_FAULT_POINT_KEYED(fault::points::kEngineMechanismRun,
                                       stage.prefix_name)) {
          node_results[i] = {
              NodeStatus::kFailed,
              "injected fault (" +
                  std::string(fault::points::kEngineMechanismRun) +
                  "): " + stage.prefix_name};
        }
      }

      // Result handoff directory, removed wholesale on exit (including
      // any torn temp a killed worker left behind).
      struct ScratchDir {
        std::string path;
        ~ScratchDir() {
          if (path.empty()) return;
          std::error_code ec;
          std::filesystem::remove_all(path, ec);
        }
      } scratch;
      scratch.path = MakeScratchDir();

      const auto stage_stem = [](std::size_t n) {
        return "stage-" + std::to_string(n);
      };
      std::vector<ShardStageTask> tasks;
      std::vector<std::size_t> task_stage;
      for (std::size_t i = 0; i < stage_count; ++i) {
        if (node_results[i].status != NodeStatus::kOk) continue;
        const Compiled::StagePlan& stage = c.stage_nodes[i];
        ShardStageTask task;
        task.spec_text = stage.spec_text;
        task.prefix_name = stage.prefix_name;
        task.stem = stage_stem(i);
        task.seed = seeds[stage.seed_index];
        tasks.push_back(std::move(task));
        task_stage.push_back(i);
      }
      ShardExecOptions exec_options;
      exec_options.worker_binary = worker_binary;
      exec_options.workers = c.spec.workers;
      exec_options.request_timeout_ms = c.spec.node_timeout_ms;
      ShardExecStats exec_stats;
      const std::vector<ShardStageOutcome> outcomes =
          RunShardStagesMultiProcess(plan, tasks, scratch.path, exec_options,
                                     &exec_stats);
      stats_.workers_spawned = exec_stats.workers_spawned;
      stats_.worker_restarts = exec_stats.worker_restarts;
      stats_.worker_failures = exec_stats.worker_failures;
      for (std::size_t t = 0; t < tasks.size(); ++t) {
        if (!outcomes[t].ok) {
          node_results[task_stage[t]] = {NodeStatus::kFailed,
                                         outcomes[t].error};
        }
      }

      // Post-supervision result loss is not retryable any more; the
      // stage degrades with a deterministic (basename-only) error.
      const auto torn_error = [&](std::size_t n, std::size_t s) {
        return "result missing or torn after supervision: " +
               std::filesystem::path(
                   wp::StageShardPath(scratch.path, stage_stem(n), s))
                   .filename()
                   .string();
      };

      // Merge pass 0 (extents): original bbox/time span from the source
      // shards, published bbox from each surviving stage's result files.
      geo::GeoBoundingBox original_bbox;
      std::vector<geo::GeoBoundingBox> published_bbox(stage_count);
      util::Timestamp t_min = std::numeric_limits<util::Timestamp>::max();
      util::Timestamp t_max = std::numeric_limits<util::Timestamp>::min();
      for (std::size_t s = 0; s < plan.shard_count; ++s) {
        const model::MappedColumnar mapped =
            model::MapColumnar(model::ShardDataPath(plan.dir, s));
        for (std::size_t i = 0; i < mapped.TraceCount(); ++i) {
          const model::TraceView trace = mapped.View(i);
          original_bbox.Extend(trace.BoundingBox());
          if (!trace.empty()) {
            t_min = std::min(t_min, trace.time(0));
            t_max = std::max(t_max, trace.time(trace.size() - 1));
          }
        }
        for (std::size_t n = 0; n < stage_count; ++n) {
          if (node_results[n].status != NodeStatus::kOk) continue;
          try {
            const model::MappedColumnar result = model::MapColumnar(
                wp::StageShardPath(scratch.path, stage_stem(n), s));
            for (std::size_t i = 0; i < result.TraceCount(); ++i) {
              const model::TraceView trace = result.View(i);
              for (std::size_t f = 0; f < trace.size(); ++f) {
                published_bbox[n].Extend(trace.position(f));
              }
            }
          } catch (const std::exception&) {
            node_results[n] = {NodeStatus::kFailed, torn_error(n, s)};
          }
        }
      }

      // One fold per grid cell whose terminal survived (skip and fault
      // verdicts mirror the DAG's evaluator nodes exactly).
      std::vector<std::unique_ptr<TraceFold>> folds(eval_nodes);
      for (std::size_t r = 0; r < row_count; ++r) {
        for (std::size_t s = 0; s < seed_count; ++s) {
          const std::size_t terminal = c.rows[r].terminal[s];
          for (std::size_t e = 0; e < eval_count; ++e) {
            const std::size_t slot = (r * seed_count + s) * eval_count + e;
            NodeResult& cell = node_results[stage_count + slot];
            if (node_results[terminal].status != NodeStatus::kOk) {
              cell = {NodeStatus::kSkipped,
                      "dependency failed: " + node_results[terminal].error};
              continue;
            }
            if (MOBIPRIV_FAULT_POINT_KEYED(
                    fault::points::kEngineEvaluatorRun, c.eval_names[e])) {
              cell = {NodeStatus::kFailed,
                      "injected fault (" +
                          std::string(fault::points::kEngineEvaluatorRun) +
                          "): " + c.eval_names[e]};
              continue;
            }
            folds[slot] = c.evaluators[e]->MakeTraceFold(seeds[s]);
          }
        }
      }

      // Merge pass 1 (folds): per shard, the original views come from
      // the source shard and each stage's published views from its
      // result file (same trace order, re-labelled into the global user
      // id space); every live fold gets its slice in ascending shard
      // order, exactly like the in-process streamed executor.
      for (std::size_t s = 0; s < plan.shard_count; ++s) {
        const model::MappedColumnar mapped =
            model::MapColumnar(model::ShardDataPath(plan.dir, s));
        const std::vector<model::UserId>& l2g = plan.local_to_global[s];
        const std::size_t trace_count = mapped.TraceCount();
        std::vector<model::TraceView> original(trace_count);
        for (std::size_t i = 0; i < trace_count; ++i) {
          original[i] = mapped.View(i).WithUser(l2g[mapped.TraceUser(i)]);
        }
        std::vector<model::MappedColumnar> stage_results(stage_count);
        std::vector<std::vector<model::TraceView>> published(stage_count);
        for (std::size_t n = 0; n < stage_count; ++n) {
          if (node_results[n].status != NodeStatus::kOk) continue;
          try {
            stage_results[n] = model::MapColumnar(
                wp::StageShardPath(scratch.path, stage_stem(n), s));
            if (stage_results[n].TraceCount() != trace_count) {
              throw model::IoError("trace count mismatch");
            }
          } catch (const std::exception&) {
            node_results[n] = {NodeStatus::kFailed, torn_error(n, s)};
            continue;
          }
          published[n].resize(trace_count);
          for (std::size_t i = 0; i < trace_count; ++i) {
            published[n][i] =
                stage_results[n].View(i).WithUser(original[i].user());
          }
        }
        for (std::size_t r = 0; r < row_count; ++r) {
          for (std::size_t ss = 0; ss < seed_count; ++ss) {
            const std::size_t terminal = c.rows[r].terminal[ss];
            if (node_results[terminal].status != NodeStatus::kOk) continue;
            for (std::size_t e = 0; e < eval_count; ++e) {
              const std::size_t slot =
                  (r * seed_count + ss) * eval_count + e;
              NodeResult& cell = node_results[stage_count + slot];
              if (cell.status != NodeStatus::kOk || !folds[slot]) continue;
              ShardSlice slice;
              slice.original = original;
              slice.canonical_index = plan.origin[s];
              slice.published = published[terminal];
              slice.user_count = plan.global_names.size();
              slice.original_bbox = original_bbox;
              slice.published_bbox = published_bbox[terminal];
              slice.original_t_min = t_min;
              slice.original_t_max = t_max;
              try {
                folds[slot]->AccumulateShard(slice);
              } catch (const std::exception& ex) {
                cell = {NodeStatus::kFailed, ex.what()};
              } catch (...) {
                cell = {NodeStatus::kFailed, "unknown exception"};
              }
            }
          }
        }
      }

      // A stage failing mid-merge strands its cells' partial folds: mark
      // them skipped exactly like the DAG would, then finalize survivors.
      for (std::size_t r = 0; r < row_count; ++r) {
        for (std::size_t s = 0; s < seed_count; ++s) {
          const std::size_t terminal = c.rows[r].terminal[s];
          for (std::size_t e = 0; e < eval_count; ++e) {
            const std::size_t slot = (r * seed_count + s) * eval_count + e;
            NodeResult& cell = node_results[stage_count + slot];
            if (node_results[terminal].status != NodeStatus::kOk &&
                cell.status == NodeStatus::kOk) {
              cell = {NodeStatus::kSkipped,
                      "dependency failed: " + node_results[terminal].error};
              folds[slot].reset();
            }
            if (cell.status != NodeStatus::kOk || !folds[slot]) continue;
            try {
              results[slot] = folds[slot]->Finalize();
            } catch (const std::exception& ex) {
              cell = {NodeStatus::kFailed, ex.what()};
            } catch (...) {
              cell = {NodeStatus::kFailed, "unknown exception"};
            }
          }
        }
      }
    });
    return assemble(node_results, results);
  }

  if (stream && streamable) {
    const ShardStreamPlan& plan = *stream;
    stats_.streamed_shards = plan.shard_count;
    std::vector<NodeResult> node_results(stage_count + eval_nodes);
    std::vector<std::vector<MetricValue>> results(eval_nodes);
    stats_.run_ms = TimeMs([&] {
      // Per-stage master draws: the one NextU64 ApplyToStore makes, from
      // the same per-prefix stream — so every per-trace rng
      // (master, user, original index) matches the DAG path bit for bit.
      std::vector<std::uint64_t> masters(stage_count, 0);
      std::vector<const mech::PerTraceMechanism*> kernels(stage_count,
                                                          nullptr);
      for (std::size_t i = 0; i < stage_count; ++i) {
        const Compiled::StagePlan& stage = c.stage_nodes[i];
        if (MOBIPRIV_FAULT_POINT_KEYED(fault::points::kEngineMechanismRun,
                                       stage.prefix_name)) {
          node_results[i] = {
              NodeStatus::kFailed,
              "injected fault (" +
                  std::string(fault::points::kEngineMechanismRun) +
                  "): " + stage.prefix_name};
          continue;
        }
        util::Rng rng(util::DeriveStreamSeed(
            seeds[stage.seed_index],
            model::Fnv1a64(stage.prefix_name.data(),
                           stage.prefix_name.size()),
            0));
        masters[i] = rng.NextU64();
        kernels[i] = static_cast<const mech::PerTraceMechanism*>(
            stage.instance.get());
      }
      const auto fail_stage = [&](std::size_t n) {
        try {
          throw;
        } catch (const std::exception& e) {
          node_results[n] = {NodeStatus::kFailed, e.what()};
        } catch (...) {
          node_results[n] = {NodeStatus::kFailed, "unknown exception"};
        }
      };

      // Pass 0 (extents): fold the full-dataset bounding boxes and time
      // span every fold's slice must carry, running each surviving
      // mechanism trace by trace into a reused scratch buffer. Pass 1
      // re-derives the identical per-trace streams, so recomputing is a
      // determinism no-op — the price of never holding two passes' state.
      geo::GeoBoundingBox original_bbox;
      std::vector<geo::GeoBoundingBox> published_bbox(stage_count);
      util::Timestamp t_min = std::numeric_limits<util::Timestamp>::max();
      util::Timestamp t_max = std::numeric_limits<util::Timestamp>::min();
      model::TraceBuffer scratch;
      for (std::size_t s = 0; s < plan.shard_count; ++s) {
        const model::MappedColumnar mapped =
            model::MapColumnar(model::ShardDataPath(plan.dir, s));
        const std::vector<model::UserId>& l2g = plan.local_to_global[s];
        for (std::size_t i = 0; i < mapped.TraceCount(); ++i) {
          const model::TraceView trace =
              mapped.View(i).WithUser(l2g[mapped.TraceUser(i)]);
          original_bbox.Extend(trace.BoundingBox());
          if (!trace.empty()) {
            t_min = std::min(t_min, trace.time(0));
            t_max = std::max(t_max, trace.time(trace.size() - 1));
          }
          for (std::size_t n = 0; n < stage_count; ++n) {
            if (node_results[n].status != NodeStatus::kOk) continue;
            scratch.Clear();
            try {
              kernels[n]->ApplyToIndexedTrace(trace, masters[n],
                                              plan.origin[s][i], scratch);
            } catch (...) {
              fail_stage(n);
              continue;
            }
            for (std::size_t f = 0; f < scratch.size(); ++f) {
              published_bbox[n].Extend(
                  geo::LatLng{scratch.lat()[f], scratch.lng()[f]});
            }
          }
        }
      }

      // One fold per grid cell whose terminal survived pass 0 (skip and
      // fault verdicts mirror the DAG's evaluator nodes exactly).
      std::vector<std::unique_ptr<TraceFold>> folds(eval_nodes);
      for (std::size_t r = 0; r < row_count; ++r) {
        for (std::size_t s = 0; s < seed_count; ++s) {
          const std::size_t terminal = c.rows[r].terminal[s];
          for (std::size_t e = 0; e < eval_count; ++e) {
            const std::size_t slot = (r * seed_count + s) * eval_count + e;
            NodeResult& cell = node_results[stage_count + slot];
            if (node_results[terminal].status != NodeStatus::kOk) {
              cell = {NodeStatus::kSkipped,
                      "dependency failed: " + node_results[terminal].error};
              continue;
            }
            if (MOBIPRIV_FAULT_POINT_KEYED(
                    fault::points::kEngineEvaluatorRun, c.eval_names[e])) {
              cell = {NodeStatus::kFailed,
                      "injected fault (" +
                          std::string(fault::points::kEngineEvaluatorRun) +
                          "): " + c.eval_names[e]};
              continue;
            }
            folds[slot] = c.evaluators[e]->MakeTraceFold(seeds[s]);
          }
        }
      }

      // Pass 1 (folds): map one shard, materialize each surviving stage's
      // output for THAT shard only, feed every live fold its slice, drop
      // everything, move on — the resident set the streamed path
      // promises: one shard's input plus one shard's outputs.
      for (std::size_t s = 0; s < plan.shard_count; ++s) {
        const model::MappedColumnar mapped =
            model::MapColumnar(model::ShardDataPath(plan.dir, s));
        const std::vector<model::UserId>& l2g = plan.local_to_global[s];
        const std::size_t trace_count = mapped.TraceCount();
        std::vector<model::TraceView> original(trace_count);
        for (std::size_t i = 0; i < trace_count; ++i) {
          original[i] = mapped.View(i).WithUser(l2g[mapped.TraceUser(i)]);
        }
        std::vector<model::TraceBuffer> buffers(stage_count);
        std::vector<std::vector<std::size_t>> ends(stage_count);
        std::vector<std::vector<model::TraceView>> published(stage_count);
        for (std::size_t n = 0; n < stage_count; ++n) {
          if (node_results[n].status != NodeStatus::kOk) continue;
          ends[n].resize(trace_count);
          try {
            for (std::size_t i = 0; i < trace_count; ++i) {
              kernels[n]->ApplyToIndexedTrace(original[i], masters[n],
                                              plan.origin[s][i],
                                              buffers[n]);
              ends[n][i] = buffers[n].size();
            }
          } catch (...) {
            fail_stage(n);
            continue;
          }
          // Views over the filled buffer (stable now: no more appends).
          // An empty range is a suppressed trace.
          published[n].resize(trace_count);
          const std::span<const double> lat = buffers[n].lat();
          const std::span<const double> lng = buffers[n].lng();
          const std::span<const util::Timestamp> time = buffers[n].time();
          std::size_t begin = 0;
          for (std::size_t i = 0; i < trace_count; ++i) {
            const std::size_t count = ends[n][i] - begin;
            published[n][i] = model::TraceView(
                original[i].user(),
                model::StridedSpan<double>(lat.data() + begin, count,
                                           sizeof(double)),
                model::StridedSpan<double>(lng.data() + begin, count,
                                           sizeof(double)),
                model::StridedSpan<util::Timestamp>(
                    time.data() + begin, count, sizeof(util::Timestamp)));
            begin = ends[n][i];
          }
        }
        for (std::size_t r = 0; r < row_count; ++r) {
          for (std::size_t ss = 0; ss < seed_count; ++ss) {
            const std::size_t terminal = c.rows[r].terminal[ss];
            if (node_results[terminal].status != NodeStatus::kOk) continue;
            for (std::size_t e = 0; e < eval_count; ++e) {
              const std::size_t slot =
                  (r * seed_count + ss) * eval_count + e;
              NodeResult& cell = node_results[stage_count + slot];
              if (cell.status != NodeStatus::kOk || !folds[slot]) continue;
              ShardSlice slice;
              slice.original = original;
              slice.canonical_index = plan.origin[s];
              slice.published = published[terminal];
              slice.user_count = plan.global_names.size();
              slice.original_bbox = original_bbox;
              slice.published_bbox = published_bbox[terminal];
              slice.original_t_min = t_min;
              slice.original_t_max = t_max;
              try {
                folds[slot]->AccumulateShard(slice);
              } catch (const std::exception& ex) {
                cell = {NodeStatus::kFailed, ex.what()};
              } catch (...) {
                cell = {NodeStatus::kFailed, "unknown exception"};
              }
            }
          }
        }
      }

      // A stage failing mid-stream strands its cells' partial folds: mark
      // them skipped exactly like the DAG would, then finalize survivors.
      for (std::size_t r = 0; r < row_count; ++r) {
        for (std::size_t s = 0; s < seed_count; ++s) {
          const std::size_t terminal = c.rows[r].terminal[s];
          for (std::size_t e = 0; e < eval_count; ++e) {
            const std::size_t slot = (r * seed_count + s) * eval_count + e;
            NodeResult& cell = node_results[stage_count + slot];
            if (node_results[terminal].status != NodeStatus::kOk &&
                cell.status == NodeStatus::kOk) {
              cell = {NodeStatus::kSkipped,
                      "dependency failed: " + node_results[terminal].error};
              folds[slot].reset();
            }
            if (cell.status != NodeStatus::kOk || !folds[slot]) continue;
            try {
              results[slot] = folds[slot]->Finalize();
            } catch (const std::exception& ex) {
              cell = {NodeStatus::kFailed, ex.what()};
            } catch (...) {
              cell = {NodeStatus::kFailed, "unknown exception"};
            }
          }
        }
      }
    });
    return assemble(node_results, results);
  }

  // ---- Whole-view path. -----------------------------------------------
  // Bind is timed separately from the DAG: it is the mmap/parse startup
  // cost the columnar format exists to shrink.
  const auto bind_start = std::chrono::steady_clock::now();
  BoundSource source = BoundSource::Bind(c.spec.source);
  stats_.bind_ms += std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - bind_start)
                        .count();

  const geo::LocalProjection frame =
      attacks::DatasetProjection(source.view());

  // The `.mpc` output cache (optional). The dataset fingerprint is one
  // O(events) column scan, paid only when the cache is on. Stage nodes
  // key their outputs by PREFIX canonical name against the ORIGINAL
  // source fingerprint — sound because (prefix, source, seed) uniquely
  // determines a stage's bytes under the per-prefix rng discipline.
  std::optional<OutputCache> cache;
  std::uint64_t source_fingerprint = 0;
  if (!c.spec.mechanism_cache_dir.empty()) {
    cache.emplace(c.spec.mechanism_cache_dir,
                  c.spec.mechanism_cache_max_bytes);
    source_fingerprint = OutputCache::FingerprintView(source.view());
  }
  std::atomic<std::size_t> cache_hits{0};
  std::atomic<std::size_t> cache_misses{0};

  // Result slots, pre-sized so DAG workers never allocate shared state.
  // Stage outputs are columnar stores — the SoA-native path: no AoS
  // dataset is ever built for a node; the next stage consumes the store
  // through a zero-copy view, and so does every evaluator of a terminal.
  std::vector<model::EventStore> outputs(stage_count);
  std::vector<model::DatasetView> published(stage_count);
  std::vector<std::vector<MetricValue>> results(eval_nodes);

  // ---- Compile the DAG (topological layout: stages, then evals). ------
  // Stage nodes are in creation order, so a node's parent always precedes
  // it; evaluator nodes follow all stage nodes and depend on their row's
  // terminal.
  std::vector<DagNode> nodes;
  nodes.reserve(stage_count + eval_nodes);
  for (std::size_t i = 0; i < stage_count; ++i) {
    const Compiled::StagePlan& plan = c.stage_nodes[i];
    DagNode dag_node;
    dag_node.dependency_count = plan.parent == Compiled::kNoParent ? 0 : 1;
    dag_node.work = [&, i] {
      const Compiled::StagePlan& stage = c.stage_nodes[i];
      // Keyed by prefix canonical name (== the mechanism name for
      // single-stage rows): an armed fault trips for exactly the chosen
      // node's stage, whichever worker runs it — the degraded report
      // stays byte-identical at any thread count. A kDelay spec at this
      // point slows the node instead (the watchdog test hook).
      if (MOBIPRIV_FAULT_POINT_KEYED(fault::points::kEngineMechanismRun,
                                     stage.prefix_name)) {
        throw std::runtime_error(
            "injected fault (" +
            std::string(fault::points::kEngineMechanismRun) +
            "): " + stage.prefix_name);
      }
      // Every stage node owns an independent stream derived from the cell
      // seed and the PREFIX canonical name: a row's bytes depend only on
      // its own stages, so adding grid rows (or suffix stages elsewhere)
      // never perturbs existing ones — the property that makes prefix
      // outputs shareable at all.
      util::Rng rng(util::DeriveStreamSeed(
          seeds[stage.seed_index],
          model::Fnv1a64(stage.prefix_name.data(), stage.prefix_name.size()),
          0));
      std::string key_text;
      bool loaded = false;
      if (cache) {
        key_text = OutputCache::KeyText(stage.prefix_name,
                                        source_fingerprint,
                                        seeds[stage.seed_index]);
        loaded = cache->TryLoad(key_text, outputs[i]);
      }
      if (loaded) {
        cache_hits.fetch_add(1, std::memory_order_relaxed);
      } else {
        const model::DatasetView& input = stage.parent == Compiled::kNoParent
                                              ? source.view()
                                              : published[stage.parent];
        outputs[i] = stage.instance->ApplyToStore(input, rng);
        if (cache) {
          cache->Store(key_text, outputs[i]);
          cache_misses.fetch_add(1, std::memory_order_relaxed);
        }
      }
      published[i] = outputs[i].View();
    };
    nodes.push_back(std::move(dag_node));
    if (plan.parent != Compiled::kNoParent) {
      nodes[plan.parent].dependents.push_back(i);
    }
  }
  for (std::size_t r = 0; r < row_count; ++r) {
    for (std::size_t s = 0; s < seed_count; ++s) {
      const std::size_t terminal = c.rows[r].terminal[s];
      for (std::size_t e = 0; e < eval_count; ++e) {
        const std::size_t result_slot =
            (r * seed_count + s) * eval_count + e;
        DagNode dag_node;
        dag_node.dependency_count = 1;
        dag_node.work = [&, terminal, s, e, result_slot] {
          if (MOBIPRIV_FAULT_POINT_KEYED(fault::points::kEngineEvaluatorRun,
                                         c.eval_names[e])) {
            throw std::runtime_error(
                "injected fault (" +
                std::string(fault::points::kEngineEvaluatorRun) +
                "): " + c.eval_names[e]);
          }
          const EvalInput input{source.view(), published[terminal], frame,
                                seeds[s]};
          results[result_slot] = c.evaluators[e]->Evaluate(input);
        };
        nodes[terminal].dependents.push_back(nodes.size());
        nodes.push_back(std::move(dag_node));
      }
    }
  }

  std::vector<NodeResult> node_results;
  stats_.run_ms = TimeMs(
      [&] { node_results = ExecuteDag(nodes, c.spec.node_timeout_ms); });
  stats_.cache_hits = cache_hits.load(std::memory_order_relaxed);
  stats_.cache_misses = cache_misses.load(std::memory_order_relaxed);
  stats_.cache_read_retries = cache ? cache->read_retries() : 0;
  stats_.cache_evictions = cache ? cache->evictions() : 0;
  return assemble(node_results, results);
}

Report RunScenario(ScenarioSpec spec) {
  ScenarioEngine engine(std::move(spec));
  return engine.Run();
}

}  // namespace mobipriv::core
