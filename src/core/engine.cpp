#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>

#include <thread>

#include "attacks/poi_extraction.h"
#include "core/evaluator.h"
#include "mechanisms/registry.h"
#include "model/atomic_file.h"
#include "model/columnar_file.h"
#include "model/event_store.h"
#include "util/fault.h"
#include "util/rng.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace mobipriv::core {
namespace {

namespace fault = util::fault;

// ---- Mechanism output cache (.mpc spill/reuse) ------------------------------

/// Incremental FNV-1a64 over heterogeneous values.
struct Fnv1aStream {
  std::uint64_t h = 14695981039346656037ULL;
  void Bytes(const void* data, std::size_t size) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  template <typename T>
  void Value(const T& v) noexcept {
    Bytes(&v, sizeof(v));
  }
};

/// Content fingerprint of a bound source: user names, trace structure
/// (user id + length per trace) and every column bit pattern. Two sources
/// fingerprint equal iff a mechanism sees identical input — the dataset
/// component of the cache key.
std::uint64_t FingerprintView(const model::DatasetView& view) {
  Fnv1aStream fnv;
  fnv.Value(view.UserCount());
  for (model::UserId id = 0;
       id < static_cast<model::UserId>(view.UserCount()); ++id) {
    const std::string name = view.UserName(id);
    fnv.Value(name.size());
    fnv.Bytes(name.data(), name.size());
  }
  fnv.Value(view.TraceCount());
  for (const model::TraceView& trace : view.traces()) {
    fnv.Value(trace.user());
    fnv.Value(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      fnv.Value(trace.lat(i));
      fnv.Value(trace.lng(i));
      fnv.Value(trace.time(i));
    }
  }
  return fnv.h;
}

/// Cache epoch: the mechanism-implementation version component of the
/// cache key. A cached output is only as valid as the code that produced
/// it — bump this on ANY change to a mechanism's algorithm or rng stream
/// discipline, and every existing entry reads as stale (recomputed, never
/// reused) instead of silently replaying pre-change outputs.
constexpr std::uint32_t kMechanismCacheEpoch = 1;

/// The sidecar text identifying one cache entry. Reuse requires an exact
/// match — a hash collision in the file name can therefore never serve the
/// wrong output, and any fingerprint/seed/name/epoch drift reads as stale.
std::string CacheKeyText(const std::string& mechanism_name,
                         std::uint64_t fingerprint, std::uint64_t seed) {
  std::ostringstream os;
  os << "mechanism " << mechanism_name << "\n"
     << "fingerprint " << util::ToHex(fingerprint) << "\n"
     << "seed " << seed << "\n"
     << "format " << model::kColumnarFormatVersion << "\n"
     << "epoch " << kMechanismCacheEpoch << "\n";
  return os.str();
}

/// File stem for one cache entry (content-addressed by the key text).
std::string CacheStem(const std::string& key_text) {
  return util::ToHex(model::Fnv1a64(key_text.data(), key_text.size()));
}

/// Bounded retry budget for transient I/O failures on cache reads: up to
/// 2 retries with 1ms / 4ms backoff. A cache entry that still fails after
/// the budget is treated as a miss (recompute), never as a run failure —
/// the cache is a performance layer, not a correctness dependency.
constexpr int kCacheReadRetries = 2;
constexpr std::chrono::milliseconds kCacheReadBackoff[] = {
    std::chrono::milliseconds(1), std::chrono::milliseconds(4)};

/// Attempts to reuse a cache entry. Returns true and fills `store` only
/// when the sidecar matches `key_text` exactly AND the `.mpc` payload
/// reads back clean (every section checksum verified). A transient
/// IoError is retried with backoff (counted into `retries`); persistent
/// failure, staleness or corruption is a miss — the caller recomputes
/// and overwrites.
bool TryLoadCachedOutput(const std::filesystem::path& dir,
                         const std::string& key_text,
                         model::EventStore& store,
                         std::atomic<std::size_t>& retries) {
  const std::string stem = CacheStem(key_text);
  const std::filesystem::path key_path = dir / (stem + ".key");
  const std::filesystem::path mpc_path = dir / (stem + ".mpc");
  std::ifstream key_in(key_path, std::ios::binary);
  if (!key_in) return false;
  std::ostringstream recorded;
  recorded << key_in.rdbuf();
  if (recorded.str() != key_text) return false;  // stale: never reuse
  for (int attempt = 0;; ++attempt) {
    try {
      if (MOBIPRIV_FAULT_POINT(fault::points::kCacheReadLoad)) {
        throw model::IoError("injected fault (" +
                             std::string(fault::points::kCacheReadLoad) +
                             "): " + mpc_path.string());
      }
      store = model::ReadColumnar(mpc_path.string());
      return true;
    } catch (const model::IoError&) {
      if (attempt >= kCacheReadRetries) return false;  // miss: recompute
      retries.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(kCacheReadBackoff[attempt]);
    }
  }
}

/// Spills one node output: payload first, sidecar last (the sidecar is
/// the commit marker TryLoadCachedOutput requires). Both files go through
/// the atomic-commit helper (temp -> fsync -> rename), so neither a crash
/// nor an injected fault between payload and sidecar can ever publish a
/// half-written entry — the worst outcome is a payload with no sidecar,
/// which every reader treats as a miss. Cache write failures are
/// non-fatal: the run already holds the computed store.
void StoreCachedOutput(const std::filesystem::path& dir,
                       const std::string& key_text,
                       const model::EventStore& store) {
  try {
    if (MOBIPRIV_FAULT_POINT(fault::points::kCacheWriteSpill)) {
      throw model::IoError("injected fault (" +
                           std::string(fault::points::kCacheWriteSpill) +
                           "): cache spill");
    }
    const std::string stem = CacheStem(key_text);
    model::WriteColumnar(store, (dir / (stem + ".mpc")).string());
    model::WriteFileAtomic((dir / (stem + ".key")).string(),
                           key_text.data(), key_text.size());
  } catch (const std::exception&) {
    // Best effort: a failed spill costs the next run a recompute, nothing
    // else.
  }
}

/// One node of the compiled DAG. Nodes are stored in topological order
/// (mechanisms before their evaluations), so the serial fallback is a
/// plain index loop.
struct DagNode {
  std::function<void()> work;
  std::vector<std::size_t> dependents;
  std::size_t dependency_count = 0;
};

/// Per-node outcome of one DAG execution (graceful degradation: nothing
/// rethrows; every node gets a verdict).
enum class NodeStatus { kOk, kFailed, kSkipped };
struct NodeResult {
  NodeStatus status = NodeStatus::kOk;
  std::string error;  ///< exception text / watchdog verdict; empty when ok
};

/// Canonical watchdog verdict. Deliberately free of measured times: the
/// error row must be byte-identical at any thread count and on any
/// machine, so only the (deterministic) configured limit appears.
std::string WatchdogError(double timeout_ms) {
  return "node exceeded node_timeout (" +
         util::FormatDouble(timeout_ms, 0) + " ms watchdog)";
}

/// Executes the DAG with per-node error containment. A node that throws
/// is recorded kFailed (exception text captured); every transitive
/// dependent is recorded kSkipped with the root cause, WITHOUT running;
/// all other branches complete normally. With `node_timeout_ms` > 0, a
/// node whose work exceeds the wall-clock budget is recorded kFailed
/// after completion (containment, not preemption — see ScenarioSpec).
///
/// Parallel path: every dependency-free node is submitted to the shared
/// pool; completions decrement their dependents' pending counts and
/// submit newly-ready nodes. All results land in pre-sized slots, so
/// scheduling order never shows in the output.
std::vector<NodeResult> ExecuteDag(std::vector<DagNode>& nodes,
                                   double node_timeout_ms) {
  std::vector<NodeResult> results(nodes.size());

  // Runs one node's work in containment: records ok/failed (+ watchdog).
  const auto run_contained = [&](std::size_t index) {
    NodeResult& result = results[index];
    const auto start = std::chrono::steady_clock::now();
    try {
      nodes[index].work();
    } catch (const std::exception& e) {
      result.status = NodeStatus::kFailed;
      result.error = e.what();
      return;
    } catch (...) {
      result.status = NodeStatus::kFailed;
      result.error = "unknown exception";
      return;
    }
    if (node_timeout_ms > 0.0) {
      const double elapsed_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - start)
              .count();
      if (elapsed_ms > node_timeout_ms) {
        result.status = NodeStatus::kFailed;
        result.error = WatchdogError(node_timeout_ms);
      }
    }
  };
  // Marks `dependent` skipped because `index` did not finish ok. First
  // cause wins (a node with two failed dependencies reports the one that
  // reached it first — in the serial schedule that is the lower index,
  // and the parallel path pins the same choice via the skip guard below).
  const auto skip_reason = [&](std::size_t index) {
    const NodeResult& cause = results[index];
    return cause.status == NodeStatus::kFailed
               ? "dependency failed: " + cause.error
               : cause.error;  // transitively skipped: forward root cause
  };

  // Effective worker count 1, or a DAG too small to amortize a pool
  // round-trip: run the topological order inline (nodes are stored in
  // dependency order, so a plain index loop is a valid schedule).
  if (util::ParallelismLevel() <= 1 || nodes.size() <= 1) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (results[i].status == NodeStatus::kOk) run_contained(i);
      if (results[i].status == NodeStatus::kOk) continue;
      for (const std::size_t dependent : nodes[i].dependents) {
        if (results[dependent].status == NodeStatus::kOk) {
          results[dependent].status = NodeStatus::kSkipped;
          results[dependent].error = skip_reason(i);
        }
      }
    }
    return results;
  }

  std::vector<std::atomic<std::size_t>> pending(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    pending[i].store(nodes[i].dependency_count, std::memory_order_relaxed);
  }

  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t completed = 0;

  util::ThreadPool& pool = util::ThreadPool::Global();
  std::function<void(std::size_t)> run_node = [&](std::size_t index) {
    bool skipped;
    {
      // The skip mark (written by a failed parent under this mutex,
      // before it decrements our pending count) is visible here: the
      // last decrement happens-before this node runs.
      const std::lock_guard<std::mutex> lock(mutex);
      skipped = results[index].status == NodeStatus::kSkipped;
    }
    if (!skipped) run_contained(index);
    const bool propagate = results[index].status != NodeStatus::kOk;
    for (const std::size_t dependent : nodes[index].dependents) {
      if (propagate) {
        const std::lock_guard<std::mutex> lock(mutex);
        // First cause wins; a dependent two failed parents race for is
        // claimed exactly once.
        if (results[dependent].status == NodeStatus::kOk) {
          results[dependent].status = NodeStatus::kSkipped;
          results[dependent].error = skip_reason(index);
        }
      }
      if (pending[dependent].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        pool.Submit([&run_node, dependent] { run_node(dependent); });
      }
    }
    {
      // Notify under the lock: the waiter owns this stack frame, so it
      // must not be able to wake, return and destroy the cv while this
      // worker is still inside notify_one.
      const std::lock_guard<std::mutex> lock(mutex);
      ++completed;
      done_cv.notify_one();
    }
  };

  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].dependency_count == 0) {
      pool.Submit([&run_node, i] { run_node(i); });
    }
  }
  std::unique_lock<std::mutex> lock(mutex);
  done_cv.wait(lock, [&] { return completed == nodes.size(); });
  return results;
}

}  // namespace

std::string_view ToString(RowStatus status) noexcept {
  switch (status) {
    case RowStatus::kOk:
      return "ok";
    case RowStatus::kFailed:
      return "failed";
    case RowStatus::kSkipped:
      return "skipped";
  }
  return "unknown";
}

bool Report::AllOk() const noexcept {
  return std::all_of(rows_.begin(), rows_.end(), [](const ReportRow& row) {
    return row.status == RowStatus::kOk;
  });
}

Table Report::ToTable() const {
  Table table({"mechanism", "seed", "evaluator", "metric", "value", "status",
               "error"});
  for (const ReportRow& row : rows_) {
    // Non-ok rows render a blank value: 0.0 would read as a measurement.
    table.AddRow({row.mechanism, std::to_string(row.seed), row.evaluator,
                  row.metric,
                  row.status == RowStatus::kOk
                      ? util::FormatDouble(row.value, kValuePrecision)
                      : std::string(),
                  std::string(ToString(row.status)), row.error});
  }
  return table;
}

std::string Report::ToCsv() const { return ToTable().ToCsv(); }

Table Report::Pivot(std::string_view evaluator) const {
  // Collect metric columns in first-appearance order, then one wide row
  // per (mechanism, seed) in row order.
  std::vector<std::string> metrics;
  for (const ReportRow& row : rows_) {
    if (row.evaluator != evaluator) continue;
    if (row.status != RowStatus::kOk) continue;  // no "" metric column
    if (std::find(metrics.begin(), metrics.end(), row.metric) ==
        metrics.end()) {
      metrics.push_back(row.metric);
    }
  }
  std::vector<std::string> headers = {"mechanism", "seed"};
  headers.insert(headers.end(), metrics.begin(), metrics.end());
  Table table(std::move(headers));

  std::vector<std::pair<std::string, std::uint64_t>> keys;
  std::map<std::pair<std::string, std::uint64_t>,
           std::vector<std::string>> cells;
  for (const ReportRow& row : rows_) {
    if (row.evaluator != evaluator) continue;
    if (row.status != RowStatus::kOk) continue;  // degraded cells stay blank
    const auto key = std::make_pair(row.mechanism, row.seed);
    auto it = cells.find(key);
    if (it == cells.end()) {
      keys.push_back(key);
      it = cells.emplace(key, std::vector<std::string>(metrics.size()))
               .first;
    }
    const auto column = std::find(metrics.begin(), metrics.end(), row.metric);
    it->second[static_cast<std::size_t>(column - metrics.begin())] =
        util::FormatDouble(row.value, kValuePrecision);
  }
  for (const auto& key : keys) {
    std::vector<std::string> row = {key.first, std::to_string(key.second)};
    const auto& values = cells[key];
    row.insert(row.end(), values.begin(), values.end());
    table.AddRow(std::move(row));
  }
  return table;
}

std::string EngineStats::ToString() const {
  std::ostringstream os;
  os << "grid_cells=" << grid_cells
     << " mechanism_nodes=" << mechanism_nodes
     << " evaluator_nodes=" << evaluator_nodes;
  if (cache_hits + cache_misses > 0) {
    os << " cache_hits=" << cache_hits << " cache_misses=" << cache_misses;
  }
  if (cache_read_retries > 0) {
    os << " cache_read_retries=" << cache_read_retries;
  }
  if (failed_nodes + skipped_nodes > 0) {
    os << " failed_nodes=" << failed_nodes
       << " skipped_nodes=" << skipped_nodes;
  }
  os << " bind_ms=" << util::FormatDouble(bind_ms, 2)
     << " run_ms=" << util::FormatDouble(run_ms, 2);
  return os.str();
}

struct ScenarioEngine::Compiled {
  ScenarioSpec spec;
  // Deduped canonical mechanism names in first-appearance order, each
  // keeping the ORIGINAL spec text it first appeared as: instances are
  // built from the text, never from the canonical name — Name() prints
  // numbers at fixed precision, so re-parsing it could silently change
  // parameters (e.g. eps=0.00004 -> "eps=0.0000" -> 0.0). One instance
  // per (mechanism, seed) node because some baselines keep mutable
  // per-Apply scratch (e.g. Wait4Me's suppression ratio) that must not
  // be shared between concurrently-running nodes.
  std::vector<std::string> mech_names;
  std::vector<std::string> mech_texts;  // parallel to mech_names
  std::vector<std::unique_ptr<mech::Mechanism>> mech_instances;  // M x S
  std::vector<std::string> eval_names;
  std::vector<std::unique_ptr<Evaluator>> evaluators;
  bool ran = false;
};

ScenarioEngine::ScenarioEngine(ScenarioSpec spec)
    : compiled_(std::make_unique<Compiled>()) {
  compiled_->spec = std::move(spec);
  const ScenarioSpec& s = compiled_->spec;
  if (s.mechanisms.empty()) {
    throw util::SpecError("scenario has no mechanisms");
  }
  if (s.evaluators.empty()) {
    throw util::SpecError("scenario has no evaluators");
  }
  if (s.seeds.empty()) throw util::SpecError("scenario has no seeds");

  // Dedupe by canonical Name(): spec entries that round-trip to the same
  // mechanism share one memoized node per seed (first spec text wins).
  for (const std::string& text : s.mechanisms) {
    const std::string name = mech::CreateMechanism(text)->Name();
    if (std::find(compiled_->mech_names.begin(),
                  compiled_->mech_names.end(),
                  name) == compiled_->mech_names.end()) {
      compiled_->mech_names.push_back(name);
      compiled_->mech_texts.push_back(text);
    }
  }
  for (const std::string& text : compiled_->mech_texts) {
    for (std::size_t i = 0; i < s.seeds.size(); ++i) {
      compiled_->mech_instances.push_back(mech::CreateMechanism(text));
    }
  }
  for (const std::string& text : s.evaluators) {
    auto evaluator = CreateEvaluator(text);
    std::string name = evaluator->Name();
    if (std::find(compiled_->eval_names.begin(),
                  compiled_->eval_names.end(),
                  name) == compiled_->eval_names.end()) {
      compiled_->eval_names.push_back(std::move(name));
      compiled_->evaluators.push_back(std::move(evaluator));
    }
  }
}

ScenarioEngine::~ScenarioEngine() = default;

Report ScenarioEngine::Run() {
  Compiled& c = *compiled_;
  if (c.ran) throw std::logic_error("ScenarioEngine::Run called twice");
  c.ran = true;

  // threads == 0 inherits the ambient level (a --threads flag or an
  // enclosing ScopedParallelism); ScopedParallelism(0) would instead
  // RESET to the hardware default, so only scope when explicitly set.
  std::optional<util::ScopedParallelism> scope;
  if (c.spec.threads != 0) scope.emplace(c.spec.threads);

  // Bind is timed separately from the DAG: it is the mmap/parse startup
  // cost the columnar format exists to shrink.
  const auto bind_start = std::chrono::steady_clock::now();
  BoundSource source = BoundSource::Bind(c.spec.source);
  stats_.bind_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - bind_start)
                       .count();

  const std::vector<std::uint64_t>& seeds = c.spec.seeds;
  const std::size_t mech_count = c.mech_names.size();
  const std::size_t seed_count = seeds.size();
  const std::size_t eval_count = c.evaluators.size();
  const std::size_t mech_nodes = mech_count * seed_count;

  stats_.grid_cells =
      c.spec.mechanisms.size() * seed_count * c.spec.evaluators.size();
  stats_.mechanism_nodes = mech_nodes;
  stats_.evaluator_nodes = mech_nodes * eval_count;

  const geo::LocalProjection frame =
      attacks::DatasetProjection(source.view());

  // The `.mpc` output cache (optional). The dataset fingerprint is one
  // O(events) column scan, paid only when the cache is on.
  const bool cache_enabled = !c.spec.mechanism_cache_dir.empty();
  const std::filesystem::path cache_dir(c.spec.mechanism_cache_dir);
  std::uint64_t source_fingerprint = 0;
  if (cache_enabled) {
    std::filesystem::create_directories(cache_dir);
    source_fingerprint = FingerprintView(source.view());
  }
  std::atomic<std::size_t> cache_hits{0};
  std::atomic<std::size_t> cache_misses{0};
  std::atomic<std::size_t> cache_read_retries{0};

  // Result slots, pre-sized so DAG workers never allocate shared state.
  // Mechanism outputs are columnar stores — the SoA-native path: no AoS
  // dataset is ever built for a node, and every evaluator of the node
  // reads the same store through a zero-copy view.
  std::vector<model::EventStore> outputs(mech_nodes);
  std::vector<model::DatasetView> published(mech_nodes);
  std::vector<std::vector<MetricValue>> results(mech_nodes * eval_count);

  // ---- Compile the DAG (topological layout: mechanisms, then evals). --
  std::vector<DagNode> nodes;
  nodes.reserve(mech_nodes + mech_nodes * eval_count);
  for (std::size_t m = 0; m < mech_count; ++m) {
    const std::uint64_t name_hash =
        model::Fnv1a64(c.mech_names[m].data(), c.mech_names[m].size());
    for (std::size_t s = 0; s < seed_count; ++s) {
      const std::size_t node = m * seed_count + s;
      DagNode dag_node;
      dag_node.work = [&, node, name_hash, m, s] {
        // Keyed by canonical name: an armed fault trips for exactly the
        // chosen mechanism's nodes, whichever worker runs them — the
        // degraded report stays byte-identical at any thread count. A
        // kDelay spec at this point slows the node instead (the watchdog
        // test hook).
        if (MOBIPRIV_FAULT_POINT_KEYED(fault::points::kEngineMechanismRun,
                                       c.mech_names[m])) {
          throw std::runtime_error(
              "injected fault (" +
              std::string(fault::points::kEngineMechanismRun) +
              "): " + c.mech_names[m]);
        }
        // Every (mechanism, seed) node owns an independent stream derived
        // from the cell seed and the canonical name, so adding grid rows
        // never perturbs existing ones.
        util::Rng rng(util::DeriveStreamSeed(seeds[s], name_hash, 0));
        std::string key_text;
        bool loaded = false;
        if (cache_enabled) {
          key_text = CacheKeyText(c.mech_names[m], source_fingerprint,
                                  seeds[s]);
          loaded = TryLoadCachedOutput(cache_dir, key_text, outputs[node],
                                       cache_read_retries);
        }
        if (loaded) {
          cache_hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          outputs[node] =
              c.mech_instances[node]->ApplyToStore(source.view(), rng);
          if (cache_enabled) {
            StoreCachedOutput(cache_dir, key_text, outputs[node]);
            cache_misses.fetch_add(1, std::memory_order_relaxed);
          }
        }
        published[node] = outputs[node].View();
      };
      nodes.push_back(std::move(dag_node));
    }
  }
  for (std::size_t node = 0; node < mech_nodes; ++node) {
    for (std::size_t e = 0; e < eval_count; ++e) {
      const std::size_t result_slot = node * eval_count + e;
      DagNode dag_node;
      dag_node.dependency_count = 1;
      dag_node.work = [&, node, e, result_slot] {
        if (MOBIPRIV_FAULT_POINT_KEYED(fault::points::kEngineEvaluatorRun,
                                       c.eval_names[e])) {
          throw std::runtime_error(
              "injected fault (" +
              std::string(fault::points::kEngineEvaluatorRun) +
              "): " + c.eval_names[e]);
        }
        const EvalInput input{source.view(), published[node], frame,
                              seeds[node % seed_count]};
        results[result_slot] = c.evaluators[e]->Evaluate(input);
      };
      nodes[node].dependents.push_back(nodes.size());
      nodes.push_back(std::move(dag_node));
    }
  }

  std::vector<NodeResult> node_results;
  stats_.run_ms = TimeMs(
      [&] { node_results = ExecuteDag(nodes, c.spec.node_timeout_ms); });
  stats_.cache_hits = cache_hits.load(std::memory_order_relaxed);
  stats_.cache_misses = cache_misses.load(std::memory_order_relaxed);
  stats_.cache_read_retries =
      cache_read_retries.load(std::memory_order_relaxed);
  for (const NodeResult& result : node_results) {
    if (result.status == NodeStatus::kFailed) ++stats_.failed_nodes;
    if (result.status == NodeStatus::kSkipped) ++stats_.skipped_nodes;
  }

  // ---- Assemble the report in canonical order. ------------------------
  // A failed mechanism node contributes one mechanism-level error row
  // (empty evaluator/metric) followed by one skipped row per evaluator;
  // a failed evaluator node contributes one error row for its cell. The
  // assembly reads only node_results and results slots — both indexed,
  // never schedule-ordered — so degraded reports are as reproducible as
  // healthy ones.
  const auto to_row_status = [](NodeStatus status) {
    return status == NodeStatus::kFailed ? RowStatus::kFailed
                                         : RowStatus::kSkipped;
  };
  Report report;
  for (std::size_t m = 0; m < mech_count; ++m) {
    for (std::size_t s = 0; s < seed_count; ++s) {
      const std::size_t node = m * seed_count + s;
      const NodeResult& mech_result = node_results[node];
      if (mech_result.status != NodeStatus::kOk) {
        report.rows_.push_back({c.mech_names[m], seeds[s], "", "", 0.0,
                                to_row_status(mech_result.status),
                                mech_result.error});
      }
      for (std::size_t e = 0; e < eval_count; ++e) {
        const NodeResult& eval_result =
            node_results[mech_nodes + node * eval_count + e];
        if (eval_result.status != NodeStatus::kOk) {
          report.rows_.push_back({c.mech_names[m], seeds[s],
                                  c.eval_names[e], "", 0.0,
                                  to_row_status(eval_result.status),
                                  eval_result.error});
          continue;
        }
        for (const MetricValue& value : results[node * eval_count + e]) {
          report.rows_.push_back({c.mech_names[m], seeds[s],
                                  c.eval_names[e], value.metric,
                                  value.value, RowStatus::kOk, {}});
        }
      }
    }
  }
  return report;
}

Report RunScenario(ScenarioSpec spec) {
  ScenarioEngine engine(std::move(spec));
  return engine.Run();
}

}  // namespace mobipriv::core
