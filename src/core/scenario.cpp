#include "core/scenario.h"

#include <filesystem>
#include <unordered_map>

#include "model/io.h"
#include "synth/population.h"
#include "util/thread_pool.h"

namespace mobipriv::core {

BoundSource::BoundSource(BoundSource&&) noexcept = default;
BoundSource& BoundSource::operator=(BoundSource&&) noexcept = default;
BoundSource::~BoundSource() = default;

DatasetSourceSpec DatasetSourceSpec::CsvFile(std::string path) {
  DatasetSourceSpec spec;
  spec.kind = Kind::kCsvFile;
  spec.path = std::move(path);
  return spec;
}

DatasetSourceSpec DatasetSourceSpec::ColumnarFile(std::string path) {
  DatasetSourceSpec spec;
  spec.kind = Kind::kColumnarFile;
  spec.path = std::move(path);
  return spec;
}

DatasetSourceSpec DatasetSourceSpec::ShardDir(std::string path) {
  DatasetSourceSpec spec;
  spec.kind = Kind::kShardDir;
  spec.path = std::move(path);
  return spec;
}

DatasetSourceSpec DatasetSourceSpec::Synthetic(std::size_t agents,
                                               std::size_t days,
                                               std::uint64_t world_seed) {
  DatasetSourceSpec spec;
  spec.kind = Kind::kSynthetic;
  spec.agents = agents;
  spec.days = days;
  spec.world_seed = world_seed;
  return spec;
}

DatasetSourceSpec DatasetSourceSpec::Borrowed(const model::Dataset& dataset) {
  DatasetSourceSpec spec;
  spec.kind = Kind::kBorrowed;
  spec.borrowed = &dataset;
  return spec;
}

DatasetSourceSpec DatasetSourceSpec::FromPath(std::string path) {
  namespace fs = std::filesystem;
  if (fs::is_directory(path) && fs::exists(fs::path(path) / "manifest.mpm")) {
    return ShardDir(std::move(path));
  }
  if (model::IsColumnarPath(path)) return ColumnarFile(std::move(path));
  return CsvFile(std::move(path));
}

std::string DatasetSourceSpec::Describe() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kCsvFile:
      return "csv:" + path;
    case Kind::kColumnarFile:
      return "mpc:" + path;
    case Kind::kShardDir:
      return "shards:" + path;
    case Kind::kSynthetic:
      return "synth:agents=" + std::to_string(agents) +
             ",days=" + std::to_string(days) +
             ",seed=" + std::to_string(world_seed);
    case Kind::kBorrowed:
      return "borrowed";
  }
  return "unknown";
}

BoundSource BoundSource::Bind(const DatasetSourceSpec& spec) {
  BoundSource source;
  source.description_ = spec.Describe();
  switch (spec.kind) {
    case DatasetSourceSpec::Kind::kNone:
      throw model::IoError("scenario source is unset (Kind::kNone)");
    case DatasetSourceSpec::Kind::kCsvFile:
      source.owned_ = model::ReadCsvFile(spec.path);
      source.view_ = model::DatasetView::Of(source.owned_);
      break;
    case DatasetSourceSpec::Kind::kColumnarFile:
      // Zero-copy: every downstream view aliases the read-only mapping.
      source.mapped_ = model::MapColumnar(spec.path);
      source.view_ = source.mapped_.View();
      break;
    case DatasetSourceSpec::Kind::kShardDir: {
      model::ShardManifest manifest = model::ReadShardManifest(spec.path);
      source.shard_names_ = std::move(manifest.global_names);

      // Map every shard file concurrently (independent opens; the pool
      // rethrows the first failure). Pages still fault lazily.
      source.shard_maps_.resize(manifest.shard_count);
      util::ParallelForEach(manifest.shard_count, [&](std::size_t s) {
        source.shard_maps_[s] =
            model::MapColumnar(model::ShardDataPath(spec.path, s));
      });

      // Shard-local ids -> global ids, via the manifest's name table.
      std::unordered_map<std::string_view, model::UserId> global_id;
      global_id.reserve(source.shard_names_.size());
      for (std::size_t g = 0; g < source.shard_names_.size(); ++g) {
        global_id.emplace(source.shard_names_[g],
                          static_cast<model::UserId>(g));
      }
      std::size_t total_traces = 0;
      for (const auto& mapped : source.shard_maps_) {
        total_traces += mapped.TraceCount();
      }

      // Canonical trace order: the recorded original order when the
      // manifest carries one (so the view is bit-identical to the
      // pre-partition dataset), shard-major order otherwise.
      const bool use_origin = manifest.has_origin();
      if (use_origin) {
        std::size_t origin_total = 0;
        for (const auto& o : manifest.origin) origin_total += o.size();
        if (manifest.origin.size() != source.shard_maps_.size() ||
            origin_total != total_traces) {
          throw model::IoError("shard manifest in " + spec.path +
                               ": origin table disagrees with shard files");
        }
      }
      std::vector<model::TraceView> traces(total_traces);
      std::size_t cursor = 0;
      for (std::size_t s = 0; s < source.shard_maps_.size(); ++s) {
        const model::MappedColumnar& mapped = source.shard_maps_[s];
        if (use_origin &&
            manifest.origin[s].size() != mapped.TraceCount()) {
          throw model::IoError("shard manifest in " + spec.path +
                               ": origin run disagrees with shard " +
                               std::to_string(s));
        }
        for (std::size_t i = 0; i < mapped.TraceCount(); ++i) {
          const auto it = global_id.find(mapped.names()[mapped.TraceUser(i)]);
          if (it == global_id.end()) {
            throw model::IoError("shard " + std::to_string(s) + " in " +
                                 spec.path +
                                 " holds a user missing from the manifest");
          }
          const std::size_t slot =
              use_origin ? manifest.origin[s][i] : cursor;
          traces[slot] = mapped.View(i).WithUser(it->second);
          ++cursor;
        }
      }
      source.view_ = model::DatasetView(std::move(traces),
                                        source.shard_names_.size(),
                                        source.shard_names_);
      break;
    }
    case DatasetSourceSpec::Kind::kSynthetic: {
      synth::PopulationConfig config;
      config.agents = spec.agents;
      config.days = spec.days;
      config.seed = spec.world_seed;
      source.world_ = std::make_unique<synth::SyntheticWorld>(config);
      source.view_ = model::DatasetView::Of(source.world_->dataset());
      break;
    }
    case DatasetSourceSpec::Kind::kBorrowed:
      if (spec.borrowed == nullptr) {
        throw model::IoError("borrowed scenario source is null");
      }
      source.view_ = model::DatasetView::Of(*spec.borrowed);
      break;
  }
  return source;
}

}  // namespace mobipriv::core
