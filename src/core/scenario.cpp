#include "core/scenario.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string_view>
#include <unordered_map>

#include "model/io.h"
#include "synth/population.h"
#include "util/spec.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace mobipriv::core {

BoundSource::BoundSource(BoundSource&&) noexcept = default;
BoundSource& BoundSource::operator=(BoundSource&&) noexcept = default;
BoundSource::~BoundSource() = default;

DatasetSourceSpec DatasetSourceSpec::CsvFile(std::string path) {
  DatasetSourceSpec spec;
  spec.kind = Kind::kCsvFile;
  spec.path = std::move(path);
  return spec;
}

DatasetSourceSpec DatasetSourceSpec::ColumnarFile(std::string path) {
  DatasetSourceSpec spec;
  spec.kind = Kind::kColumnarFile;
  spec.path = std::move(path);
  return spec;
}

DatasetSourceSpec DatasetSourceSpec::ShardDir(std::string path) {
  DatasetSourceSpec spec;
  spec.kind = Kind::kShardDir;
  spec.path = std::move(path);
  return spec;
}

DatasetSourceSpec DatasetSourceSpec::Synthetic(std::size_t agents,
                                               std::size_t days,
                                               std::uint64_t world_seed) {
  DatasetSourceSpec spec;
  spec.kind = Kind::kSynthetic;
  spec.agents = agents;
  spec.days = days;
  spec.world_seed = world_seed;
  return spec;
}

DatasetSourceSpec DatasetSourceSpec::Borrowed(const model::Dataset& dataset) {
  DatasetSourceSpec spec;
  spec.kind = Kind::kBorrowed;
  spec.borrowed = &dataset;
  return spec;
}

DatasetSourceSpec DatasetSourceSpec::FromPath(std::string path) {
  namespace fs = std::filesystem;
  if (fs::is_directory(path) && fs::exists(fs::path(path) / "manifest.mpm")) {
    return ShardDir(std::move(path));
  }
  if (model::IsColumnarPath(path)) return ColumnarFile(std::move(path));
  return CsvFile(std::move(path));
}

std::string DatasetSourceSpec::Describe() const {
  switch (kind) {
    case Kind::kNone:
      return "none";
    case Kind::kCsvFile:
      return "csv:" + path;
    case Kind::kColumnarFile:
      return "mpc:" + path;
    case Kind::kShardDir:
      return "shards:" + path;
    case Kind::kSynthetic:
      return "synth:agents=" + std::to_string(agents) +
             ",days=" + std::to_string(days) +
             ",seed=" + std::to_string(world_seed);
    case Kind::kBorrowed:
      return "borrowed";
  }
  return "unknown";
}

namespace {

[[noreturn]] void SweepError(const std::string& context, std::size_t line,
                             const std::string& what) {
  throw util::SpecError("sweep config " + context + ", line " +
                        std::to_string(line) + ": " + what);
}

/// "synth:agents=A,days=D,seed=S" (the Describe() rendering; every
/// parameter optional) or any path DatasetSourceSpec::FromPath accepts.
DatasetSourceSpec ParseSourceValue(std::string_view value,
                                   const std::string& context,
                                   std::size_t line) {
  if (!util::StartsWith(value, "synth:")) {
    return DatasetSourceSpec::FromPath(std::string(value));
  }
  DatasetSourceSpec spec;
  spec.kind = DatasetSourceSpec::Kind::kSynthetic;
  for (const std::string& param :
       util::Split(value.substr(std::string_view("synth:").size()), ',')) {
    const std::string_view trimmed = util::Trim(param);
    if (trimmed.empty()) continue;
    const std::size_t eq = trimmed.find('=');
    const std::string_view key = trimmed.substr(0, eq);
    const auto number =
        eq == std::string_view::npos
            ? std::nullopt
            : util::ParseInt(util::Trim(trimmed.substr(eq + 1)));
    if (!number || *number < 0) {
      SweepError(context, line,
                 "synth parameter \"" + std::string(trimmed) +
                     "\" is not key=<non-negative integer>");
    }
    if (key == "agents") {
      spec.agents = static_cast<std::size_t>(*number);
    } else if (key == "days") {
      spec.days = static_cast<std::size_t>(*number);
    } else if (key == "seed") {
      spec.world_seed = static_cast<std::uint64_t>(*number);
    } else {
      SweepError(context, line,
                 "unknown synth parameter \"" + std::string(key) +
                     "\" (expected agents, days, seed)");
    }
  }
  return spec;
}

/// Top-level comma list ("a[x=1,y=2]|b, c" -> {"a[x=1,y=2]|b", "c"}):
/// commas inside brackets belong to spec parameters, not the list.
std::vector<std::string> ParseListValue(std::string_view value,
                                        const std::string& context,
                                        std::size_t line) {
  std::vector<std::string> items;
  for (const std::string& piece : util::SplitTopLevel(value, ',')) {
    const std::string_view trimmed = util::Trim(piece);
    if (trimmed.empty()) {
      SweepError(context, line, "empty list entry");
    }
    items.emplace_back(trimmed);
  }
  return items;
}

std::int64_t ParseIntValue(std::string_view value, const std::string& context,
                           std::size_t line, const std::string& key) {
  const auto number = util::ParseInt(value);
  if (!number || *number < 0) {
    SweepError(context, line,
               key + " = \"" + std::string(value) +
                   "\" is not a non-negative integer");
  }
  return *number;
}

}  // namespace

ScenarioSpec ParseSweepConfig(std::string_view text,
                              const std::string& context) {
  ScenarioSpec spec;
  spec.seeds.clear();
  std::istringstream lines{std::string(text)};
  std::string raw_line;
  std::size_t line_number = 0;
  while (std::getline(lines, raw_line)) {
    ++line_number;
    std::string_view line = raw_line;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = util::Trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      SweepError(context, line_number,
                 "expected key = value, got \"" + std::string(line) + "\"");
    }
    const std::string key{util::Trim(line.substr(0, eq))};
    const std::string_view value = util::Trim(line.substr(eq + 1));
    if (key.empty()) SweepError(context, line_number, "empty key");
    if (value.empty()) {
      SweepError(context, line_number, "empty value for key \"" + key + "\"");
    }
    if (key == "source") {
      spec.source = ParseSourceValue(value, context, line_number);
    } else if (key == "mechanism" || key == "mechanisms") {
      for (std::string& item : ParseListValue(value, context, line_number)) {
        spec.mechanisms.push_back(std::move(item));
      }
    } else if (key == "evaluator" || key == "evaluators") {
      for (std::string& item : ParseListValue(value, context, line_number)) {
        spec.evaluators.push_back(std::move(item));
      }
    } else if (key == "seeds") {
      for (const std::string& item :
           ParseListValue(value, context, line_number)) {
        spec.seeds.push_back(static_cast<std::uint64_t>(
            ParseIntValue(item, context, line_number, "seeds entry")));
      }
    } else if (key == "threads") {
      spec.threads = static_cast<std::size_t>(
          ParseIntValue(value, context, line_number, key));
    } else if (key == "workers") {
      spec.workers = static_cast<std::size_t>(
          ParseIntValue(value, context, line_number, key));
    } else if (key == "cache_dir") {
      spec.mechanism_cache_dir = std::string(value);
    } else if (key == "cache_max_bytes") {
      spec.mechanism_cache_max_bytes = static_cast<std::uint64_t>(
          ParseIntValue(value, context, line_number, key));
    } else if (key == "node_timeout_ms") {
      const auto number = util::ParseDouble(value);
      if (!number || *number < 0.0) {
        SweepError(context, line_number,
                   "node_timeout_ms = \"" + std::string(value) +
                       "\" is not a non-negative number");
      }
      spec.node_timeout_ms = *number;
    } else {
      SweepError(context, line_number,
                 "unknown key \"" + key +
                     "\" (expected source, mechanisms, evaluators, seeds, "
                     "threads, workers, cache_dir, cache_max_bytes, "
                     "node_timeout_ms)");
    }
  }
  if (spec.seeds.empty()) spec.seeds = {1};
  return spec;
}

ScenarioSpec LoadSweepConfig(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw model::IoError("cannot open sweep config: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseSweepConfig(buffer.str(), path);
}

std::optional<ShardStreamPlan> ProbeShardStream(const std::string& dir) {
  ShardStreamPlan plan;
  plan.dir = dir;
  try {
    model::ShardManifest manifest = model::ReadShardManifest(dir);
    if (!manifest.has_origin()) return std::nullopt;
    plan.shard_count = manifest.shard_count;
    plan.global_names = std::move(manifest.global_names);
    plan.origin = std::move(manifest.origin);
    if (plan.origin.size() != plan.shard_count) return std::nullopt;

    std::unordered_map<std::string_view, model::UserId> global_id;
    global_id.reserve(plan.global_names.size());
    for (std::size_t g = 0; g < plan.global_names.size(); ++g) {
      global_id.emplace(plan.global_names[g],
                        static_cast<model::UserId>(g));
    }
    // Home shard of each global user (or npos until first sighted).
    constexpr std::size_t kUnseen = static_cast<std::size_t>(-1);
    std::vector<std::size_t> home(plan.global_names.size(), kUnseen);
    plan.local_to_global.resize(plan.shard_count);
    for (std::size_t s = 0; s < plan.shard_count; ++s) {
      const model::MappedColumnar mapped =
          model::MapColumnar(model::ShardDataPath(dir, s));
      if (plan.origin[s].size() != mapped.TraceCount()) return std::nullopt;
      std::vector<model::UserId>& l2g = plan.local_to_global[s];
      l2g.resize(mapped.names().size());
      for (std::size_t u = 0; u < mapped.names().size(); ++u) {
        const auto it = global_id.find(mapped.names()[u]);
        if (it == global_id.end()) return std::nullopt;
        l2g[u] = it->second;
      }
      for (std::size_t i = 0; i < mapped.TraceCount(); ++i) {
        if (i > 0 && plan.origin[s][i] <= plan.origin[s][i - 1]) {
          return std::nullopt;  // not canonical-order restricted
        }
        const model::UserId g = l2g[mapped.TraceUser(i)];
        if (home[g] == kUnseen) {
          home[g] = s;
        } else if (home[g] != s) {
          return std::nullopt;  // user split across shards
        }
      }
      plan.total_traces += mapped.TraceCount();
    }
  } catch (...) {
    return std::nullopt;
  }
  return plan;
}

BoundSource BoundSource::Bind(const DatasetSourceSpec& spec) {
  BoundSource source;
  source.description_ = spec.Describe();
  switch (spec.kind) {
    case DatasetSourceSpec::Kind::kNone:
      throw model::IoError("scenario source is unset (Kind::kNone)");
    case DatasetSourceSpec::Kind::kCsvFile:
      source.owned_ = model::ReadCsvFile(spec.path);
      source.view_ = model::DatasetView::Of(source.owned_);
      break;
    case DatasetSourceSpec::Kind::kColumnarFile:
      // Zero-copy: every downstream view aliases the read-only mapping.
      source.mapped_ = model::MapColumnar(spec.path);
      source.view_ = source.mapped_.View();
      break;
    case DatasetSourceSpec::Kind::kShardDir: {
      model::ShardManifest manifest = model::ReadShardManifest(spec.path);
      source.shard_names_ = std::move(manifest.global_names);

      // Map every shard file concurrently (independent opens; the pool
      // rethrows the first failure). Pages still fault lazily.
      source.shard_maps_.resize(manifest.shard_count);
      util::ParallelForEach(manifest.shard_count, [&](std::size_t s) {
        source.shard_maps_[s] =
            model::MapColumnar(model::ShardDataPath(spec.path, s));
      });

      // Shard-local ids -> global ids, via the manifest's name table.
      std::unordered_map<std::string_view, model::UserId> global_id;
      global_id.reserve(source.shard_names_.size());
      for (std::size_t g = 0; g < source.shard_names_.size(); ++g) {
        global_id.emplace(source.shard_names_[g],
                          static_cast<model::UserId>(g));
      }
      std::size_t total_traces = 0;
      for (const auto& mapped : source.shard_maps_) {
        total_traces += mapped.TraceCount();
      }

      // Canonical trace order: the recorded original order when the
      // manifest carries one (so the view is bit-identical to the
      // pre-partition dataset), shard-major order otherwise.
      const bool use_origin = manifest.has_origin();
      if (use_origin) {
        std::size_t origin_total = 0;
        for (const auto& o : manifest.origin) origin_total += o.size();
        if (manifest.origin.size() != source.shard_maps_.size() ||
            origin_total != total_traces) {
          throw model::IoError("shard manifest in " + spec.path +
                               ": origin table disagrees with shard files");
        }
      }
      std::vector<model::TraceView> traces(total_traces);
      std::size_t cursor = 0;
      for (std::size_t s = 0; s < source.shard_maps_.size(); ++s) {
        const model::MappedColumnar& mapped = source.shard_maps_[s];
        if (use_origin &&
            manifest.origin[s].size() != mapped.TraceCount()) {
          throw model::IoError("shard manifest in " + spec.path +
                               ": origin run disagrees with shard " +
                               std::to_string(s));
        }
        for (std::size_t i = 0; i < mapped.TraceCount(); ++i) {
          const auto it = global_id.find(mapped.names()[mapped.TraceUser(i)]);
          if (it == global_id.end()) {
            throw model::IoError("shard " + std::to_string(s) + " in " +
                                 spec.path +
                                 " holds a user missing from the manifest");
          }
          const std::size_t slot =
              use_origin ? manifest.origin[s][i] : cursor;
          traces[slot] = mapped.View(i).WithUser(it->second);
          ++cursor;
        }
      }
      source.view_ = model::DatasetView(std::move(traces),
                                        source.shard_names_.size(),
                                        source.shard_names_);
      break;
    }
    case DatasetSourceSpec::Kind::kSynthetic: {
      synth::PopulationConfig config;
      config.agents = spec.agents;
      config.days = spec.days;
      config.seed = spec.world_seed;
      source.world_ = std::make_unique<synth::SyntheticWorld>(config);
      source.view_ = model::DatasetView::Of(source.world_->dataset());
      break;
    }
    case DatasetSourceSpec::Kind::kBorrowed:
      if (spec.borrowed == nullptr) {
        throw model::IoError("borrowed scenario source is null");
      }
      source.view_ = model::DatasetView::Of(*spec.borrowed);
      break;
  }
  return source;
}

}  // namespace mobipriv::core
