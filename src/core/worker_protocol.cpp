#include "core/worker_protocol.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define MOBIPRIV_HAVE_POSIX_PIPES 1
#endif

#include "util/string_utils.h"

namespace mobipriv::core::wp {

namespace {

void PutU32Le(char* p, std::uint32_t v) noexcept {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
  p[2] = static_cast<char>((v >> 16) & 0xff);
  p[3] = static_cast<char>((v >> 24) & 0xff);
}

std::uint32_t GetU32Le(const char* p) noexcept {
  const auto b = [&](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

bool WriteAll(int fd, const char* data, std::size_t n) noexcept {
#if MOBIPRIV_HAVE_POSIX_PIPES
  while (n > 0) {
    const ::ssize_t wrote = ::write(fd, data, n);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += wrote;
    n -= static_cast<std::size_t>(wrote);
  }
  return true;
#else
  (void)fd;
  (void)data;
  (void)n;
  return false;
#endif
}

}  // namespace

std::string StageShardPath(const std::string& out_dir, const std::string& stem,
                           std::size_t shard) {
  char suffix[40];
  std::snprintf(suffix, sizeof(suffix), "-shard-%05zu.mpc", shard);
  return out_dir + "/" + stem + suffix;
}

std::string EncodeRequest(const WorkerRequest& request) {
  std::string out;
  out += "dir=" + request.dir + "\n";
  out += "out_dir=" + request.out_dir + "\n";
  out += "stem=" + request.stem + "\n";
  out += "spec=" + request.spec_text + "\n";
  out += "prefix=" + request.prefix_name + "\n";
  out += "seed=" + std::to_string(request.seed) + "\n";
  out += "attempt=" + std::to_string(request.attempt) + "\n";
  out += "shards=";
  for (std::size_t i = 0; i < request.shards.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(request.shards[i]);
  }
  out += "\n";
  return out;
}

bool DecodeRequest(std::string_view payload, WorkerRequest* request,
                   std::string* error) {
  WorkerRequest out;
  bool have_shards = false;
  std::size_t start = 0;
  while (start < payload.size()) {
    std::size_t end = payload.find('\n', start);
    if (end == std::string_view::npos) end = payload.size();
    const std::string_view line = payload.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      *error = "request line without '=': " + std::string(line);
      return false;
    }
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    if (key == "dir") {
      out.dir = std::string(value);
    } else if (key == "out_dir") {
      out.out_dir = std::string(value);
    } else if (key == "stem") {
      out.stem = std::string(value);
    } else if (key == "spec") {
      out.spec_text = std::string(value);
    } else if (key == "prefix") {
      out.prefix_name = std::string(value);
    } else if (key == "seed" || key == "attempt") {
      const auto parsed = util::ParseInt(value);
      if (!parsed || *parsed < 0) {
        *error = "malformed " + std::string(key) + ": " + std::string(value);
        return false;
      }
      (key == "seed" ? out.seed : out.attempt) =
          static_cast<std::uint64_t>(*parsed);
    } else if (key == "shards") {
      have_shards = true;
      std::size_t s = 0;
      while (s <= value.size() && !value.empty()) {
        std::size_t comma = value.find(',', s);
        if (comma == std::string_view::npos) comma = value.size();
        const auto parsed = util::ParseInt(value.substr(s, comma - s));
        if (!parsed || *parsed < 0) {
          *error = "malformed shard index: " + std::string(value);
          return false;
        }
        out.shards.push_back(static_cast<std::size_t>(*parsed));
        s = comma + 1;
        if (s > value.size()) break;
      }
    } else {
      *error = "unknown request key: " + std::string(key);
      return false;
    }
  }
  if (out.dir.empty() || out.out_dir.empty() || out.stem.empty() ||
      out.spec_text.empty() || out.prefix_name.empty() || !have_shards) {
    *error = "incomplete request";
    return false;
  }
  *request = std::move(out);
  return true;
}

bool WriteFrame(int fd, char type, std::string_view payload) noexcept {
  if (payload.size() > kMaxFramePayload) return false;
  char header[5];
  PutU32Le(header, static_cast<std::uint32_t>(payload.size()));
  header[4] = type;
  return WriteAll(fd, header, sizeof(header)) &&
         WriteAll(fd, payload.data(), payload.size());
}

void FrameReader::Feed(const char* data, std::size_t n) {
  if (corrupt_) return;
  buffer_.append(data, n);
}

bool FrameReader::Next(char* type, std::string* payload) {
  if (corrupt_ || buffer_.size() < 5) return false;
  const std::uint32_t n = GetU32Le(buffer_.data());
  if (n > kMaxFramePayload) {
    corrupt_ = true;
    return false;
  }
  if (buffer_.size() < 5 + static_cast<std::size_t>(n)) return false;
  *type = buffer_[4];
  payload->assign(buffer_.data() + 5, n);
  buffer_.erase(0, 5 + static_cast<std::size_t>(n));
  return true;
}

}  // namespace mobipriv::core::wp
