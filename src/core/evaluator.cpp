#include "core/evaluator.h"

#include <map>
#include <mutex>

#include "attacks/evaluators.h"
#include "metrics/evaluators.h"
#include "privacy/evaluators.h"

namespace mobipriv::core {
namespace {

struct Registry {
  std::mutex mutex;
  std::map<std::string, EvaluatorFactory, std::less<>> factories;
};

Registry& GlobalRegistry() {
  static Registry* registry = [] {
    auto* r = new Registry();
    auto& f = r->factories;
    f["spatial_distortion"] =
        [](const util::Spec& spec) -> std::unique_ptr<Evaluator> {
      spec.RequireKnownKeys({}, "spatial_distortion");
      return std::make_unique<metrics::SpatialDistortionEvaluator>();
    };
    f["coverage"] = [](const util::Spec& spec) -> std::unique_ptr<Evaluator> {
      spec.RequireKnownKeys({"cell"}, "coverage");
      metrics::CoverageConfig config;
      config.cell_size_m = spec.NumberOf("cell", config.cell_size_m);
      return std::make_unique<metrics::CoverageEvaluator>(config);
    };
    f["heatmap"] = [](const util::Spec& spec) -> std::unique_ptr<Evaluator> {
      spec.RequireKnownKeys({"cell"}, "heatmap");
      metrics::HeatmapConfig config;
      config.cell_size_m = spec.NumberOf("cell", config.cell_size_m);
      return std::make_unique<metrics::HeatmapEvaluator>(config);
    };
    f["range_queries"] =
        [](const util::Spec& spec) -> std::unique_ptr<Evaluator> {
      spec.RequireKnownKeys({"n"}, "range_queries");
      metrics::RangeQueryConfig config;
      config.query_count = static_cast<std::size_t>(spec.IntOf(
          "n", static_cast<std::int64_t>(config.query_count)));
      return std::make_unique<metrics::RangeQueryEvaluator>(config);
    };
    f["trajectory_stats"] =
        [](const util::Spec& spec) -> std::unique_ptr<Evaluator> {
      spec.RequireKnownKeys({}, "trajectory_stats");
      return std::make_unique<metrics::TrajectoryStatsEvaluator>();
    };
    f["kdelta"] = [](const util::Spec& spec) -> std::unique_ptr<Evaluator> {
      spec.RequireKnownKeys({"delta", "grid", "tolerance"}, "kdelta");
      metrics::KDeltaConfig config;
      config.delta_m = spec.NumberOf("delta", config.delta_m);
      config.grid_step_s = static_cast<util::Timestamp>(
          spec.IntOf("grid", config.grid_step_s));
      config.tolerance = spec.NumberOf("tolerance", config.tolerance);
      return std::make_unique<metrics::KDeltaEvaluator>(config);
    };
    f["poi_attack"] =
        [](const util::Spec& spec) -> std::unique_ptr<Evaluator> {
      spec.RequireKnownKeys({"radius", "diameter", "dwell"}, "poi_attack");
      attacks::PoiExtractionConfig extraction;
      extraction.max_diameter_m =
          spec.NumberOf("diameter", extraction.max_diameter_m);
      extraction.min_duration_s = static_cast<util::Timestamp>(
          spec.IntOf("dwell", extraction.min_duration_s));
      const double radius = spec.NumberOf("radius", 250.0);
      return std::make_unique<attacks::PoiAttackEvaluator>(extraction,
                                                           radius);
    };
    f["reident"] = [](const util::Spec& spec) -> std::unique_ptr<Evaluator> {
      spec.RequireKnownKeys({}, "reident");
      return std::make_unique<attacks::ReidentEvaluator>();
    };
    f["home_work"] =
        [](const util::Spec& spec) -> std::unique_ptr<Evaluator> {
      spec.RequireKnownKeys({"radius"}, "home_work");
      const double radius = spec.NumberOf("radius", 300.0);
      return std::make_unique<attacks::HomeWorkEvaluator>(
          attacks::HomeWorkConfig{}, radius);
    };
    f["certification"] =
        [](const util::Spec& spec) -> std::unique_ptr<Evaluator> {
      spec.RequireKnownKeys({"spacing", "interval", "min_events"},
                            "certification");
      privacy::CertificationConfig config;
      config.max_spacing_deviation =
          spec.NumberOf("spacing", config.max_spacing_deviation);
      config.max_interval_deviation_s =
          spec.NumberOf("interval", config.max_interval_deviation_s);
      config.min_events_checked = static_cast<std::size_t>(spec.IntOf(
          "min_events", static_cast<std::int64_t>(config.min_events_checked)));
      return std::make_unique<privacy::CertificationEvaluator>(config);
    };
    f["uncertainty"] =
        [](const util::Spec& spec) -> std::unique_ptr<Evaluator> {
      spec.RequireKnownKeys({"r", "w", "min_users"}, "uncertainty");
      mech::MixZoneConfig config;
      config.zone_radius_m = spec.NumberOf("r", config.zone_radius_m);
      config.time_window_s = static_cast<util::Timestamp>(
          spec.IntOf("w", config.time_window_s));
      config.min_users = static_cast<std::size_t>(spec.IntOf(
          "min_users", static_cast<std::int64_t>(config.min_users)));
      return std::make_unique<privacy::UncertaintyEvaluator>(config);
    };
    return r;
  }();
  return *registry;
}

}  // namespace

void RegisterEvaluator(std::string base, EvaluatorFactory factory) {
  Registry& registry = GlobalRegistry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  registry.factories[std::move(base)] = std::move(factory);
}

std::unique_ptr<Evaluator> CreateEvaluator(std::string_view spec_text) {
  const util::Spec spec = util::Spec::Parse(spec_text);
  EvaluatorFactory factory;
  {
    Registry& registry = GlobalRegistry();
    const std::lock_guard<std::mutex> lock(registry.mutex);
    const auto it = registry.factories.find(spec.base());
    if (it == registry.factories.end()) {
      std::string known;
      for (const auto& [base, unused] : registry.factories) {
        if (!known.empty()) known += ", ";
        known += base;
      }
      throw util::SpecError("unknown evaluator \"" + spec.base() +
                            "\" (registered: " + known + ")");
    }
    factory = it->second;
  }
  return factory(spec);
}

std::vector<std::string> RegisteredEvaluatorBases() {
  Registry& registry = GlobalRegistry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<std::string> bases;
  bases.reserve(registry.factories.size());
  for (const auto& [base, unused] : registry.factories) bases.push_back(base);
  return bases;
}

}  // namespace mobipriv::core
