#include "core/experiment.h"

#include <algorithm>
#include <sstream>

#include "mechanisms/registry.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace mobipriv::core {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ", ";
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = headers_.size() > 0 ? 2 * (headers_.size() - 1) : 0;
  for (const auto w : widths) total += w;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::ToCsv() const {
  // RFC 4180: quote any cell containing a comma, quote, CR or LF; double
  // embedded quotes.
  const auto escape = [](const std::string& cell) -> std::string {
    if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (const char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ",";
      os << escape(cells[c]);
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

double TimeMs(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

std::vector<std::string> StandardRosterSpecs(
    const std::vector<double>& geo_ind_epsilons) {
  std::vector<std::string> specs = {"identity", "ours[speed+mix]",
                                    "ours[speed]", "ours[mix]"};
  for (const double eps : geo_ind_epsilons) {
    specs.push_back("geo_ind[eps=" + util::FormatDouble(eps, 4) + "]");
  }
  specs.insert(specs.end(), {"wait4me", "cloaking", "gaussian",
                             "downsampling"});
  return specs;
}

std::vector<std::unique_ptr<mech::Mechanism>> StandardRoster(
    const std::vector<double>& geo_ind_epsilons) {
  std::vector<std::unique_ptr<mech::Mechanism>> roster;
  for (const std::string& spec : StandardRosterSpecs(geo_ind_epsilons)) {
    roster.push_back(mech::CreateMechanism(spec));
  }
  return roster;
}

model::ShardedDataset ApplyMechanismSharded(const mech::Mechanism& mechanism,
                                            const model::ShardedDataset& input,
                                            util::Rng& rng) {
  return model::TransformSharded(
      input, rng,
      [&](const model::Dataset& shard, util::Rng& shard_rng, std::size_t) {
        return mechanism.Apply(shard, shard_rng);
      });
}

}  // namespace mobipriv::core
