#include "core/report.h"

#include <sstream>

#include "util/string_utils.h"

namespace mobipriv::core {

std::string EvaluationReport::ToString() const {
  std::ostringstream os;
  os << mechanism << "\n  privacy: poi " << poi.ToString()
     << "\n  utility: sync_err_mean="
     << util::FormatDouble(distortion.synchronized_m.mean, 1)
     << "m path_err_mean=" << util::FormatDouble(distortion.path_m.mean, 1)
     << "m coverage=" << util::FormatDouble(coverage_jaccard, 3)
     << " heatmap=" << util::FormatDouble(heatmap_cosine, 3)
     << " range_err_med="
     << util::FormatDouble(range_queries.relative_error.median, 3)
     << " retention=" << util::FormatDouble(event_retention, 3);
  return os.str();
}

EvaluationReport Evaluate(const synth::SyntheticWorld& world,
                          const model::Dataset& published,
                          const std::string& mechanism_name,
                          const EvaluationConfig& config) {
  EvaluationReport report;
  report.mechanism = mechanism_name;
  const model::Dataset& original = world.dataset();

  // --- Privacy: POI extraction scored against ground truth. ---
  // The attack frame must be shared between published-data extraction and
  // the ground-truth conversion: use the original dataset's projection for
  // both (the published bounding box can shrink when points are dropped).
  const geo::LocalProjection attack_frame =
      attacks::DatasetProjection(original);
  const attacks::PoiExtractor extractor(config.poi_attack);
  const auto extracted = extractor.Extract(published, attack_frame);
  const auto truth = metrics::DistinctTruePlaces(
      world.ground_truth(), world.projection(), attack_frame);
  report.poi = metrics::ScorePoiExtraction(extracted, truth,
                                           config.poi_match);
  report.extracted_pois_raw =
      extractor.Extract(original, attack_frame).size();

  // --- Utility. ---
  report.distortion = metrics::MeasureDistortion(original, published);
  report.coverage_jaccard =
      metrics::CoverageJaccard(original, published, config.coverage);
  report.heatmap_cosine =
      metrics::HeatmapSimilarity(original, published, config.heatmap);
  util::Rng query_rng(config.query_seed);
  const auto queries =
      metrics::SampleQueries(original, config.range_queries, query_rng);
  report.range_queries =
      metrics::MeasureRangeQueryError(original, published, queries);
  const auto original_events = original.EventCount();
  report.event_retention =
      original_events == 0
          ? 0.0
          : static_cast<double>(published.EventCount()) /
                static_cast<double>(original_events);
  return report;
}

}  // namespace mobipriv::core
