#include "core/shard_exec.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#define MOBIPRIV_HAVE_FORK_EXEC 1
#endif

#include "core/worker_protocol.h"
#include "model/columnar_file.h"
#include "model/io.h"
#include "util/fault.h"
#include "util/string_utils.h"

namespace mobipriv::core {

namespace {

#if MOBIPRIV_HAVE_FORK_EXEC

using Clock = std::chrono::steady_clock;

Clock::duration FromMs(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

double MsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Same text the in-process watchdog writes (engine.cpp), so a deadline
/// degradation reads identically whether the stage ran in or out of
/// process.
std::string WatchdogText(double ms) {
  return "node exceeded node_timeout (" + util::FormatDouble(ms, 0) +
         " ms watchdog)";
}

/// SIGPIPE must not kill the supervisor when it writes a request to a
/// worker that just died — the write error is the signal we want.
/// Scoped so library callers keep their own disposition.
struct ScopedIgnoreSigpipe {
  struct sigaction saved {};
  ScopedIgnoreSigpipe() {
    struct sigaction action {};
    action.sa_handler = SIG_IGN;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGPIPE, &action, &saved);
  }
  ~ScopedIgnoreSigpipe() { ::sigaction(SIGPIPE, &saved, nullptr); }
};

/// A pipe whose supervisor-side ends are close-on-exec, so one worker
/// never inherits another worker's pipe ends (which would defeat EOF
/// detection on worker death).
bool MakePipe(int fds[2]) {
#if defined(__linux__)
  return ::pipe2(fds, O_CLOEXEC) == 0;
#else
  if (::pipe(fds) != 0) return false;
  ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
  ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);
  return true;
#endif
}

/// One worker process slot, bound to a fixed shard subset. The slot
/// walks the task list in order; the worker behind it is disposable
/// (killed and respawned across retries).
struct Slot {
  std::vector<std::size_t> shards;
  ::pid_t pid = -1;
  int to_fd = -1;
  int from_fd = -1;
  wp::FrameReader reader;
  std::size_t task = 0;  ///< next/current task index
  int attempt = 0;       ///< attempts used for the current task
  bool busy = false;     ///< request in flight
  bool in_backoff = false;
  bool done = false;
  bool spawned_once = false;
  Clock::time_point deadline{};
  Clock::time_point last_heartbeat{};
  Clock::time_point backoff_until{};
};

struct Supervisor {
  const ShardStreamPlan& plan;
  const std::vector<ShardStageTask>& tasks;
  const std::string& out_dir;
  const ShardExecOptions& options;
  ShardExecStats stats;
  std::vector<Slot> slots;
  // Per (task, slot) terminal failure; empty error string = subset ok.
  std::vector<std::vector<char>> failed;
  std::vector<std::vector<std::string>> errors;

  Supervisor(const ShardStreamPlan& plan_in,
             const std::vector<ShardStageTask>& tasks_in,
             const std::string& out_dir_in, const ShardExecOptions& options_in)
      : plan(plan_in), tasks(tasks_in), out_dir(out_dir_in),
        options(options_in) {
    for (auto& subset : PartitionShards(plan.shard_count, options.workers)) {
      Slot slot;
      slot.shards = std::move(subset);
      slots.push_back(std::move(slot));
    }
    failed.assign(tasks.size(), std::vector<char>(slots.size(), 0));
    errors.assign(tasks.size(), std::vector<std::string>(slots.size()));
  }

  void CloseFds(Slot& slot) {
    if (slot.to_fd >= 0) {
      ::close(slot.to_fd);
      slot.to_fd = -1;
    }
    if (slot.from_fd >= 0) {
      ::close(slot.from_fd);
      slot.from_fd = -1;
    }
  }

  void KillWorker(Slot& slot) {
    CloseFds(slot);
    if (slot.pid >= 0) {
      ::kill(slot.pid, SIGKILL);
      int status = 0;
      ::waitpid(slot.pid, &status, 0);
      slot.pid = -1;
    }
    slot.reader = wp::FrameReader{};
  }

  /// Reaps a worker that died on its own and renders a deterministic,
  /// machine-independent reason string from its exit status.
  std::string ReapReason(Slot& slot) {
    CloseFds(slot);
    int status = 0;
    if (slot.pid >= 0) {
      ::waitpid(slot.pid, &status, 0);
      slot.pid = -1;
    }
    slot.reader = wp::FrameReader{};
    if (WIFSIGNALED(status)) {
      return "killed by signal " + std::to_string(WTERMSIG(status));
    }
    if (WIFEXITED(status)) {
      return "exited with status " + std::to_string(WEXITSTATUS(status));
    }
    return "worker exited abnormally";
  }

  bool Spawn(Slot& slot) {
    int to_pipe[2];
    int from_pipe[2];
    if (!MakePipe(to_pipe)) return false;
    if (!MakePipe(from_pipe)) {
      ::close(to_pipe[0]);
      ::close(to_pipe[1]);
      return false;
    }
    const ::pid_t pid = ::fork();
    if (pid < 0) {
      ::close(to_pipe[0]);
      ::close(to_pipe[1]);
      ::close(from_pipe[0]);
      ::close(from_pipe[1]);
      return false;
    }
    if (pid == 0) {
      // Child: requests on stdin, replies on stdout (dup2 clears
      // close-on-exec on the duplicates); environment inherited, which
      // is what arms MOBIPRIV_FAULTS inside the worker.
      ::dup2(to_pipe[0], 0);
      ::dup2(from_pipe[1], 1);
      ::execl(options.worker_binary.c_str(), options.worker_binary.c_str(),
              static_cast<char*>(nullptr));
      ::_exit(127);
    }
    ::close(to_pipe[0]);
    ::close(from_pipe[1]);
    slot.pid = pid;
    slot.to_fd = to_pipe[1];
    slot.from_fd = from_pipe[0];
    ::fcntl(slot.from_fd, F_SETFL, O_NONBLOCK);
    slot.reader = wp::FrameReader{};
    ++stats.workers_spawned;
    if (slot.spawned_once) ++stats.worker_restarts;
    slot.spawned_once = true;
    return true;
  }

  /// Records the terminal failure of (current task, slot) and moves on.
  void Fail(Slot& slot, std::size_t slot_index, std::string error) {
    failed[slot.task][slot_index] = 1;
    errors[slot.task][slot_index] = std::move(error);
    ++stats.worker_failures;
    Advance(slot);
  }

  void Advance(Slot& slot) {
    slot.busy = false;
    slot.attempt = 0;
    ++slot.task;
  }

  /// A retryable event: kill the worker, burn one attempt, back off
  /// exponentially — or degrade the stage once attempts are exhausted.
  void RetryableFailure(Slot& slot, std::size_t slot_index,
                        const std::string& reason) {
    KillWorker(slot);
    slot.busy = false;
    ++slot.attempt;
    if (slot.attempt >= options.max_attempts) {
      Fail(slot, slot_index,
           "worker failed after " + std::to_string(options.max_attempts) +
               " attempts: " + reason);
      return;
    }
    const double delay_ms =
        options.backoff_base_ms * static_cast<double>(1u << (slot.attempt - 1));
    slot.in_backoff = true;
    slot.backoff_until = Clock::now() + FromMs(delay_ms);
  }

  void Dispatch(Slot& slot, std::size_t slot_index) {
    if (slot.pid < 0 && !Spawn(slot)) {
      RetryableFailure(slot, slot_index, "cannot spawn worker process");
      return;
    }
    const ShardStageTask& task = tasks[slot.task];
    wp::WorkerRequest request;
    request.dir = plan.dir;
    request.out_dir = out_dir;
    request.stem = task.stem;
    request.spec_text = task.spec_text;
    request.prefix_name = task.prefix_name;
    request.seed = task.seed;
    request.attempt = static_cast<std::uint64_t>(slot.attempt);
    request.shards = slot.shards;
    if (!wp::WriteFrame(slot.to_fd, wp::kFrameApply,
                        wp::EncodeRequest(request))) {
      // The worker died between requests; the exit status is the reason.
      RetryableFailure(slot, slot_index, ReapReason(slot));
      return;
    }
    slot.busy = true;
    const auto now = Clock::now();
    slot.last_heartbeat = now;
    if (options.request_timeout_ms > 0) {
      slot.deadline = now + FromMs(options.request_timeout_ms);
    }
  }

  /// Worker replied 'R': every owned shard must now have a valid result
  /// file with the expected trace count. Anything else is a torn
  /// handoff — retryable, with a basename-only (machine-independent)
  /// reason.
  void HandleRequestDone(Slot& slot, std::size_t slot_index) {
    const ShardStageTask& task = tasks[slot.task];
    for (const std::size_t shard : slot.shards) {
      const std::string path = wp::StageShardPath(out_dir, task.stem, shard);
      bool torn = MOBIPRIV_FAULT_POINT_KEYED(
          util::fault::points::kSupervisorResultValidate, task.prefix_name);
      if (!torn) {
        try {
          const model::MappedColumnar result = model::MapColumnar(path);
          torn = result.TraceCount() != plan.origin[shard].size();
        } catch (const std::exception&) {
          torn = true;
        }
      }
      if (torn) {
        RetryableFailure(
            slot, slot_index,
            "result missing or torn: " +
                std::filesystem::path(path).filename().string());
        return;
      }
    }
    Advance(slot);
  }

  void HandleReadable(Slot& slot, std::size_t slot_index) {
    bool eof = false;
    char buf[4096];
    while (true) {
      const ::ssize_t n = ::read(slot.from_fd, buf, sizeof(buf));
      if (n > 0) {
        slot.reader.Feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      eof = true;
      break;
    }
    char type = 0;
    std::string payload;
    while (slot.from_fd >= 0 && slot.reader.Next(&type, &payload)) {
      if (type == wp::kFrameHeartbeat) {
        slot.last_heartbeat = Clock::now();
      } else if (type == wp::kFrameOk && slot.busy) {
        HandleRequestDone(slot, slot_index);
      } else if (type == wp::kFrameFail && slot.busy) {
        // Permanent, worker-reported failure: forwarded verbatim into
        // the Report's error column. The worker itself is healthy.
        Fail(slot, slot_index, std::move(payload));
      } else if (slot.busy) {
        RetryableFailure(slot, slot_index,
                         "protocol error: unexpected frame");
      } else {
        KillWorker(slot);
      }
    }
    if (slot.from_fd >= 0 && slot.reader.corrupt()) {
      if (slot.busy) {
        RetryableFailure(slot, slot_index, "protocol error: oversized frame");
      } else {
        KillWorker(slot);
      }
    }
    if (slot.from_fd >= 0 && eof) {
      if (slot.busy) {
        RetryableFailure(slot, slot_index, ReapReason(slot));
      } else {
        KillWorker(slot);  // quiet death between requests: respawn later
      }
    }
  }

  /// Clean shutdown of a slot that exhausted the task list.
  void Finish(Slot& slot) {
    if (slot.pid >= 0) {
      (void)wp::WriteFrame(slot.to_fd, wp::kFrameQuit, {});
      CloseFds(slot);
      const auto grace_end = Clock::now() + FromMs(2000.0);
      while (Clock::now() < grace_end) {
        int status = 0;
        const ::pid_t reaped = ::waitpid(slot.pid, &status, WNOHANG);
        if (reaped == slot.pid || (reaped < 0 && errno != EINTR)) {
          slot.pid = -1;
          break;
        }
        ::poll(nullptr, 0, 5);
      }
      if (slot.pid >= 0) {
        ::kill(slot.pid, SIGKILL);
        int status = 0;
        ::waitpid(slot.pid, &status, 0);
        slot.pid = -1;
      }
    }
    slot.done = true;
  }

  int ComputeTimeoutMs(Clock::time_point now) const {
    double timeout = 500.0;
    const auto consider = [&](double ms) {
      timeout = std::min(timeout, std::max(ms, 1.0));
    };
    for (const Slot& slot : slots) {
      if (slot.done) continue;
      if (slot.in_backoff) consider(MsBetween(now, slot.backoff_until));
      if (!slot.busy) continue;
      if (options.request_timeout_ms > 0) {
        consider(MsBetween(now, slot.deadline));
      }
      if (options.heartbeat_timeout_ms > 0) {
        consider(options.heartbeat_timeout_ms -
                 MsBetween(slot.last_heartbeat, now));
      }
    }
    return static_cast<int>(timeout);
  }

  std::vector<ShardStageOutcome> Run() {
    while (true) {
      const auto now = Clock::now();
      bool all_done = true;
      for (std::size_t i = 0; i < slots.size(); ++i) {
        Slot& slot = slots[i];
        if (slot.done) continue;
        if (slot.in_backoff && now >= slot.backoff_until) {
          slot.in_backoff = false;
        }
        while (!slot.done && !slot.busy && !slot.in_backoff) {
          if (slot.task >= tasks.size()) {
            Finish(slot);
            break;
          }
          Dispatch(slot, i);
        }
        if (!slot.done) all_done = false;
      }
      if (all_done) break;

      std::vector<::pollfd> fds;
      std::vector<std::size_t> fd_slot;
      for (std::size_t i = 0; i < slots.size(); ++i) {
        if (!slots[i].done && slots[i].from_fd >= 0) {
          fds.push_back(::pollfd{slots[i].from_fd, POLLIN, 0});
          fd_slot.push_back(i);
        }
      }
      const int timeout = ComputeTimeoutMs(Clock::now());
      if (fds.empty()) {
        ::poll(nullptr, 0, timeout);  // only backoff expiries to wait on
      } else if (::poll(fds.data(), static_cast<::nfds_t>(fds.size()),
                        timeout) > 0) {
        for (std::size_t k = 0; k < fds.size(); ++k) {
          if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
          Slot& slot = slots[fd_slot[k]];
          if (!slot.done && slot.from_fd == fds[k].fd) {
            HandleReadable(slot, fd_slot[k]);
          }
        }
      }

      const auto after = Clock::now();
      for (std::size_t i = 0; i < slots.size(); ++i) {
        Slot& slot = slots[i];
        if (slot.done || !slot.busy) continue;
        if (options.request_timeout_ms > 0 && after >= slot.deadline) {
          RetryableFailure(slot, i, WatchdogText(options.request_timeout_ms));
        } else if (options.heartbeat_timeout_ms > 0 &&
                   MsBetween(slot.last_heartbeat, after) >
                       options.heartbeat_timeout_ms) {
          RetryableFailure(
              slot, i,
              "heartbeat lost (" +
                  util::FormatDouble(options.heartbeat_timeout_ms, 0) +
                  " ms)");
        }
      }
    }

    std::vector<ShardStageOutcome> outcomes(tasks.size());
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      for (std::size_t i = 0; i < slots.size(); ++i) {
        if (failed[t][i] != 0 && outcomes[t].ok) {
          outcomes[t].ok = false;
          outcomes[t].error = errors[t][i];
        }
      }
    }
    return outcomes;
  }
};

#endif  // MOBIPRIV_HAVE_FORK_EXEC

}  // namespace

std::string DefaultWorkerBinary() {
#if defined(__linux__)
  char buf[4096];
  const ::ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  const std::filesystem::path candidate =
      std::filesystem::path(buf).parent_path() / "mobipriv_worker";
  std::error_code ec;
  if (!std::filesystem::exists(candidate, ec) || ec) return {};
  if (::access(candidate.c_str(), X_OK) != 0) return {};
  return candidate.string();
#else
  return {};
#endif
}

std::string MakeScratchDir() {
  static std::atomic<std::uint64_t> counter{0};
  std::error_code ec;
  const std::filesystem::path base = std::filesystem::temp_directory_path(ec);
  if (ec) {
    throw model::IoError("cannot resolve temp directory: " + ec.message());
  }
  long pid = 0;
#if MOBIPRIV_HAVE_FORK_EXEC
  pid = static_cast<long>(::getpid());
#endif
  const std::filesystem::path dir =
      base / ("mobipriv-exec-" + std::to_string(pid) + "-" +
              std::to_string(counter.fetch_add(1)));
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw model::IoError("cannot create scratch directory " + dir.string() +
                         ": " + ec.message());
  }
  return dir.string();
}

std::vector<std::vector<std::size_t>> PartitionShards(std::size_t shard_count,
                                                      std::size_t workers) {
  std::vector<std::vector<std::size_t>> subsets;
  if (shard_count == 0) return subsets;
  const std::size_t n =
      std::min(std::max<std::size_t>(workers, 1), shard_count);
  const std::size_t base = shard_count / n;
  const std::size_t extra = shard_count % n;
  std::size_t next = 0;
  subsets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::size_t> subset(base + (i < extra ? 1 : 0));
    for (std::size_t& shard : subset) shard = next++;
    subsets.push_back(std::move(subset));
  }
  return subsets;
}

std::vector<ShardStageOutcome> RunShardStagesMultiProcess(
    const ShardStreamPlan& plan, const std::vector<ShardStageTask>& tasks,
    const std::string& out_dir, const ShardExecOptions& options,
    ShardExecStats* stats) {
  if (stats != nullptr) *stats = ShardExecStats{};
  if (tasks.empty()) return {};
#if MOBIPRIV_HAVE_FORK_EXEC
  if (options.worker_binary.empty()) {
    throw std::invalid_argument(
        "RunShardStagesMultiProcess: empty worker_binary");
  }
  if (plan.shard_count == 0) {
    throw std::invalid_argument("RunShardStagesMultiProcess: no shards");
  }
  const ScopedIgnoreSigpipe ignore_sigpipe;
  Supervisor supervisor(plan, tasks, out_dir, options);
  std::vector<ShardStageOutcome> outcomes = supervisor.Run();
  if (stats != nullptr) *stats = supervisor.stats;
  return outcomes;
#else
  std::vector<ShardStageOutcome> outcomes(tasks.size());
  for (ShardStageOutcome& outcome : outcomes) {
    outcome.ok = false;
    outcome.error = "multi-process execution unavailable on this platform";
  }
  return outcomes;
#endif
}

}  // namespace mobipriv::core
