#include "core/output_cache.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "model/atomic_file.h"
#include "model/columnar_file.h"
#include "util/fault.h"
#include "util/string_utils.h"

namespace mobipriv::core {
namespace {

namespace fs = std::filesystem;
namespace fault = util::fault;

/// Incremental FNV-1a64 over heterogeneous values.
struct Fnv1aStream {
  std::uint64_t h = 14695981039346656037ULL;
  void Bytes(const void* data, std::size_t size) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h ^= p[i];
      h *= 1099511628211ULL;
    }
  }
  template <typename T>
  void Value(const T& v) noexcept {
    Bytes(&v, sizeof(v));
  }
};

/// Bounded retry budget for transient I/O failures on cache reads: up to
/// 2 retries with 1ms / 4ms backoff. A cache entry that still fails after
/// the budget is treated as a miss (recompute), never as a run failure —
/// the cache is a performance layer, not a correctness dependency.
constexpr int kCacheReadRetries = 2;
constexpr std::chrono::milliseconds kCacheReadBackoff[] = {
    std::chrono::milliseconds(1), std::chrono::milliseconds(4)};

std::uint64_t FileSizeOrZero(const fs::path& path) {
  std::error_code ec;
  const std::uint64_t size = fs::file_size(path, ec);
  return ec ? 0 : size;
}

}  // namespace

OutputCache::OutputCache(std::filesystem::path dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {
  fs::create_directories(dir_);
}

std::uint64_t OutputCache::FingerprintView(const model::DatasetView& view) {
  Fnv1aStream fnv;
  fnv.Value(view.UserCount());
  for (model::UserId id = 0;
       id < static_cast<model::UserId>(view.UserCount()); ++id) {
    const std::string name = view.UserName(id);
    fnv.Value(name.size());
    fnv.Bytes(name.data(), name.size());
  }
  fnv.Value(view.TraceCount());
  for (const model::TraceView& trace : view.traces()) {
    fnv.Value(trace.user());
    fnv.Value(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
      fnv.Value(trace.lat(i));
      fnv.Value(trace.lng(i));
      fnv.Value(trace.time(i));
    }
  }
  return fnv.h;
}

std::string OutputCache::KeyText(const std::string& name,
                                 std::uint64_t fingerprint,
                                 std::uint64_t seed) {
  std::ostringstream os;
  os << "mechanism " << name << "\n"
     << "fingerprint " << util::ToHex(fingerprint) << "\n"
     << "seed " << seed << "\n"
     << "format " << model::kColumnarFormatVersion << "\n"
     << "epoch " << kMechanismCacheEpoch << "\n";
  return os.str();
}

std::string OutputCache::Stem(const std::string& key_text) {
  return util::ToHex(model::Fnv1a64(key_text.data(), key_text.size()));
}

bool OutputCache::TryLoad(const std::string& key_text,
                          model::EventStore& store) {
  const std::string stem = Stem(key_text);
  const fs::path key_path = dir_ / (stem + ".key");
  const fs::path mpc_path = dir_ / (stem + ".mpc");
  std::ifstream key_in(key_path, std::ios::binary);
  if (!key_in) return false;
  std::ostringstream recorded;
  recorded << key_in.rdbuf();
  if (recorded.str() != key_text) return false;  // stale: never reuse
  for (int attempt = 0;; ++attempt) {
    try {
      if (MOBIPRIV_FAULT_POINT(fault::points::kCacheReadLoad)) {
        throw model::IoError("injected fault (" +
                             std::string(fault::points::kCacheReadLoad) +
                             "): " + mpc_path.string());
      }
      store = model::ReadColumnar(mpc_path.string());
      // Refresh LRU recency: the sidecar mtime is the eviction order key.
      // Best effort — a failed touch only ages this entry.
      std::error_code ec;
      fs::last_write_time(key_path, fs::file_time_type::clock::now(), ec);
      return true;
    } catch (const model::IoError&) {
      if (attempt >= kCacheReadRetries) return false;  // miss: recompute
      read_retries_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(kCacheReadBackoff[attempt]);
    }
  }
}

void OutputCache::Store(const std::string& key_text,
                        const model::EventStore& store) {
  try {
    if (MOBIPRIV_FAULT_POINT(fault::points::kCacheWriteSpill)) {
      throw model::IoError("injected fault (" +
                           std::string(fault::points::kCacheWriteSpill) +
                           "): cache spill");
    }
    const std::string stem = Stem(key_text);
    model::WriteColumnar(store, (dir_ / (stem + ".mpc")).string());
    model::WriteFileAtomic((dir_ / (stem + ".key")).string(),
                           key_text.data(), key_text.size());
  } catch (const std::exception&) {
    // Best effort: a failed spill costs the next run a recompute, nothing
    // else.
  }
  EnforceCap();
}

void OutputCache::EnforceCap() {
  if (max_bytes_ == 0) return;
  const std::lock_guard<std::mutex> lock(evict_mutex_);

  // One committed entry (sidecar present) or one orphaned payload. Sorted
  // orphans-first, then by (sidecar mtime, stem): orphans are dead weight
  // from an interrupted commit or eviction and always go first; among live
  // entries the least-recently-used goes first, with the stem as a
  // deterministic tiebreak.
  struct Entry {
    bool orphan = false;
    fs::file_time_type mtime{};
    std::string stem;
    std::uint64_t bytes = 0;
  };
  std::vector<Entry> entries;
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(dir_, ec)) {
    if (item.path().extension() != ".mpc") continue;
    Entry entry;
    entry.stem = item.path().stem().string();
    entry.bytes = FileSizeOrZero(item.path());
    const fs::path key_path = dir_ / (entry.stem + ".key");
    std::error_code key_ec;
    entry.mtime = fs::last_write_time(key_path, key_ec);
    if (key_ec) {
      entry.orphan = true;
    } else {
      entry.bytes += FileSizeOrZero(key_path);
    }
    total += entry.bytes;
    entries.push_back(std::move(entry));
  }
  if (ec || total <= max_bytes_) return;

  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.orphan != b.orphan) return a.orphan;
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.stem < b.stem;
  });
  for (const Entry& entry : entries) {
    if (total <= max_bytes_) break;
    // Sidecar first: between the two removes the entry is an orphaned
    // payload, which every reader treats as a miss — a crash mid-eviction
    // can therefore never leave a reusable half-entry.
    std::error_code rm_ec;
    fs::remove(dir_ / (entry.stem + ".key"), rm_ec);
    fs::remove(dir_ / (entry.stem + ".mpc"), rm_ec);
    total -= std::min(total, entry.bytes);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace mobipriv::core
