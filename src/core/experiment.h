// Shared experiment plumbing for the bench binaries: aligned table printing
// (every bench emits the same CSV-compatible tables), wall-clock timing and
// the standard mechanism roster used by comparison sweeps.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mechanisms/mechanism.h"
#include "model/sharded_dataset.h"

namespace mobipriv::core {

/// Fixed-width console table that doubles as CSV (separator "," plus
/// padding). Column widths adapt to content.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Renders with aligned columns to a string (header, separator, rows).
  [[nodiscard]] std::string ToString() const;
  /// Strict CSV rendering (no padding). Cells containing commas, quotes,
  /// CR or LF are RFC-4180 quoted (mechanism spec strings like
  /// "geo_ind[eps=0.001,0.01]" contain commas).
  [[nodiscard]] std::string ToCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Milliseconds elapsed while running `fn`.
[[nodiscard]] double TimeMs(const std::function<void()>& fn);

/// The standard mechanism roster of the comparison benches as registry
/// spec strings: identity, the paper's pipeline (full and each stage
/// alone), geo-indistinguishability at the given epsilons, Wait4Me,
/// cloaking, Gaussian noise and downsampling. This is the canned grid a
/// ScenarioSpec names; mech::CreateMechanism turns each entry into an
/// instance.
[[nodiscard]] std::vector<std::string> StandardRosterSpecs(
    const std::vector<double>& geo_ind_epsilons = {0.001, 0.01, 0.1});

/// StandardRosterSpecs instantiated through the mechanism registry.
[[nodiscard]] std::vector<std::unique_ptr<mech::Mechanism>> StandardRoster(
    const std::vector<double>& geo_ind_epsilons = {0.001, 0.01, 0.1});

/// Runs any mechanism shard-wise: every shard transforms independently on
/// its own derived RNG stream (one master draw from `rng`; byte-identical
/// at any worker count). The generic form of Anonymizer::ApplySharded for
/// roster sweeps over sharded corpora.
[[nodiscard]] model::ShardedDataset ApplyMechanismSharded(
    const mech::Mechanism& mechanism, const model::ShardedDataset& input,
    util::Rng& rng);

}  // namespace mobipriv::core
