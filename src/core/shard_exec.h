// Fault-tolerant multi-process shard execution: the supervisor side of
// ROADMAP item 2.
//
// The engine's shard-streamed path (core/engine.cpp) proves a grid over
// a shard directory can run without the dataset ever being resident;
// this layer moves the mechanism work OUT OF PROCESS so one bad
// allocation, stuck mechanism or OOM kill loses a retry, not the run.
//
// Shape: the supervisor partitions the plan's shards into up to
// `workers` contiguous subsets (PartitionShards) and runs one
// `mobipriv_worker` process per subset, speaking the length-prefixed
// pipe protocol of core/worker_protocol.h. Each (stage, subset) request
// makes the worker apply one mechanism stage to its shards and publish
// one `.mpc` result file per shard through the atomic write path — a
// worker killed mid-write never leaves a torn result under the final
// name, so the supervisor can treat "missing or torn result" as just
// another retryable failure.
//
// Robustness model (all bounds deterministic, all error strings
// machine-independent so degraded reports stay byte-identical):
//   * liveness   — workers heartbeat on the pipe while applying; a
//                  silent worker past `heartbeat_timeout_ms` is killed;
//   * deadlines  — `request_timeout_ms` (wired from the engine's
//                  node_timeout_ms) bounds each request wall-clock,
//                  reusing the watchdog's error text on expiry;
//   * retry      — crash / nonzero exit / timeout / heartbeat loss /
//                  torn result -> kill, exponential backoff
//                  (backoff_base_ms * 2^attempt), respawn, retry, at
//                  most `max_attempts` attempts per (stage, subset);
//   * degrade    — retry exhaustion (or a worker-reported permanent
//                  failure, forwarded verbatim) fails ONLY that stage's
//                  rows; the rest of the grid completes normally.
//
// Determinism: per-trace RNG streams are partition-independent
// (PerTraceMechanism::ApplyToIndexedTrace keyed by global user id +
// original dataset index), `.mpc` round-trips doubles bitwise, and the
// engine merges results in ascending shard order — so the merged Report
// is byte-identical to the in-process run at ANY worker count, retry
// history included.
//
// Fault points (util/fault.h): workers inherit the supervisor's
// environment, so MOBIPRIV_FAULTS specs arm inside every worker —
// `worker.apply=kill:9@1,key:gaussian#0` SIGKILLs exactly one worker
// mid-stage, deterministically. `supervisor.result.validate` tears the
// supervisor-side result check instead.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/scenario.h"

namespace mobipriv::core {

struct ShardExecOptions {
  /// Worker executable path. Required (the engine resolves it via
  /// DefaultWorkerBinary() or ScenarioSpec::worker_binary).
  std::string worker_binary;
  /// Desired worker process count (clamped to the shard count; >= 1).
  std::size_t workers = 1;
  /// Per-request wall-clock deadline, ms (0 = none). Expiry kills the
  /// worker and counts a retry attempt with the watchdog's error text.
  double request_timeout_ms = 0.0;
  /// Kill a busy worker whose last heartbeat is older than this, ms.
  double heartbeat_timeout_ms = 10000.0;
  /// Attempts per (stage, subset) before the stage degrades to failed.
  int max_attempts = 3;
  /// Backoff before retry k (1-based) is backoff_base_ms * 2^(k-1).
  double backoff_base_ms = 10.0;
};

/// Supervision counters, surfaced through EngineStats.
struct ShardExecStats {
  std::size_t workers_spawned = 0;  ///< processes forked (incl. respawns)
  std::size_t worker_restarts = 0;  ///< spawns beyond a subset's first
  std::size_t worker_failures = 0;  ///< (stage, subset) permanent failures
};

/// One mechanism stage to distribute: the spec to instantiate, the
/// prefix name that keys its RNG stream (and fault keys), the grid seed,
/// and the result-file stem (wp::StageShardPath(out_dir, stem, shard)).
struct ShardStageTask {
  std::string spec_text;
  std::string prefix_name;
  std::string stem;
  std::uint64_t seed = 0;
};

/// Per-stage result: ok when every subset published valid results for
/// every shard; otherwise the (deterministic) error of the
/// lowest-indexed failing subset.
struct ShardStageOutcome {
  bool ok = true;
  std::string error;
};

/// Path of the `mobipriv_worker` binary expected next to the current
/// executable; empty when it is absent, not executable, or the platform
/// has no /proc/self/exe-style self lookup. Empty => the engine falls
/// back to in-process execution.
[[nodiscard]] std::string DefaultWorkerBinary();

/// Creates and returns a fresh scratch directory for worker result
/// handoff (under the system temp dir, unique per process + call).
/// Throws model::IoError when it cannot be created.
[[nodiscard]] std::string MakeScratchDir();

/// Splits [0, shard_count) into min(workers, shard_count) contiguous
/// subsets with sizes differing by at most one (earlier subsets take the
/// remainder). Deterministic; never returns an empty subset.
[[nodiscard]] std::vector<std::vector<std::size_t>> PartitionShards(
    std::size_t shard_count, std::size_t workers);

/// Runs every task over every shard of `plan` across supervised worker
/// processes; result files land in `out_dir`. Returns one outcome per
/// task (same order). Never throws for worker-side problems — those
/// degrade into the outcomes; throws only for supervisor-side
/// programming errors (empty worker_binary, no shards). SIGPIPE is
/// ignored for the call's duration (saved and restored).
[[nodiscard]] std::vector<ShardStageOutcome> RunShardStagesMultiProcess(
    const ShardStreamPlan& plan, const std::vector<ShardStageTask>& tasks,
    const std::string& out_dir, const ShardExecOptions& options,
    ShardExecStats* stats);

}  // namespace mobipriv::core
