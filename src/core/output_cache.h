// The `.mpc` mechanism-output cache: spills scenario-engine node outputs
// to disk, content-addressed by (canonical node name, source fingerprint,
// seed), and reuses them across runs. Extracted from core/engine so chain
// compilation, the CLI and the test suite share one keying scheme.
//
// Entry layout (docs/FORMAT.md, "Cached mechanism outputs"): payload
// `<stem>.mpc` plus sidecar `<stem>.key`, stem = hex FNV-1a64 of the key
// text. The sidecar is the commit marker — written last, required to
// match exactly on reuse — so a hash collision in the stem can never
// serve the wrong output and any key drift reads as stale.
//
// With `max_bytes` > 0 the cache is LRU-bounded: every Store enforces the
// cap by evicting least-recently-used entries (recency = the sidecar's
// mtime, refreshed on every hit) until the directory fits. Eviction
// removes the sidecar FIRST, then the payload, so a crash mid-eviction
// leaves at worst an orphaned payload — which every reader treats as a
// miss. Evicting a live entry is always safe: the next run recomputes.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>

#include "model/event_store.h"
#include "model/views.h"

namespace mobipriv::core {

/// Cache epoch: the mechanism-implementation version component of the
/// cache key. A cached output is only as valid as the code that produced
/// it — bump this on ANY change to a mechanism's algorithm or rng stream
/// discipline, and every existing entry reads as stale (recomputed, never
/// reused) instead of silently replaying pre-change outputs.
inline constexpr std::uint32_t kMechanismCacheEpoch = 1;

class OutputCache {
 public:
  /// Creates `dir` if needed. `max_bytes` == 0 means unbounded.
  explicit OutputCache(std::filesystem::path dir, std::uint64_t max_bytes = 0);

  /// Content fingerprint of a bound source: user names, trace structure
  /// (user id + length per trace) and every column bit pattern. Two
  /// sources fingerprint equal iff a mechanism sees identical input —
  /// the dataset component of the cache key.
  [[nodiscard]] static std::uint64_t FingerprintView(
      const model::DatasetView& view);

  /// The sidecar text identifying one cache entry. For a chain stage,
  /// `name` is the stage's PREFIX canonical name (stages [0..k] joined
  /// with '|'), making the key a prefix-fingerprint: suffix stages and
  /// sibling grid rows never affect it.
  [[nodiscard]] static std::string KeyText(const std::string& name,
                                           std::uint64_t fingerprint,
                                           std::uint64_t seed);

  /// File stem for one cache entry (hex FNV-1a64 of the key text).
  [[nodiscard]] static std::string Stem(const std::string& key_text);

  /// Attempts to reuse an entry. Returns true and fills `store` only when
  /// the sidecar matches `key_text` exactly AND the payload reads back
  /// clean (every section checksum verified). A transient IoError is
  /// retried with bounded backoff (counted into read_retries()); persistent
  /// failure, staleness or corruption is a miss — the caller recomputes
  /// and overwrites. A hit refreshes the sidecar mtime (LRU recency).
  [[nodiscard]] bool TryLoad(const std::string& key_text,
                             model::EventStore& store);

  /// Spills one node output: payload first, sidecar last, both through
  /// the atomic-commit helper (temp -> fsync -> rename) — neither a crash
  /// nor an injected fault can publish a half-written entry. Failures are
  /// non-fatal (the run already holds the computed store). Enforces the
  /// byte cap afterwards.
  void Store(const std::string& key_text, const model::EventStore& store);

  /// Evicts least-recently-used entries until the directory holds at most
  /// `max_bytes` (no-op when unbounded). Public so tests and maintenance
  /// paths can re-enforce after external modification.
  void EnforceCap();

  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }
  [[nodiscard]] std::uint64_t max_bytes() const noexcept { return max_bytes_; }
  /// Transient read failures absorbed by the retry budget.
  [[nodiscard]] std::size_t read_retries() const noexcept {
    return read_retries_.load(std::memory_order_relaxed);
  }
  /// Entries evicted by the LRU cap (orphaned payloads count too).
  [[nodiscard]] std::size_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  std::filesystem::path dir_;
  std::uint64_t max_bytes_ = 0;
  std::atomic<std::size_t> read_retries_{0};
  std::atomic<std::size_t> evictions_{0};
  std::mutex evict_mutex_;
};

}  // namespace mobipriv::core
