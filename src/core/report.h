// One-call evaluation: runs the privacy attacks and utility metrics against
// an (original, published) dataset pair and assembles the numbers every
// bench table reports. This is the library's "evaluation harness in a box"
// for downstream users.
#pragma once

#include <optional>
#include <string>

#include "attacks/poi_extraction.h"
#include "attacks/reident.h"
#include "metrics/coverage.h"
#include "metrics/heatmap.h"
#include "metrics/poi_metrics.h"
#include "metrics/range_queries.h"
#include "metrics/reident_metrics.h"
#include "metrics/spatial_distortion.h"
#include "synth/population.h"

namespace mobipriv::core {

struct EvaluationConfig {
  attacks::PoiExtractionConfig poi_attack;
  metrics::PoiMatchConfig poi_match;
  metrics::CoverageConfig coverage;
  metrics::HeatmapConfig heatmap;
  metrics::RangeQueryConfig range_queries;
  std::uint64_t query_seed = 1234;
};

/// Everything measured about one publication.
struct EvaluationReport {
  std::string mechanism;
  // Privacy.
  metrics::PoiScore poi;               ///< attack vs ground truth
  std::size_t extracted_pois_raw = 0;  ///< attack on the raw data (reference)
  // Utility.
  metrics::DistortionSummary distortion;
  double coverage_jaccard = 0.0;
  double heatmap_cosine = 0.0;
  metrics::RangeQueryReport range_queries;
  double event_retention = 0.0;  ///< published events / original events

  [[nodiscard]] std::string ToString() const;
};

/// Runs the full evaluation of `published` against the world's original
/// dataset and ground truth.
[[nodiscard]] EvaluationReport Evaluate(const synth::SyntheticWorld& world,
                                        const model::Dataset& published,
                                        const std::string& mechanism_name,
                                        const EvaluationConfig& config = {});

}  // namespace mobipriv::core
