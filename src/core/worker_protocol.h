// Wire protocol between the shard-execution supervisor and the
// `mobipriv_worker` processes it spawns (core/shard_exec.h).
//
// Framing is length-prefixed so a half-written frame is detectable, not
// misparsed: every frame is
//
//   [u32 LE payload length n] [1 type byte] [n payload bytes]
//
// written atomically enough for a pipe (frames are far below PIPE_BUF
// for control messages; the only large frame is an encoded request,
// which only the single-writer supervisor sends). Frame types:
//
//   'A'  supervisor -> worker: apply one stage to a shard subset
//        (payload = EncodeRequest text)
//   'Q'  supervisor -> worker: quit cleanly (empty payload)
//   'H'  worker -> supervisor: heartbeat / liveness (empty payload)
//   'R'  worker -> supervisor: request done, results published
//   'F'  worker -> supervisor: request failed permanently
//        (payload = machine-independent error text, forwarded verbatim
//        into the Report's error column)
//
// A payload length above kMaxFramePayload marks the stream corrupt —
// the supervisor treats that like a worker crash (kill + retry) rather
// than attempting resynchronization.
//
// Requests are encoded as `key=value` lines (values must not contain
// newlines — they are paths, spec strings and decimal integers, none of
// which do). Workers publish each shard's transformed columns as
// `<out_dir>/<stem>-shard-NNNNN.mpc` via the atomic WriteColumnar path,
// so a worker killed mid-write never leaves a torn result under the
// final name; StageShardPath is the single source of that naming.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mobipriv::core::wp {

inline constexpr char kFrameApply = 'A';
inline constexpr char kFrameQuit = 'Q';
inline constexpr char kFrameHeartbeat = 'H';
inline constexpr char kFrameOk = 'R';
inline constexpr char kFrameFail = 'F';

/// Corruption guard: no legitimate frame payload approaches this
/// (requests are bounded by spec strings + a shard index list).
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 20;

/// One unit of worker work: apply one mechanism stage to a subset of a
/// shard directory's shards, publishing one result file per shard.
struct WorkerRequest {
  std::string dir;          ///< shard directory (ProbeShardStream source)
  std::string out_dir;      ///< scratch directory for result `.mpc` files
  std::string stem;         ///< result file stem (see StageShardPath)
  std::string spec_text;    ///< mechanism spec (mech::CreateMechanism)
  std::string prefix_name;  ///< stage prefix name (RNG stream + fault key)
  std::uint64_t seed = 0;   ///< grid seed of the stage
  std::uint64_t attempt = 0;  ///< 0-based retry attempt (fault keys)
  std::vector<std::size_t> shards;  ///< owned shard indices, ascending
};

/// Result path for one (stage, shard): `<out_dir>/<stem>-shard-NNNNN.mpc`.
[[nodiscard]] std::string StageShardPath(const std::string& out_dir,
                                         const std::string& stem,
                                         std::size_t shard);

[[nodiscard]] std::string EncodeRequest(const WorkerRequest& request);

/// Parses an EncodeRequest payload. Returns false (with a description in
/// `*error`) on unknown keys, malformed numbers or missing fields.
[[nodiscard]] bool DecodeRequest(std::string_view payload,
                                 WorkerRequest* request, std::string* error);

/// Writes one frame to `fd`, retrying on EINTR. Returns false on any
/// write error (a dead peer surfaces as EPIPE once SIGPIPE is ignored) —
/// callers treat that as peer loss, never as data.
[[nodiscard]] bool WriteFrame(int fd, char type,
                              std::string_view payload) noexcept;

/// Incremental frame decoder for the nonblocking read side: Feed() raw
/// bytes as they arrive, Next() pops complete frames in order. Once a
/// frame declares an oversized payload the stream is `corrupt()` and
/// Next() never yields again.
class FrameReader {
 public:
  void Feed(const char* data, std::size_t n);
  [[nodiscard]] bool Next(char* type, std::string* payload);
  [[nodiscard]] bool corrupt() const noexcept { return corrupt_; }

 private:
  std::string buffer_;
  bool corrupt_ = false;
};

}  // namespace mobipriv::core::wp
