// Declarative experiment scenarios: WHAT to run, not HOW.
//
// A ScenarioSpec names a dataset source, a list of mechanism spec strings
// (mechanisms/registry.h), a list of evaluator spec strings
// (core/evaluator.h), the seeds of the grid and an optional thread
// override. core/engine.h compiles the spec into a task DAG and executes
// it; every bench binary is now a spec plus a table dump instead of its
// own mechanism loop.
//
// The dataset source abstracts every way the library can obtain data:
//   * a CSV / Geolife text file (parsed once at bind time),
//   * a `.mpc` columnar file (mmap-opened; mechanisms and evaluators are
//     fed zero-copy views of the mapping — no full-dataset Materialize),
//   * a SaveShards directory (every shard `.mpc` mmap-opened; the
//     manifest's global name table and recorded trace order reassemble
//     the canonical view zero-copy, so the report is byte-identical
//     whatever the shard count),
//   * a synthetic world (generated at bind time), or
//   * a borrowed in-memory Dataset (tests, composition).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "model/columnar_file.h"
#include "model/dataset.h"
#include "model/sharded_dataset.h"
#include "model/views.h"

namespace mobipriv::synth {
class SyntheticWorld;
}  // namespace mobipriv::synth

namespace mobipriv::core {

struct DatasetSourceSpec {
  enum class Kind {
    kNone,
    kCsvFile,
    kColumnarFile,
    kShardDir,
    kSynthetic,
    kBorrowed,
  };

  Kind kind = Kind::kNone;
  std::string path;  ///< kCsvFile / kColumnarFile / kShardDir
  // kSynthetic parameters.
  std::size_t agents = 50;
  std::size_t days = 1;
  std::uint64_t world_seed = 42;
  // kBorrowed: non-owning; must outlive the bound source.
  const model::Dataset* borrowed = nullptr;

  [[nodiscard]] static DatasetSourceSpec CsvFile(std::string path);
  [[nodiscard]] static DatasetSourceSpec ColumnarFile(std::string path);
  [[nodiscard]] static DatasetSourceSpec ShardDir(std::string path);
  [[nodiscard]] static DatasetSourceSpec Synthetic(
      std::size_t agents, std::size_t days, std::uint64_t world_seed);
  [[nodiscard]] static DatasetSourceSpec Borrowed(
      const model::Dataset& dataset);
  /// Dispatches on the path: a directory containing `manifest.mpm` is a
  /// shard dir, a `.mpc` file is columnar, anything else is CSV/text.
  [[nodiscard]] static DatasetSourceSpec FromPath(std::string path);

  [[nodiscard]] std::string Describe() const;
};

/// One declarative experiment grid:
///   source x mechanisms x evaluators x seeds.
struct ScenarioSpec {
  DatasetSourceSpec source;
  /// Mechanism spec strings (mech::CreateMechanism). Entries that
  /// canonicalize to the same Name() share one memoized node per seed.
  std::vector<std::string> mechanisms;
  /// Evaluator spec strings (core::CreateEvaluator).
  std::vector<std::string> evaluators;
  std::vector<std::uint64_t> seeds = {1};
  /// Worker override for the run (0 = ambient). Reports are byte-identical
  /// at any value — this is a resource knob, never a semantic one.
  std::size_t threads = 0;
  /// When non-empty, mechanism outputs are spilled to / reused from this
  /// directory as `.mpc` files, content-addressed by (canonical mechanism
  /// name, dataset fingerprint, seed) — see docs/FORMAT.md "Cached
  /// mechanism outputs". A stale or corrupt entry is never reused: the
  /// engine recomputes and overwrites it. Purely a performance knob;
  /// reports are byte-identical with the cache on, off, cold or warm.
  std::string mechanism_cache_dir;
  /// Byte cap for `mechanism_cache_dir` (0 = unbounded). When a spill
  /// pushes the directory past the cap, least-recently-used entries are
  /// evicted until it fits (recency = last reuse). Evicting a live entry
  /// only costs a recompute — reports stay byte-identical under any cap.
  std::uint64_t mechanism_cache_max_bytes = 0;
  /// Per-node wall-clock watchdog, milliseconds (0 = off). A node whose
  /// execution exceeds this is recorded as failed ("node exceeded
  /// node_timeout" error row) and its dependents are skipped; the rest of
  /// the grid completes normally. In-process the check is applied at node
  /// completion — it contains a slow node's blast radius, it does not
  /// preempt it; with `workers` > 0 it becomes the per-request deadline
  /// of the worker supervisor (core/shard_exec.h), which DOES preempt:
  /// the worker is killed and the request retried.
  double node_timeout_ms = 0.0;
  /// Worker PROCESS count for shard-dir sources (0 = in-process). When
  /// > 0 and the grid is shard-streamable (see EngineStats::
  /// streamed_shards), mechanism stages run in supervised
  /// `mobipriv_worker` processes with crash/timeout retry and graceful
  /// per-stage degradation (core/shard_exec.h). Reports are
  /// byte-identical at any value — a resource/robustness knob, never a
  /// semantic one. Ignored (in-process fallback) when the source is not
  /// shard-streamable or the worker binary cannot be found.
  std::size_t workers = 0;
  /// Worker executable override; empty = the `mobipriv_worker` next to
  /// the current executable (DefaultWorkerBinary()).
  std::string worker_binary;
};

/// Parses a sweep-config text (the `anonymize_csv --sweep` file format;
/// docs/FORMAT.md, "Sweep config files") into a ScenarioSpec. Line
/// oriented `key = value`; '#' starts a comment; blank lines are ignored.
/// Keys: source, mechanisms, evaluators, seeds, threads, workers,
/// cache_dir, cache_max_bytes, node_timeout_ms (mechanism/evaluator
/// accepted as singular aliases). List values split on top-level commas, so chain and
/// bracket parameters pass through intact. Unknown keys and malformed
/// values throw util::SpecError with the offending line number; `context`
/// (typically the file name) prefixes every message.
[[nodiscard]] ScenarioSpec ParseSweepConfig(std::string_view text,
                                            const std::string& context);

/// Reads `path` and parses it with ParseSweepConfig(text, path). Throws
/// model::IoError when the file cannot be read.
[[nodiscard]] ScenarioSpec LoadSweepConfig(const std::string& path);

/// Access plan for executing a shard directory one shard at a time (the
/// engine's out-of-core path): the manifest metadata plus the per-shard
/// translation tables the streamed executor needs, with no shard resident.
struct ShardStreamPlan {
  std::string dir;
  std::size_t shard_count = 0;
  /// Global dense id -> external user name (manifest name table).
  std::vector<std::string> global_names;
  /// Original dataset-order index of shard s's local trace i — the trace
  /// index the whole-view canonical order would give it (strictly
  /// ascending within each shard, so shard-local order IS canonical order
  /// restricted to the shard).
  std::vector<std::vector<std::size_t>> origin;
  /// Per shard: shard-local user id -> global dense id.
  std::vector<std::vector<model::UserId>> local_to_global;
  std::size_t total_traces = 0;
};

/// Probes `dir` for shard-streamed eligibility and builds the plan. The
/// probe maps each shard once (metadata pages only) and requires:
///   * a manifest with an origin table,
///   * strictly ascending origin within every shard (shard-local order ==
///     canonical order restricted), and
///   * every user's traces confined to one shard (per-user passes then
///     see whole users).
/// Returns nullopt when any condition fails — including I/O or corruption
/// problems, which the whole-view bind will then surface with its own
/// diagnostics. Streaming is a resource strategy, never a semantic one.
[[nodiscard]] std::optional<ShardStreamPlan> ProbeShardStream(
    const std::string& dir);

/// A bound dataset source: owns whatever storage the source kind needs
/// (parsed dataset, synthetic world, mmap mappings) and serves one
/// canonical zero-copy DatasetView over it. For shard directories the
/// canonical view replays the manifest's recorded original trace order
/// under the global user-id space, so the SAME view (and therefore the
/// same downstream report) emerges from any shard count.
class BoundSource {
 public:
  /// Binds `spec`, loading/mapping as needed (shard files map
  /// concurrently). Throws model::IoError on I/O or corruption problems.
  [[nodiscard]] static BoundSource Bind(const DatasetSourceSpec& spec);

  // Out of line: unique_ptr<SyntheticWorld> needs the complete type.
  BoundSource(BoundSource&&) noexcept;
  BoundSource& operator=(BoundSource&&) noexcept;
  ~BoundSource();
  BoundSource(const BoundSource&) = delete;
  BoundSource& operator=(const BoundSource&) = delete;

  /// The canonical view. Valid while this BoundSource lives.
  [[nodiscard]] const model::DatasetView& view() const noexcept {
    return view_;
  }
  [[nodiscard]] const std::string& description() const noexcept {
    return description_;
  }

 private:
  BoundSource() = default;

  std::string description_;
  // Exactly one of these owns the events, depending on the source kind.
  model::Dataset owned_;
  std::unique_ptr<synth::SyntheticWorld> world_;
  model::MappedColumnar mapped_;
  std::vector<model::MappedColumnar> shard_maps_;
  std::vector<std::string> shard_names_;  // manifest global name table
  model::DatasetView view_;
};

}  // namespace mobipriv::core
