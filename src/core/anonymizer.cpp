#include "core/anonymizer.h"

#include <sstream>

#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace mobipriv::core {

std::string PipelineReport::ToString() const {
  std::ostringstream os;
  os << "events: in=" << input_events
     << " after_smoothing=" << after_smoothing_events
     << " out=" << output_events << "\ntraces: in=" << input_traces
     << " dropped=" << dropped_traces << "\nmixzone: " << mixzone.ToString();
  return os.str();
}

Anonymizer::Anonymizer(AnonymizerConfig config)
    : config_(config), speed_(config.speed), mixzone_(config.mixzone) {}

std::string Anonymizer::Name() const {
  // Stage flags plus every non-default stage knob: the name must be
  // injective on the config (the scenario engine memoizes mechanism runs
  // by name, so two differently-tuned pipelines must never collide) and
  // round-trippable through mech::CreateMechanism (parameter names match
  // the registry's "ours" factory).
  std::string name = "ours[";
  if (config_.enable_speed_smoothing) name += "speed";
  if (config_.enable_speed_smoothing && config_.enable_mixzones) name += "+";
  if (config_.enable_mixzones) name += "mix";
  const mech::SpeedSmoothingConfig speed_defaults;
  const mech::MixZoneConfig mix_defaults;
  if (config_.enable_speed_smoothing) {
    if (config_.speed.spacing_m != speed_defaults.spacing_m) {
      name += ",eps=" + util::FormatDouble(config_.speed.spacing_m, 0) + "m";
    }
    if (config_.speed.min_length_m != speed_defaults.min_length_m) {
      name +=
          ",min_len=" + util::FormatDouble(config_.speed.min_length_m, 0) +
          "m";
    }
  }
  if (config_.enable_mixzones) {
    if (config_.mixzone.zone_radius_m != mix_defaults.zone_radius_m) {
      name += ",r=" +
              util::FormatDouble(config_.mixzone.zone_radius_m, 0) + "m";
    }
    if (config_.mixzone.time_window_s != mix_defaults.time_window_s) {
      name += ",w=" + std::to_string(config_.mixzone.time_window_s) + "s";
    }
    if (config_.mixzone.min_users != mix_defaults.min_users) {
      name += ",min_users=" + std::to_string(config_.mixzone.min_users);
    }
    if (config_.mixzone.suppress_zone_points !=
        mix_defaults.suppress_zone_points) {
      name += ",suppress=0";
    }
  }
  name += "]";
  return name;
}

model::Dataset Anonymizer::Apply(const model::Dataset& input,
                                 util::Rng& rng) const {
  PipelineReport report;
  return ApplyWithReport(input, rng, report);
}

model::Dataset Anonymizer::ApplyView(const model::DatasetView& input,
                                     util::Rng& rng) const {
  // Mirrors ApplyWithReport stage for stage (same rng draw order), with
  // every stage consuming a view: no full materialization of the source.
  if (config_.enable_speed_smoothing) {
    const model::Dataset smoothed = speed_.ApplyView(input, rng);
    if (!config_.enable_mixzones) return smoothed;
    return mixzone_.ApplyView(model::DatasetView::Of(smoothed), rng);
  }
  if (config_.enable_mixzones) return mixzone_.ApplyView(input, rng);
  return input.Materialize();  // no stage ran: publish the input as-is
}

model::EventStore Anonymizer::ApplyToStore(const model::DatasetView& input,
                                           util::Rng& rng) const {
  // Stage 1 produces columns directly (two-pass per-trace fill); stage 2's
  // detector reads those columns as a view and assembles its output
  // straight into store columns — the whole pipeline is SoA end to end.
  if (config_.enable_speed_smoothing) {
    const model::EventStore smoothed = speed_.ApplyToStore(input, rng);
    if (!config_.enable_mixzones) return smoothed;
    return mixzone_.ApplyToStore(smoothed.View(), rng);
  }
  if (config_.enable_mixzones) return mixzone_.ApplyToStore(input, rng);
  return Mechanism::ApplyToStore(input, rng);
}

model::Dataset Anonymizer::ApplyWithReport(const model::Dataset& input,
                                           util::Rng& rng,
                                           PipelineReport& report) const {
  report = PipelineReport{};
  report.input_events = input.EventCount();
  report.input_traces = input.TraceCount();

  // Pass-through stages never copy: `current` points at the last produced
  // dataset and the input is only cloned when no stage ran at all.
  const model::Dataset* current = &input;
  model::Dataset smoothed;
  if (config_.enable_speed_smoothing) {
    smoothed = speed_.Apply(input, rng);
    current = &smoothed;
  }
  report.after_smoothing_events = current->EventCount();
  report.dropped_traces = report.input_traces - current->TraceCount();

  if (config_.enable_mixzones) {
    model::Dataset mixed = mixzone_.ApplyWithReport(*current, rng, report.mixzone);
    report.output_events = mixed.EventCount();
    return mixed;
  }
  report.output_events = current->EventCount();
  return current == &input ? input.Clone() : std::move(smoothed);
}

model::ShardedDataset Anonymizer::ApplySharded(
    const model::ShardedDataset& input, util::Rng& rng,
    std::vector<PipelineReport>* reports) const {
  // NOTE: the caller's rng advances by exactly ONE draw (the master seed),
  // unlike an unsharded Apply whose draw count depends on the data (mix
  // zones draw per occurrence). Sharded and unsharded runs are therefore
  // not interchangeable mid-stream of one rng.
  std::vector<PipelineReport> shard_reports(input.ShardCount());
  model::ShardedDataset result = model::TransformSharded(
      input, rng,
      [&](const model::Dataset& shard, util::Rng& shard_rng, std::size_t s) {
        return ApplyWithReport(shard, shard_rng, shard_reports[s]);
      });
  if (reports != nullptr) *reports = std::move(shard_reports);
  return result;
}

}  // namespace mobipriv::core
