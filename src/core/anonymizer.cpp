#include "core/anonymizer.h"

#include <sstream>

namespace mobipriv::core {

std::string PipelineReport::ToString() const {
  std::ostringstream os;
  os << "events: in=" << input_events
     << " after_smoothing=" << after_smoothing_events
     << " out=" << output_events << "\ntraces: in=" << input_traces
     << " dropped=" << dropped_traces << "\nmixzone: " << mixzone.ToString();
  return os.str();
}

Anonymizer::Anonymizer(AnonymizerConfig config)
    : config_(config), speed_(config.speed), mixzone_(config.mixzone) {}

std::string Anonymizer::Name() const {
  std::string name = "ours[";
  if (config_.enable_speed_smoothing) name += "speed";
  if (config_.enable_speed_smoothing && config_.enable_mixzones) name += "+";
  if (config_.enable_mixzones) name += "mix";
  name += "]";
  return name;
}

model::Dataset Anonymizer::Apply(const model::Dataset& input,
                                 util::Rng& rng) const {
  PipelineReport report;
  return ApplyWithReport(input, rng, report);
}

model::Dataset Anonymizer::ApplyWithReport(const model::Dataset& input,
                                           util::Rng& rng,
                                           PipelineReport& report) const {
  report = PipelineReport{};
  report.input_events = input.EventCount();
  report.input_traces = input.TraceCount();

  model::Dataset current =
      config_.enable_speed_smoothing ? speed_.Apply(input, rng)
                                     : input.Clone();
  report.after_smoothing_events = current.EventCount();
  report.dropped_traces = report.input_traces - current.TraceCount();

  if (config_.enable_mixzones) {
    current = mixzone_.ApplyWithReport(current, rng, report.mixzone);
  }
  report.output_events = current.EventCount();
  return current;
}

}  // namespace mobipriv::core
