// The paper's complete solution as a single publication pipeline:
//   raw dataset -> [stage 1: constant-speed time distortion]
//               -> [stage 2: mix-zone trajectory swapping]
//               -> published dataset
// Either stage can be disabled for ablations (benches E2-E5 compare
// stage 1 alone, stage 2 alone and the full pipeline).
#pragma once

#include <memory>
#include <vector>

#include "mechanisms/mechanism.h"
#include "mechanisms/mixzone.h"
#include "mechanisms/speed_smoothing.h"
#include "model/sharded_dataset.h"

namespace mobipriv::core {

struct AnonymizerConfig {
  bool enable_speed_smoothing = true;
  bool enable_mixzones = true;
  mech::SpeedSmoothingConfig speed;
  mech::MixZoneConfig mixzone;
};

/// Per-run pipeline outcome (stage reports + event accounting).
struct PipelineReport {
  std::size_t input_events = 0;
  std::size_t after_smoothing_events = 0;
  std::size_t output_events = 0;
  std::size_t input_traces = 0;
  std::size_t dropped_traces = 0;  ///< suppressed by the min-length rule
  mech::MixZoneReport mixzone;

  [[nodiscard]] std::string ToString() const;
};

class Anonymizer final : public mech::Mechanism {
 public:
  explicit Anonymizer(AnonymizerConfig config = {});

  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] const AnonymizerConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] model::Dataset Apply(const model::Dataset& input,
                                     util::Rng& rng) const override;

  /// View-native pipeline: stage 1 streams the view per trace, stage 2
  /// runs the view-native mix-zone engine — no full-dataset materialization
  /// of the source for mmap'd `.mpc` inputs.
  [[nodiscard]] model::Dataset ApplyView(const model::DatasetView& input,
                                         util::Rng& rng) const override;

  /// SoA-native pipeline: stage 1 fills an EventStore via the two-pass
  /// per-trace path, stage 2 consumes that store's view directly. Draws
  /// from `rng` exactly like Apply, so outputs are bit-identical.
  [[nodiscard]] model::EventStore ApplyToStore(const model::DatasetView& input,
                                               util::Rng& rng) const override;

  [[nodiscard]] model::Dataset ApplyWithReport(const model::Dataset& input,
                                               util::Rng& rng,
                                               PipelineReport& report) const;

  /// Shard-wise run: the full pipeline applies to every shard
  /// independently, with per-shard RNG streams derived from one master
  /// draw (byte-identical at any worker count; the caller's rng advances
  /// once). Mix zones never span shards — users in different shards do not
  /// meet, which is the deliberate scale-out trade-off: a shard is the
  /// future process/NUMA boundary. `reports` gets one entry per shard.
  [[nodiscard]] model::ShardedDataset ApplySharded(
      const model::ShardedDataset& input, util::Rng& rng,
      std::vector<PipelineReport>* reports = nullptr) const;

 private:
  AnonymizerConfig config_;
  mech::SpeedSmoothing speed_;
  mech::MixZone mixzone_;
};

}  // namespace mobipriv::core
