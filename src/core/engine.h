// The scenario engine: compiles a declarative ScenarioSpec into a task
// DAG and executes it on the shared thread pool.
//
//   bind source ──► mechanism(m, seed) ──► evaluate(m, seed, e) ──► Report
//                      (memoized)                (fan-out)
//
// Memoization rule: one mechanism node exists per distinct
// (canonical mechanism Name(), seed) pair — spec entries that
// canonicalize to the same mechanism share it, and every evaluator of the
// grid consumes that single node's output as a zero-copy DatasetView. A
// grid of M mechanisms x E evaluators therefore applies each mechanism
// once, not E times — the reason an engine grid is measurably faster than
// the equivalent standalone bench runs (bench_throughput's
// BM_EngineGrid / BM_EngineGridIndependent pair).
//
// Chain specs ("a[...]|b[...]|c") compile into one node PER STAGE, keyed
// by (prefix canonical name, seed) where the prefix name is the stage
// names [0..k] joined with '|'. Grid rows sharing a stage prefix share
// those nodes — each shared stage runs once per run (stats().stage_reuses
// counts the savings) — and each stage node draws from a stream derived
// from its PREFIX name, so a row's bytes depend only on its own stages,
// never on what else is in the grid. The `.mpc` cache keys stage outputs
// by the same prefix names ("prefix-fingerprints"), so warm runs reuse
// intermediate artifacts too. Note this per-stage discipline intentionally
// differs from running a monolithic mech::ChainMechanism object (which
// threads ONE rng through all stages); cache keys derive from what
// actually ran, so the two never alias (docs/FORMAT.md).
//
// Mechanism nodes run the SoA-native path (Mechanism::ApplyToStore): each
// node's output is a columnar EventStore — no per-trace std::vector<Event>,
// no name re-interning — whose View() fans out to the node's evaluators.
// With ScenarioSpec::mechanism_cache_dir set, node outputs are also
// spilled to `.mpc` files content-addressed by (canonical name, dataset
// fingerprint, seed) and reused across runs; stale or corrupt entries are
// recomputed, never reused (docs/FORMAT.md, "Cached mechanism outputs"). Instances always run
// from the ORIGINAL spec text (names print numbers at fixed precision and
// are not re-parsed), with one caveat: two spec entries whose configs are
// so close that their canonical names print identically (e.g. geo_ind
// epsilons differing below 1e-4) are treated as the same grid cell — the
// first entry's text wins.
//
// Determinism contract (test-enforced): same spec + seeds => byte-identical
// Report at any worker count (spec.threads, MOBIPRIV_THREADS) and any
// shard count of a shard-dir source. Each mechanism node draws from its
// own stream, derived from (cell seed, FNV of the canonical name), so
// grid composition never perturbs results.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.h"
#include "core/scenario.h"

namespace mobipriv::core {

/// Outcome of the node(s) behind one report row. The engine degrades
/// gracefully: a throwing node never kills the run — its row(s) carry the
/// error, dependents are marked skipped, and every surviving grid cell
/// still reports (byte-identically at any thread count, error rows
/// included).
enum class RowStatus {
  kOk,       ///< node ran, value is valid
  kFailed,   ///< this node threw (or tripped the watchdog); see `error`
  kSkipped,  ///< an upstream dependency failed; see `error` for the cause
};

/// Canonical rendering of a RowStatus ("ok" / "failed" / "skipped").
[[nodiscard]] std::string_view ToString(RowStatus status) noexcept;

/// One scored number of the grid: (mechanism, seed, evaluator, metric).
/// Non-ok rows have an empty metric and no meaningful value; `error`
/// carries the captured exception text instead.
struct ReportRow {
  std::string mechanism;  ///< canonical mechanism Name()
  std::uint64_t seed = 0;
  std::string evaluator;  ///< canonical evaluator Name()
  std::string metric;
  double value = 0.0;
  RowStatus status = RowStatus::kOk;
  std::string error;  ///< empty for ok rows
};

/// The unified result of one engine run. Row order is canonical
/// (mechanism in first-appearance spec order, then seed, then evaluator,
/// then metric), so rendering is reproducible byte for byte.
class Report {
 public:
  [[nodiscard]] const std::vector<ReportRow>& rows() const noexcept {
    return rows_;
  }

  /// Long-form table: mechanism, seed, evaluator, metric, value, status,
  /// error. Status/error make degraded runs self-describing; on a fully
  /// healthy run every status cell is "ok" and every error cell empty.
  [[nodiscard]] Table ToTable() const;
  /// Long-form CSV (RFC-4180 quoted; spec strings contain commas).
  [[nodiscard]] std::string ToCsv() const;

  /// Wide table for one evaluator: a row per (mechanism, seed), a column
  /// per metric — the shape the comparison benches print. Only ok rows
  /// pivot (failed/skipped cells stay blank).
  [[nodiscard]] Table Pivot(std::string_view evaluator) const;

  /// True when every row is ok (no failed or skipped nodes).
  [[nodiscard]] bool AllOk() const noexcept;

  /// Values are rendered with this precision in all three renderings.
  static constexpr int kValuePrecision = 6;

 private:
  friend class ScenarioEngine;
  std::vector<ReportRow> rows_;
};

/// Execution accounting of one run (the memoization evidence).
struct EngineStats {
  std::size_t grid_cells = 0;       ///< spec mechanisms x seeds x evaluators
  std::size_t mechanism_nodes = 0;  ///< memoized (stage prefix, seed) nodes
  std::size_t evaluator_nodes = 0;  ///< evaluation nodes run
  /// Stage references served by an already-compiled node instead of a new
  /// one: total (row, seed, stage) references minus mechanism_nodes. 0
  /// when no grid rows share a chain prefix (or duplicate a mechanism);
  /// the memoization evidence for chain compilation.
  std::size_t stage_reuses = 0;
  /// Mechanism outputs reused from / recomputed into the `.mpc` output
  /// cache (both 0 when ScenarioSpec::mechanism_cache_dir is empty).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  /// Entries the LRU byte cap evicted during this run (0 when
  /// mechanism_cache_max_bytes is 0).
  std::size_t cache_evictions = 0;
  /// Transient cache-read failures absorbed by the bounded
  /// retry-with-backoff (docs/ROBUSTNESS.md); > 0 never affects results.
  std::size_t cache_read_retries = 0;
  /// Shards the out-of-core executor streamed through, 0 when the run
  /// took the whole-view path. Streaming engages only when the source is
  /// a shard directory whose layout ProbeShardStream accepts AND every
  /// grid row is a single-stage per-trace mechanism AND every evaluator
  /// is foldable (core::TraceFold) AND no output cache or watchdog is
  /// configured; reports are byte-identical on either path.
  std::size_t streamed_shards = 0;
  /// Multi-process supervision accounting (core/shard_exec.h), all 0
  /// unless ScenarioSpec::workers engaged the worker path:
  /// processes forked (including respawns), spawns beyond a subset's
  /// first (the retry evidence), and (stage, subset) permanent failures
  /// (retry exhaustion or worker-reported errors).
  std::size_t workers_spawned = 0;
  std::size_t worker_restarts = 0;
  std::size_t worker_failures = 0;
  /// Graceful-degradation accounting: nodes that threw (or tripped the
  /// node_timeout_ms watchdog) and nodes skipped because a dependency
  /// failed. Both 0 on a healthy run.
  std::size_t failed_nodes = 0;
  std::size_t skipped_nodes = 0;
  double bind_ms = 0.0;             ///< source open/map/parse time
  double run_ms = 0.0;              ///< DAG execution wall clock

  [[nodiscard]] std::string ToString() const;
};

class ScenarioEngine {
 public:
  /// Validates and compiles the spec: creates the mechanism and evaluator
  /// instances (throwing util::SpecError on any unknown spec string) and
  /// lays out the DAG. No dataset is touched until Run().
  explicit ScenarioEngine(ScenarioSpec spec);
  ~ScenarioEngine();

  ScenarioEngine(const ScenarioEngine&) = delete;
  ScenarioEngine& operator=(const ScenarioEngine&) = delete;

  /// Binds the source and executes the DAG. Safe to call once.
  [[nodiscard]] Report Run();

  /// Valid after Run().
  [[nodiscard]] const EngineStats& stats() const noexcept { return stats_; }

 private:
  struct Compiled;
  std::unique_ptr<Compiled> compiled_;
  EngineStats stats_;
};

/// One-call form: compile, run, return the report.
[[nodiscard]] Report RunScenario(ScenarioSpec spec);

}  // namespace mobipriv::core
