// The uniform evaluation interface of the scenario engine: one Evaluator
// scores one aspect (a utility metric or a privacy attack) of an
// (original, published) dataset pair, consuming non-owning DatasetViews so
// mmap-opened `.mpc` files and shard slices feed it without materializing
// an AoS dataset first.
//
// metrics/evaluators.h and attacks/evaluators.h implement this interface
// over the existing metric/attack kernels; the registry below turns spec
// strings ("coverage[cell=200m]", "reident", ...) into instances, exactly
// like mechanisms/registry.h does for mechanisms — a scenario grid is
// mechanism spec strings x evaluator spec strings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/bounding_box.h"
#include "geo/projection.h"
#include "model/views.h"
#include "util/spec.h"

namespace mobipriv::core {

/// One grid cell's evaluation input. The views alias storage owned by the
/// engine (an mmap, an event store or an AoS dataset) and must outlive the
/// Evaluate call; `frame` is the shared planar projection centred on the
/// original dataset, so attack geometry agrees across evaluators.
struct EvalInput {
  model::DatasetView original;
  model::DatasetView published;
  geo::LocalProjection frame;
  /// Scenario seed of this grid cell — evaluators with sampled workloads
  /// (range queries) derive their streams from it, so one seed pins the
  /// whole report.
  std::uint64_t seed = 0;
};

/// One scored number under a stable metric name ("coverage_jaccard").
struct MetricValue {
  std::string metric;
  double value = 0.0;
};

/// One resident shard of a shard-streamed evaluation (see TraceFold).
/// The spans alias the currently mapped shard plus the per-shard mechanism
/// output buffer; they are valid only for the duration of one
/// AccumulateShard call. Trace order within a shard is canonical-order
/// restricted: shard-local index ascending == original dataset order
/// filtered to this shard's traces, and every trace of one user lives in
/// the same shard — so per-user passes (radius of gyration) see exactly
/// the trace sequence the whole-view path sees.
struct ShardSlice {
  /// Original traces of this shard, user ids rewritten to GLOBAL dense ids.
  std::span<const model::TraceView> original;
  /// Original dataset-order index of each trace (parallel to `original`).
  std::span<const std::size_t> canonical_index;
  /// Published traces, parallel to `original`. A size()==0 view means the
  /// mechanism suppressed the trace (whole-view assembly drops it).
  std::span<const model::TraceView> published;
  /// Global user count (names table size) of the full dataset.
  std::size_t user_count = 0;
  /// Extents of the FULL datasets, folded by the engine's pre-pass before
  /// any fold runs: exactly what DatasetView::BoundingBox() over the whole
  /// data would return, and the min first-fix / max last-fix timestamp
  /// over non-empty original traces (t_min > t_max when there are none).
  geo::GeoBoundingBox original_bbox;
  geo::GeoBoundingBox published_bbox;
  util::Timestamp original_t_min = 0;
  util::Timestamp original_t_max = 0;
};

/// Streaming accumulator for one (mechanism output, evaluator, seed) grid
/// cell: the shard-streamed engine maps one shard at a time and calls
/// AccumulateShard once per shard in ascending shard order (full-dataset
/// extents already folded into every slice), then Finalize once.
/// Contract: the returned metrics must be bit-identical to Evaluate()
/// over the whole views — folds replicate their evaluator's arithmetic,
/// not approximate it. Implementations are single-threaded (one fold per
/// grid cell).
class TraceFold {
 public:
  virtual ~TraceFold() = default;
  virtual void AccumulateShard(const ShardSlice& slice) = 0;
  [[nodiscard]] virtual std::vector<MetricValue> Finalize() = 0;
};

class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Stable identifier, round-trippable through CreateEvaluator.
  [[nodiscard]] virtual std::string Name() const = 0;

  /// Scores the pair. Implementations must be stateless const calls (the
  /// engine invokes one instance from many DAG workers concurrently) and
  /// deterministic at any thread count.
  [[nodiscard]] virtual std::vector<MetricValue> Evaluate(
      const EvalInput& input) const = 0;

  /// Streaming counterpart of Evaluate for the shard-by-shard engine
  /// path. `seed` is the grid cell's scenario seed (what EvalInput::seed
  /// would carry). Returning nullptr (the default) declares the evaluator
  /// non-foldable: any grid row using it falls back to the whole-view
  /// path. Implementations must satisfy the TraceFold bit-identity
  /// contract.
  [[nodiscard]] virtual std::unique_ptr<TraceFold> MakeTraceFold(
      std::uint64_t seed) const {
    (void)seed;
    return nullptr;
  }
};

using EvaluatorFactory =
    std::function<std::unique_ptr<Evaluator>(const util::Spec&)>;

/// Registers (or replaces) the factory for `base`. The library's
/// evaluators are pre-registered; downstream metrics/attacks hook in here
/// and then participate in scenario grids like any built-in.
void RegisterEvaluator(std::string base, EvaluatorFactory factory);

/// Instantiates an evaluator from its spec string. Throws util::SpecError
/// on malformed specs, unknown bases or unknown parameters.
[[nodiscard]] std::unique_ptr<Evaluator> CreateEvaluator(
    std::string_view spec);

/// Registered base names, sorted.
[[nodiscard]] std::vector<std::string> RegisteredEvaluatorBases();

}  // namespace mobipriv::core
