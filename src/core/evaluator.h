// The uniform evaluation interface of the scenario engine: one Evaluator
// scores one aspect (a utility metric or a privacy attack) of an
// (original, published) dataset pair, consuming non-owning DatasetViews so
// mmap-opened `.mpc` files and shard slices feed it without materializing
// an AoS dataset first.
//
// metrics/evaluators.h and attacks/evaluators.h implement this interface
// over the existing metric/attack kernels; the registry below turns spec
// strings ("coverage[cell=200m]", "reident", ...) into instances, exactly
// like mechanisms/registry.h does for mechanisms — a scenario grid is
// mechanism spec strings x evaluator spec strings.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "geo/projection.h"
#include "model/views.h"
#include "util/spec.h"

namespace mobipriv::core {

/// One grid cell's evaluation input. The views alias storage owned by the
/// engine (an mmap, an event store or an AoS dataset) and must outlive the
/// Evaluate call; `frame` is the shared planar projection centred on the
/// original dataset, so attack geometry agrees across evaluators.
struct EvalInput {
  model::DatasetView original;
  model::DatasetView published;
  geo::LocalProjection frame;
  /// Scenario seed of this grid cell — evaluators with sampled workloads
  /// (range queries) derive their streams from it, so one seed pins the
  /// whole report.
  std::uint64_t seed = 0;
};

/// One scored number under a stable metric name ("coverage_jaccard").
struct MetricValue {
  std::string metric;
  double value = 0.0;
};

class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Stable identifier, round-trippable through CreateEvaluator.
  [[nodiscard]] virtual std::string Name() const = 0;

  /// Scores the pair. Implementations must be stateless const calls (the
  /// engine invokes one instance from many DAG workers concurrently) and
  /// deterministic at any thread count.
  [[nodiscard]] virtual std::vector<MetricValue> Evaluate(
      const EvalInput& input) const = 0;
};

using EvaluatorFactory =
    std::function<std::unique_ptr<Evaluator>(const util::Spec&)>;

/// Registers (or replaces) the factory for `base`. The library's
/// evaluators are pre-registered; downstream metrics/attacks hook in here
/// and then participate in scenario grids like any built-in.
void RegisterEvaluator(std::string base, EvaluatorFactory factory);

/// Instantiates an evaluator from its spec string. Throws util::SpecError
/// on malformed specs, unknown bases or unknown parameters.
[[nodiscard]] std::unique_ptr<Evaluator> CreateEvaluator(
    std::string_view spec);

/// Registered base names, sorted.
[[nodiscard]] std::vector<std::string> RegisteredEvaluatorBases();

}  // namespace mobipriv::core
