// Discrete Fréchet distance between two trajectories: the classic
// trajectory-similarity measure ("dog-leash distance"), used as a second,
// order-aware utility view in E3. Dynamic programming, O(n*m) time/space;
// long traces are decimated to `max_points` per side first (the decimation
// error is bounded by the decimation spacing, negligible at our scales).
#pragma once

#include <vector>

#include "geo/point2.h"
#include "model/trace.h"

namespace mobipriv::metrics {

/// Discrete Fréchet distance between two planar paths. Returns 0 when both
/// are empty; infinity when exactly one is empty.
[[nodiscard]] double DiscreteFrechet(const std::vector<geo::Point2>& a,
                                     const std::vector<geo::Point2>& b);

/// Geographic convenience overload: projects both traces on a common local
/// plane, decimating each side to at most `max_points` first.
[[nodiscard]] double DiscreteFrechet(const model::Trace& a,
                                     const model::Trace& b,
                                     std::size_t max_points = 512);

}  // namespace mobipriv::metrics
