// (k, delta)-anonymity measurement (the guarantee notion of Abul, Bonchi,
// Nanni's Wait For Me [3], measured rather than enforced).
//
// A dataset satisfies (k, delta)-anonymity when every trajectory moves,
// at every instant of its lifetime, within distance delta of at least k-1
// other trajectories. Wait4Me *constructs* such datasets; this module
// *measures* the anonymity any publication actually provides: for each
// trace, the largest k such that k-1 co-moving companions stay within
// delta for its entire (aligned) lifetime — and aggregate statistics.
// This turns the baseline's guarantee into a metric every mechanism can be
// scored under (e.g. how much herd anonymity does the paper's pipeline
// give for free at transit hubs?).
#pragma once

#include <string>
#include <vector>

#include "model/dataset.h"
#include "model/views.h"
#include "util/statistics.h"

namespace mobipriv::metrics {

struct KDeltaConfig {
  double delta_m = 500.0;
  util::Timestamp grid_step_s = 60;  ///< temporal alignment step
  /// Fraction of a trace's aligned steps a companion may miss (being
  /// momentarily farther than delta) while still counting. 0 = strict
  /// (k,delta)-anonymity.
  double tolerance = 0.0;
};

/// Per-trace anonymity: this trace plus (k-1) companions co-move within
/// delta. k >= 1 always (the trace accompanies itself).
struct TraceAnonymity {
  std::size_t trace_index = 0;
  model::UserId user = model::kInvalidUser;
  std::size_t k = 1;
};

struct KDeltaReport {
  std::vector<TraceAnonymity> per_trace;
  util::Summary k_distribution;
  /// Fraction of traces with k >= the given floor (the headline number the
  /// Wait4Me paper reports).
  [[nodiscard]] double FractionWithK(std::size_t k_floor) const;
  [[nodiscard]] std::string ToString() const;
};

/// Measures the (k, delta) anonymity of every trace in the dataset.
/// O(T^2 * steps) pairwise alignment, fanned out on the thread pool (both
/// the per-trace grid alignment and the pairwise companion counting are
/// embarrassingly parallel); the grid step controls resolution. The view
/// form is the implementation; the Dataset form adapts zero-copy.
[[nodiscard]] KDeltaReport MeasureKDeltaAnonymity(
    const model::DatasetView& dataset, const KDeltaConfig& config = {});
[[nodiscard]] KDeltaReport MeasureKDeltaAnonymity(
    const model::Dataset& dataset, const KDeltaConfig& config = {});

}  // namespace mobipriv::metrics
