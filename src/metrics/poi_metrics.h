// Scoring of the POI-extraction attack against synthetic ground truth: the
// privacy numbers of bench E2. An extracted POI is a true positive when it
// lies within `match_radius_m` of a ground-truth POI *of the same user*;
// recall ("POI retrieval rate") is the paper's key privacy indicator — the
// Section II claim is that geo-indistinguishability leaves it >= 60 % while
// constant-speed publishing drives it to ~0.
#pragma once

#include <string>
#include <vector>

#include "attacks/poi_extraction.h"
#include "synth/simulator.h"

namespace mobipriv::metrics {

struct PoiMatchConfig {
  double match_radius_m = 250.0;
};

struct PoiScore {
  std::size_t true_pois = 0;       ///< distinct ground-truth (user, site) pairs
  std::size_t extracted = 0;       ///< POIs the attack produced
  std::size_t matched_true = 0;    ///< true POIs the attack found (recall num.)
  std::size_t matched_extracted = 0;  ///< extracted POIs that are real (prec.)

  [[nodiscard]] double Recall() const noexcept {
    return true_pois == 0 ? 0.0
                          : static_cast<double>(matched_true) /
                                static_cast<double>(true_pois);
  }
  [[nodiscard]] double Precision() const noexcept {
    return extracted == 0 ? 0.0
                          : static_cast<double>(matched_extracted) /
                                static_cast<double>(extracted);
  }
  [[nodiscard]] double F1() const noexcept;
  [[nodiscard]] std::string ToString() const;
};

/// Deduplicates ground-truth visits into distinct (user, poi) places and
/// re-expresses their positions in the attack's planar frame: visits are
/// recorded in the synthetic world's frame (`world_projection`), while the
/// extractor reports centroids in `attack_projection`'s frame.
struct TruePlace {
  model::UserId user = model::kInvalidUser;
  geo::Point2 position;  ///< in the attack frame
};
[[nodiscard]] std::vector<TruePlace> DistinctTruePlaces(
    const std::vector<synth::GroundTruthVisit>& visits,
    const geo::LocalProjection& world_projection,
    const geo::LocalProjection& attack_projection);

/// Scores extracted POIs against ground truth. Both must be expressed in
/// the same planar frame (pass the same projection to the extractor and to
/// the world's ground truth; the synthetic world's planar frame IS the
/// attack frame when using DatasetProjection on the same dataset — see
/// bench E2 for the canonical wiring).
[[nodiscard]] PoiScore ScorePoiExtraction(
    const std::vector<attacks::ExtractedPoi>& extracted,
    const std::vector<TruePlace>& truth, const PoiMatchConfig& config = {});

}  // namespace mobipriv::metrics
