// Spatial distortion: how far the published trajectory strays from the
// original, the paper's headline utility metric ("our challenge is to
// minimize the distortion of the geographical information").
//
// Two views are computed:
//   * synchronized distortion — at each original fix time t, distance from
//     the original position to the published trace interpolated at t. This
//     penalizes time distortion that moves a user along her own path (our
//     mechanism pays a small, bounded cost here);
//   * path distortion — distance from each original fix to the published
//     *path* regardless of time. Near zero for our mechanism (geometry is
//     preserved), large for noise mechanisms. The gap between the two views
//     is exactly the paper's "distort time, not space" trade-off.
#pragma once

#include <string>

#include "model/dataset.h"
#include "model/views.h"
#include "util/statistics.h"

namespace mobipriv::metrics {

struct DistortionSummary {
  util::Summary synchronized_m;  ///< time-synchronized point error
  util::Summary path_m;          ///< geometry-only error (to nearest path point)
  std::size_t compared_traces = 0;
  std::size_t skipped_traces = 0;  ///< original traces with no published match

  [[nodiscard]] std::string ToString() const;
};

/// Published trace of the same user with the longest time-span overlap with
/// `original` (sessions of one user can share small boundary windows, so
/// "first overlapping" is not unique). nullptr when no candidate overlaps.
[[nodiscard]] const model::Trace* FindBestMatch(
    const model::Trace& original, const model::Dataset& published);

/// View-based match: index into `published.traces()` (-1 when none).
[[nodiscard]] std::ptrdiff_t FindBestMatchIndex(
    const model::TraceView& original, const model::DatasetView& published);

/// Matches original and published traces by user id via FindBestMatch.
/// Sampling: every original fix. Mechanisms that re-identify users
/// (mix-zones) should be measured before swapping, or per matched segment —
/// see bench E3 notes.
///
/// The view form is the implementation (original traces fan out on the
/// thread pool; per-trace deviations merge in trace order, so the summary
/// is byte-identical at any worker count); the Dataset form is a zero-copy
/// adapter over it.
[[nodiscard]] DistortionSummary MeasureDistortion(
    const model::DatasetView& original, const model::DatasetView& published);
[[nodiscard]] DistortionSummary MeasureDistortion(
    const model::Dataset& original, const model::Dataset& published);

/// Synchronized distortion between two specific traces (original fix times).
/// Returns per-fix distances in metres; empty if either trace is empty.
[[nodiscard]] std::vector<double> SynchronizedDeviation(
    const model::TraceView& original, const model::TraceView& published);
[[nodiscard]] std::vector<double> SynchronizedDeviation(
    const model::Trace& original, const model::Trace& published);

/// Geometry-only deviation: distance from each original fix to the
/// published polyline.
[[nodiscard]] std::vector<double> PathDeviation(
    const model::TraceView& original, const model::TraceView& published);
[[nodiscard]] std::vector<double> PathDeviation(const model::Trace& original,
                                                const model::Trace& published);

}  // namespace mobipriv::metrics
