#include "metrics/spatial_distortion.h"

#include <algorithm>
#include <sstream>

#include "geo/polyline.h"
#include "geo/projection.h"
#include "model/filters.h"
#include "util/thread_pool.h"

namespace mobipriv::metrics {

std::string DistortionSummary::ToString() const {
  std::ostringstream os;
  os << "sync[m]: " << synchronized_m.ToString()
     << "\npath[m]: " << path_m.ToString() << "\ntraces: compared="
     << compared_traces << " skipped=" << skipped_traces;
  return os.str();
}

std::vector<double> SynchronizedDeviation(const model::TraceView& original,
                                          const model::TraceView& published) {
  std::vector<double> out;
  if (original.empty() || published.empty()) return out;
  out.reserve(original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    const geo::LatLng at = model::InterpolateAt(published, original.time(i));
    out.push_back(geo::HaversineDistance(original.position(i), at));
  }
  return out;
}

std::vector<double> SynchronizedDeviation(const model::Trace& original,
                                          const model::Trace& published) {
  return SynchronizedDeviation(model::TraceView::Of(original),
                               model::TraceView::Of(published));
}

std::vector<double> PathDeviation(const model::TraceView& original,
                                  const model::TraceView& published) {
  std::vector<double> out;
  if (original.empty() || published.empty()) return out;
  const geo::LocalProjection projection(original.BoundingBox().Center());
  std::vector<geo::Point2> path;
  path.reserve(published.size());
  for (std::size_t i = 0; i < published.size(); ++i) {
    path.push_back(projection.Project(published.position(i)));
  }
  out.reserve(original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    out.push_back(
        geo::DistanceToPolyline(path, projection.Project(original.position(i))));
  }
  return out;
}

std::vector<double> PathDeviation(const model::Trace& original,
                                  const model::Trace& published) {
  return PathDeviation(model::TraceView::Of(original),
                       model::TraceView::Of(published));
}

const model::Trace* FindBestMatch(const model::Trace& original,
                                  const model::Dataset& published) {
  const std::ptrdiff_t index = FindBestMatchIndex(
      model::TraceView::Of(original), model::DatasetView::Of(published));
  return index < 0 ? nullptr
                   : &published.traces()[static_cast<std::size_t>(index)];
}

std::ptrdiff_t FindBestMatchIndex(const model::TraceView& original,
                                  const model::DatasetView& published) {
  if (original.empty()) return -1;
  std::ptrdiff_t best = -1;
  util::Timestamp best_overlap = -1;
  const util::Timestamp original_front = original.time(0);
  const util::Timestamp original_back = original.time(original.size() - 1);
  for (std::size_t c = 0; c < published.TraceCount(); ++c) {
    const model::TraceView& candidate = published.trace(c);
    if (candidate.user() != original.user() || candidate.empty()) continue;
    const util::Timestamp overlap =
        std::min(candidate.time(candidate.size() - 1), original_back) -
        std::max(candidate.time(0), original_front);
    if (overlap >= 0 && overlap > best_overlap) {
      best_overlap = overlap;
      best = static_cast<std::ptrdiff_t>(c);
    }
  }
  return best;
}

DistortionSummary MeasureDistortion(const model::DatasetView& original,
                                    const model::DatasetView& published) {
  DistortionSummary summary;
  const auto& traces = original.traces();
  // Every original trace matches and measures independently; per-trace
  // deviation vectors concatenate in trace order, so the summary is
  // byte-identical to the serial trace-by-trace scan.
  struct PerTrace {
    std::vector<double> sync;
    std::vector<double> path;
    bool matched = false;
  };
  std::vector<PerTrace> per_trace(traces.size());
  util::ParallelForEach(traces.size(), [&](std::size_t t) {
    const std::ptrdiff_t match = FindBestMatchIndex(traces[t], published);
    if (match < 0) return;
    PerTrace& out = per_trace[t];
    out.matched = true;
    const model::TraceView& matched =
        published.trace(static_cast<std::size_t>(match));
    out.sync = SynchronizedDeviation(traces[t], matched);
    out.path = PathDeviation(traces[t], matched);
  });

  std::vector<double> sync_all;
  std::vector<double> path_all;
  for (PerTrace& result : per_trace) {
    if (!result.matched) {
      ++summary.skipped_traces;
      continue;
    }
    ++summary.compared_traces;
    sync_all.insert(sync_all.end(), result.sync.begin(), result.sync.end());
    path_all.insert(path_all.end(), result.path.begin(), result.path.end());
  }
  summary.synchronized_m = util::Summary::Of(sync_all);
  summary.path_m = util::Summary::Of(path_all);
  return summary;
}

DistortionSummary MeasureDistortion(const model::Dataset& original,
                                    const model::Dataset& published) {
  return MeasureDistortion(model::DatasetView::Of(original),
                           model::DatasetView::Of(published));
}

}  // namespace mobipriv::metrics
