#include "metrics/spatial_distortion.h"

#include <algorithm>
#include <sstream>

#include "geo/polyline.h"
#include "geo/projection.h"
#include "model/filters.h"

namespace mobipriv::metrics {

std::string DistortionSummary::ToString() const {
  std::ostringstream os;
  os << "sync[m]: " << synchronized_m.ToString()
     << "\npath[m]: " << path_m.ToString() << "\ntraces: compared="
     << compared_traces << " skipped=" << skipped_traces;
  return os.str();
}

std::vector<double> SynchronizedDeviation(const model::Trace& original,
                                          const model::Trace& published) {
  std::vector<double> out;
  if (original.empty() || published.empty()) return out;
  out.reserve(original.size());
  for (const auto& event : original) {
    const geo::LatLng at = model::InterpolateAt(published, event.time);
    out.push_back(geo::HaversineDistance(event.position, at));
  }
  return out;
}

std::vector<double> PathDeviation(const model::Trace& original,
                                  const model::Trace& published) {
  std::vector<double> out;
  if (original.empty() || published.empty()) return out;
  const geo::LocalProjection projection(original.BoundingBox().Center());
  const auto path = projection.Project(published.Positions());
  out.reserve(original.size());
  for (const auto& event : original) {
    out.push_back(
        geo::DistanceToPolyline(path, projection.Project(event.position)));
  }
  return out;
}

const model::Trace* FindBestMatch(const model::Trace& original,
                                  const model::Dataset& published) {
  if (original.empty()) return nullptr;
  const model::Trace* best = nullptr;
  util::Timestamp best_overlap = -1;
  for (const auto& candidate : published.traces()) {
    if (candidate.user() != original.user() || candidate.empty()) continue;
    const util::Timestamp overlap =
        std::min(candidate.back().time, original.back().time) -
        std::max(candidate.front().time, original.front().time);
    if (overlap >= 0 && overlap > best_overlap) {
      best_overlap = overlap;
      best = &candidate;
    }
  }
  return best;
}

DistortionSummary MeasureDistortion(const model::Dataset& original,
                                    const model::Dataset& published) {
  DistortionSummary summary;
  std::vector<double> sync_all;
  std::vector<double> path_all;
  for (const auto& trace : original.traces()) {
    const model::Trace* match = FindBestMatch(trace, published);
    if (match == nullptr) {
      ++summary.skipped_traces;
      continue;
    }
    ++summary.compared_traces;
    for (const double d : SynchronizedDeviation(trace, *match)) {
      sync_all.push_back(d);
    }
    for (const double d : PathDeviation(trace, *match)) {
      path_all.push_back(d);
    }
  }
  summary.synchronized_m = util::Summary::Of(sync_all);
  summary.path_m = util::Summary::Of(path_all);
  return summary;
}

}  // namespace mobipriv::metrics
