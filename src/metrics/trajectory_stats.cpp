#include "metrics/trajectory_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "geo/projection.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace mobipriv::metrics {

std::vector<double> TripLengths(const model::DatasetView& dataset,
                                double min_length_m) {
  // Per-trace lengths compute independently on the pool; the min-length
  // filter then runs in trace order, so the output matches a serial scan.
  const std::size_t n = dataset.TraceCount();
  std::vector<double> raw(n);
  util::ParallelForEach(
      n, [&](std::size_t t) { raw[t] = dataset.trace(t).LengthMeters(); });
  std::vector<double> lengths;
  lengths.reserve(n);
  for (const double length : raw) {
    if (length >= min_length_m) lengths.push_back(length);
  }
  return lengths;
}

std::vector<double> TripLengths(const model::Dataset& dataset,
                                double min_length_m) {
  return TripLengths(model::DatasetView::Of(dataset), min_length_m);
}

namespace {

/// Gyration radius of `user` in a pre-built projection frame (the frame is
/// shared across users by AllRadiiOfGyration so it projects once).
double RadiusOfGyrationInFrame(const model::DatasetView& dataset,
                               model::UserId user,
                               const geo::LocalProjection& projection) {
  geo::Point2 centroid{};
  std::size_t n = 0;
  for (const model::TraceView& trace : dataset.traces()) {
    if (trace.user() != user) continue;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      centroid = centroid + projection.Project(trace.position(i));
      ++n;
    }
  }
  if (n == 0) return 0.0;
  centroid = centroid / static_cast<double>(n);
  double sum_sq = 0.0;
  for (const model::TraceView& trace : dataset.traces()) {
    if (trace.user() != user) continue;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      sum_sq += geo::DistanceSquared(projection.Project(trace.position(i)),
                                     centroid);
    }
  }
  return std::sqrt(sum_sq / static_cast<double>(n));
}

}  // namespace

double RadiusOfGyrationOfTraces(std::span<const model::TraceView> traces,
                                const geo::LocalProjection& projection) {
  // Same two passes RadiusOfGyrationInFrame runs, over an explicit trace
  // sequence: centroid first, then RMS distance — identical accumulation
  // order, so callers that hand in a user's traces in dataset order get
  // the bit-identical radius.
  geo::Point2 centroid{};
  std::size_t n = 0;
  for (const model::TraceView& trace : traces) {
    for (std::size_t i = 0; i < trace.size(); ++i) {
      centroid = centroid + projection.Project(trace.position(i));
      ++n;
    }
  }
  if (n == 0) return 0.0;
  centroid = centroid / static_cast<double>(n);
  double sum_sq = 0.0;
  for (const model::TraceView& trace : traces) {
    for (std::size_t i = 0; i < trace.size(); ++i) {
      sum_sq += geo::DistanceSquared(projection.Project(trace.position(i)),
                                     centroid);
    }
  }
  return std::sqrt(sum_sq / static_cast<double>(n));
}

double RadiusOfGyration(const model::DatasetView& dataset,
                        model::UserId user) {
  const geo::LocalProjection projection(dataset.BoundingBox().Center());
  return RadiusOfGyrationInFrame(dataset, user, projection);
}

double RadiusOfGyration(const model::Dataset& dataset, model::UserId user) {
  return RadiusOfGyration(model::DatasetView::Of(dataset), user);
}

std::vector<double> AllRadiiOfGyration(const model::DatasetView& dataset) {
  const geo::LocalProjection projection(dataset.BoundingBox().Center());
  // Bucket trace indices by user first, so each user's scan walks only its
  // own traces — O(traces + events) overall instead of the quadratic
  // users x traces of a per-user full scan (which is what caps dataset
  // size). The buckets keep dataset trace order, so every user sees the
  // exact fix sequence the full scan visited: results are bit-identical.
  std::vector<std::vector<std::uint32_t>> by_user(dataset.UserCount());
  const std::span<const model::TraceView> traces = dataset.traces();
  for (std::size_t t = 0; t < traces.size(); ++t) {
    const model::UserId user = traces[t].user();
    if (user < by_user.size()) {
      by_user[user].push_back(static_cast<std::uint32_t>(t));
    }
  }
  std::vector<double> radii(dataset.UserCount());
  util::ParallelForEach(dataset.UserCount(), [&](std::size_t user) {
    std::vector<model::TraceView> own;
    own.reserve(by_user[user].size());
    for (const std::uint32_t t : by_user[user]) own.push_back(traces[t]);
    radii[user] = RadiusOfGyrationOfTraces(own, projection);
  });
  return radii;
}

std::vector<double> AllRadiiOfGyration(const model::Dataset& dataset) {
  return AllRadiiOfGyration(model::DatasetView::Of(dataset));
}

double EarthMoversDistance(std::vector<double> a, std::vector<double> b) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // W1 between empirical CDFs: integrate |F_a^{-1}(q) - F_b^{-1}(q)| dq on
  // a common quantile grid fine enough for both sample sizes.
  const std::size_t grid = std::max(a.size(), b.size()) * 2;
  double total = 0.0;
  for (std::size_t i = 0; i < grid; ++i) {
    const double q = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(grid);
    total += std::abs(util::PercentileSorted(a, q) -
                      util::PercentileSorted(b, q));
  }
  return total / static_cast<double>(grid);
}

std::string TrajectoryStatsReport::ToString() const {
  std::ostringstream os;
  os << "trip_len orig: " << trip_length_original.ToString()
     << "\ntrip_len pub:  " << trip_length_published.ToString()
     << "\ntrip_len EMD:  " << util::FormatDouble(trip_length_emd, 1)
     << " m\ngyration orig: " << gyration_original.ToString()
     << "\ngyration pub:  " << gyration_published.ToString()
     << "\ngyration mean rel err: "
     << util::FormatDouble(gyration_relative_error, 4);
  return os.str();
}

TrajectoryStatsReport CompareTrajectoryStats(
    const model::DatasetView& original, const model::DatasetView& published) {
  TrajectoryStatsReport report;
  const auto trips_orig = TripLengths(original);
  const auto trips_pub = TripLengths(published);
  report.trip_length_original = util::Summary::Of(trips_orig);
  report.trip_length_published = util::Summary::Of(trips_pub);
  report.trip_length_emd = EarthMoversDistance(trips_orig, trips_pub);

  const auto gyr_orig = AllRadiiOfGyration(original);
  const auto gyr_pub = AllRadiiOfGyration(published);
  report.gyration_original = util::Summary::Of(gyr_orig);
  report.gyration_published = util::Summary::Of(gyr_pub);
  double rel_sum = 0.0;
  std::size_t rel_n = 0;
  for (std::size_t u = 0; u < std::min(gyr_orig.size(), gyr_pub.size());
       ++u) {
    if (gyr_orig[u] <= 0.0) continue;
    rel_sum += std::abs(gyr_orig[u] - gyr_pub[u]) / gyr_orig[u];
    ++rel_n;
  }
  report.gyration_relative_error =
      rel_n == 0 ? 0.0 : rel_sum / static_cast<double>(rel_n);
  return report;
}

TrajectoryStatsReport CompareTrajectoryStats(const model::Dataset& original,
                                             const model::Dataset& published) {
  return CompareTrajectoryStats(model::DatasetView::Of(original),
                                model::DatasetView::Of(published));
}

}  // namespace mobipriv::metrics
