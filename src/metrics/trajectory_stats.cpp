#include "metrics/trajectory_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "geo/projection.h"
#include "util/string_utils.h"

namespace mobipriv::metrics {

std::vector<double> TripLengths(const model::Dataset& dataset,
                                double min_length_m) {
  std::vector<double> lengths;
  lengths.reserve(dataset.TraceCount());
  for (const auto& trace : dataset.traces()) {
    const double length = trace.LengthMeters();
    if (length >= min_length_m) lengths.push_back(length);
  }
  return lengths;
}

double RadiusOfGyration(const model::Dataset& dataset, model::UserId user) {
  const geo::LocalProjection projection(dataset.BoundingBox().Center());
  geo::Point2 centroid{};
  std::size_t n = 0;
  for (const auto& trace : dataset.traces()) {
    if (trace.user() != user) continue;
    for (const auto& event : trace) {
      centroid = centroid + projection.Project(event.position);
      ++n;
    }
  }
  if (n == 0) return 0.0;
  centroid = centroid / static_cast<double>(n);
  double sum_sq = 0.0;
  for (const auto& trace : dataset.traces()) {
    if (trace.user() != user) continue;
    for (const auto& event : trace) {
      sum_sq += geo::DistanceSquared(projection.Project(event.position),
                                     centroid);
    }
  }
  return std::sqrt(sum_sq / static_cast<double>(n));
}

std::vector<double> AllRadiiOfGyration(const model::Dataset& dataset) {
  std::vector<double> radii;
  radii.reserve(dataset.UserCount());
  for (model::UserId user = 0; user < dataset.UserCount(); ++user) {
    radii.push_back(RadiusOfGyration(dataset, user));
  }
  return radii;
}

double EarthMoversDistance(std::vector<double> a, std::vector<double> b) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // W1 between empirical CDFs: integrate |F_a^{-1}(q) - F_b^{-1}(q)| dq on
  // a common quantile grid fine enough for both sample sizes.
  const std::size_t grid = std::max(a.size(), b.size()) * 2;
  double total = 0.0;
  for (std::size_t i = 0; i < grid; ++i) {
    const double q = (static_cast<double>(i) + 0.5) /
                     static_cast<double>(grid);
    total += std::abs(util::PercentileSorted(a, q) -
                      util::PercentileSorted(b, q));
  }
  return total / static_cast<double>(grid);
}

std::string TrajectoryStatsReport::ToString() const {
  std::ostringstream os;
  os << "trip_len orig: " << trip_length_original.ToString()
     << "\ntrip_len pub:  " << trip_length_published.ToString()
     << "\ntrip_len EMD:  " << util::FormatDouble(trip_length_emd, 1)
     << " m\ngyration orig: " << gyration_original.ToString()
     << "\ngyration pub:  " << gyration_published.ToString()
     << "\ngyration mean rel err: "
     << util::FormatDouble(gyration_relative_error, 4);
  return os.str();
}

TrajectoryStatsReport CompareTrajectoryStats(
    const model::Dataset& original, const model::Dataset& published) {
  TrajectoryStatsReport report;
  const auto trips_orig = TripLengths(original);
  const auto trips_pub = TripLengths(published);
  report.trip_length_original = util::Summary::Of(trips_orig);
  report.trip_length_published = util::Summary::Of(trips_pub);
  report.trip_length_emd = EarthMoversDistance(trips_orig, trips_pub);

  const auto gyr_orig = AllRadiiOfGyration(original);
  const auto gyr_pub = AllRadiiOfGyration(published);
  report.gyration_original = util::Summary::Of(gyr_orig);
  report.gyration_published = util::Summary::Of(gyr_pub);
  double rel_sum = 0.0;
  std::size_t rel_n = 0;
  for (std::size_t u = 0; u < std::min(gyr_orig.size(), gyr_pub.size());
       ++u) {
    if (gyr_orig[u] <= 0.0) continue;
    rel_sum += std::abs(gyr_orig[u] - gyr_pub[u]) / gyr_orig[u];
    ++rel_n;
  }
  report.gyration_relative_error =
      rel_n == 0 ? 0.0 : rel_sum / static_cast<double>(rel_n);
  return report;
}

}  // namespace mobipriv::metrics
