// Density heatmaps: the workhorse of mobility analytics (traffic studies,
// urban planning). The metric compares the spatial density distribution of
// the original and published datasets — cosine similarity and total-
// variation-style L1 distance over a common grid. Identity-free, so it is
// valid after trajectory swapping.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "geo/projection.h"
#include "model/dataset.h"
#include "model/views.h"

namespace mobipriv::metrics {

struct HeatmapConfig {
  double cell_size_m = 200.0;
};

/// Sparse event-count raster. The view constructor is the implementation
/// (mmap-opened shards rasterize without materializing); the Dataset
/// constructor adapts zero-copy.
class Heatmap {
 public:
  Heatmap(const model::DatasetView& dataset,
          const geo::LocalProjection& projection,
          const HeatmapConfig& config = {});
  Heatmap(const model::Dataset& dataset, const geo::LocalProjection& projection,
          const HeatmapConfig& config = {});

  [[nodiscard]] std::size_t NonZeroCells() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::size_t TotalCount() const noexcept { return total_; }

  /// Cosine similarity of the two count vectors, in [0, 1].
  [[nodiscard]] static double Cosine(const Heatmap& a, const Heatmap& b);

  /// L1 distance of the *normalized* distributions, in [0, 2]
  /// (2 x total variation distance). 0 = identical densities.
  [[nodiscard]] static double NormalizedL1(const Heatmap& a, const Heatmap& b);

 private:
  std::unordered_map<std::uint64_t, double> counts_;
  std::size_t total_ = 0;
};

/// Convenience: cosine similarity of heatmaps on the union frame.
[[nodiscard]] double HeatmapSimilarity(const model::DatasetView& original,
                                       const model::DatasetView& published,
                                       const HeatmapConfig& config = {});
[[nodiscard]] double HeatmapSimilarity(const model::Dataset& original,
                                       const model::Dataset& published,
                                       const HeatmapConfig& config = {});

}  // namespace mobipriv::metrics
