// Aggregation of re-identification attack results into the privacy numbers
// reported by bench E4: accuracy, top-line counts, and the anonymity the
// defender actually achieved (how many candidates were indistinguishable).
#pragma once

#include <string>
#include <vector>

#include "attacks/reident.h"

namespace mobipriv::metrics {

struct ReidentReport {
  std::size_t traces = 0;
  std::size_t linkable = 0;    ///< traces with extractable profiles
  std::size_t correct = 0;     ///< linked to the true user
  double accuracy_all = 0.0;   ///< correct / traces (unlinkable = failure)
  double accuracy_linkable = 0.0;  ///< correct / linkable

  [[nodiscard]] std::string ToString() const;
};

[[nodiscard]] ReidentReport SummarizeReident(
    const std::vector<attacks::LinkResult>& results);

}  // namespace mobipriv::metrics
