// Area-coverage similarity: do analysts see the same *places* in the
// published data? Both datasets are rasterized onto a common grid; the
// metric is the Jaccard similarity of the visited-cell sets. Robust to
// swapping (identity-free) and to time distortion — it isolates pure
// geographic utility.
#pragma once

#include <cstddef>
#include <unordered_set>

#include "model/dataset.h"
#include "model/views.h"

namespace mobipriv::metrics {

struct CoverageConfig {
  double cell_size_m = 200.0;
};

/// Jaccard similarity in [0, 1] of visited grid cells (1 = identical
/// footprints). Both datasets are projected on the union bounding box.
/// Rasterization fans out per trace on the thread pool; cell sets are
/// order-free, so the result is exact at any worker count. The view form
/// is the implementation; the Dataset form adapts zero-copy.
[[nodiscard]] double CoverageJaccard(const model::DatasetView& a,
                                     const model::DatasetView& b,
                                     const CoverageConfig& config = {});
[[nodiscard]] double CoverageJaccard(const model::Dataset& a,
                                     const model::Dataset& b,
                                     const CoverageConfig& config = {});

/// Number of distinct cells visited by a dataset (its footprint size).
[[nodiscard]] std::size_t CellFootprint(const model::DatasetView& dataset,
                                        const CoverageConfig& config = {});
[[nodiscard]] std::size_t CellFootprint(const model::Dataset& dataset,
                                        const CoverageConfig& config = {});

}  // namespace mobipriv::metrics
