#include "metrics/frechet.h"

#include <algorithm>
#include <limits>

#include "geo/polyline.h"
#include "geo/projection.h"

namespace mobipriv::metrics {

double DiscreteFrechet(const std::vector<geo::Point2>& a,
                       const std::vector<geo::Point2>& b) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  // Rolling two-row DP keeps memory at O(m).
  std::vector<double> prev(m);
  std::vector<double> curr(m);
  prev[0] = geo::Distance(a[0], b[0]);
  for (std::size_t j = 1; j < m; ++j) {
    prev[j] = std::max(prev[j - 1], geo::Distance(a[0], b[j]));
  }
  for (std::size_t i = 1; i < n; ++i) {
    curr[0] = std::max(prev[0], geo::Distance(a[i], b[0]));
    for (std::size_t j = 1; j < m; ++j) {
      const double reach =
          std::min({prev[j], prev[j - 1], curr[j - 1]});
      curr[j] = std::max(reach, geo::Distance(a[i], b[j]));
    }
    std::swap(prev, curr);
  }
  return prev[m - 1];
}

double DiscreteFrechet(const model::Trace& a, const model::Trace& b,
                       std::size_t max_points) {
  if (a.empty() && b.empty()) return 0.0;
  if (a.empty() || b.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  geo::GeoBoundingBox bbox = a.BoundingBox();
  bbox.Extend(b.BoundingBox());
  const geo::LocalProjection projection(bbox.Center());
  auto pa = projection.Project(a.Positions());
  auto pb = projection.Project(b.Positions());
  if (pa.size() > max_points) pa = geo::ResampleCount(pa, max_points);
  if (pb.size() > max_points) pb = geo::ResampleCount(pb, max_points);
  return DiscreteFrechet(pa, pb);
}

}  // namespace mobipriv::metrics
