#include "metrics/evaluators.h"

#include "metrics/spatial_distortion.h"
#include "metrics/trajectory_stats.h"
#include "util/rng.h"
#include "util/string_utils.h"

namespace mobipriv::metrics {
namespace {

// Stream salt separating the range-query workload from every other
// consumer of the grid cell's seed.
constexpr std::uint64_t kRangeQuerySalt = 0x5251554552590001ULL;

}  // namespace

std::string SpatialDistortionEvaluator::Name() const {
  return "spatial_distortion";
}

std::vector<core::MetricValue> SpatialDistortionEvaluator::Evaluate(
    const core::EvalInput& input) const {
  const DistortionSummary summary =
      MeasureDistortion(input.original, input.published);
  return {{"path_mean_m", summary.path_m.mean},
          {"path_p95_m", summary.path_m.p95},
          {"sync_mean_m", summary.synchronized_m.mean},
          {"sync_p95_m", summary.synchronized_m.p95},
          {"compared_traces", static_cast<double>(summary.compared_traces)}};
}

CoverageEvaluator::CoverageEvaluator(CoverageConfig config)
    : config_(config) {}

std::string CoverageEvaluator::Name() const {
  return "coverage[cell=" + util::FormatDouble(config_.cell_size_m, 0) + "m]";
}

std::vector<core::MetricValue> CoverageEvaluator::Evaluate(
    const core::EvalInput& input) const {
  return {{"coverage_jaccard",
           CoverageJaccard(input.original, input.published, config_)}};
}

HeatmapEvaluator::HeatmapEvaluator(HeatmapConfig config) : config_(config) {}

std::string HeatmapEvaluator::Name() const {
  return "heatmap[cell=" + util::FormatDouble(config_.cell_size_m, 0) + "m]";
}

std::vector<core::MetricValue> HeatmapEvaluator::Evaluate(
    const core::EvalInput& input) const {
  return {{"heatmap_cosine",
           HeatmapSimilarity(input.original, input.published, config_)}};
}

RangeQueryEvaluator::RangeQueryEvaluator(RangeQueryConfig config)
    : config_(config) {}

std::string RangeQueryEvaluator::Name() const {
  return "range_queries[n=" + std::to_string(config_.query_count) + "]";
}

std::vector<core::MetricValue> RangeQueryEvaluator::Evaluate(
    const core::EvalInput& input) const {
  util::Rng rng(util::DeriveStreamSeed(input.seed, kRangeQuerySalt, 0));
  const std::vector<RangeQuery> queries =
      SampleQueries(input.original, config_, rng);
  const RangeQueryReport report =
      MeasureRangeQueryError(input.original, input.published, queries);
  return {{"range_err_median", report.relative_error.median},
          {"range_err_p95", report.relative_error.p95},
          {"range_err_mean", report.relative_error.mean}};
}

std::string TrajectoryStatsEvaluator::Name() const {
  return "trajectory_stats";
}

std::vector<core::MetricValue> TrajectoryStatsEvaluator::Evaluate(
    const core::EvalInput& input) const {
  const TrajectoryStatsReport report =
      CompareTrajectoryStats(input.original, input.published);
  return {{"trip_len_emd_m", report.trip_length_emd},
          {"gyration_rel_err", report.gyration_relative_error},
          {"trip_len_pub_mean_m", report.trip_length_published.mean}};
}

KDeltaEvaluator::KDeltaEvaluator(KDeltaConfig config) : config_(config) {}

std::string KDeltaEvaluator::Name() const {
  // Injective on the config (the engine dedupes evaluators by name).
  const KDeltaConfig defaults;
  std::string name =
      "kdelta[delta=" + util::FormatDouble(config_.delta_m, 0) + "m";
  if (config_.grid_step_s != defaults.grid_step_s) {
    name += ",grid=" + std::to_string(config_.grid_step_s) + "s";
  }
  if (config_.tolerance != defaults.tolerance) {
    name += ",tolerance=" + util::FormatDouble(config_.tolerance, 3);
  }
  return name + "]";
}

std::vector<core::MetricValue> KDeltaEvaluator::Evaluate(
    const core::EvalInput& input) const {
  const KDeltaReport report =
      MeasureKDeltaAnonymity(input.published, config_);
  return {{"kdelta_mean_k", report.k_distribution.mean},
          {"kdelta_frac_k2", report.FractionWithK(2)},
          {"kdelta_frac_k4", report.FractionWithK(4)}};
}

}  // namespace mobipriv::metrics
