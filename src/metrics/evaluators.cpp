#include "metrics/evaluators.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "geo/projection.h"
#include "metrics/spatial_distortion.h"
#include "metrics/trajectory_stats.h"
#include "util/rng.h"
#include "util/string_utils.h"

namespace mobipriv::metrics {
namespace {

// Stream salt separating the range-query workload from every other
// consumer of the grid cell's seed.
constexpr std::uint64_t kRangeQuerySalt = 0x5251554552590001ULL;

/// Shard-streamed trajectory_stats. Trip lengths are per-trace, so each
/// lands in its canonical slot and Finalize replays the whole-view trace
/// order; gyration is per-user and every user's traces share a home shard,
/// so each radius computes whole from one slice. The projection frames
/// come from the engine-folded full-dataset bounding boxes — identical to
/// the ones CompareTrajectoryStats builds.
class TrajectoryStatsFold final : public core::TraceFold {
 public:
  void AccumulateShard(const core::ShardSlice& slice) override {
    if (!frame_original_) {
      frame_original_.emplace(slice.original_bbox.Center());
      frame_published_.emplace(slice.published_bbox.Center());
      gyration_original_.assign(slice.user_count, 0.0);
      gyration_published_.assign(slice.user_count, 0.0);
    }
    for (std::size_t i = 0; i < slice.original.size(); ++i) {
      const std::size_t slot = slice.canonical_index[i];
      if (slot >= trip_original_.size()) {
        trip_original_.resize(slot + 1, 0.0);
        trip_published_.resize(slot + 1, 0.0);
        published_alive_.resize(slot + 1, 0);
      }
      trip_original_[slot] = slice.original[i].LengthMeters();
      if (!slice.published[i].empty()) {
        trip_published_[slot] = slice.published[i].LengthMeters();
        published_alive_[slot] = 1;
      }
    }
    AccumulateGyration(slice.original, *frame_original_, /*skip_empty=*/false,
                       gyration_original_);
    AccumulateGyration(slice.published, *frame_published_,
                       /*skip_empty=*/true, gyration_published_);
  }

  std::vector<core::MetricValue> Finalize() override {
    // Compacting the canonical slots reproduces TripLengths on each whole
    // view, suppression drops and the >= 0 filter included.
    std::vector<double> trips_orig;
    trips_orig.reserve(trip_original_.size());
    for (const double length : trip_original_) {
      if (length >= 0.0) trips_orig.push_back(length);
    }
    std::vector<double> trips_pub;
    trips_pub.reserve(trip_published_.size());
    for (std::size_t t = 0; t < trip_published_.size(); ++t) {
      if (published_alive_[t] && trip_published_[t] >= 0.0) {
        trips_pub.push_back(trip_published_[t]);
      }
    }
    const double emd = EarthMoversDistance(trips_orig, trips_pub);
    const util::Summary pub_summary = util::Summary::Of(trips_pub);

    double rel_sum = 0.0;
    std::size_t rel_n = 0;
    for (std::size_t u = 0;
         u < std::min(gyration_original_.size(), gyration_published_.size());
         ++u) {
      if (gyration_original_[u] <= 0.0) continue;
      rel_sum += std::abs(gyration_original_[u] - gyration_published_[u]) /
                 gyration_original_[u];
      ++rel_n;
    }
    const double rel_err =
        rel_n == 0 ? 0.0 : rel_sum / static_cast<double>(rel_n);
    return {{"trip_len_emd_m", emd},
            {"gyration_rel_err", rel_err},
            {"trip_len_pub_mean_m", pub_summary.mean}};
  }

 private:
  static void AccumulateGyration(std::span<const model::TraceView> traces,
                                 const geo::LocalProjection& frame,
                                 bool skip_empty, std::vector<double>& radii) {
    // Bucket the slice's traces by user in slice order (== canonical order
    // restricted to this shard), exactly the sequence AllRadiiOfGyration's
    // per-user buckets visit.
    std::unordered_map<model::UserId, std::size_t> slot;
    std::vector<model::UserId> owner;
    std::vector<std::vector<model::TraceView>> buckets;
    for (const model::TraceView& trace : traces) {
      if (skip_empty && trace.empty()) continue;
      const auto [it, inserted] = slot.try_emplace(trace.user(), buckets.size());
      if (inserted) {
        owner.push_back(trace.user());
        buckets.emplace_back();
      }
      buckets[it->second].push_back(trace);
    }
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (owner[b] < radii.size()) {
        radii[owner[b]] = RadiusOfGyrationOfTraces(buckets[b], frame);
      }
    }
  }

  std::optional<geo::LocalProjection> frame_original_;
  std::optional<geo::LocalProjection> frame_published_;
  /// Canonical-slot trip lengths; `published_alive_` marks non-suppressed
  /// outputs (the whole-view published dataset keeps exactly those).
  std::vector<double> trip_original_;
  std::vector<double> trip_published_;
  std::vector<unsigned char> published_alive_;
  std::vector<double> gyration_original_;
  std::vector<double> gyration_published_;
};

/// Shard-streamed range_queries. The workload samples once, from the
/// engine-folded full-dataset extents — the identical draw sequence
/// SampleQueries makes — and per-query event counts are integers, so
/// summing them shard by shard is exact.
class RangeQueryFold final : public core::TraceFold {
 public:
  RangeQueryFold(const RangeQueryConfig& config, std::uint64_t seed)
      : config_(config), seed_(seed) {}

  void AccumulateShard(const core::ShardSlice& slice) override {
    if (!sampled_) {
      sampled_ = true;
      util::Rng rng(util::DeriveStreamSeed(seed_, kRangeQuerySalt, 0));
      queries_ = SampleQueriesFromExtent(slice.original_bbox,
                                         slice.original_t_min,
                                         slice.original_t_max, config_, rng);
      count_original_.assign(queries_.size(), 0);
      count_published_.assign(queries_.size(), 0);
    }
    for (std::size_t q = 0; q < queries_.size(); ++q) {
      for (const model::TraceView& trace : slice.original) {
        count_original_[q] += CountEvents(trace, queries_[q]);
      }
      // Suppressed outputs are empty views and count zero events — the
      // same zero the whole-view path gets from dropping them.
      for (const model::TraceView& trace : slice.published) {
        count_published_[q] += CountEvents(trace, queries_[q]);
      }
    }
  }

  std::vector<core::MetricValue> Finalize() override {
    std::vector<double> errors(queries_.size());
    for (std::size_t q = 0; q < queries_.size(); ++q) {
      const double denom =
          std::max<double>(1.0, static_cast<double>(count_original_[q]));
      errors[q] = std::abs(static_cast<double>(count_original_[q]) -
                           static_cast<double>(count_published_[q])) /
                  denom;
    }
    const util::Summary summary = util::Summary::Of(errors);
    return {{"range_err_median", summary.median},
            {"range_err_p95", summary.p95},
            {"range_err_mean", summary.mean}};
  }

 private:
  RangeQueryConfig config_;
  std::uint64_t seed_;
  bool sampled_ = false;
  std::vector<RangeQuery> queries_;
  std::vector<std::size_t> count_original_;
  std::vector<std::size_t> count_published_;
};

}  // namespace

std::string SpatialDistortionEvaluator::Name() const {
  return "spatial_distortion";
}

std::vector<core::MetricValue> SpatialDistortionEvaluator::Evaluate(
    const core::EvalInput& input) const {
  const DistortionSummary summary =
      MeasureDistortion(input.original, input.published);
  return {{"path_mean_m", summary.path_m.mean},
          {"path_p95_m", summary.path_m.p95},
          {"sync_mean_m", summary.synchronized_m.mean},
          {"sync_p95_m", summary.synchronized_m.p95},
          {"compared_traces", static_cast<double>(summary.compared_traces)}};
}

CoverageEvaluator::CoverageEvaluator(CoverageConfig config)
    : config_(config) {}

std::string CoverageEvaluator::Name() const {
  return "coverage[cell=" + util::FormatDouble(config_.cell_size_m, 0) + "m]";
}

std::vector<core::MetricValue> CoverageEvaluator::Evaluate(
    const core::EvalInput& input) const {
  return {{"coverage_jaccard",
           CoverageJaccard(input.original, input.published, config_)}};
}

HeatmapEvaluator::HeatmapEvaluator(HeatmapConfig config) : config_(config) {}

std::string HeatmapEvaluator::Name() const {
  return "heatmap[cell=" + util::FormatDouble(config_.cell_size_m, 0) + "m]";
}

std::vector<core::MetricValue> HeatmapEvaluator::Evaluate(
    const core::EvalInput& input) const {
  return {{"heatmap_cosine",
           HeatmapSimilarity(input.original, input.published, config_)}};
}

RangeQueryEvaluator::RangeQueryEvaluator(RangeQueryConfig config)
    : config_(config) {}

std::string RangeQueryEvaluator::Name() const {
  return "range_queries[n=" + std::to_string(config_.query_count) + "]";
}

std::vector<core::MetricValue> RangeQueryEvaluator::Evaluate(
    const core::EvalInput& input) const {
  util::Rng rng(util::DeriveStreamSeed(input.seed, kRangeQuerySalt, 0));
  const std::vector<RangeQuery> queries =
      SampleQueries(input.original, config_, rng);
  const RangeQueryReport report =
      MeasureRangeQueryError(input.original, input.published, queries);
  return {{"range_err_median", report.relative_error.median},
          {"range_err_p95", report.relative_error.p95},
          {"range_err_mean", report.relative_error.mean}};
}

std::unique_ptr<core::TraceFold> RangeQueryEvaluator::MakeTraceFold(
    std::uint64_t seed) const {
  return std::make_unique<RangeQueryFold>(config_, seed);
}

std::string TrajectoryStatsEvaluator::Name() const {
  return "trajectory_stats";
}

std::vector<core::MetricValue> TrajectoryStatsEvaluator::Evaluate(
    const core::EvalInput& input) const {
  const TrajectoryStatsReport report =
      CompareTrajectoryStats(input.original, input.published);
  return {{"trip_len_emd_m", report.trip_length_emd},
          {"gyration_rel_err", report.gyration_relative_error},
          {"trip_len_pub_mean_m", report.trip_length_published.mean}};
}

std::unique_ptr<core::TraceFold> TrajectoryStatsEvaluator::MakeTraceFold(
    std::uint64_t /*seed*/) const {
  return std::make_unique<TrajectoryStatsFold>();
}

KDeltaEvaluator::KDeltaEvaluator(KDeltaConfig config) : config_(config) {}

std::string KDeltaEvaluator::Name() const {
  // Injective on the config (the engine dedupes evaluators by name).
  const KDeltaConfig defaults;
  std::string name =
      "kdelta[delta=" + util::FormatDouble(config_.delta_m, 0) + "m";
  if (config_.grid_step_s != defaults.grid_step_s) {
    name += ",grid=" + std::to_string(config_.grid_step_s) + "s";
  }
  if (config_.tolerance != defaults.tolerance) {
    name += ",tolerance=" + util::FormatDouble(config_.tolerance, 3);
  }
  return name + "]";
}

std::vector<core::MetricValue> KDeltaEvaluator::Evaluate(
    const core::EvalInput& input) const {
  const KDeltaReport report =
      MeasureKDeltaAnonymity(input.published, config_);
  return {{"kdelta_mean_k", report.k_distribution.mean},
          {"kdelta_frac_k2", report.FractionWithK(2)},
          {"kdelta_frac_k4", report.FractionWithK(4)}};
}

}  // namespace mobipriv::metrics
