// Utility-metric implementations of the scenario engine's Evaluator
// interface (core/evaluator.h). Each wraps an existing view-based metric
// kernel; all are registered with core::CreateEvaluator under the base
// name in their Name().
#pragma once

#include "core/evaluator.h"
#include "metrics/coverage.h"
#include "metrics/heatmap.h"
#include "metrics/kdelta.h"
#include "metrics/range_queries.h"

namespace mobipriv::metrics {

/// "spatial_distortion": path/synchronized error of published vs original
/// traces (metres) — the paper's headline utility metric.
class SpatialDistortionEvaluator final : public core::Evaluator {
 public:
  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] std::vector<core::MetricValue> Evaluate(
      const core::EvalInput& input) const override;
};

/// "coverage[cell=...m]": Jaccard similarity of visited grid cells.
class CoverageEvaluator final : public core::Evaluator {
 public:
  explicit CoverageEvaluator(CoverageConfig config = {});
  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] std::vector<core::MetricValue> Evaluate(
      const core::EvalInput& input) const override;

 private:
  CoverageConfig config_;
};

/// "heatmap[cell=...m]": cosine similarity of event-density rasters.
class HeatmapEvaluator final : public core::Evaluator {
 public:
  explicit HeatmapEvaluator(HeatmapConfig config = {});
  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] std::vector<core::MetricValue> Evaluate(
      const core::EvalInput& input) const override;

 private:
  HeatmapConfig config_;
};

/// "range_queries[n=...]": relative-error distribution of a random
/// spatio-temporal counting workload sampled (deterministically from the
/// grid cell's seed) on the original dataset.
class RangeQueryEvaluator final : public core::Evaluator {
 public:
  explicit RangeQueryEvaluator(RangeQueryConfig config = {});
  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] std::vector<core::MetricValue> Evaluate(
      const core::EvalInput& input) const override;
  /// Foldable: the workload samples from the folded full-dataset extents
  /// (SampleQueriesFromExtent) and per-query counts are exact integer sums
  /// over shards.
  [[nodiscard]] std::unique_ptr<core::TraceFold> MakeTraceFold(
      std::uint64_t seed) const override;

 private:
  RangeQueryConfig config_;
};

/// "trajectory_stats": trip-length EMD and radius-of-gyration error.
class TrajectoryStatsEvaluator final : public core::Evaluator {
 public:
  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] std::vector<core::MetricValue> Evaluate(
      const core::EvalInput& input) const override;
  /// Foldable: trip lengths land in canonical slots and each user's
  /// gyration computes whole inside their home shard.
  [[nodiscard]] std::unique_ptr<core::TraceFold> MakeTraceFold(
      std::uint64_t seed) const override;
};

/// "kdelta[delta=...m]": measured (k, delta)-anonymity of the published
/// dataset (single-dataset privacy metric; the original is ignored).
class KDeltaEvaluator final : public core::Evaluator {
 public:
  explicit KDeltaEvaluator(KDeltaConfig config = {});
  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] std::vector<core::MetricValue> Evaluate(
      const core::EvalInput& input) const override;

 private:
  KDeltaConfig config_;
};

}  // namespace mobipriv::metrics
