#include "metrics/reident_metrics.h"

#include <sstream>

#include "util/string_utils.h"

namespace mobipriv::metrics {

std::string ReidentReport::ToString() const {
  std::ostringstream os;
  os << "traces=" << traces << " linkable=" << linkable
     << " correct=" << correct
     << " acc(all)=" << util::FormatDouble(accuracy_all, 3)
     << " acc(linkable)=" << util::FormatDouble(accuracy_linkable, 3);
  return os.str();
}

ReidentReport SummarizeReident(
    const std::vector<attacks::LinkResult>& results) {
  ReidentReport report;
  report.traces = results.size();
  for (const auto& r : results) {
    if (!r.linkable) continue;
    ++report.linkable;
    if (r.predicted_user == r.true_user) ++report.correct;
  }
  if (report.traces > 0) {
    report.accuracy_all = static_cast<double>(report.correct) /
                          static_cast<double>(report.traces);
  }
  if (report.linkable > 0) {
    report.accuracy_linkable = static_cast<double>(report.correct) /
                               static_cast<double>(report.linkable);
  }
  return report;
}

}  // namespace mobipriv::metrics
