#include "metrics/range_queries.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <sstream>

#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace mobipriv::metrics {

std::size_t CountEvents(const model::DatasetView& dataset,
                        const RangeQuery& query) {
  std::size_t count = 0;
  for (const auto& trace : dataset.traces()) {
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const util::Timestamp time = trace.time(i);
      if (time < query.from || time > query.to) continue;
      if (query.box.Contains(trace.position(i))) ++count;
    }
  }
  return count;
}

std::size_t CountEvents(const model::Dataset& dataset,
                        const RangeQuery& query) {
  return CountEvents(model::DatasetView::Of(dataset), query);
}

std::size_t CountEvents(const model::TraceView& trace,
                        const RangeQuery& query) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const util::Timestamp time = trace.time(i);
    if (time < query.from || time > query.to) continue;
    if (query.box.Contains(trace.position(i))) ++count;
  }
  return count;
}

std::vector<RangeQuery> SampleQueries(const model::DatasetView& dataset,
                                      const RangeQueryConfig& config,
                                      util::Rng& rng) {
  const geo::GeoBoundingBox bbox = dataset.BoundingBox();

  // Dataset time span.
  util::Timestamp t_min = std::numeric_limits<util::Timestamp>::max();
  util::Timestamp t_max = std::numeric_limits<util::Timestamp>::min();
  for (const auto& trace : dataset.traces()) {
    if (trace.empty()) continue;
    t_min = std::min(t_min, trace.time(0));
    t_max = std::max(t_max, trace.time(trace.size() - 1));
  }
  return SampleQueriesFromExtent(bbox, t_min, t_max, config, rng);
}

std::vector<RangeQuery> SampleQueriesFromExtent(
    const geo::GeoBoundingBox& bbox, util::Timestamp t_min,
    util::Timestamp t_max, const RangeQueryConfig& config, util::Rng& rng) {
  std::vector<RangeQuery> queries;
  if (bbox.IsEmpty()) return queries;
  if (t_min > t_max) return queries;

  const double lat_span = bbox.NorthEast().lat - bbox.SouthWest().lat;
  const double lng_span = bbox.NorthEast().lng - bbox.SouthWest().lng;
  queries.reserve(config.query_count);
  for (std::size_t q = 0; q < config.query_count; ++q) {
    const double f =
        rng.Uniform(config.min_size_fraction, config.max_size_fraction);
    const double dlat = lat_span * f;
    const double dlng = lng_span * f;
    const double lat0 =
        rng.Uniform(bbox.SouthWest().lat, bbox.NorthEast().lat - dlat);
    const double lng0 =
        rng.Uniform(bbox.SouthWest().lng, bbox.NorthEast().lng - dlng);
    RangeQuery query;
    query.box = geo::GeoBoundingBox({lat0, lng0}, {lat0 + dlat, lng0 + dlng});
    const auto duration = static_cast<util::Timestamp>(
        rng.Uniform(static_cast<double>(config.min_duration_s),
                    static_cast<double>(config.max_duration_s)));
    const auto span = t_max - t_min;
    const auto start =
        t_min + static_cast<util::Timestamp>(
                    rng.Uniform(0.0, static_cast<double>(
                                         std::max<util::Timestamp>(
                                             1, span - duration))));
    query.from = start;
    query.to = start + duration;
    queries.push_back(query);
  }
  return queries;
}

std::vector<RangeQuery> SampleQueries(const model::Dataset& dataset,
                                      const RangeQueryConfig& config,
                                      util::Rng& rng) {
  return SampleQueries(model::DatasetView::Of(dataset), config, rng);
}

std::string RangeQueryReport::ToString() const {
  std::ostringstream os;
  os << "queries=" << queries << " empty_on_original=" << empty_on_original
     << " rel_error: " << relative_error.ToString();
  return os.str();
}

RangeQueryReport MeasureRangeQueryError(
    const model::DatasetView& original, const model::DatasetView& published,
    const std::vector<RangeQuery>& queries) {
  RangeQueryReport report;
  report.queries = queries.size();
  // Queries are independent full scans; fan them out into pre-sized slots
  // (fixed merge order keeps the summary byte-identical at any worker
  // count).
  std::vector<double> errors(queries.size());
  std::vector<unsigned char> empty(queries.size(), 0);
  util::ParallelForEach(queries.size(), [&](std::size_t q) {
    const auto count_orig = CountEvents(original, queries[q]);
    const auto count_pub = CountEvents(published, queries[q]);
    if (count_orig == 0) empty[q] = 1;
    const double denom = std::max<double>(1.0, static_cast<double>(count_orig));
    errors[q] = std::abs(static_cast<double>(count_orig) -
                         static_cast<double>(count_pub)) /
                denom;
  });
  for (const unsigned char e : empty) report.empty_on_original += e;
  report.relative_error = util::Summary::Of(errors);
  return report;
}

RangeQueryReport MeasureRangeQueryError(
    const model::Dataset& original, const model::Dataset& published,
    const std::vector<RangeQuery>& queries) {
  return MeasureRangeQueryError(model::DatasetView::Of(original),
                                model::DatasetView::Of(published), queries);
}

}  // namespace mobipriv::metrics
