#include "metrics/poi_metrics.h"

#include <map>
#include <sstream>

#include "util/string_utils.h"

namespace mobipriv::metrics {

double PoiScore::F1() const noexcept {
  const double p = Precision();
  const double r = Recall();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

std::string PoiScore::ToString() const {
  std::ostringstream os;
  os << "true=" << true_pois << " extracted=" << extracted
     << " recall=" << util::FormatDouble(Recall(), 3)
     << " precision=" << util::FormatDouble(Precision(), 3)
     << " f1=" << util::FormatDouble(F1(), 3);
  return os.str();
}

std::vector<TruePlace> DistinctTruePlaces(
    const std::vector<synth::GroundTruthVisit>& visits,
    const geo::LocalProjection& world_projection,
    const geo::LocalProjection& attack_projection) {
  std::map<std::pair<model::UserId, synth::PoiId>, geo::Point2> places;
  for (const auto& visit : visits) {
    places.emplace(std::make_pair(visit.user, visit.poi),
                   attack_projection.Project(
                       world_projection.Unproject(visit.position)));
  }
  std::vector<TruePlace> out;
  out.reserve(places.size());
  for (const auto& [key, position] : places) {
    out.push_back(TruePlace{key.first, position});
  }
  return out;
}

PoiScore ScorePoiExtraction(const std::vector<attacks::ExtractedPoi>& extracted,
                            const std::vector<TruePlace>& truth,
                            const PoiMatchConfig& config) {
  PoiScore score;
  score.true_pois = truth.size();
  score.extracted = extracted.size();
  // Recall: each true place found by some extracted POI of the same user.
  for (const auto& place : truth) {
    for (const auto& poi : extracted) {
      if (poi.user != place.user) continue;
      if (geo::Distance(poi.centroid, place.position) <=
          config.match_radius_m) {
        ++score.matched_true;
        break;
      }
    }
  }
  // Precision: each extracted POI near some true place of the same user.
  for (const auto& poi : extracted) {
    for (const auto& place : truth) {
      if (poi.user != place.user) continue;
      if (geo::Distance(poi.centroid, place.position) <=
          config.match_radius_m) {
        ++score.matched_extracted;
        break;
      }
    }
  }
  return score;
}

}  // namespace mobipriv::metrics
