// Spatio-temporal range-query distortion: the analyst-facing utility metric
// of E7. A workload of random queries "how many fixes fall in rectangle R
// during [t0, t1]?" is evaluated on the original and the published dataset;
// the metric is the distribution of relative errors. This is the standard
// utility benchmark of the trajectory-anonymization literature (including
// the Wait4Me paper the baseline reimplements).
#pragma once

#include <string>
#include <vector>

#include "geo/bounding_box.h"
#include "model/dataset.h"
#include "model/views.h"
#include "util/rng.h"
#include "util/statistics.h"

namespace mobipriv::metrics {

struct RangeQuery {
  geo::GeoBoundingBox box;
  util::Timestamp from = 0;
  util::Timestamp to = 0;
};

struct RangeQueryConfig {
  std::size_t query_count = 200;
  /// Query rectangle edge, as a fraction of the dataset bounding box edge.
  double min_size_fraction = 0.05;
  double max_size_fraction = 0.25;
  /// Query duration, seconds.
  util::Timestamp min_duration_s = 1800;
  util::Timestamp max_duration_s = 4 * 3600;
};

/// Number of events inside the query (closed bounds). The view form is
/// the implementation; the Dataset form adapts zero-copy. The TraceView
/// form counts one trace (sum over traces == the dataset count — what the
/// shard-streamed fold accumulates).
[[nodiscard]] std::size_t CountEvents(const model::DatasetView& dataset,
                                      const RangeQuery& query);
[[nodiscard]] std::size_t CountEvents(const model::Dataset& dataset,
                                      const RangeQuery& query);
[[nodiscard]] std::size_t CountEvents(const model::TraceView& trace,
                                      const RangeQuery& query);

/// Samples a query workload covering the dataset's extent and time span.
[[nodiscard]] std::vector<RangeQuery> SampleQueries(
    const model::DatasetView& dataset, const RangeQueryConfig& config,
    util::Rng& rng);
[[nodiscard]] std::vector<RangeQuery> SampleQueries(
    const model::Dataset& dataset, const RangeQueryConfig& config,
    util::Rng& rng);

/// Workload sampling from precomputed extents — the exact draw sequence
/// SampleQueries makes once it knows the bounding box and time span, so a
/// caller that folded those extents out-of-core (the shard-streamed
/// engine) samples the identical workload without a resident dataset.
/// Empty when `bbox` is empty or t_min > t_max (no events).
[[nodiscard]] std::vector<RangeQuery> SampleQueriesFromExtent(
    const geo::GeoBoundingBox& bbox, util::Timestamp t_min,
    util::Timestamp t_max, const RangeQueryConfig& config, util::Rng& rng);

struct RangeQueryReport {
  util::Summary relative_error;  ///< |orig - pub| / max(orig, 1), per query
  std::size_t queries = 0;
  std::size_t empty_on_original = 0;  ///< queries with no original events

  [[nodiscard]] std::string ToString() const;
};

/// Runs the workload on both datasets and reports the error distribution.
/// Queries fan out on the thread pool into pre-sized slots, so the report
/// is byte-identical at any worker count. The view form is the
/// implementation; the Dataset form adapts zero-copy.
[[nodiscard]] RangeQueryReport MeasureRangeQueryError(
    const model::DatasetView& original, const model::DatasetView& published,
    const std::vector<RangeQuery>& queries);
[[nodiscard]] RangeQueryReport MeasureRangeQueryError(
    const model::Dataset& original, const model::Dataset& published,
    const std::vector<RangeQuery>& queries);

}  // namespace mobipriv::metrics
