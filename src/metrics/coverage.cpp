#include "metrics/coverage.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "geo/projection.h"
#include "util/parallel_reduce.h"

namespace mobipriv::metrics {
namespace {

using CellSet = std::unordered_set<std::uint64_t>;

std::uint64_t CellKey(geo::Point2 p, double cell) {
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell));
  // Interleave-free packing: 32 bits per axis is ample for city scales.
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
}

CellSet VisitedCells(const model::DatasetView& dataset,
                     const geo::LocalProjection& projection, double cell) {
  // Trace blocks rasterize to partial sets on the pool; set-union is
  // order-insensitive, so the merged footprint is exact regardless of
  // chunking or worker count.
  return util::ParallelReduce<CellSet>(
      dataset.TraceCount(), /*grain=*/16,
      [&](std::size_t begin, std::size_t end) {
        CellSet cells;
        for (std::size_t t = begin; t < end; ++t) {
          const model::TraceView& trace = dataset.trace(t);
          for (std::size_t i = 0; i < trace.size(); ++i) {
            cells.insert(CellKey(projection.Project(trace.position(i)), cell));
          }
        }
        return cells;
      },
      [](CellSet& acc, CellSet&& partial) {
        acc.insert(partial.begin(), partial.end());
      });
}

}  // namespace

double CoverageJaccard(const model::DatasetView& a,
                       const model::DatasetView& b,
                       const CoverageConfig& config) {
  geo::GeoBoundingBox bbox = a.BoundingBox();
  bbox.Extend(b.BoundingBox());
  if (bbox.IsEmpty()) return 1.0;  // both empty: identical footprints
  const geo::LocalProjection projection(bbox.Center());
  const CellSet cells_a = VisitedCells(a, projection, config.cell_size_m);
  const CellSet cells_b = VisitedCells(b, projection, config.cell_size_m);
  if (cells_a.empty() && cells_b.empty()) return 1.0;
  std::size_t intersection = 0;
  for (const auto key : cells_a) {
    if (cells_b.contains(key)) ++intersection;
  }
  const std::size_t union_size =
      cells_a.size() + cells_b.size() - intersection;
  return union_size == 0 ? 1.0
                         : static_cast<double>(intersection) /
                               static_cast<double>(union_size);
}

double CoverageJaccard(const model::Dataset& a, const model::Dataset& b,
                       const CoverageConfig& config) {
  return CoverageJaccard(model::DatasetView::Of(a), model::DatasetView::Of(b),
                         config);
}

std::size_t CellFootprint(const model::DatasetView& dataset,
                          const CoverageConfig& config) {
  const geo::GeoBoundingBox bbox = dataset.BoundingBox();
  if (bbox.IsEmpty()) return 0;
  const geo::LocalProjection projection(bbox.Center());
  return VisitedCells(dataset, projection, config.cell_size_m).size();
}

std::size_t CellFootprint(const model::Dataset& dataset,
                          const CoverageConfig& config) {
  return CellFootprint(model::DatasetView::Of(dataset), config);
}

}  // namespace mobipriv::metrics
