#include "metrics/coverage.h"

#include <cmath>
#include <cstdint>

#include "geo/projection.h"

namespace mobipriv::metrics {
namespace {

using CellSet = std::unordered_set<std::uint64_t>;

std::uint64_t CellKey(geo::Point2 p, double cell) {
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell));
  // Interleave-free packing: 32 bits per axis is ample for city scales.
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
}

CellSet VisitedCells(const model::Dataset& dataset,
                     const geo::LocalProjection& projection, double cell) {
  CellSet cells;
  for (const auto& trace : dataset.traces()) {
    for (const auto& event : trace) {
      cells.insert(CellKey(projection.Project(event.position), cell));
    }
  }
  return cells;
}

}  // namespace

double CoverageJaccard(const model::Dataset& a, const model::Dataset& b,
                       const CoverageConfig& config) {
  geo::GeoBoundingBox bbox = a.BoundingBox();
  bbox.Extend(b.BoundingBox());
  if (bbox.IsEmpty()) return 1.0;  // both empty: identical footprints
  const geo::LocalProjection projection(bbox.Center());
  const CellSet cells_a = VisitedCells(a, projection, config.cell_size_m);
  const CellSet cells_b = VisitedCells(b, projection, config.cell_size_m);
  if (cells_a.empty() && cells_b.empty()) return 1.0;
  std::size_t intersection = 0;
  for (const auto key : cells_a) {
    if (cells_b.contains(key)) ++intersection;
  }
  const std::size_t union_size =
      cells_a.size() + cells_b.size() - intersection;
  return union_size == 0 ? 1.0
                         : static_cast<double>(intersection) /
                               static_cast<double>(union_size);
}

std::size_t CellFootprint(const model::Dataset& dataset,
                          const CoverageConfig& config) {
  const geo::GeoBoundingBox bbox = dataset.BoundingBox();
  if (bbox.IsEmpty()) return 0;
  const geo::LocalProjection projection(bbox.Center());
  return VisitedCells(dataset, projection, config.cell_size_m).size();
}

}  // namespace mobipriv::metrics
