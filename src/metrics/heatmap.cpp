#include "metrics/heatmap.h"

#include <cmath>

namespace mobipriv::metrics {
namespace {

std::uint64_t CellKey(geo::Point2 p, double cell) {
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell));
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(cy));
}

}  // namespace

Heatmap::Heatmap(const model::DatasetView& dataset,
                 const geo::LocalProjection& projection,
                 const HeatmapConfig& config) {
  for (const auto& trace : dataset.traces()) {
    for (std::size_t i = 0; i < trace.size(); ++i) {
      counts_[CellKey(projection.Project(trace.position(i)),
                      config.cell_size_m)] += 1.0;
      ++total_;
    }
  }
}

Heatmap::Heatmap(const model::Dataset& dataset,
                 const geo::LocalProjection& projection,
                 const HeatmapConfig& config)
    : Heatmap(model::DatasetView::Of(dataset), projection, config) {}

double Heatmap::Cosine(const Heatmap& a, const Heatmap& b) {
  if (a.counts_.empty() && b.counts_.empty()) return 1.0;
  if (a.counts_.empty() || b.counts_.empty()) return 0.0;
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (const auto& [key, value] : a.counts_) {
    norm_a += value * value;
    const auto it = b.counts_.find(key);
    if (it != b.counts_.end()) dot += value * it->second;
  }
  for (const auto& [key, value] : b.counts_) norm_b += value * value;
  const double denom = std::sqrt(norm_a) * std::sqrt(norm_b);
  return denom > 0.0 ? dot / denom : 0.0;
}

double Heatmap::NormalizedL1(const Heatmap& a, const Heatmap& b) {
  if (a.total_ == 0 && b.total_ == 0) return 0.0;
  if (a.total_ == 0 || b.total_ == 0) return 2.0;
  const double na = static_cast<double>(a.total_);
  const double nb = static_cast<double>(b.total_);
  double l1 = 0.0;
  for (const auto& [key, value] : a.counts_) {
    const auto it = b.counts_.find(key);
    const double pb = it == b.counts_.end() ? 0.0 : it->second / nb;
    l1 += std::abs(value / na - pb);
  }
  for (const auto& [key, value] : b.counts_) {
    if (!a.counts_.contains(key)) l1 += value / nb;
  }
  return l1;
}

double HeatmapSimilarity(const model::DatasetView& original,
                         const model::DatasetView& published,
                         const HeatmapConfig& config) {
  geo::GeoBoundingBox bbox = original.BoundingBox();
  bbox.Extend(published.BoundingBox());
  if (bbox.IsEmpty()) return 1.0;
  const geo::LocalProjection projection(bbox.Center());
  const Heatmap a(original, projection, config);
  const Heatmap b(published, projection, config);
  return Heatmap::Cosine(a, b);
}

double HeatmapSimilarity(const model::Dataset& original,
                         const model::Dataset& published,
                         const HeatmapConfig& config) {
  return HeatmapSimilarity(model::DatasetView::Of(original),
                           model::DatasetView::Of(published), config);
}

}  // namespace mobipriv::metrics
