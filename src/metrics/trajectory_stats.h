// Aggregate trajectory statistics and their preservation under publication:
// the utility battery mobility analysts actually consume (trip-length
// distribution, radius of gyration, daily travel distance). Preservation is
// measured distributionally (earth mover's distance between histograms and
// per-user relative error), so it is meaningful even for mechanisms that
// swap identities or resample points.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "geo/projection.h"
#include "model/dataset.h"
#include "model/views.h"
#include "util/statistics.h"

namespace mobipriv::metrics {

/// Per-trace trip lengths in metres (one value per trace, >= min_length_m).
/// View form is the implementation (lengths compute per trace on the pool,
/// filtered in trace order); the Dataset form adapts zero-copy.
[[nodiscard]] std::vector<double> TripLengths(
    const model::DatasetView& dataset, double min_length_m = 0.0);
[[nodiscard]] std::vector<double> TripLengths(const model::Dataset& dataset,
                                              double min_length_m = 0.0);

/// Radius of gyration of one user (root mean square distance of all the
/// user's fixes from their centroid, metres) — the classic human-mobility
/// scale statistic.
[[nodiscard]] double RadiusOfGyration(const model::DatasetView& dataset,
                                      model::UserId user);
[[nodiscard]] double RadiusOfGyration(const model::Dataset& dataset,
                                      model::UserId user);

/// Radius of gyration of every user id in [0, UserCount()); users fan out
/// on the pool (each user's fix scan is independent).
[[nodiscard]] std::vector<double> AllRadiiOfGyration(
    const model::DatasetView& dataset);
[[nodiscard]] std::vector<double> AllRadiiOfGyration(
    const model::Dataset& dataset);

/// Gyration radius over an explicit trace sequence in a caller-built frame
/// — the building block AllRadiiOfGyration and the shard-streamed
/// trajectory-stats fold share. Handing in one user's traces in dataset
/// order reproduces RadiusOfGyration for that user bit for bit.
[[nodiscard]] double RadiusOfGyrationOfTraces(
    std::span<const model::TraceView> traces,
    const geo::LocalProjection& projection);

/// First Wasserstein (earth mover's) distance between two empirical
/// 1-D distributions. 0 when identical; units are those of the samples.
/// Empty inputs: 0 if both empty, infinity otherwise.
[[nodiscard]] double EarthMoversDistance(std::vector<double> a,
                                         std::vector<double> b);

struct TrajectoryStatsReport {
  util::Summary trip_length_original;
  util::Summary trip_length_published;
  double trip_length_emd = 0.0;  ///< metres
  util::Summary gyration_original;
  util::Summary gyration_published;
  /// Mean relative error of per-user radius of gyration (matched by id).
  double gyration_relative_error = 0.0;

  [[nodiscard]] std::string ToString() const;
};

/// Full preservation report between an original and a published dataset.
[[nodiscard]] TrajectoryStatsReport CompareTrajectoryStats(
    const model::DatasetView& original, const model::DatasetView& published);
[[nodiscard]] TrajectoryStatsReport CompareTrajectoryStats(
    const model::Dataset& original, const model::Dataset& published);

}  // namespace mobipriv::metrics
