#include "metrics/kdelta.h"

#include <algorithm>
#include <sstream>

#include "geo/projection.h"
#include "model/filters.h"
#include "util/string_utils.h"
#include "util/thread_pool.h"

namespace mobipriv::metrics {

double KDeltaReport::FractionWithK(std::size_t k_floor) const {
  if (per_trace.empty()) return 0.0;
  std::size_t count = 0;
  for (const auto& t : per_trace) {
    if (t.k >= k_floor) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(per_trace.size());
}

std::string KDeltaReport::ToString() const {
  std::ostringstream os;
  os << "traces=" << per_trace.size()
     << " k: " << k_distribution.ToString()
     << " frac(k>=2)=" << util::FormatDouble(FractionWithK(2), 3)
     << " frac(k>=4)=" << util::FormatDouble(FractionWithK(4), 3);
  return os.str();
}

KDeltaReport MeasureKDeltaAnonymity(const model::DatasetView& dataset,
                                    const KDeltaConfig& config) {
  KDeltaReport report;
  const auto& traces = dataset.traces();
  if (traces.empty()) return report;
  const geo::LocalProjection projection(dataset.BoundingBox().Center());

  // Pre-align every trace onto its own step grid (planar); each trace
  // aligns independently on the pool.
  struct Aligned {
    util::Timestamp start = 0;
    std::vector<geo::Point2> points;  // at start + i * grid_step
  };
  std::vector<Aligned> aligned(traces.size());
  util::ParallelForEach(traces.size(), [&](std::size_t i) {
    const model::TraceView& trace = traces[i];
    if (trace.size() < 2) return;
    Aligned& a = aligned[i];
    a.start = trace.time(0);
    const util::Timestamp trace_end = trace.time(trace.size() - 1);
    for (util::Timestamp t = trace.time(0); t <= trace_end;
         t += config.grid_step_s) {
      a.points.push_back(projection.Project(model::InterpolateAt(trace, t)));
    }
  });

  const double delta_sq = config.delta_m * config.delta_m;
  // Companion counting per trace i is independent of every other i (it
  // only reads the aligned grids), so the O(T^2) pair scan fans out; each
  // slot writes its own result, preserving the serial per-trace order.
  std::vector<TraceAnonymity> per_trace(traces.size());
  util::ParallelForEach(traces.size(), [&](std::size_t i) {
    TraceAnonymity anonymity;
    anonymity.trace_index = i;
    anonymity.user = traces[i].user();
    const Aligned& a = aligned[i];
    if (!a.points.empty()) {
      // A companion must cover trace i's full lifetime within delta at
      // every step (minus tolerance).
      const auto allowed_misses = static_cast<std::size_t>(
          config.tolerance * static_cast<double>(a.points.size()));
      for (std::size_t j = 0; j < traces.size(); ++j) {
        if (j == i || aligned[j].points.empty()) continue;
        const Aligned& b = aligned[j];
        // Companion must span trace i's lifetime.
        const util::Timestamp i_end =
            a.start + static_cast<util::Timestamp>(a.points.size() - 1) *
                          config.grid_step_s;
        const util::Timestamp j_end =
            b.start + static_cast<util::Timestamp>(b.points.size() - 1) *
                          config.grid_step_s;
        if (b.start > a.start || j_end < i_end) continue;
        // Offset of a.start within b's grid (same step; align by rounding).
        std::size_t misses = 0;
        bool companion = true;
        for (std::size_t step = 0; step < a.points.size(); ++step) {
          const util::Timestamp t =
              a.start +
              static_cast<util::Timestamp>(step) * config.grid_step_s;
          const auto j_index = static_cast<std::size_t>(
              (t - b.start) / config.grid_step_s);
          if (j_index >= b.points.size()) {
            companion = false;
            break;
          }
          if (geo::DistanceSquared(a.points[step], b.points[j_index]) >
              delta_sq) {
            ++misses;
            if (misses > allowed_misses) {
              companion = false;
              break;
            }
          }
        }
        if (companion) ++anonymity.k;
      }
    }
    per_trace[i] = anonymity;
  });

  std::vector<double> ks;
  ks.reserve(per_trace.size());
  for (const TraceAnonymity& anonymity : per_trace) {
    ks.push_back(static_cast<double>(anonymity.k));
  }
  report.per_trace = std::move(per_trace);
  report.k_distribution = util::Summary::Of(ks);
  return report;
}

KDeltaReport MeasureKDeltaAnonymity(const model::Dataset& dataset,
                                    const KDeltaConfig& config) {
  return MeasureKDeltaAnonymity(model::DatasetView::Of(dataset), config);
}

}  // namespace mobipriv::metrics
