// Re-identification (user linkage) attack, the second threat of Section III.
//
// Threat model: the adversary holds an *identified* training period (e.g.
// data leaked or published earlier with identities) and receives the
// anonymized publication of a later period under fresh pseudonyms. For each
// anonymized trace the adversary extracts a mobility profile — the set of
// POIs — and links it to the known user whose profile is closest. This is
// the POI-based attack of Gambs et al. [1]: home/work pairs are almost
// unique, so raw traces re-identify with high accuracy.
//
// Profile distance: symmetric mean nearest-POI distance (a Hausdorff-style
// average), robust to differing POI counts.
#pragma once

#include <map>
#include <vector>

#include "attacks/poi_extraction.h"
#include "model/dataset.h"

namespace mobipriv::attacks {

/// A user's mobility profile: POI centroids weighted by dwell time.
struct MobilityProfile {
  model::UserId user = model::kInvalidUser;
  std::vector<geo::Point2> pois;
  std::vector<double> weights;  ///< parallel to pois (dwell seconds)
};

struct ReidentConfig {
  PoiExtractionConfig poi;  ///< extractor used on both periods
  /// Profiles with no POI at all cannot be linked; the attack counts them
  /// as failures (the defender's ideal outcome).
  bool count_unlinkable_as_failure = true;
};

/// Result of linking one anonymized trace.
struct LinkResult {
  model::UserId true_user = model::kInvalidUser;
  model::UserId predicted_user = model::kInvalidUser;
  double distance = 0.0;  ///< profile distance to the predicted user
  bool linkable = false;  ///< false when no POIs could be extracted
};

class ReidentificationAttack {
 public:
  explicit ReidentificationAttack(ReidentConfig config = {});

  /// Builds identified profiles from the training dataset (one profile per
  /// user, POIs pooled over all the user's traces). The same `projection`
  /// must be used for BuildProfiles and Attack so planar frames agree.
  /// View forms are the implementation; Dataset forms adapt zero-copy.
  [[nodiscard]] std::vector<MobilityProfile> BuildProfiles(
      const model::DatasetView& training,
      const geo::LocalProjection& projection) const;
  [[nodiscard]] std::vector<MobilityProfile> BuildProfiles(
      const model::Dataset& training,
      const geo::LocalProjection& projection) const;

  /// Symmetric mean nearest-neighbour distance between two POI sets.
  /// Infinity when either set is empty.
  [[nodiscard]] static double ProfileDistance(const MobilityProfile& a,
                                              const MobilityProfile& b);

  /// Links every trace of the anonymized dataset against the profiles.
  /// Both datasets must use the same user-id space (the synthetic world
  /// guarantees this); the anonymized trace's user id is the hidden truth
  /// being predicted, never an attack input.
  [[nodiscard]] std::vector<LinkResult> Attack(
      const std::vector<MobilityProfile>& profiles,
      const model::DatasetView& anonymized,
      const geo::LocalProjection& projection) const;
  [[nodiscard]] std::vector<LinkResult> Attack(
      const std::vector<MobilityProfile>& profiles,
      const model::Dataset& anonymized,
      const geo::LocalProjection& projection) const;

  /// Fraction of traces correctly linked (unlinkable counted per config).
  [[nodiscard]] static double Accuracy(const std::vector<LinkResult>& results,
                                       bool count_unlinkable_as_failure = true);

 private:
  ReidentConfig config_;
};

}  // namespace mobipriv::attacks
