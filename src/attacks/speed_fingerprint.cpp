#include "attacks/speed_fingerprint.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <optional>

#include "util/statistics.h"

namespace mobipriv::attacks {
namespace {

/// Average speed of one trace, m/s; nullopt for degenerate traces.
std::optional<double> TraceSpeed(const model::Trace& trace) {
  if (trace.size() < 2) return std::nullopt;
  const auto duration = trace.Duration();
  if (duration <= 0) return std::nullopt;
  const double length = trace.LengthMeters();
  if (length <= 0.0) return std::nullopt;
  return length / static_cast<double>(duration);
}

}  // namespace

std::vector<SpeedProfileModel> SpeedFingerprintAttack::BuildProfiles(
    const model::Dataset& training) const {
  std::map<model::UserId, util::RunningStat> stats;
  for (const auto& trace : training.traces()) {
    if (const auto speed = TraceSpeed(trace)) {
      stats[trace.user()].Add(*speed);
    }
  }
  std::vector<SpeedProfileModel> profiles;
  profiles.reserve(stats.size());
  for (const auto& [user, stat] : stats) {
    profiles.push_back(SpeedProfileModel{user, stat.Mean(), stat.Stddev(),
                                         stat.Count()});
  }
  return profiles;
}

std::vector<SpeedLinkResult> SpeedFingerprintAttack::Attack(
    const std::vector<SpeedProfileModel>& profiles,
    const model::Dataset& anonymized) const {
  std::vector<SpeedLinkResult> results;
  for (const auto& trace : anonymized.traces()) {
    const auto speed = TraceSpeed(trace);
    if (!speed) continue;
    SpeedLinkResult result;
    result.true_user = trace.user();
    double best = std::numeric_limits<double>::infinity();
    for (const auto& profile : profiles) {
      const double z = std::abs(*speed - profile.mean_mps) /
                       std::max(profile.stddev_mps, kStddevFloor);
      if (z < best) {
        best = z;
        result.predicted_user = profile.user;
      }
    }
    result.score = best;
    results.push_back(result);
  }
  return results;
}

double SpeedFingerprintAttack::Accuracy(
    const std::vector<SpeedLinkResult>& results) {
  if (results.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& r : results) {
    if (r.predicted_user == r.true_user) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(results.size());
}

}  // namespace mobipriv::attacks
