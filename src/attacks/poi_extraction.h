// POI extraction attack (Gambs, Killijian, del Prado Cortez [1], "Show Me
// How You Move and I Will Tell You Who You Are").
//
// A point of interest is a place where a user *stops and spends time*. The
// extractor scans each trace for maximal runs of consecutive fixes that stay
// within a disc of diameter `max_diameter_m` for at least `min_duration_s`
// (a "stay point"), then agglomerates stay points of the same user that lie
// within `merge_radius_m` into one POI (home visited every evening is one
// POI, not thirty).
//
// Against raw data this recovers nearly every true POI. Against the paper's
// constant-speed traces the runs never last long enough — the user never
// appears stationary — which is exactly the privacy claim bench E2 measures.
#pragma once

#include <vector>

#include "geo/point2.h"
#include "geo/projection.h"
#include "model/dataset.h"
#include "model/views.h"
#include "util/time_utils.h"

namespace mobipriv::attacks {

struct PoiExtractionConfig {
  /// Maximal spatial extent (diameter) of a stay, metres.
  double max_diameter_m = 200.0;
  /// Minimal dwell time to call it a stop, seconds.
  util::Timestamp min_duration_s = 15 * 60;
  /// Stay points of one user closer than this merge into a single POI.
  double merge_radius_m = 100.0;
};

/// One extracted stay (before merging).
struct StayPoint {
  model::UserId user = model::kInvalidUser;
  geo::Point2 centroid;  ///< planar frame of the extractor's projection
  util::Timestamp arrival = 0;
  util::Timestamp departure = 0;
  std::size_t support = 0;  ///< number of fixes in the stay
};

/// One inferred POI (merged stays of one user).
struct ExtractedPoi {
  model::UserId user = model::kInvalidUser;
  geo::Point2 centroid;
  std::size_t visits = 0;             ///< merged stay count
  util::Timestamp total_dwell_s = 0;  ///< summed dwell over visits
};

class PoiExtractor {
 public:
  explicit PoiExtractor(PoiExtractionConfig config = {});

  [[nodiscard]] const PoiExtractionConfig& config() const noexcept {
    return config_;
  }

  /// Stay points of a single trace, given the projection used to go planar.
  /// The view form is the implementation (runs over AoS traces and columnar
  /// stores alike); the Trace form adapts zero-copy.
  [[nodiscard]] std::vector<StayPoint> ExtractStays(
      const model::TraceView& trace,
      const geo::LocalProjection& projection) const;
  [[nodiscard]] std::vector<StayPoint> ExtractStays(
      const model::Trace& trace, const geo::LocalProjection& projection) const;

  /// Full attack on a dataset: per-user merged POIs. The planar frame is a
  /// projection centred on the dataset bounding box; pass the same
  /// projection to metrics that compare against ground truth.
  [[nodiscard]] std::vector<ExtractedPoi> Extract(
      const model::DatasetView& dataset,
      const geo::LocalProjection& projection) const;
  [[nodiscard]] std::vector<ExtractedPoi> Extract(
      const model::Dataset& dataset,
      const geo::LocalProjection& projection) const;

  /// Convenience overloads that build the canonical dataset projection.
  [[nodiscard]] std::vector<ExtractedPoi> Extract(
      const model::DatasetView& dataset) const;
  [[nodiscard]] std::vector<ExtractedPoi> Extract(
      const model::Dataset& dataset) const;

 private:
  PoiExtractionConfig config_;
};

/// The canonical projection every attack/metric uses for a dataset
/// (centred on its bounding box).
[[nodiscard]] geo::LocalProjection DatasetProjection(
    const model::Dataset& dataset);
[[nodiscard]] geo::LocalProjection DatasetProjection(
    const model::DatasetView& dataset);

}  // namespace mobipriv::attacks
