#include "attacks/evaluators.h"

#include <map>

#include "geo/point2.h"
#include "metrics/reident_metrics.h"
#include "util/string_utils.h"

namespace mobipriv::attacks {

// All library mechanisms preserve the user-id space (they intern every
// input user up front, in id order), so original and published user ids
// compare directly in the evaluators below.

PoiAttackEvaluator::PoiAttackEvaluator(PoiExtractionConfig extraction,
                                       double match_radius_m)
    : extraction_(extraction), match_radius_m_(match_radius_m) {}

std::string PoiAttackEvaluator::Name() const {
  // Injective on the config (the engine dedupes evaluators by name):
  // every non-default knob prints.
  const PoiExtractionConfig defaults;
  std::string name = "poi_attack[radius=" +
                     util::FormatDouble(match_radius_m_, 0) + "m";
  if (extraction_.max_diameter_m != defaults.max_diameter_m) {
    name += ",diameter=" +
            util::FormatDouble(extraction_.max_diameter_m, 0) + "m";
  }
  if (extraction_.min_duration_s != defaults.min_duration_s) {
    name += ",dwell=" + std::to_string(extraction_.min_duration_s) + "s";
  }
  return name + "]";
}

std::vector<core::MetricValue> PoiAttackEvaluator::Evaluate(
    const core::EvalInput& input) const {
  // Reference POIs come from the STANDARD extractor on the original
  // data; the (possibly adaptive) configured extractor attacks the
  // published data — see the class comment.
  const PoiExtractor reference_extractor{PoiExtractionConfig{}};
  const PoiExtractor extractor(extraction_);
  const std::vector<ExtractedPoi> reference =
      reference_extractor.Extract(input.original, input.frame);
  const std::vector<ExtractedPoi> published =
      extractor.Extract(input.published, input.frame);

  std::map<model::UserId, std::vector<geo::Point2>> published_by_user;
  for (const ExtractedPoi& poi : published) {
    published_by_user[poi.user].push_back(poi.centroid);
  }
  std::size_t survived = 0;
  for (const ExtractedPoi& poi : reference) {
    const auto it = published_by_user.find(poi.user);
    if (it == published_by_user.end()) continue;
    for (const geo::Point2& candidate : it->second) {
      if (geo::Distance(poi.centroid, candidate) <= match_radius_m_) {
        ++survived;
        break;
      }
    }
  }
  const double survival =
      reference.empty() ? 0.0
                        : static_cast<double>(survived) /
                              static_cast<double>(reference.size());
  return {{"poi_survival", survival},
          {"pois_original", static_cast<double>(reference.size())},
          {"pois_published", static_cast<double>(published.size())}};
}

ReidentEvaluator::ReidentEvaluator(ReidentConfig config)
    : config_(std::move(config)) {}

std::string ReidentEvaluator::Name() const { return "reident"; }

std::vector<core::MetricValue> ReidentEvaluator::Evaluate(
    const core::EvalInput& input) const {
  const ReidentificationAttack attack(config_);
  const auto profiles = attack.BuildProfiles(input.original, input.frame);
  const auto results = attack.Attack(profiles, input.published, input.frame);
  const metrics::ReidentReport report = metrics::SummarizeReident(results);
  const double linkable_frac =
      report.traces == 0 ? 0.0
                         : static_cast<double>(report.linkable) /
                               static_cast<double>(report.traces);
  return {{"reident_acc_all", report.accuracy_all},
          {"reident_acc_linkable", report.accuracy_linkable},
          {"reident_linkable_frac", linkable_frac}};
}

HomeWorkEvaluator::HomeWorkEvaluator(HomeWorkConfig config,
                                     double match_radius_m)
    : config_(std::move(config)), match_radius_m_(match_radius_m) {}

std::string HomeWorkEvaluator::Name() const {
  return "home_work[radius=" + util::FormatDouble(match_radius_m_, 0) + "m]";
}

std::vector<core::MetricValue> HomeWorkEvaluator::Evaluate(
    const core::EvalInput& input) const {
  const HomeWorkAttack attack(config_);
  const auto reference = attack.Infer(input.original, input.frame);
  const auto published = attack.Infer(input.published, input.frame);
  std::map<model::UserId, const HomeWorkGuess*> published_by_user;
  for (const HomeWorkGuess& guess : published) {
    published_by_user[guess.user] = &guess;
  }
  std::size_t homes_reference = 0;
  std::size_t works_reference = 0;
  std::size_t homes_refound = 0;
  std::size_t works_refound = 0;
  for (const HomeWorkGuess& truth : reference) {
    const auto it = published_by_user.find(truth.user);
    const HomeWorkGuess* match =
        it == published_by_user.end() ? nullptr : it->second;
    if (truth.home) {
      ++homes_reference;
      if (match != nullptr && match->home &&
          geo::Distance(*truth.home, *match->home) <= match_radius_m_) {
        ++homes_refound;
      }
    }
    if (truth.work) {
      ++works_reference;
      if (match != nullptr && match->work &&
          geo::Distance(*truth.work, *match->work) <= match_radius_m_) {
        ++works_refound;
      }
    }
  }
  const auto frac = [](std::size_t num, std::size_t den) {
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
  };
  return {{"home_refound_frac", frac(homes_refound, homes_reference)},
          {"work_refound_frac", frac(works_refound, works_reference)},
          {"homes_original", static_cast<double>(homes_reference)}};
}

}  // namespace mobipriv::attacks
