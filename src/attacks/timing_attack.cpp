#include "attacks/timing_attack.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

namespace mobipriv::attacks {
namespace {

/// The hole a published stream shows across the zone: indices of the fix
/// just before and just after the zone passage.
struct StreamHole {
  std::size_t before = 0;
  std::size_t after = 0;
  bool found = false;
};

/// Finds the first consecutive fix pair whose connecting segment passes
/// within the zone while neither endpoint is inside (the suppressed hole).
StreamHole FindHole(const model::Trace& trace,
                    const geo::LocalProjection& projection,
                    geo::Point2 center, double radius) {
  StreamHole hole;
  for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
    const geo::Point2 a = projection.Project(trace[i].position);
    const geo::Point2 b = projection.Project(trace[i + 1].position);
    if (geo::Distance(a, center) <= radius) continue;
    if (geo::Distance(b, center) <= radius) continue;
    if (geo::DistanceToSegment(center, a, b) <= radius) {
      hole.before = i;
      hole.after = i + 1;
      hole.found = true;
      return hole;
    }
  }
  return hole;
}

}  // namespace

TimingAttack::TimingAttack(TimingAttackConfig config) : config_(config) {}

std::vector<ZoneCrossing> TimingAttack::ObserveCrossings(
    const model::Dataset& original, const model::Dataset& published,
    const geo::LocalProjection& projection, geo::Point2 zone_center,
    double zone_radius_m) const {
  std::vector<ZoneCrossing> crossings;
  for (const auto& stream : published.traces()) {
    const StreamHole hole =
        FindHole(stream, projection, zone_center, zone_radius_m);
    if (!hole.found) continue;
    ZoneCrossing crossing;
    crossing.entry_pseudonym = stream.user();
    crossing.entry_time = stream[hole.before].time;
    crossing.exit_time = stream[hole.after].time;
    if (crossing.exit_time - crossing.entry_time > config_.max_transit_s) {
      continue;
    }

    // Ground truth: which physical user made this entry? The entry fix is
    // an unmodified original event — find its original trace, then the
    // published pseudonym whose stream contains that user's first
    // post-entry fix outside the zone.
    const model::Event& entry_event = stream[hole.before];
    crossing.true_exit = model::kInvalidUser;
    for (const auto& orig : original.traces()) {
      bool owns_entry = false;
      std::optional<model::Event> continuation;
      for (std::size_t i = 0; i < orig.size(); ++i) {
        if (orig[i].time == entry_event.time &&
            geo::HaversineDistance(orig[i].position,
                                   entry_event.position) < 1.0) {
          owns_entry = true;
          // First later fix outside the zone is the continuation.
          for (std::size_t j = i + 1; j < orig.size(); ++j) {
            const geo::Point2 p = projection.Project(orig[j].position);
            if (geo::Distance(p, zone_center) > zone_radius_m) {
              continuation = orig[j];
              break;
            }
          }
          break;
        }
      }
      if (!owns_entry) continue;
      if (continuation) {
        for (const auto& candidate : published.traces()) {
          bool contains = false;
          for (const auto& event : candidate) {
            if (event.time == continuation->time &&
                geo::HaversineDistance(event.position,
                                       continuation->position) < 1.0) {
              contains = true;
              break;
            }
          }
          if (contains) {
            crossing.true_exit = candidate.user();
            break;
          }
        }
      }
      break;
    }
    if (crossing.true_exit != model::kInvalidUser) {
      crossings.push_back(crossing);
    }
  }
  return crossings;
}

std::vector<TimingMatch> TimingAttack::Match(
    std::vector<ZoneCrossing> crossings) const {
  std::vector<TimingMatch> matches;
  if (crossings.empty()) return matches;

  // Typical transit: median of the label-paired transits (observable).
  std::vector<double> transits;
  transits.reserve(crossings.size());
  for (const auto& c : crossings) {
    transits.push_back(static_cast<double>(c.exit_time - c.entry_time));
  }
  std::sort(transits.begin(), transits.end());
  const double typical = transits[transits.size() / 2];

  // Greedy assignment: entries in time order, each takes the unused exit
  // whose transit deviates least from typical.
  std::sort(crossings.begin(), crossings.end(),
            [](const ZoneCrossing& a, const ZoneCrossing& b) {
              return a.entry_time < b.entry_time;
            });
  std::vector<bool> exit_used(crossings.size(), false);
  for (const auto& entry : crossings) {
    TimingMatch match;
    match.entry_pseudonym = entry.entry_pseudonym;
    match.true_exit = entry.true_exit;
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_exit = crossings.size();
    for (std::size_t x = 0; x < crossings.size(); ++x) {
      if (exit_used[x]) continue;
      const auto transit = crossings[x].exit_time - entry.entry_time;
      if (transit < 0 || transit > config_.max_transit_s) continue;
      const double deviation =
          std::abs(static_cast<double>(transit) - typical);
      if (deviation < best) {
        best = deviation;
        best_exit = x;
      }
    }
    if (best_exit < crossings.size()) {
      exit_used[best_exit] = true;
      match.matched_exit = crossings[best_exit].entry_pseudonym;
      match.confidence = 1.0 / (1.0 + best);
    }
    matches.push_back(match);
  }
  return matches;
}

double TimingAttack::Accuracy(const std::vector<TimingMatch>& matches) {
  if (matches.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& m : matches) {
    if (m.matched_exit == m.true_exit &&
        m.matched_exit != model::kInvalidUser) {
      ++correct;
    }
  }
  return static_cast<double>(correct) /
         static_cast<double>(matches.size());
}

}  // namespace mobipriv::attacks
