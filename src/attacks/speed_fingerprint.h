// Speed-fingerprint linkage: an attack aimed specifically at the paper's
// own mechanism. Constant-speed publishing erases WHERE a user stopped but
// publishes one number per trace — its constant speed = chord-length /
// duration — which could fingerprint users with unusual travel patterns
// (the long-commuter vs the around-the-corner worker). The attack profiles
// each known user's distribution of published speeds and links anonymized
// traces to the nearest profile (z-score under the profile's spread).
//
// This is an honest stress test of the mechanism's residual leakage; the
// bench shows how much (little) it buys an adversary compared to POI
// linkage on raw data.
#pragma once

#include <vector>

#include "model/dataset.h"

namespace mobipriv::attacks {

/// Per-user speed profile (mean/stddev of per-trace average speeds).
struct SpeedProfileModel {
  model::UserId user = model::kInvalidUser;
  double mean_mps = 0.0;
  double stddev_mps = 0.0;
  std::size_t traces = 0;
};

struct SpeedLinkResult {
  model::UserId true_user = model::kInvalidUser;
  model::UserId predicted_user = model::kInvalidUser;
  double score = 0.0;  ///< |z| distance to the predicted profile
};

class SpeedFingerprintAttack {
 public:
  /// Builds per-user profiles from identified training data. Traces with
  /// zero duration or length are skipped.
  [[nodiscard]] std::vector<SpeedProfileModel> BuildProfiles(
      const model::Dataset& training) const;

  /// Links each anonymized trace to the profile with the smallest
  /// |speed - mean| / max(stddev, floor).
  [[nodiscard]] std::vector<SpeedLinkResult> Attack(
      const std::vector<SpeedProfileModel>& profiles,
      const model::Dataset& anonymized) const;

  [[nodiscard]] static double Accuracy(
      const std::vector<SpeedLinkResult>& results);

 private:
  static constexpr double kStddevFloor = 0.2;  // m/s
};

}  // namespace mobipriv::attacks
