// Mix-zone timing attack (the de-anonymization adversary of Beresford &
// Stajano [6]): entries and exits of a mix-zone are observable; if transit
// times through the zone are predictable, the adversary matches each exit
// to the entry whose (exit_time - entry_time) best fits the typical
// transit-time distribution — no geometry needed.
//
// The attack builds a transit-time model from the zone's own episode
// (median pairwise transit) and scores all entry/exit bipartite matchings
// greedily. It complements the velocity-extrapolation tracker: together
// they bound the realistic linking power against stage 2, and the bench
// shows how anonymity-set size and transit-time variance drive both.
#pragma once

#include <vector>

#include "geo/point2.h"
#include "geo/projection.h"
#include "model/dataset.h"

namespace mobipriv::attacks {

/// One observed zone crossing of a published pseudonym stream: the stream
/// shows a suppressed hole across the zone — its last fix before the hole
/// is an *entry* observation, its first fix after is an *exit* observation.
/// After a swap the two halves belong to different physical users; the
/// `true_exit` field records which pseudonym's exit actually continues the
/// physical user who made this entry (ground truth for scoring only).
struct ZoneCrossing {
  model::UserId entry_pseudonym = model::kInvalidUser;
  util::Timestamp entry_time = 0;
  util::Timestamp exit_time = 0;  ///< exit observation of the same stream
  model::UserId true_exit = model::kInvalidUser;
};

struct TimingAttackConfig {
  /// Exits later than this after an entry are not considered candidates.
  util::Timestamp max_transit_s = 3600;
};

struct TimingMatch {
  model::UserId entry_pseudonym = model::kInvalidUser;
  model::UserId matched_exit = model::kInvalidUser;  ///< attack's answer
  model::UserId true_exit = model::kInvalidUser;     ///< ground truth
  double confidence = 0.0;  ///< 1 / (1 + |transit - typical|), heuristic
};

class TimingAttack {
 public:
  explicit TimingAttack(TimingAttackConfig config = {});

  /// Observes entries/exits of `published` around the zone disc and fills
  /// the ground-truth continuation from `original` (which published
  /// pseudonym carries each entering physical user onward).
  [[nodiscard]] std::vector<ZoneCrossing> ObserveCrossings(
      const model::Dataset& original, const model::Dataset& published,
      const geo::LocalProjection& projection, geo::Point2 zone_center,
      double zone_radius_m) const;

  /// Greedy minimum-deviation matching of entries to exits under the
  /// typical (median) transit time of the episode.
  [[nodiscard]] std::vector<TimingMatch> Match(
      std::vector<ZoneCrossing> crossings) const;

  /// Fraction of matches where the attack's exit equals the true exit.
  [[nodiscard]] static double Accuracy(
      const std::vector<TimingMatch>& matches);

 private:
  TimingAttackConfig config_;
};

}  // namespace mobipriv::attacks
