#include "attacks/reident.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "geo/grid_index.h"
#include "util/thread_pool.h"

namespace mobipriv::attacks {
namespace {

/// Below this POI count a linear scan beats building/probing a grid.
constexpr std::size_t kIndexThreshold = 16;

/// Spatial index over one profile's POIs, sized so occupied cells hold a
/// handful of points each (cell = extent / sqrt(n), floored at 1 m).
geo::GridIndex BuildPoiIndex(const std::vector<geo::Point2>& points) {
  double min_x = points[0].x, max_x = points[0].x;
  double min_y = points[0].y, max_y = points[0].y;
  for (const auto& p : points) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double extent = std::max(max_x - min_x, max_y - min_y);
  const double cell = std::max(
      1.0, extent / std::max(1.0, std::sqrt(static_cast<double>(points.size()))));
  geo::GridIndex index(cell);
  index.Reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    index.Insert(points[i], static_cast<std::uint64_t>(i));
  }
  return index;
}

double NearestDistance(geo::Point2 from, const std::vector<geo::Point2>& to,
                       const geo::GridIndex* to_index) {
  if (to_index != nullptr) {
    const auto nearest = to_index->QueryNearest(from);
    assert(nearest.has_value());
    return geo::Distance(from, nearest->point);
  }
  // Select the argmin by squared distance with first-wins ties — the exact
  // ordering QueryNearest uses (smaller id on equal distance) — then
  // measure it with the library-wide Distance. Indexed and linear paths
  // therefore pick the same point and return the same value bit-for-bit.
  double best_sq = std::numeric_limits<double>::infinity();
  geo::Point2 best = to.front();
  for (const auto& q : to) {
    const double d_sq = geo::DistanceSquared(from, q);
    if (d_sq < best_sq) {
      best_sq = d_sq;
      best = q;
    }
  }
  return geo::Distance(from, best);
}

/// Mean distance from each point of `from` to its nearest point of `to`,
/// weighted by `from_weights`. Infinity when either side is empty.
/// `to_index`, when non-null, must index exactly `to`.
double DirectedMeanNearest(const std::vector<geo::Point2>& from,
                           const std::vector<double>& from_weights,
                           const std::vector<geo::Point2>& to,
                           const geo::GridIndex* to_index = nullptr) {
  if (from.empty() || to.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  double weighted_sum = 0.0;
  double total_weight = 0.0;
  for (std::size_t i = 0; i < from.size(); ++i) {
    const double best = NearestDistance(from[i], to, to_index);
    const double w = from_weights.empty() ? 1.0 : from_weights[i];
    weighted_sum += best * w;
    total_weight += w;
  }
  return total_weight > 0.0 ? weighted_sum / total_weight
                            : std::numeric_limits<double>::infinity();
}

double ProfileDistanceIndexed(const MobilityProfile& a,
                              const geo::GridIndex* a_index,
                              const MobilityProfile& b,
                              const geo::GridIndex* b_index) {
  const double ab = DirectedMeanNearest(a.pois, a.weights, b.pois, b_index);
  const double ba = DirectedMeanNearest(b.pois, b.weights, a.pois, a_index);
  return 0.5 * (ab + ba);
}

/// Lazily built optional index: only profiles big enough to pay for one.
std::optional<geo::GridIndex> MaybeIndex(const std::vector<geo::Point2>& pois) {
  if (pois.size() < kIndexThreshold) return std::nullopt;
  return BuildPoiIndex(pois);
}

}  // namespace

ReidentificationAttack::ReidentificationAttack(ReidentConfig config)
    : config_(config) {}

std::vector<MobilityProfile> ReidentificationAttack::BuildProfiles(
    const model::Dataset& training,
    const geo::LocalProjection& projection) const {
  return BuildProfiles(model::DatasetView::Of(training), projection);
}

std::vector<MobilityProfile> ReidentificationAttack::BuildProfiles(
    const model::DatasetView& training,
    const geo::LocalProjection& projection) const {
  const PoiExtractor extractor(config_.poi);
  const auto pois = extractor.Extract(training, projection);
  std::map<model::UserId, MobilityProfile> by_user;
  for (const auto& poi : pois) {
    auto& profile = by_user[poi.user];
    profile.user = poi.user;
    profile.pois.push_back(poi.centroid);
    profile.weights.push_back(static_cast<double>(poi.total_dwell_s));
  }
  std::vector<MobilityProfile> out;
  out.reserve(by_user.size());
  for (auto& [user, profile] : by_user) out.push_back(std::move(profile));
  return out;
}

double ReidentificationAttack::ProfileDistance(const MobilityProfile& a,
                                               const MobilityProfile& b) {
  const auto a_index = MaybeIndex(a.pois);
  const auto b_index = MaybeIndex(b.pois);
  return ProfileDistanceIndexed(a, a_index ? &*a_index : nullptr, b,
                                b_index ? &*b_index : nullptr);
}

std::vector<LinkResult> ReidentificationAttack::Attack(
    const std::vector<MobilityProfile>& profiles,
    const model::Dataset& anonymized,
    const geo::LocalProjection& projection) const {
  return Attack(profiles, model::DatasetView::Of(anonymized), projection);
}

std::vector<LinkResult> ReidentificationAttack::Attack(
    const std::vector<MobilityProfile>& profiles,
    const model::DatasetView& anonymized,
    const geo::LocalProjection& projection) const {
  const PoiExtractor extractor(config_.poi);

  // The training profiles are probed once per anonymized trace: index them
  // up front so every probe is a ring query instead of a linear scan.
  std::vector<std::optional<geo::GridIndex>> profile_indices(profiles.size());
  util::ParallelForEach(profiles.size(), [&](std::size_t p) {
    profile_indices[p] = MaybeIndex(profiles[p].pois);
  });

  const auto& traces = anonymized.traces();
  std::vector<LinkResult> results(traces.size());
  util::ParallelForEach(traces.size(), [&](std::size_t t) {
    const auto& trace = traces[t];
    LinkResult& result = results[t];
    result.true_user = trace.user();
    // Build the pseudonymous trace's own profile.
    MobilityProfile target;
    for (const auto& stay : extractor.ExtractStays(trace, projection)) {
      target.pois.push_back(stay.centroid);
      target.weights.push_back(
          static_cast<double>(stay.departure - stay.arrival));
    }
    if (target.pois.empty()) {
      result.linkable = false;
      return;
    }
    result.linkable = true;
    const auto target_index = MaybeIndex(target.pois);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < profiles.size(); ++p) {
      const double d = ProfileDistanceIndexed(
          target, target_index ? &*target_index : nullptr, profiles[p],
          profile_indices[p] ? &*profile_indices[p] : nullptr);
      if (d < best) {
        best = d;
        result.predicted_user = profiles[p].user;
      }
    }
    result.distance = best;
  });
  return results;
}

double ReidentificationAttack::Accuracy(const std::vector<LinkResult>& results,
                                        bool count_unlinkable_as_failure) {
  if (results.empty()) return 0.0;
  std::size_t correct = 0;
  std::size_t considered = 0;
  for (const auto& r : results) {
    if (!r.linkable) {
      if (count_unlinkable_as_failure) ++considered;
      continue;
    }
    ++considered;
    if (r.predicted_user == r.true_user) ++correct;
  }
  return considered == 0 ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(considered);
}

}  // namespace mobipriv::attacks
