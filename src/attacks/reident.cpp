#include "attacks/reident.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace mobipriv::attacks {
namespace {

/// Mean distance from each point of `from` to its nearest point of `to`,
/// weighted by `from_weights`. Infinity when either side is empty.
double DirectedMeanNearest(const std::vector<geo::Point2>& from,
                           const std::vector<double>& from_weights,
                           const std::vector<geo::Point2>& to) {
  if (from.empty() || to.empty()) {
    return std::numeric_limits<double>::infinity();
  }
  double weighted_sum = 0.0;
  double total_weight = 0.0;
  for (std::size_t i = 0; i < from.size(); ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& q : to) {
      best = std::min(best, geo::Distance(from[i], q));
    }
    const double w = from_weights.empty() ? 1.0 : from_weights[i];
    weighted_sum += best * w;
    total_weight += w;
  }
  return total_weight > 0.0 ? weighted_sum / total_weight
                            : std::numeric_limits<double>::infinity();
}

}  // namespace

ReidentificationAttack::ReidentificationAttack(ReidentConfig config)
    : config_(config) {}

std::vector<MobilityProfile> ReidentificationAttack::BuildProfiles(
    const model::Dataset& training,
    const geo::LocalProjection& projection) const {
  const PoiExtractor extractor(config_.poi);
  const auto pois = extractor.Extract(training, projection);
  std::map<model::UserId, MobilityProfile> by_user;
  for (const auto& poi : pois) {
    auto& profile = by_user[poi.user];
    profile.user = poi.user;
    profile.pois.push_back(poi.centroid);
    profile.weights.push_back(static_cast<double>(poi.total_dwell_s));
  }
  std::vector<MobilityProfile> out;
  out.reserve(by_user.size());
  for (auto& [user, profile] : by_user) out.push_back(std::move(profile));
  return out;
}

double ReidentificationAttack::ProfileDistance(const MobilityProfile& a,
                                               const MobilityProfile& b) {
  const double ab = DirectedMeanNearest(a.pois, a.weights, b.pois);
  const double ba = DirectedMeanNearest(b.pois, b.weights, a.pois);
  return 0.5 * (ab + ba);
}

std::vector<LinkResult> ReidentificationAttack::Attack(
    const std::vector<MobilityProfile>& profiles,
    const model::Dataset& anonymized,
    const geo::LocalProjection& projection) const {
  const PoiExtractor extractor(config_.poi);
  std::vector<LinkResult> results;
  results.reserve(anonymized.traces().size());
  for (const auto& trace : anonymized.traces()) {
    LinkResult result;
    result.true_user = trace.user();
    // Build the pseudonymous trace's own profile.
    MobilityProfile target;
    for (const auto& stay : extractor.ExtractStays(trace, projection)) {
      target.pois.push_back(stay.centroid);
      target.weights.push_back(
          static_cast<double>(stay.departure - stay.arrival));
    }
    if (target.pois.empty()) {
      result.linkable = false;
      results.push_back(result);
      continue;
    }
    result.linkable = true;
    double best = std::numeric_limits<double>::infinity();
    for (const auto& profile : profiles) {
      const double d = ProfileDistance(target, profile);
      if (d < best) {
        best = d;
        result.predicted_user = profile.user;
      }
    }
    result.distance = best;
    results.push_back(result);
  }
  return results;
}

double ReidentificationAttack::Accuracy(const std::vector<LinkResult>& results,
                                        bool count_unlinkable_as_failure) {
  if (results.empty()) return 0.0;
  std::size_t correct = 0;
  std::size_t considered = 0;
  for (const auto& r : results) {
    if (!r.linkable) {
      if (count_unlinkable_as_failure) ++considered;
      continue;
    }
    ++considered;
    if (r.predicted_user == r.true_user) ++correct;
  }
  return considered == 0 ? 0.0
                         : static_cast<double>(correct) /
                               static_cast<double>(considered);
}

}  // namespace mobipriv::attacks
