// Home/work inference attack: the most damaging instance of POI extraction.
// Home is where a user dwells overnight, work where she dwells on weekday
// working hours; the (home, work) pair is a quasi-identifier (Golle &
// Partridge showed coarse pairs identify most US workers). The attack
// labels each extracted stay by its time-of-day and takes the
// dwell-weighted top candidate per role.
#pragma once

#include <optional>

#include "attacks/poi_extraction.h"
#include "model/dataset.h"

namespace mobipriv::attacks {

struct HomeWorkConfig {
  PoiExtractionConfig extraction;
  /// Stays overlapping [night_start, night_end) of any day count as
  /// home-time; stays inside working hours count as work-time. The home
  /// window is deliberately wide (evening arrival through morning
  /// departure): session-recorded data only shows home dwell around those
  /// edges, not the untracked middle of the night.
  util::Timestamp night_start = 19 * 3600;  ///< 19:00, seconds of day
  util::Timestamp night_end = 9 * 3600;     ///< 09:00 (wraps midnight)
  util::Timestamp work_start = 9 * 3600;
  util::Timestamp work_end = 17 * 3600;
};

struct HomeWorkGuess {
  model::UserId user = model::kInvalidUser;
  std::optional<geo::Point2> home;  ///< planar, attack frame
  std::optional<geo::Point2> work;
};

class HomeWorkAttack {
 public:
  explicit HomeWorkAttack(HomeWorkConfig config = {});

  /// One guess per user appearing in the dataset (users whose traces yield
  /// no night/work stays get nullopt fields — the defender's win). The
  /// view form is the implementation; the Dataset form adapts zero-copy.
  [[nodiscard]] std::vector<HomeWorkGuess> Infer(
      const model::DatasetView& dataset,
      const geo::LocalProjection& projection) const;
  [[nodiscard]] std::vector<HomeWorkGuess> Infer(
      const model::Dataset& dataset,
      const geo::LocalProjection& projection) const;

  /// Seconds of overlap between [from, to] and the daily window
  /// [window_start, window_end), handling windows that wrap midnight.
  /// Exposed for tests.
  [[nodiscard]] static util::Timestamp DailyWindowOverlap(
      util::Timestamp from, util::Timestamp to, util::Timestamp window_start,
      util::Timestamp window_end);

 private:
  HomeWorkConfig config_;
};

}  // namespace mobipriv::attacks
