#include "attacks/tracker.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace mobipriv::attacks {
namespace {

struct ZonePassageView {
  std::size_t enter_idx = 0;  ///< first in-zone fix
  std::size_t exit_idx = 0;   ///< last in-zone fix
  bool found = false;
};

ZonePassageView FindFirstPassage(const model::Trace& trace,
                                 const geo::LocalProjection& projection,
                                 geo::Point2 center, double radius) {
  ZonePassageView view;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const bool inside =
        geo::Distance(projection.Project(trace[i].position), center) <=
        radius;
    if (inside && !view.found) {
      view.found = true;
      view.enter_idx = i;
      view.exit_idx = i;
    } else if (inside && view.found) {
      view.exit_idx = i;
    } else if (!inside && view.found) {
      break;  // first passage complete
    }
  }
  return view;
}

}  // namespace

MultiTargetTracker::MultiTargetTracker(TrackerConfig config)
    : config_(config) {
  assert(config_.velocity_window >= 1);
  assert(config_.gate_radius_m > 0.0);
}

std::vector<TrackingOutcome> MultiTargetTracker::TrackThroughZone(
    const model::Dataset& original, const model::Dataset& published,
    const geo::LocalProjection& projection, geo::Point2 zone_center,
    double zone_radius_m) const {
  std::vector<TrackingOutcome> outcomes;

  for (const auto& target_trace : original.traces()) {
    const auto passage =
        FindFirstPassage(target_trace, projection, zone_center,
                         zone_radius_m);
    if (!passage.found || passage.enter_idx == 0) continue;

    // --- Adversary knowledge: movement up to the zone entry. ---
    const std::size_t entry = passage.enter_idx;
    const geo::Point2 p_in =
        projection.Project(target_trace[entry].position);
    const util::Timestamp t_in = target_trace[entry].time;
    const std::size_t window =
        std::min(config_.velocity_window, entry);
    const geo::Point2 p_before =
        projection.Project(target_trace[entry - window].position);
    const util::Timestamp t_before = target_trace[entry - window].time;
    geo::Point2 velocity{};
    if (t_in > t_before) {
      velocity = (p_in - p_before) / static_cast<double>(t_in - t_before);
    }

    // --- Ground truth: which published identity continues the target? ---
    // First original fix strictly after the passage and outside the zone.
    std::size_t continuation_idx = passage.exit_idx + 1;
    while (continuation_idx < target_trace.size() &&
           geo::Distance(
               projection.Project(target_trace[continuation_idx].position),
               zone_center) <= zone_radius_m) {
      ++continuation_idx;
    }
    if (continuation_idx >= target_trace.size()) continue;  // ends in zone
    const model::Event& continuation = target_trace[continuation_idx];
    model::UserId truth = model::kInvalidUser;
    for (const auto& pub : published.traces()) {
      for (const auto& event : pub) {
        if (event.time == continuation.time &&
            geo::HaversineDistance(event.position, continuation.position) <
                1.0) {
          truth = pub.user();
          break;
        }
      }
      if (truth != model::kInvalidUser) break;
    }
    if (truth == model::kInvalidUser) continue;  // continuation suppressed

    // --- Prediction & candidate adoption. ---
    TrackingOutcome outcome;
    outcome.target = target_trace.user();
    outcome.truth = truth;
    double best_error = std::numeric_limits<double>::infinity();
    for (const auto& pub : published.traces()) {
      // First published fix after t_in that is outside the zone: the
      // candidate exit of this pseudonym.
      for (const auto& event : pub) {
        if (event.time <= t_in) continue;
        if (event.time - t_in > config_.max_transit_s) break;
        const geo::Point2 p = projection.Project(event.position);
        if (geo::Distance(p, zone_center) <= zone_radius_m) continue;
        const geo::Point2 predicted =
            p_in + velocity * static_cast<double>(event.time - t_in);
        const double error = geo::Distance(p, predicted);
        if (error < best_error) {
          best_error = error;
          outcome.followed = pub.user();
          outcome.error_m = error;
        }
        break;  // only the first exit fix of this pseudonym
      }
    }
    outcome.lost = !(best_error <= config_.gate_radius_m);
    outcomes.push_back(outcome);
  }
  return outcomes;
}

double MultiTargetTracker::ConfusionRate(
    const std::vector<TrackingOutcome>& outcomes) {
  std::size_t tracked = 0;
  std::size_t confused = 0;
  for (const auto& o : outcomes) {
    if (o.lost) continue;
    ++tracked;
    if (o.followed != o.truth) ++confused;
  }
  return tracked == 0 ? 0.0
                      : static_cast<double>(confused) /
                            static_cast<double>(tracked);
}

}  // namespace mobipriv::attacks
