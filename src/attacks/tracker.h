// Multi-target tracking attack (Hoh & Gruteser [5]).
//
// Threat model: the adversary sees the published dataset and tries to follow
// one physical user *through* mix-zones: when a target disappears into a
// zone, the tracker predicts the target's exit position by extrapolating its
// last observed velocity across the zone, then adopts the trace whose entry
// into the world (zone exit) best matches the prediction.
//
// Against an un-mixed publication the prediction trivially matches the same
// trace. After mix-zone swapping, several users exit with plausible
// positions and the tracker is confused with quantifiable probability — the
// metric bench E5 sweeps. This is the "path confusion" adversary the paper
// cites as motivation for swapping.
#pragma once

#include <vector>

#include "geo/point2.h"
#include "geo/projection.h"
#include "mechanisms/mixzone.h"
#include "model/dataset.h"

namespace mobipriv::attacks {

struct TrackerConfig {
  /// Fixes used to estimate the target's entry velocity.
  std::size_t velocity_window = 3;
  /// A candidate exit must be within this distance of the prediction to be
  /// adopted at all (beyond it the tracker declares the target lost).
  double gate_radius_m = 2000.0;
  /// Longest plausible zone transit; candidate exits later than this after
  /// the target's entry are ignored.
  util::Timestamp max_transit_s = 1800;
};

/// Outcome of tracking one target through one zone occurrence.
struct TrackingOutcome {
  /// The physical user being followed (original identity).
  model::UserId target = model::kInvalidUser;
  /// Published identity that actually carries the target's continuation
  /// after the zone (ground truth for scoring).
  model::UserId truth = model::kInvalidUser;
  /// Published identity the tracker adopted at the exit.
  model::UserId followed = model::kInvalidUser;
  bool lost = false;     ///< no candidate within the gate
  double error_m = 0.0;  ///< prediction error to the adopted exit
};

class MultiTargetTracker {
 public:
  explicit MultiTargetTracker(TrackerConfig config = {});

  /// For every user entering the zone around `center` during the time span
  /// [enter_after, exit_before], predicts the exit and adopts the best
  /// matching published trace. `published` is the anonymized dataset;
  /// `original` provides the pre-zone movement the adversary observed.
  /// Returns one outcome per tracked target.
  [[nodiscard]] std::vector<TrackingOutcome> TrackThroughZone(
      const model::Dataset& original, const model::Dataset& published,
      const geo::LocalProjection& projection, geo::Point2 zone_center,
      double zone_radius_m) const;

  /// Confusion rate: fraction of non-lost targets where the adopted
  /// published identity differs from the true continuation identity.
  [[nodiscard]] static double ConfusionRate(
      const std::vector<TrackingOutcome>& outcomes);

 private:
  TrackerConfig config_;
};

}  // namespace mobipriv::attacks
