#include "attacks/home_work.h"

#include <algorithm>
#include <map>

namespace mobipriv::attacks {
namespace {

/// Overlap of the absolute intervals [a0, a1] and [b0, b1], >= 0.
util::Timestamp Overlap(util::Timestamp a0, util::Timestamp a1,
                        util::Timestamp b0, util::Timestamp b1) {
  return std::max<util::Timestamp>(
      0, std::min(a1, b1) - std::max(a0, b0));
}

}  // namespace

HomeWorkAttack::HomeWorkAttack(HomeWorkConfig config)
    : config_(std::move(config)) {}

util::Timestamp HomeWorkAttack::DailyWindowOverlap(
    util::Timestamp from, util::Timestamp to, util::Timestamp window_start,
    util::Timestamp window_end) {
  if (to <= from) return 0;
  util::Timestamp total = 0;
  // Consider each day the interval touches (plus the one before, for
  // windows that wrap midnight into it).
  const util::Timestamp first_day =
      util::StartOfDay(from) - util::kSecondsPerDay;
  const util::Timestamp last_day = util::StartOfDay(to);
  for (util::Timestamp day = first_day; day <= last_day;
       day += util::kSecondsPerDay) {
    if (window_start < window_end) {
      total += Overlap(from, to, day + window_start, day + window_end);
    } else {
      // Wrapping window, e.g. 21:00 -> 06:00: the evening part of this day
      // and the morning part of the next day.
      total += Overlap(from, to, day + window_start,
                       day + util::kSecondsPerDay);
      total += Overlap(from, to, day + util::kSecondsPerDay,
                       day + util::kSecondsPerDay + window_end);
    }
  }
  return total;
}

std::vector<HomeWorkGuess> HomeWorkAttack::Infer(
    const model::DatasetView& dataset,
    const geo::LocalProjection& projection) const {
  const PoiExtractor extractor(config_.extraction);
  struct Candidate {
    geo::Point2 weighted_sum{};
    double weight = 0.0;
  };
  struct UserState {
    std::map<int, Candidate> home_candidates;  // keyed by rough cell
    std::map<int, Candidate> work_candidates;
  };
  // Rough 500 m cell key so repeated stays at one place accumulate.
  const auto cell_key = [](geo::Point2 p) {
    const auto cx = static_cast<int>(std::floor(p.x / 500.0));
    const auto cy = static_cast<int>(std::floor(p.y / 500.0));
    return cx * 100003 + cy;
  };

  std::map<model::UserId, UserState> states;
  for (const auto& trace : dataset.traces()) {
    states.try_emplace(trace.user());
    for (const auto& stay : extractor.ExtractStays(trace, projection)) {
      const auto night = DailyWindowOverlap(
          stay.arrival, stay.departure, config_.night_start,
          config_.night_end);
      const auto work = DailyWindowOverlap(stay.arrival, stay.departure,
                                           config_.work_start,
                                           config_.work_end);
      auto& state = states[trace.user()];
      if (night > 0) {
        auto& cand = state.home_candidates[cell_key(stay.centroid)];
        cand.weighted_sum =
            cand.weighted_sum + stay.centroid * static_cast<double>(night);
        cand.weight += static_cast<double>(night);
      }
      if (work > 0) {
        auto& cand = state.work_candidates[cell_key(stay.centroid)];
        cand.weighted_sum =
            cand.weighted_sum + stay.centroid * static_cast<double>(work);
        cand.weight += static_cast<double>(work);
      }
    }
  }

  std::vector<HomeWorkGuess> guesses;
  guesses.reserve(states.size());
  for (const auto& [user, state] : states) {
    HomeWorkGuess guess;
    guess.user = user;
    const auto best = [](const std::map<int, Candidate>& candidates)
        -> std::optional<geo::Point2> {
      const Candidate* top = nullptr;
      for (const auto& [key, cand] : candidates) {
        if (top == nullptr || cand.weight > top->weight) top = &cand;
      }
      if (top == nullptr || top->weight <= 0.0) return std::nullopt;
      return top->weighted_sum / top->weight;
    };
    guess.home = best(state.home_candidates);
    guess.work = best(state.work_candidates);
    guesses.push_back(guess);
  }
  return guesses;
}

std::vector<HomeWorkGuess> HomeWorkAttack::Infer(
    const model::Dataset& dataset,
    const geo::LocalProjection& projection) const {
  return Infer(model::DatasetView::Of(dataset), projection);
}

}  // namespace mobipriv::attacks
