// Privacy-attack implementations of the scenario engine's Evaluator
// interface (core/evaluator.h). Where the bench binaries scored attacks
// against synthetic ground truth, these evaluators score them against the
// *original dataset* — the attack's haul on raw data is the reference —
// so they run on any (original, published) pair, real data included.
#pragma once

#include "attacks/home_work.h"
#include "attacks/poi_extraction.h"
#include "attacks/reident.h"
#include "core/evaluator.h"

namespace mobipriv::attacks {

/// "poi_attack[radius=...m,diameter=...m,dwell=...s]": POI extraction on
/// both datasets; reports how many of the POIs extractable from the
/// original survive in the published data (same user, within the match
/// radius). The reference side (original data) always uses the standard
/// extractor — it proxies what is really there — while the
/// diameter/dwell knobs tune the extractor run on the PUBLISHED data:
/// that is the adaptive adversary of the paper's Section II discussion,
/// who calibrates the clustering diameter to the defense's noise scale.
/// The paper's core privacy claim is poi_survival ~ 0 for the
/// constant-speed pipeline.
class PoiAttackEvaluator final : public core::Evaluator {
 public:
  explicit PoiAttackEvaluator(PoiExtractionConfig extraction = {},
                              double match_radius_m = 250.0);
  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] std::vector<core::MetricValue> Evaluate(
      const core::EvalInput& input) const override;

 private:
  PoiExtractionConfig extraction_;
  double match_radius_m_;
};

/// "reident": POI-profile linkage. Profiles are trained on the original
/// (identified) dataset and matched against the published traces.
class ReidentEvaluator final : public core::Evaluator {
 public:
  explicit ReidentEvaluator(ReidentConfig config = {});
  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] std::vector<core::MetricValue> Evaluate(
      const core::EvalInput& input) const override;

 private:
  ReidentConfig config_;
};

/// "home_work[radius=...m]": home/work inference on both datasets; a
/// published guess counts when it lands within the match radius of the
/// original-data guess for the same user (the quasi-identifier pair).
class HomeWorkEvaluator final : public core::Evaluator {
 public:
  explicit HomeWorkEvaluator(HomeWorkConfig config = {},
                             double match_radius_m = 300.0);
  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] std::vector<core::MetricValue> Evaluate(
      const core::EvalInput& input) const override;

 private:
  HomeWorkConfig config_;
  double match_radius_m_;
};

}  // namespace mobipriv::attacks
