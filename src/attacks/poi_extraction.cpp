#include "attacks/poi_extraction.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "geo/grid_index.h"
#include "util/thread_pool.h"

namespace mobipriv::attacks {

geo::LocalProjection DatasetProjection(const model::Dataset& dataset) {
  const geo::GeoBoundingBox bbox = dataset.BoundingBox();
  return geo::LocalProjection(bbox.IsEmpty() ? geo::LatLng{0.0, 0.0}
                                             : bbox.Center());
}

geo::LocalProjection DatasetProjection(const model::DatasetView& dataset) {
  const geo::GeoBoundingBox bbox = dataset.BoundingBox();
  return geo::LocalProjection(bbox.IsEmpty() ? geo::LatLng{0.0, 0.0}
                                             : bbox.Center());
}

PoiExtractor::PoiExtractor(PoiExtractionConfig config) : config_(config) {
  assert(config_.max_diameter_m > 0.0);
  assert(config_.min_duration_s > 0);
  assert(config_.merge_radius_m >= 0.0);
}

std::vector<StayPoint> PoiExtractor::ExtractStays(
    const model::TraceView& trace,
    const geo::LocalProjection& projection) const {
  std::vector<StayPoint> stays;
  const std::size_t n = trace.size();
  if (n == 0) return stays;
  std::vector<geo::Point2> points;
  points.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back(projection.Project(trace.position(i)));
  }

  // Incremental sliding window over anchor candidates. For anchor i the run
  // extends while fixes stay within `max_diameter_m` of fix i; a run that
  // dwells long enough becomes a stay and the anchor jumps past it. The key
  // step is the *failure* case: when the run [i, j) is too short in time,
  // every anchor i' in (i, j) whose run cannot reach the break fix j is
  // provably too short as well (its run is confined to [i', j), and
  // timestamps are non-decreasing), so the anchor slides forward testing a
  // single anchor-to-break distance per fix instead of rescanning the whole
  // run per anchor. Output is identical to the naive per-anchor rescan; on
  // densely sampled sub-threshold dwells the cost drops from O(run^2) to
  // O(run).
  std::size_t i = 0;
  while (i < n) {
    // Extend j while every fix stays within `max_diameter_m` of fix i.
    std::size_t j = i + 1;
    while (j < n &&
           geo::Distance(points[i], points[j]) <= config_.max_diameter_m) {
      ++j;
    }
    // Fixes [i, j) form a spatially bounded run; is it long enough in time?
    const util::Timestamp dwell = trace.time(j - 1) - trace.time(i);
    if (dwell >= config_.min_duration_s) {
      geo::Point2 centroid{};
      for (std::size_t k = i; k < j; ++k) centroid = centroid + points[k];
      centroid = centroid / static_cast<double>(j - i);
      stays.push_back(StayPoint{trace.user(), centroid, trace.time(i),
                                trace.time(j - 1), j - i});
      i = j;
      continue;
    }
    if (j >= n) break;  // every later anchor's run is shorter still
    // Slide to the first anchor whose run could include the break fix j.
    std::size_t next = i + 1;
    while (next < j &&
           geo::Distance(points[next], points[j]) > config_.max_diameter_m) {
      ++next;
    }
    i = next;
  }
  return stays;
}

std::vector<StayPoint> PoiExtractor::ExtractStays(
    const model::Trace& trace, const geo::LocalProjection& projection) const {
  return ExtractStays(model::TraceView::Of(trace), projection);
}

std::vector<ExtractedPoi> PoiExtractor::Extract(
    const model::DatasetView& dataset,
    const geo::LocalProjection& projection) const {
  // 1. Stays per trace, in parallel; then pooled per user in trace order
  //    (the exact order the serial scan produced).
  const auto& traces = dataset.traces();
  std::vector<std::vector<StayPoint>> per_trace(traces.size());
  util::ParallelForEach(traces.size(), [&](std::size_t t) {
    per_trace[t] = ExtractStays(traces[t], projection);
  });
  std::map<model::UserId, std::vector<StayPoint>> stays_by_user;
  for (std::size_t t = 0; t < traces.size(); ++t) {
    if (per_trace[t].empty()) continue;
    auto& pooled = stays_by_user[traces[t].user()];
    pooled.insert(pooled.end(), per_trace[t].begin(), per_trace[t].end());
  }

  // 2. Greedy agglomeration of each user's stays into POIs, one user per
  //    task. Users are merged back in ascending-id order, matching the
  //    serial map iteration.
  std::vector<std::pair<model::UserId, std::vector<StayPoint>*>> users;
  users.reserve(stays_by_user.size());
  for (auto& [user, stays] : stays_by_user) users.emplace_back(user, &stays);

  std::vector<std::vector<ExtractedPoi>> per_user(users.size());
  util::ParallelForEach(users.size(), [&](std::size_t u) {
    const model::UserId user = users[u].first;
    std::vector<StayPoint>& stays = *users[u].second;
    // Longest-dwell stays become cluster seeds first (stable anchors).
    std::sort(stays.begin(), stays.end(),
              [](const StayPoint& a, const StayPoint& b) {
                return (a.departure - a.arrival) > (b.departure - b.arrival);
              });
    struct Cluster {
      geo::Point2 weighted_sum{};
      double weight = 0.0;
      std::size_t visits = 0;
      util::Timestamp dwell = 0;
      geo::Point2 Centroid() const { return weighted_sum / weight; }
    };
    std::vector<Cluster> clusters;
    // Once a user accumulates enough clusters, their centroids move into a
    // grid sized to the merge radius: each stay then probes a 3x3
    // neighbourhood instead of scanning every cluster. Below the threshold
    // a linear first-fit scan is cheaper than grid bookkeeping. Either way
    // the chosen cluster is the lowest-id one within the merge radius of
    // the stay, i.e. first-fit in creation order — identical output.
    constexpr std::size_t kIndexAfterClusters = 32;
    std::optional<geo::GridIndex> centroid_index;
    std::vector<std::pair<std::uint64_t, geo::Point2>> candidates;
    for (const StayPoint& stay : stays) {
      if (!centroid_index && clusters.size() >= kIndexAfterClusters) {
        centroid_index.emplace(std::max(config_.merge_radius_m, 1.0));
        centroid_index->Reserve(stays.size());
        for (std::size_t c = 0; c < clusters.size(); ++c) {
          centroid_index->Insert(clusters[c].Centroid(),
                                 static_cast<std::uint64_t>(c));
        }
      }
      const double w = static_cast<double>(stay.support);
      std::ptrdiff_t target = -1;
      if (centroid_index) {
        centroid_index->QueryBoxCandidates(stay.centroid,
                                           config_.merge_radius_m, candidates);
        for (const auto& [id, centroid] : candidates) {
          if (geo::Distance(centroid, stay.centroid) >
              config_.merge_radius_m) {
            continue;
          }
          if (target < 0 || static_cast<std::ptrdiff_t>(id) < target) {
            target = static_cast<std::ptrdiff_t>(id);
          }
        }
      } else {
        for (std::size_t c = 0; c < clusters.size(); ++c) {
          if (geo::Distance(clusters[c].Centroid(), stay.centroid) <=
              config_.merge_radius_m) {
            target = static_cast<std::ptrdiff_t>(c);
            break;
          }
        }
      }
      if (target < 0) {
        clusters.emplace_back();
        target = static_cast<std::ptrdiff_t>(clusters.size()) - 1;
        Cluster& cluster = clusters.back();
        cluster.weighted_sum = stay.centroid * w;
        cluster.weight = w;
        cluster.visits = 1;
        cluster.dwell = stay.departure - stay.arrival;
        if (centroid_index) {
          centroid_index->Insert(cluster.Centroid(),
                                 static_cast<std::uint64_t>(target));
        }
        continue;
      }
      Cluster& cluster = clusters[static_cast<std::size_t>(target)];
      const geo::Point2 old_centroid = cluster.Centroid();
      cluster.weighted_sum = cluster.weighted_sum + stay.centroid * w;
      cluster.weight += w;
      cluster.visits += 1;
      cluster.dwell += stay.departure - stay.arrival;
      if (centroid_index) {
        centroid_index->Move(old_centroid, cluster.Centroid(),
                             static_cast<std::uint64_t>(target));
      }
    }
    per_user[u].reserve(clusters.size());
    for (const auto& cluster : clusters) {
      per_user[u].push_back(ExtractedPoi{user, cluster.Centroid(),
                                         cluster.visits, cluster.dwell});
    }
  });

  std::vector<ExtractedPoi> pois;
  for (const auto& user_pois : per_user) {
    pois.insert(pois.end(), user_pois.begin(), user_pois.end());
  }
  return pois;
}

std::vector<ExtractedPoi> PoiExtractor::Extract(
    const model::Dataset& dataset,
    const geo::LocalProjection& projection) const {
  return Extract(model::DatasetView::Of(dataset), projection);
}

std::vector<ExtractedPoi> PoiExtractor::Extract(
    const model::DatasetView& dataset) const {
  return Extract(dataset, DatasetProjection(dataset));
}

std::vector<ExtractedPoi> PoiExtractor::Extract(
    const model::Dataset& dataset) const {
  return Extract(dataset, DatasetProjection(dataset));
}

}  // namespace mobipriv::attacks
