#include "attacks/poi_extraction.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace mobipriv::attacks {

geo::LocalProjection DatasetProjection(const model::Dataset& dataset) {
  const geo::GeoBoundingBox bbox = dataset.BoundingBox();
  return geo::LocalProjection(bbox.IsEmpty() ? geo::LatLng{0.0, 0.0}
                                             : bbox.Center());
}

PoiExtractor::PoiExtractor(PoiExtractionConfig config) : config_(config) {
  assert(config_.max_diameter_m > 0.0);
  assert(config_.min_duration_s > 0);
  assert(config_.merge_radius_m >= 0.0);
}

std::vector<StayPoint> PoiExtractor::ExtractStays(
    const model::Trace& trace, const geo::LocalProjection& projection) const {
  std::vector<StayPoint> stays;
  const std::size_t n = trace.size();
  if (n == 0) return stays;
  std::vector<geo::Point2> points;
  points.reserve(n);
  for (const auto& event : trace) {
    points.push_back(projection.Project(event.position));
  }

  std::size_t i = 0;
  while (i < n) {
    // Extend j while every fix stays within `max_diameter_m` of fix i.
    std::size_t j = i + 1;
    while (j < n &&
           geo::Distance(points[i], points[j]) <= config_.max_diameter_m) {
      ++j;
    }
    // Fixes [i, j) form a spatially bounded run; is it long enough in time?
    const util::Timestamp dwell = trace[j - 1].time - trace[i].time;
    if (dwell >= config_.min_duration_s) {
      geo::Point2 centroid{};
      for (std::size_t k = i; k < j; ++k) centroid = centroid + points[k];
      centroid = centroid / static_cast<double>(j - i);
      stays.push_back(StayPoint{trace.user(), centroid, trace[i].time,
                                trace[j - 1].time, j - i});
      i = j;
    } else {
      ++i;
    }
  }
  return stays;
}

std::vector<ExtractedPoi> PoiExtractor::Extract(
    const model::Dataset& dataset,
    const geo::LocalProjection& projection) const {
  // 1. Stays per user, pooled over all of the user's traces.
  std::map<model::UserId, std::vector<StayPoint>> stays_by_user;
  for (const auto& trace : dataset.traces()) {
    for (auto& stay : ExtractStays(trace, projection)) {
      stays_by_user[trace.user()].push_back(stay);
    }
  }

  // 2. Greedy agglomeration of each user's stays into POIs.
  std::vector<ExtractedPoi> pois;
  for (auto& [user, stays] : stays_by_user) {
    // Longest-dwell stays become cluster seeds first (stable anchors).
    std::sort(stays.begin(), stays.end(),
              [](const StayPoint& a, const StayPoint& b) {
                return (a.departure - a.arrival) > (b.departure - b.arrival);
              });
    struct Cluster {
      geo::Point2 weighted_sum{};
      double weight = 0.0;
      std::size_t visits = 0;
      util::Timestamp dwell = 0;
      geo::Point2 Centroid() const { return weighted_sum / weight; }
    };
    std::vector<Cluster> clusters;
    for (const StayPoint& stay : stays) {
      const double w = static_cast<double>(stay.support);
      Cluster* target = nullptr;
      for (auto& cluster : clusters) {
        if (geo::Distance(cluster.Centroid(), stay.centroid) <=
            config_.merge_radius_m) {
          target = &cluster;
          break;
        }
      }
      if (target == nullptr) {
        clusters.emplace_back();
        target = &clusters.back();
      }
      target->weighted_sum = target->weighted_sum + stay.centroid * w;
      target->weight += w;
      target->visits += 1;
      target->dwell += stay.departure - stay.arrival;
    }
    for (const auto& cluster : clusters) {
      pois.push_back(ExtractedPoi{user, cluster.Centroid(), cluster.visits,
                                  cluster.dwell});
    }
  }
  return pois;
}

std::vector<ExtractedPoi> PoiExtractor::Extract(
    const model::Dataset& dataset) const {
  return Extract(dataset, DatasetProjection(dataset));
}

}  // namespace mobipriv::attacks
