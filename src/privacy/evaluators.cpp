#include "privacy/evaluators.h"

#include "model/columnar_file.h"
#include "privacy/uncertainty.h"
#include "util/rng.h"
#include "util/string_utils.h"

namespace mobipriv::privacy {
namespace {

double TotalBits(const mech::MixZoneReport& report) {
  double bits = 0.0;
  for (const std::size_t size : report.anonymity_set_sizes) {
    bits += AnonymitySetEntropyBits(size);
  }
  return bits;
}

}  // namespace

CertificationEvaluator::CertificationEvaluator(CertificationConfig config)
    : config_(config) {}

std::string CertificationEvaluator::Name() const {
  const CertificationConfig defaults;
  std::string params;
  if (config_.max_spacing_deviation != defaults.max_spacing_deviation) {
    params += ",spacing=" + util::FormatDouble(config_.max_spacing_deviation);
  }
  if (config_.max_interval_deviation_s !=
      defaults.max_interval_deviation_s) {
    params += ",interval=" +
              util::FormatDouble(config_.max_interval_deviation_s, 1) + "s";
  }
  if (config_.min_events_checked != defaults.min_events_checked) {
    params += ",min_events=" + std::to_string(config_.min_events_checked);
  }
  if (params.empty()) return "certification";
  return "certification[" + params.substr(1) + "]";
}

std::vector<core::MetricValue> CertificationEvaluator::Evaluate(
    const core::EvalInput& input) const {
  // The certifier's kernels consume an AoS dataset; materializing the
  // published view is the documented adapter cost of this evaluator (keep
  // it out of grids that pin zero-materialize counters).
  const model::Dataset published = input.published.Materialize();
  const CertificationReport report =
      CertifyConstantSpeed(published, config_);
  const double checked = static_cast<double>(report.traces_checked);
  return {
      {"cert_certified", report.Certified() ? 1.0 : 0.0},
      {"cert_violations", static_cast<double>(report.violations.size())},
      {"cert_violation_ratio",
       checked == 0.0
           ? 0.0
           : static_cast<double>(report.violations.size()) / checked},
  };
}

UncertaintyEvaluator::UncertaintyEvaluator(mech::MixZoneConfig config)
    : config_(config) {}

std::string UncertaintyEvaluator::Name() const {
  const mech::MixZoneConfig defaults;
  std::string params;
  if (config_.zone_radius_m != defaults.zone_radius_m) {
    params += ",r=" + util::FormatDouble(config_.zone_radius_m, 0) + "m";
  }
  if (config_.time_window_s != defaults.time_window_s) {
    params += ",w=" + std::to_string(config_.time_window_s) + "s";
  }
  if (config_.min_users != defaults.min_users) {
    params += ",min_users=" + std::to_string(config_.min_users);
  }
  if (params.empty()) return "uncertainty";
  return "uncertainty[" + params.substr(1) + "]";
}

std::vector<core::MetricValue> UncertaintyEvaluator::Evaluate(
    const core::EvalInput& input) const {
  const mech::MixZone detector(config_);
  // The detection pass is deterministic; the rng only feeds the identity
  // permutations of the (discarded) mixed output, so any stream works —
  // derive one from the cell seed and this evaluator's name to keep the
  // call reproducible and independent of sibling evaluators.
  const std::string name = Name();
  const std::uint64_t name_hash = model::Fnv1a64(name.data(), name.size());

  mech::MixZoneReport potential;
  util::Rng original_rng(util::DeriveStreamSeed(input.seed, name_hash, 0));
  (void)detector.ApplyToStoreWithReport(input.original, original_rng,
                                        potential);
  mech::MixZoneReport residual;
  util::Rng published_rng(util::DeriveStreamSeed(input.seed, name_hash, 1));
  (void)detector.ApplyToStoreWithReport(input.published, published_rng,
                                        residual);
  return {
      {"mix_potential_bits", TotalBits(potential)},
      {"mix_potential_occurrences",
       static_cast<double>(potential.occurrences)},
      {"mix_residual_bits", TotalBits(residual)},
      {"mix_residual_occurrences",
       static_cast<double>(residual.occurrences)},
  };
}

}  // namespace mobipriv::privacy
