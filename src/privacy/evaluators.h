// src/privacy wired into the scenario engine: certification and
// mix-zone-uncertainty checks as core::Evaluator implementations, so
// sweep reports carry privacy columns next to utility ones (the paper's
// privacy-utility frontier in one table).
//
// Both evaluators register in the core evaluator registry under the bases
// "certification" and "uncertainty"; their Name()s print only non-default
// parameters and round-trip through core::CreateEvaluator like every
// built-in.
#pragma once

#include "core/evaluator.h"
#include "mechanisms/mixzone.h"
#include "privacy/certification.h"

namespace mobipriv::privacy {

/// Scores the PUBLISHED dataset against the constant-speed publication
/// certificate (privacy/certification.h). Metrics:
///   cert_certified        1.0 when zero violations, else 0.0
///   cert_violations       violation count
///   cert_violation_ratio  violations / traces checked (0 when none)
class CertificationEvaluator final : public core::Evaluator {
 public:
  explicit CertificationEvaluator(CertificationConfig config = {});

  /// "certification[spacing=...,interval=...s,min_events=...]" with only
  /// non-default knobs printed (bare "certification" at defaults).
  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] std::vector<core::MetricValue> Evaluate(
      const core::EvalInput& input) const override;

 private:
  CertificationConfig config_;
};

/// Scores the mixing uncertainty an adversary faces: runs mix-zone
/// detection over the ORIGINAL dataset (the potential — what natural
/// meetings could have provided) and over the PUBLISHED dataset (the
/// residual — meetings still observable after anonymization). Entropy is
/// log2(k) bits per occurrence with anonymity set k. Metrics:
///   mix_potential_bits / mix_potential_occurrences
///   mix_residual_bits  / mix_residual_occurrences
/// Anonymity-set sizes are rng-independent (detection is deterministic),
/// so the metrics are too.
class UncertaintyEvaluator final : public core::Evaluator {
 public:
  explicit UncertaintyEvaluator(mech::MixZoneConfig config = {});

  /// "uncertainty[r=...m,w=...s,min_users=...]" with only non-default
  /// knobs printed (bare "uncertainty" at defaults).
  [[nodiscard]] std::string Name() const override;
  [[nodiscard]] std::vector<core::MetricValue> Evaluate(
      const core::EvalInput& input) const override;

 private:
  mech::MixZoneConfig config_;
};

}  // namespace mobipriv::privacy
