// Publication certification: before releasing a dataset, a publisher checks
// that the mechanism's guarantees actually hold on the bytes about to go
// out. This is the operational counterpart of the paper's Section III
// guarantee — "equal duration and distance between two consecutive points"
// — plus negative checks (no residual stop clusters).
//
// The certifier is mechanism-independent: it inspects only the published
// dataset, so it also catches integration bugs (e.g. accidentally shipping
// the raw dataset).
#pragma once

#include <string>
#include <vector>

#include "attacks/poi_extraction.h"
#include "model/dataset.h"

namespace mobipriv::privacy {

struct CertificationConfig {
  /// Maximum tolerated relative deviation of any inter-point distance from
  /// the trace's median spacing.
  double max_spacing_deviation = 0.02;
  /// Maximum tolerated absolute deviation of any inter-point interval from
  /// the trace's median interval, seconds (integer-second rounding).
  double max_interval_deviation_s = 2.0;
  /// Stop-cluster screening: the published data must yield zero stays under
  /// this extractor configuration.
  attacks::PoiExtractionConfig screening;
  /// Traces with fewer events than this are exempt from the spacing checks
  /// (a 2-point trace is trivially constant-speed).
  std::size_t min_events_checked = 4;
};

/// One violated trace with the reason.
struct CertificationViolation {
  enum class Kind {
    kNonUniformSpacing,
    kNonUniformInterval,
    kResidualStay,
    kUnorderedTimestamps,
  };
  Kind kind;
  std::size_t trace_index = 0;
  model::UserId user = model::kInvalidUser;
  double magnitude = 0.0;  ///< deviation ratio / seconds / stay dwell
  [[nodiscard]] std::string ToString() const;
};

struct CertificationReport {
  std::size_t traces_checked = 0;
  std::size_t traces_exempt = 0;
  std::vector<CertificationViolation> violations;

  [[nodiscard]] bool Certified() const noexcept { return violations.empty(); }
  [[nodiscard]] std::string ToString() const;
};

/// Runs every check against the published dataset.
[[nodiscard]] CertificationReport CertifyConstantSpeed(
    const model::Dataset& published, const CertificationConfig& config = {});

}  // namespace mobipriv::privacy
