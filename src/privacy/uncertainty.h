// Attacker-uncertainty quantification for mix-zones.
//
// The mix-zone literature ([6], Hoh & Gruteser [5]) measures protection as
// the adversary's uncertainty over the identity permutation applied inside a
// zone. With a uniform permutation over k participants the posterior over
// "which exit is my target" is uniform over k candidates, giving
// log2(k) bits of entropy per traversal; over a whole publication the
// per-user *cumulative* entropy tells each user how untrackable she became.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "mechanisms/mixzone.h"
#include "model/dataset.h"

namespace mobipriv::privacy {

/// Entropy (bits) of a uniform choice among `set_size` candidates.
[[nodiscard]] double AnonymitySetEntropyBits(std::size_t set_size) noexcept;

struct UserUncertainty {
  model::UserId user = model::kInvalidUser;
  std::size_t traversals = 0;       ///< mix-zone occurrences participated in
  double cumulative_bits = 0.0;     ///< sum of per-occurrence entropies
};

struct UncertaintyReport {
  double total_bits = 0.0;          ///< pooled over all occurrences
  double mean_bits_per_occurrence = 0.0;
  std::size_t occurrences = 0;
  std::vector<UserUncertainty> per_user;

  [[nodiscard]] std::string ToString() const;
};

/// Computes the uncertainty the mechanism run described by `report`
/// generated. `dataset` supplies the user universe (users with no traversal
/// appear with 0 bits — the honest "this user was not protected" signal).
[[nodiscard]] UncertaintyReport MeasureMixingUncertainty(
    const model::Dataset& dataset, const mech::MixZoneReport& report);

}  // namespace mobipriv::privacy
